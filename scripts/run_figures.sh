#!/usr/bin/env bash
# Regenerates every paper table and figure. Pass --full for larger scales.
set -u
cd "$(dirname "$0")/.."
cargo build --release -p unison-bench 2>/dev/null
for bin in table1 table2 fig01 fig05a fig05b fig05c fig05d fig08a fig08b \
           fig09a fig09b fig10a fig10b fig10c fig10d fig11 fig12a fig12b \
           fig12c fig12d fig13; do
    echo
    echo "================================================================"
    echo ">> $bin $*"
    echo "================================================================"
    ./target/release/$bin "$@"
done
