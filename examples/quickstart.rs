//! Quickstart: build a fat-tree datacenter, generate web-search traffic,
//! and run the same model on the Unison kernel — then on every other
//! kernel, unchanged (the user-transparency property).
//!
//! Run with: `cargo run --release --example quickstart`

use unison::core::{KernelKind, Time};
use unison::netsim::{NetworkBuilder, TransportKind};
use unison::topology::fat_tree;
use unison::traffic::{SizeDist, TrafficConfig};

fn main() {
    // A k=4 fat-tree: 16 hosts, 20 switches, 100 Gbps links, 3 µs delays.
    let topo = fat_tree(4);
    println!(
        "topology: {} ({} nodes, {} links)",
        topo.name,
        topo.node_count(),
        topo.links.len()
    );

    // 30% load of gRPC-style flows for 2 simulated milliseconds.
    let traffic = TrafficConfig::random_uniform(0.3)
        .with_seed(7)
        .with_sizes(SizeDist::Grpc)
        .with_window(Time::ZERO, Time::from_millis(2));

    // Zero configuration: no manual partitioning, no result aggregation.
    let sim = NetworkBuilder::new(&topo)
        .transport(TransportKind::NewReno)
        .traffic(&traffic)
        .stop_at(Time::from_millis(6))
        .build();

    let result = sim.run(KernelKind::Unison { threads: 2 });
    println!("\n== Unison (2 threads) ==");
    println!(
        "events: {}  rounds: {}  LPs: {}  lookahead: {}  wall: {:?}",
        result.kernel.events,
        result.kernel.rounds,
        result.kernel.lp_count,
        result.kernel.lookahead,
        result.kernel.wall
    );
    println!("flows:  {}", result.flows.one_line());
    println!(
        "p50/p99 FCT: {:.0}/{:.0} us   Jain fairness: {:.3}",
        result.flows.fct_us.percentile(50.0),
        result.flows.fct_us.percentile(99.0),
        result.flows.jain_index()
    );

    // The same model, different kernels — nothing else changes.
    for kernel in [
        KernelKind::Sequential { compat_keys: false },
        KernelKind::Sequential { compat_keys: true },
        KernelKind::Unison { threads: 4 },
        KernelKind::Hybrid {
            hosts: 2,
            threads_per_host: 2,
        },
    ] {
        let sim = NetworkBuilder::new(&topo)
            .transport(TransportKind::NewReno)
            .traffic(&traffic)
            .stop_at(Time::from_millis(6))
            .build();
        let r = sim.run(kernel);
        println!(
            "{:<22} events={}  completed={}  wall={:?}",
            r.kernel.kernel,
            r.kernel.events,
            r.flows.completed_flows(),
            r.kernel.wall
        );
    }
    println!("\n(all kernels execute the same events; Unison and compat-sequential agree bitwise)");
}
