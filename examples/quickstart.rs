//! Quickstart: run the committed `scenarios/quickstart.toml` — a fat-tree
//! datacenter under web-search-style traffic — on the Unison kernel, then
//! on every other kernel, unchanged (the user-transparency property).
//!
//! The scenario file carries the whole experiment (DESIGN.md §4.10); the
//! `unison-run` CLI executes the same file directly:
//!
//!     cargo run --release --example quickstart
//!     cargo run --release -p unison-bench --bin unison-run -- scenarios/quickstart.toml

use unison::core::KernelKind;
use unison::netsim::NetworkBuilder;
use unison::scenario::parse_scenario;

fn main() {
    // One declarative file: topology, traffic, transport, kernel.
    let spec = parse_scenario(include_str!("../scenarios/quickstart.toml"))
        .expect("committed scenario parses");
    let topo = spec.build_topology();
    println!(
        "scenario: {}\ntopology: {} ({} nodes, {} links)",
        spec.name,
        topo.name,
        topo.node_count(),
        topo.links.len()
    );

    // Zero configuration: no manual partitioning, no result aggregation.
    let sim = NetworkBuilder::from_scenario(&topo, &spec).build();
    let result = sim
        .run_with(&spec.run_config(&topo))
        .expect("quickstart run");
    println!("\n== Unison (2 threads) ==");
    println!(
        "events: {}  rounds: {}  LPs: {}  lookahead: {}  wall: {:?}",
        result.kernel.events,
        result.kernel.rounds,
        result.kernel.lp_count,
        result.kernel.lookahead,
        result.kernel.wall
    );
    println!("flows:  {}", result.flows.one_line());
    println!(
        "p50/p99 FCT: {:.0}/{:.0} us   Jain fairness: {:.3}",
        result.flows.fct_us.percentile(50.0),
        result.flows.fct_us.percentile(99.0),
        result.flows.jain_index()
    );

    // The same scenario, different kernels — nothing else changes.
    for kernel in [
        KernelKind::Sequential { compat_keys: false },
        KernelKind::Sequential { compat_keys: true },
        KernelKind::Unison { threads: 4 },
        KernelKind::Hybrid {
            hosts: 2,
            threads_per_host: 2,
        },
    ] {
        let sim = NetworkBuilder::from_scenario(&topo, &spec).build();
        let r = sim
            .run_with(&spec.run_config_with_kernel(&topo, kernel))
            .expect("kernel sweep run");
        println!(
            "{:<22} events={}  completed={}  wall={:?}",
            r.kernel.kernel,
            r.kernel.events,
            r.flows.completed_flows(),
            r.kernel.wall
        );
    }
    println!("\n(all kernels execute the same events; Unison and compat-sequential agree bitwise)");
}
