//! DCTCP validation (the paper's §6.2 adaptation of the DCTCP evaluation):
//! NewReno with deep DropTail buffers vs DCTCP with shallow ECN marking on
//! a shared bottleneck — per-flow throughput, Jain fairness index and
//! average queue delay.
//!
//! The DCTCP arm is the committed `scenarios/datacenter_dctcp.toml`
//! (digest-pinned by the golden corpus test); the NewReno comparison rows
//! reuse the same spec with the transport/queue sections swapped.
//!
//! Run with: `cargo run --release --example datacenter_dctcp`

use unison::netsim::NetworkBuilder;
use unison::scenario::{parse_scenario, QueueSpec, TcpProfile, TransportKindSpec, TransportSpec};

fn main() {
    let dctcp = parse_scenario(include_str!("../scenarios/datacenter_dctcp.toml"))
        .expect("committed scenario parses");

    // Datacenter-tuned NewReno (1 ms minimum RTO — the default 200 ms is
    // the ns-3/WAN setting and would stall whole windows here), first with
    // a deep DropTail buffer, then with classic RED.
    let reno_dcn = TransportSpec {
        kind: TransportKindSpec::NewReno,
        profile: TcpProfile::Dcn,
        ..TransportSpec::default()
    };
    let mut deep_droptail = dctcp.clone();
    deep_droptail.transport = reno_dcn.clone();
    deep_droptail.queue = Some(QueueSpec::DropTail {
        limit_bytes: 400_000,
    });
    let mut red = dctcp.clone();
    red.transport = reno_dcn;
    red.queue = Some(QueueSpec::Red {
        limit_bytes: 400_000,
        min_th: 30_000,
        max_th: 90_000,
        max_p: 0.1,
        w_q: 0.002,
        mark_ecn: false,
    });

    println!(
        "{:<28} {:>10} {:>8} {:>12} {:>8} {:>8}",
        "transport/queue", "tput(Mbps)", "Jain", "qdelay(us)", "drops", "marks"
    );
    println!("{}", "-".repeat(80));
    for (name, spec) in [
        ("NewReno + deep DropTail", &deep_droptail),
        ("NewReno + RED", &red),
        ("DCTCP (K = 8 kB)", &dctcp),
    ] {
        let topo = spec.build_topology();
        let sim = NetworkBuilder::from_scenario(&topo, spec).build();
        let res = sim.run_with(&spec.run_config(&topo)).expect("dctcp run");
        println!(
            "{:<28} {:>10.1} {:>8.3} {:>12.1} {:>8} {:>8}",
            name,
            res.flows.throughput_bps.mean() / 1e6,
            res.flows.jain_index(),
            res.flows.queue_delay_ns.mean() / 1e3,
            res.flows.drops,
            res.flows.marks
        );
    }
    println!(
        "\n(expected, as in the DCTCP paper the evaluation reproduces: DCTCP keeps \
         throughput while cutting queue delay by an order of magnitude, with high \
         fairness and zero drops)"
    );
}
