//! DCTCP validation (the paper's §6.2 adaptation of the DCTCP evaluation):
//! NewReno with deep DropTail buffers vs DCTCP with shallow ECN marking on
//! a shared bottleneck — per-flow throughput, Jain fairness index and
//! average queue delay.
//!
//! Run with: `cargo run --release --example datacenter_dctcp`

use unison::core::{DataRate, KernelKind, Time};
use unison::netsim::{NetworkBuilder, QueueConfig, TcpConfig, TransportKind};
use unison::topology::dumbbell;
use unison::traffic::FlowSpec;

fn main() {
    let topo = dumbbell(
        8,
        8,
        DataRate::gbps(1),
        DataRate::gbps(1),
        Time::from_micros(20),
    );
    let hosts = topo.hosts();
    // 8 long flows share the bottleneck.
    let flows: Vec<FlowSpec> = (0..8)
        .map(|i| FlowSpec {
            src: hosts[i],
            dst: hosts[8 + i],
            bytes: 2_000_000,
            start: Time::from_micros(50 * i as u64),
        })
        .collect();

    println!(
        "{:<28} {:>10} {:>8} {:>12} {:>8} {:>8}",
        "transport/queue", "tput(Mbps)", "Jain", "qdelay(us)", "drops", "marks"
    );
    println!("{}", "-".repeat(80));
    // Datacenter-tuned stacks: 1 ms minimum RTO (the default 200 ms is the
    // ns-3/WAN setting and would stall whole windows here).
    let reno_dcn = TcpConfig::newreno_dcn();
    let dctcp_dcn = TcpConfig {
        kind: TransportKind::Dctcp,
        ..TcpConfig::newreno_dcn()
    };
    for (name, tcp, queue) in [
        (
            "NewReno + deep DropTail",
            reno_dcn,
            QueueConfig::DropTail {
                limit_bytes: 400_000,
            },
        ),
        (
            "NewReno + RED",
            reno_dcn,
            QueueConfig::red(400_000, 30_000, 90_000, false),
        ),
        (
            "DCTCP (K = 8 kB)",
            dctcp_dcn,
            QueueConfig::dctcp(400_000, 8_000),
        ),
    ] {
        let sim = NetworkBuilder::new(&topo)
            .tcp_config(tcp)
            .queue(queue)
            .flows(flows.clone())
            .stop_at(Time::from_millis(400))
            .build();
        let res = sim.run(KernelKind::Unison { threads: 2 });
        println!(
            "{:<28} {:>10.1} {:>8.3} {:>12.1} {:>8} {:>8}",
            name,
            res.flows.throughput_bps.mean() / 1e6,
            res.flows.jain_index(),
            res.flows.queue_delay_ns.mean() / 1e3,
            res.flows.drops,
            res.flows.marks
        );
    }
    println!(
        "\n(expected, as in the DCTCP paper the evaluation reproduces: DCTCP keeps \
         throughput while cutting queue delay by an order of magnitude, with high \
         fairness and zero drops)"
    );
}
