//! Reconfigurable datacenter: a fat-tree whose electrical core plane is
//! periodically swapped for an optical circuit (modeled as taking half the
//! core links down and re-routing), as in the paper's Fig. 10d scenario.
//! Topology changes are global events on the public LP; the kernel
//! recomputes the lookahead automatically (§4.2).
//!
//! Run with: `cargo run --release --example reconfigurable_dcn`

use unison::core::{DataRate, KernelKind, Time};
use unison::netsim::{recompute_static_routes, set_link_state, NetworkBuilder};
use unison::topology::{fat_tree, NodeKind};
use unison::traffic::{SizeDist, TrafficConfig};

fn main() {
    let topo = fat_tree(4)
        .with_rate(DataRate::gbps(10))
        .with_delay(Time::from_micros(3));
    let traffic = TrafficConfig::random_uniform(0.3)
        .with_seed(5)
        .with_sizes(SizeDist::Grpc)
        .with_window(Time::ZERO, Time::from_millis(4));
    let mut sim = NetworkBuilder::new(&topo)
        .traffic(&traffic)
        .stop_at(Time::from_millis(8))
        .build();

    // Plane A = links touching the first half of the core switches.
    let cores = topo
        .nodes
        .iter()
        .take_while(|k| **k == NodeKind::Switch)
        .count()
        .min(4);
    let plane: Vec<_> = sim
        .links
        .iter()
        .filter(|l| l.a < cores / 2 || l.b < cores / 2)
        .copied()
        .collect();
    println!(
        "fat-tree k=4: {} core switches, plane A = {} links",
        cores,
        plane.len()
    );

    // Swap the plane out and back every millisecond.
    for ms in [1u64, 3, 5] {
        let down = plane.clone();
        sim.world.add_global_event(
            Time::from_millis(ms),
            Box::new(move |wa| {
                for l in &down {
                    set_link_state(wa, l, false);
                }
                recompute_static_routes(wa);
                println!(
                    "[t={}] plane A -> optical (lookahead now {})",
                    wa.now(),
                    wa.lookahead()
                );
            }),
        );
        let up = plane.clone();
        sim.world.add_global_event(
            Time::from_millis(ms + 1),
            Box::new(move |wa| {
                for l in &up {
                    set_link_state(wa, l, true);
                }
                recompute_static_routes(wa);
                println!("[t={}] plane A restored", wa.now());
            }),
        );
    }

    let res = sim.run(KernelKind::Unison { threads: 2 });
    println!(
        "\nevents: {}  global events: {}  rounds: {}  wall: {:?}",
        res.kernel.events, res.kernel.global_events, res.kernel.rounds, res.kernel.wall
    );
    println!("flows:  {}", res.flows.one_line());
    assert!(res.flows.completed_flows() > 0);
    println!(
        "\n(the simulation reroutes through the surviving plane during each swap; \
         per Fig. 10d the reconfiguration overhead is negligible)"
    );
}
