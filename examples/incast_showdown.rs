//! Incast showdown: the scenario that motivates the paper. Many senders
//! converge on one victim host; the static-partition PDES baselines spend
//! most of their time waiting at synchronization barriers while Unison's
//! load-adaptive scheduler keeps every thread busy.
//!
//! Run with: `cargo run --release --example incast_showdown`

use unison::core::{
    KernelKind, MetricsLevel, PartitionMode, PerfModel, RunConfig, SchedConfig, Time,
};
use unison::netsim::NetworkBuilder;
use unison::topology::{fat_tree_clusters, manual};
use unison::traffic::TrafficConfig;

fn main() {
    let topo = fat_tree_clusters(16, 4);
    let traffic = TrafficConfig::incast(0.4, 1.0)
        .with_seed(42)
        .with_window(Time::ZERO, Time::from_millis(2));

    // Profile the workload once per partition scheme on the instrumented
    // single-thread engine, then replay each algorithm's synchronization
    // structure (this is how the paper's performance figures are
    // regenerated on a small machine — see DESIGN.md).
    let profile = |partition: PartitionMode| {
        let sim = NetworkBuilder::new(&topo)
            .traffic(&traffic)
            .stop_at(Time::from_millis(4))
            .build();
        sim.run_with(&RunConfig {
            watchdog: Default::default(),
            kernel: KernelKind::Unison { threads: 1 },
            partition,
            sched: SchedConfig::default(),
            metrics: MetricsLevel::PerRound,
            telemetry: Default::default(),
            fel: Default::default(),
            fault: Default::default(),
        })
        .expect("profiled run")
    };

    let base = profile(PartitionMode::Manual(manual::by_cluster(&topo)));
    let auto = profile(PartitionMode::Auto);
    let base_profile = base.kernel.rounds_profile.as_deref().unwrap_or(&[]);
    let auto_profile = auto.kernel.rounds_profile.as_deref().unwrap_or(&[]);

    let mb = PerfModel::new(base_profile);
    let mu = PerfModel::new(auto_profile);
    let seq = mb.sequential();
    let bar = mb.barrier();
    let uni = mu.unison(16, SchedConfig::default());

    println!(
        "incast ratio 1.0 on a 16-cluster fat-tree ({} events)",
        base.kernel.events
    );
    println!(
        "{:<26} {:>10} {:>8}",
        "algorithm (16 cores)", "time(s)", "S/T"
    );
    println!("{}", "-".repeat(48));
    for r in [&seq, &bar, &uni] {
        println!(
            "{:<26} {:>10.3} {:>7.0}%",
            r.algorithm,
            r.total_ns / 1e9,
            r.s_ratio() * 100.0
        );
    }
    println!(
        "\nUnison is {:.1}x faster than the barrier baseline at equal cores;",
        bar.total_ns / uni.total_ns
    );
    println!(
        "the baseline wastes {:.0}% of its core-time at synchronization barriers,",
        bar.s_ratio() * 100.0
    );
    println!(
        "Unison {:.0}% — the paper's Observation 1 and its fix.",
        uni.s_ratio() * 100.0
    );
    println!("\nvictim-side flow stats: {}", auto.flows.one_line());
}
