//! WAN failover: the GEANT backbone under RIP dynamic routing. Mid-run, a
//! core link is torn down by a global event on the public LP; RIP's
//! triggered updates re-converge and traffic keeps flowing. Demonstrates
//! dynamic topologies (§4.2) and global events under parallel execution.
//!
//! Run with: `cargo run --release --example wan_failover`

use unison::core::{KernelKind, NodeId, Time};
use unison::netsim::{set_link_state, NetNode, NetworkBuilder, RoutingKind};
use unison::topology::geant;
use unison::traffic::FlowSpec;

fn main() {
    let topo = geant();
    let hosts = topo.hosts();
    println!(
        "GEANT: {} routers + {} hosts, {} links",
        topo.clusters,
        hosts.len(),
        topo.links.len()
    );

    // Steady flows from the London region to the Athens region, crossing
    // the backbone.
    let flows: Vec<FlowSpec> = (0..30)
        .map(|i| FlowSpec {
            src: hosts[i % 5],
            dst: hosts[26 + (i % 5)],
            bytes: 100_000,
            start: Time::from_millis(50) + Time::from_millis(2 * i as u64),
        })
        .collect();

    let mut sim = NetworkBuilder::new(&topo)
        .routing(RoutingKind::Rip {
            update_interval: Time::from_millis(20),
        })
        .flows(flows)
        .stop_at(Time::from_millis(600))
        .build();

    // Fail the Milan—Rome backbone link (topology link index of 5—26) at
    // t = 100 ms, restore at t = 250 ms.
    let victim_idx = topo
        .links
        .iter()
        .position(|l| (l.a, l.b) == (5, 26) || (l.a, l.b) == (26, 5))
        .expect("Milan-Rome link exists");
    let victim = sim.links[victim_idx];
    sim.world.add_global_event(
        Time::from_millis(100),
        Box::new(move |wa| {
            println!("[t={}] link down: Milan—Rome", wa.now());
            set_link_state(wa, &victim, false);
        }),
    );
    sim.world.add_global_event(
        Time::from_millis(250),
        Box::new(move |wa| {
            println!("[t={}] link restored", wa.now());
            set_link_state(wa, &victim, true);
        }),
    );
    // Progress reporting from the public LP, like the paper's global
    // events.
    for ms in [50u64, 150, 300, 450] {
        sim.world.add_global_event(
            Time::from_millis(ms),
            Box::new(move |wa| {
                let mut done = 0u64;
                for i in 0..wa.node_count() {
                    let node: &mut NetNode = wa.node_mut(NodeId(i as u32));
                    done += node
                        .receivers
                        .values()
                        .filter(|r| r.completed_at.is_some())
                        .count() as u64;
                }
                println!("[t={}] flows completed so far: {done}", wa.now());
            }),
        );
    }

    let res = sim.run(KernelKind::Unison { threads: 2 });
    println!("\nfinal: {}", res.flows.one_line());
    println!(
        "routing drops during outage: {} (packets black-holed until RIP re-converged)",
        res.flows.routing_drops
    );
    assert_eq!(res.flows.total_flows(), 30);
    println!(
        "completed {}/{} flows despite the mid-run failure",
        res.flows.completed_flows(),
        res.flows.total_flows()
    );
}
