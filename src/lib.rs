//! # unison-rs
//!
//! A from-scratch Rust reproduction of *Unison: A Parallel-Efficient and
//! User-Transparent Network Simulation Kernel* (EuroSys '24).
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`core`]: simulation kernels (sequential DES, barrier PDES, null-message
//!   PDES, the Unison kernel and the hybrid distributed kernel), the
//!   fine-grained partitioner, the load-adaptive scheduler, P/S/M metrics and
//!   the virtual-core performance model.
//! - [`netsim`]: the packet-level network model stack (links, queues, routing,
//!   TCP NewReno / DCTCP, applications, flow monitoring).
//! - [`topology`]: topology builders (fat-tree, BCube, torus, spine-leaf,
//!   dumbbell, WAN graphs) and manual partition schemes for the baselines.
//! - [`traffic`]: workload generation (web-search / gRPC CDFs, incast mixes,
//!   Poisson flow arrivals) on a deterministic RNG.
//! - [`scenario`]: the declarative scenario layer — one `scenarios/*.toml`
//!   file per experiment, parsed into an AST that builds the topology,
//!   traffic, and run configuration (consumed by `unison-run`).
//! - [`stats`]: summary statistics, histograms and percentile estimation.
//!
//! # Quick start
//!
//! ```
//! use unison::core::{KernelKind, Time};
//! use unison::netsim::{NetworkBuilder, TransportKind};
//! use unison::topology::fat_tree;
//! use unison::traffic::TrafficConfig;
//!
//! let topo = fat_tree(4);
//! let traffic = TrafficConfig::random_uniform(0.3)
//!     .with_seed(7)
//!     .with_window(Time::ZERO, Time::from_millis(1));
//! let sim = NetworkBuilder::new(&topo)
//!     .transport(TransportKind::NewReno)
//!     .traffic(&traffic)
//!     .stop_at(Time::from_millis(4))
//!     .build();
//! let result = sim.run(KernelKind::Unison { threads: 2 });
//! assert!(result.flows.total_flows() > 0);
//! ```

pub use unison_core as core;
pub use unison_netsim as netsim;
pub use unison_scenario as scenario;
pub use unison_stats as stats;
pub use unison_topology as topology;
pub use unison_traffic as traffic;
