//! Workspace-level integration: the paper's determinism claims (§5.2,
//! Fig. 11) at the full network-stack level.

use unison::core::{
    KernelKind, MetricsLevel, PartitionMode, RunConfig, SchedConfig, SchedMetric, Time,
};
use unison::netsim::{NetworkBuilder, SimResult, TransportKind};
use unison::topology::fat_tree;
use unison::traffic::{SizeDist, TrafficConfig};

fn run_sched(kernel: KernelKind, sched: SchedConfig) -> SimResult {
    let topo = fat_tree(4);
    let traffic = TrafficConfig::incast(0.3, 0.3)
        .with_seed(1234)
        .with_sizes(SizeDist::WebSearch)
        .with_window(Time::ZERO, Time::from_millis(1));
    let sim = NetworkBuilder::new(&topo)
        .transport(TransportKind::NewReno)
        .traffic(&traffic)
        .stop_at(Time::from_millis(3))
        .build();
    sim.run_with(&RunConfig {
        watchdog: Default::default(),
        kernel,
        partition: PartitionMode::Auto,
        sched,
        metrics: MetricsLevel::Summary,
        telemetry: Default::default(),
        fel: Default::default(),
        fault: Default::default(),
    })
    .expect("run")
}

fn run(kernel: KernelKind) -> SimResult {
    run_sched(kernel, SchedConfig::default())
}

/// Everything observable, bit-exact: events, drops, retransmits, mean-RTT
/// bits, and per-flow completion records.
type Fingerprint = (u64, u64, u64, u64, Vec<(u32, u32, Option<Time>)>);

fn fingerprint(res: &SimResult) -> Fingerprint {
    (
        res.kernel.events,
        res.flows.drops,
        res.flows.retransmits,
        res.flows.rtt_ns.mean().to_bits(),
        res.flows
            .flows
            .iter()
            .map(|f| (f.flow.src, f.flow.dst, f.completed))
            .collect(),
    )
}

#[test]
fn unison_identical_across_thread_counts_and_repetitions() {
    let reference = fingerprint(&run(KernelKind::Unison { threads: 1 }));
    for threads in [2usize, 4, 8] {
        assert_eq!(
            fingerprint(&run(KernelKind::Unison { threads })),
            reference,
            "thread count {threads} changed results"
        );
    }
    // Repetition.
    assert_eq!(
        fingerprint(&run(KernelKind::Unison { threads: 4 })),
        reference
    );
}

/// §3.4 user-transparency at full-stack level: the load-adaptive scheduler
/// only reorders *when* LPs run inside a phase, never *what* they compute.
/// For each scheduling metric, the event-trace digest must be identical
/// across 1/2/4 worker threads — and identical between the metrics, since
/// both must reduce to the same deterministic event order.
#[test]
fn scheduling_metrics_identical_across_thread_counts() {
    let reference = fingerprint(&run(KernelKind::Unison { threads: 1 }));
    for metric in [SchedMetric::ByLastRoundTime, SchedMetric::ByPendingEvents] {
        for threads in [1usize, 2, 4] {
            let sched = SchedConfig {
                metric,
                period: Some(4),
                ..Default::default()
            };
            assert_eq!(
                fingerprint(&run_sched(KernelKind::Unison { threads }, sched)),
                reference,
                "metric {metric:?} with {threads} thread(s) changed results"
            );
        }
    }
}

#[test]
fn compat_sequential_equals_unison() {
    let seq = fingerprint(&run(KernelKind::Sequential { compat_keys: true }));
    let uni = fingerprint(&run(KernelKind::Unison { threads: 3 }));
    assert_eq!(seq, uni);
}

#[test]
fn hybrid_equals_unison() {
    let hy = fingerprint(&run(KernelKind::Hybrid {
        hosts: 2,
        threads_per_host: 2,
    }));
    let uni = fingerprint(&run(KernelKind::Unison { threads: 4 }));
    assert_eq!(hy, uni);
}
