//! Workspace-level integration: self-checking smoke versions of the
//! paper's headline claims (full-size runs live in `unison-bench`'s
//! binaries; these assert the *directions* hold at test scale).

use unison::core::{
    KernelKind, MetricsLevel, PartitionMode, PerfModel, RunConfig, SchedConfig, SchedMetric, Time,
};
use unison::netsim::NetworkBuilder;
use unison::topology::{fat_tree, fat_tree_clusters, manual, torus2d};
use unison::traffic::{SizeDist, TrafficConfig};

struct Profiled {
    profile: Vec<unison::core::RoundRecord>,
    neighbors: Vec<Vec<u32>>,
}

fn profile(
    topo: &unison::topology::Topology,
    traffic: &TrafficConfig,
    partition: PartitionMode,
    stop: Time,
) -> Profiled {
    let sim = NetworkBuilder::new(topo)
        .traffic(traffic)
        .stop_at(stop)
        .build();
    let res = sim
        .run_with(&RunConfig {
            watchdog: Default::default(),
            kernel: KernelKind::Unison { threads: 1 },
            partition: partition.clone(),
            sched: SchedConfig::default(),
            metrics: MetricsLevel::PerRound,
            telemetry: Default::default(),
            fel: Default::default(),
            fault: Default::default(),
        })
        .expect("profiled run");
    // LP adjacency for the null-message model.
    let mut graph = unison::core::LinkGraph::new(topo.node_count());
    for l in &topo.links {
        graph.add_link(
            unison::core::NodeId(l.a as u32),
            unison::core::NodeId(l.b as u32),
            l.delay,
        );
    }
    let p = match &partition {
        PartitionMode::Auto => unison::core::fine_grained_partition(&graph),
        PartitionMode::Manual(a) => unison::core::manual_partition(&graph, a),
        _ => unreachable!(),
    };
    let mut neighbors = vec![Vec::new(); p.lp_count as usize];
    for (a, b, _) in p.lp_channels(&graph) {
        neighbors[a.index()].push(b.0);
        neighbors[b.index()].push(a.0);
    }
    Profiled {
        profile: res.kernel.rounds_profile.unwrap_or_default(),
        neighbors,
    }
}

#[test]
fn claim_unison_beats_pdes_baselines_under_incast() {
    // Claims 1 & 5 (Fig. 1 / Fig. 9): at equal cores, Unison's replayed
    // time is below barrier and null message, and its S ratio is far below
    // the barrier's.
    let topo = fat_tree_clusters(8, 4);
    let traffic = TrafficConfig::incast(0.4, 1.0)
        .with_seed(42)
        .with_window(Time::ZERO, Time::from_millis(1));
    let stop = Time::from_millis(2);
    let base = profile(
        &topo,
        &traffic,
        PartitionMode::Manual(manual::by_cluster(&topo)),
        stop,
    );
    let auto = profile(&topo, &traffic, PartitionMode::Auto, stop);
    let mb = PerfModel::new(&base.profile);
    let mu = PerfModel::new(&auto.profile);
    let bar = mb.barrier();
    let nm = mb.nullmsg(&base.neighbors);
    let uni = mu.unison(8, SchedConfig::default());
    assert!(
        uni.total_ns < bar.total_ns && uni.total_ns < nm.total_ns,
        "unison {} vs barrier {} / nullmsg {}",
        uni.total_ns,
        bar.total_ns,
        nm.total_ns
    );
    assert!(
        uni.s_ratio() < bar.s_ratio(),
        "unison S ratio {} !< barrier {}",
        uni.s_ratio(),
        bar.s_ratio()
    );
}

#[test]
fn claim_sync_time_grows_with_incast_ratio() {
    // Claim 2 (Fig. 5a): the barrier baseline's S/T rises with skew. To
    // keep the test deterministic, per-LP costs are taken as event counts
    // (the wall-clock costs carry measurement noise at this tiny scale).
    let topo = fat_tree(4);
    let stop = Time::from_millis(2);
    let s_at = |ratio| {
        let traffic = TrafficConfig::incast(0.3, ratio)
            .with_seed(7)
            .with_window(Time::ZERO, Time::from_millis(1));
        let base = profile(
            &topo,
            &traffic,
            PartitionMode::Manual(manual::by_cluster(&topo)),
            stop,
        );
        let synthetic: Vec<unison::core::RoundRecord> = base
            .profile
            .iter()
            .map(|r| unison::core::RoundRecord {
                window_start: r.window_start,
                window_end: r.window_end,
                fused: r.fused,
                lp_cost_ns: r.lp_events.iter().map(|&e| e as f32 * 100.0).collect(),
                lp_events: r.lp_events.clone(),
                lp_recv: r.lp_recv.clone(),
            })
            .collect();
        PerfModel::new(&synthetic).barrier().s_ratio()
    };
    let balanced = s_at(0.0);
    let skewed = s_at(1.0);
    assert!(
        skewed > balanced,
        "S/T should rise with incast: balanced {balanced}, skewed {skewed}"
    );
}

#[test]
fn claim_lookahead_shrinks_sync_share() {
    // Claim 4 (Fig. 5c): larger link delay -> lower barrier S/T.
    let stop = Time::from_millis(2);
    let s_at = |delay| {
        let topo = fat_tree(4)
            .with_rate(unison::core::DataRate::gbps(10))
            .with_delay(delay);
        let traffic = TrafficConfig::random_uniform(0.3)
            .with_seed(7)
            .with_sizes(SizeDist::Grpc)
            .with_window(Time::ZERO, Time::from_millis(1));
        let base = profile(
            &topo,
            &traffic,
            PartitionMode::Manual(manual::by_cluster(&topo)),
            stop,
        );
        PerfModel::new(&base.profile).barrier().s_ratio()
    };
    let small = s_at(Time::from_micros(1));
    let large = s_at(Time::from_micros(300));
    assert!(
        small > large,
        "S/T should fall with delay: 1us {small}, 300us {large}"
    );
}

#[test]
fn claim_fine_granularity_improves_locality() {
    // Claim 9 (Fig. 12a): node switches fall monotonically with LP count.
    let topo = torus2d(
        6,
        6,
        unison::core::DataRate::gbps(10),
        Time::from_micros(30),
    );
    let traffic = TrafficConfig::random_uniform(0.3)
        .with_seed(13)
        .with_sizes(SizeDist::Grpc)
        .with_window(Time::ZERO, Time::from_millis(1));
    let switches_at = |lps: u32| {
        let sim = NetworkBuilder::new(&topo)
            .traffic(&traffic)
            .stop_at(Time::from_millis(3))
            .build();
        let res = sim
            .run_with(&RunConfig {
                watchdog: Default::default(),
                kernel: KernelKind::Unison { threads: 1 },
                partition: PartitionMode::Manual(manual::by_id_range(&topo, lps)),
                sched: SchedConfig::default(),
                metrics: MetricsLevel::Summary,
                telemetry: Default::default(),
                fel: Default::default(),
                fault: Default::default(),
            })
            .expect("run");
        res.kernel.node_switches()
    };
    let coarse = switches_at(1);
    let medium = switches_at(6);
    let fine = switches_at(36);
    assert!(
        coarse > medium && medium > fine,
        "locality proxy must fall with granularity: {coarse} > {medium} > {fine}"
    );
}

#[test]
fn claim_load_adaptive_scheduling_beats_none() {
    // Claim 10 (Fig. 12c): the default metric's slowdown factor is below
    // the no-scheduling slowdown.
    let topo = fat_tree(4);
    let traffic = TrafficConfig::incast(0.3, 0.5)
        .with_seed(7)
        .with_window(Time::ZERO, Time::from_millis(1));
    let auto = profile(&topo, &traffic, PartitionMode::Auto, Time::from_millis(2));
    // Deterministic cost basis (event counts), as in the incast claim.
    let synthetic: Vec<unison::core::RoundRecord> = auto
        .profile
        .iter()
        .map(|r| unison::core::RoundRecord {
            window_start: r.window_start,
            window_end: r.window_end,
            fused: r.fused,
            lp_cost_ns: r.lp_events.iter().map(|&e| e as f32 * 100.0).collect(),
            lp_events: r.lp_events.clone(),
            lp_recv: r.lp_recv.clone(),
        })
        .collect();
    let model = PerfModel::new(&synthetic);
    let with = model
        .unison_detailed(
            8,
            SchedConfig {
                metric: SchedMetric::ByLastRoundTime,
                period: None,
                ..Default::default()
            },
        )
        .slowdown;
    let without = model
        .unison_detailed(
            8,
            SchedConfig {
                metric: SchedMetric::None,
                period: None,
                ..Default::default()
            },
        )
        .slowdown;
    assert!(with >= 1.0 - 1e-9);
    assert!(
        with <= without,
        "scheduling should not hurt: with {with}, without {without}"
    );
}

#[test]
fn claim_unison_matches_ground_truth_under_skew() {
    // Claim behind Table 2: Unison stays equal to the sequential ground
    // truth in both the balanced and the incast-skewed scenario (the
    // surrogate comparison runs in the table2 harness).
    use unison::core::DataRate;
    let tput_err = |clusters: usize| {
        let topo = fat_tree_clusters(clusters, 4)
            .with_rate(DataRate::mbps(100))
            .with_delay(Time::from_micros(500));
        let traffic = TrafficConfig {
            incast_ratio: 0.1,
            incast_cluster: Some(clusters as u32 - 1),
            ..TrafficConfig::random_uniform(0.7)
                .with_seed(9)
                .with_window(Time::ZERO, Time::from_millis(50))
        };
        let sim = NetworkBuilder::new(&topo)
            .traffic(&traffic)
            .stop_at(Time::from_millis(120))
            .build();
        let seq = sim.run(KernelKind::Sequential { compat_keys: false });
        let uni = NetworkBuilder::new(&topo)
            .traffic(&traffic)
            .stop_at(Time::from_millis(120))
            .build()
            .run(KernelKind::Unison { threads: 2 });
        assert_eq!(seq.kernel.events, uni.kernel.events);
        (
            seq.flows.throughput_bps.mean(),
            uni.flows.throughput_bps.mean(),
        )
    };
    let (seq2, uni2) = tput_err(2);
    assert_eq!(
        seq2.to_bits(),
        uni2.to_bits(),
        "Unison must match sequential"
    );
    let (seq4, uni4) = tput_err(4);
    assert_eq!(seq4.to_bits(), uni4.to_bits());
}
