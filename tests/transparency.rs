//! Workspace-level integration: the paper's user-transparency claim — one
//! model, every kernel, no model changes.

use unison::core::{KernelKind, MetricsLevel, PartitionMode, RunConfig, SchedConfig, Time};
use unison::netsim::{NetSim, NetworkBuilder, TransportKind};
use unison::topology::{fat_tree, manual, Topology};
use unison::traffic::{SizeDist, TrafficConfig};

fn build(topo: &Topology) -> NetSim {
    let traffic = TrafficConfig::random_uniform(0.2)
        .with_seed(99)
        .with_sizes(SizeDist::Grpc)
        .with_window(Time::ZERO, Time::from_millis(1));
    NetworkBuilder::new(topo)
        .transport(TransportKind::NewReno)
        .traffic(&traffic)
        .stop_at(Time::from_millis(4))
        .build()
}

#[test]
fn every_kernel_runs_the_same_model() {
    let topo = fat_tree(4);
    let pods = manual::by_cluster(&topo);
    let configs: Vec<(&str, RunConfig)> = vec![
        (
            "sequential",
            RunConfig {
                watchdog: Default::default(),
                kernel: KernelKind::Sequential { compat_keys: false },
                partition: PartitionMode::SingleLp,
                sched: SchedConfig::default(),
                metrics: MetricsLevel::Summary,
                telemetry: Default::default(),
                fel: Default::default(),
                fault: Default::default(),
            },
        ),
        ("unison", RunConfig::unison(2)),
        (
            "hybrid",
            RunConfig {
                watchdog: Default::default(),
                kernel: KernelKind::Hybrid {
                    hosts: 2,
                    threads_per_host: 2,
                },
                partition: PartitionMode::Auto,
                sched: SchedConfig::default(),
                metrics: MetricsLevel::Summary,
                telemetry: Default::default(),
                fel: Default::default(),
                fault: Default::default(),
            },
        ),
        ("barrier", RunConfig::barrier(pods.clone())),
        ("nullmsg", RunConfig::nullmsg(pods)),
    ];
    let mut events = Vec::new();
    for (name, cfg) in configs {
        let res = build(&topo).run_with(&cfg).unwrap_or_else(|e| {
            panic!("kernel {name} failed: {e}");
        });
        assert!(res.kernel.events > 10_000, "{name}: too few events");
        assert!(
            res.flows.completed_flows() > 0,
            "{name}: no flows completed"
        );
        events.push((name, res.kernel.events));
    }
    // The event population is identical for every kernel on this workload.
    let first = events[0].1;
    for (name, e) in &events {
        assert_eq!(*e, first, "kernel {name} diverged in event count");
    }
}

#[test]
fn partition_is_automatic_and_fine_grained() {
    let topo = fat_tree(4);
    let res = build(&topo).run(KernelKind::Unison { threads: 2 });
    // Uniform link delays: one LP per node — the finest granularity.
    assert_eq!(res.kernel.lp_count as usize, topo.node_count());
    assert_eq!(res.kernel.lookahead, Time::from_micros(3));
}

#[test]
fn thread_count_is_free_unlike_static_partitions() {
    // The baselines are stuck at their LP count; Unison takes any thread
    // count without reconfiguration.
    let topo = fat_tree(4);
    for threads in [1usize, 3, 7, 24] {
        let res = build(&topo).run(KernelKind::Unison { threads });
        assert_eq!(res.kernel.threads as usize, threads);
        assert!(res.flows.completed_flows() > 0);
    }
}
