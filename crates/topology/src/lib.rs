//! # unison-topology
//!
//! Topology builders for the unison-rs workspace. Each builder produces a
//! kernel-agnostic [`Topology`]: typed nodes (hosts/switches), links with
//! bandwidth and propagation delay, and cluster labels used both by the
//! baselines' static manual partitions ([`manual`]) and by workload
//! generators (e.g. "send 10% of flows into the rightmost cluster").
//!
//! Builders cover every topology in the paper's evaluation: k-ary fat-trees
//! and cluster fat-trees (Figs. 1, 5, 8, 9, 13), BCube (Fig. 10b), 2-D torus
//! (Figs. 10a, 12a), the GEANT and ChinaNet wide-area networks (Fig. 10c),
//! plus spine-leaf and the DCTCP dumbbell used in Table 1 and Fig. 12b.

pub mod bcube;
pub mod fattree;
pub mod manual;
pub mod torus;
pub mod wan;

pub use bcube::bcube;
pub use fattree::{fat_tree, fat_tree_clusters, FatTreeShape};
pub use torus::torus2d;
pub use wan::{chinanet, geant};

use unison_core::{DataRate, Time};

/// Role of a node in the topology.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// Traffic endpoint.
    Host,
    /// Packet forwarder.
    Switch,
}

/// A bidirectional link with symmetric bandwidth and delay.
#[derive(Clone, Copy, Debug)]
pub struct TopoLink {
    /// One endpoint (node index).
    pub a: usize,
    /// Other endpoint (node index).
    pub b: usize,
    /// Link bandwidth (each direction).
    pub rate: DataRate,
    /// Propagation delay.
    pub delay: Time,
}

/// A kernel-agnostic network topology.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Human-readable name ("fat-tree(k=4)", "geant", ...).
    pub name: String,
    /// Node roles, indexed by node id.
    pub nodes: Vec<NodeKind>,
    /// Links.
    pub links: Vec<TopoLink>,
    /// Cluster (pod / BCube0 / row-range / country) label per node; used by
    /// manual partitions and skewed traffic generators.
    pub cluster_of: Vec<u32>,
    /// Number of clusters.
    pub clusters: u32,
}

impl Topology {
    /// Indices of host nodes, ascending.
    pub fn hosts(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == NodeKind::Host)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of host nodes.
    pub fn host_count(&self) -> usize {
        self.nodes.iter().filter(|k| **k == NodeKind::Host).count()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Hosts belonging to a given cluster.
    pub fn cluster_hosts(&self, cluster: u32) -> Vec<usize> {
        self.hosts()
            .into_iter()
            .filter(|&h| self.cluster_of[h] == cluster)
            .collect()
    }

    /// Rescales every link to the given bandwidth.
    pub fn with_rate(mut self, rate: DataRate) -> Self {
        for l in &mut self.links {
            l.rate = rate;
        }
        self
    }

    /// Rescales every link to the given propagation delay.
    pub fn with_delay(mut self, delay: Time) -> Self {
        for l in &mut self.links {
            l.delay = delay;
        }
        self
    }

    /// Sets the delay of host-attached links only (the §4.2 illustration
    /// merges hosts with their top-of-rack switch by zeroing these).
    pub fn with_host_link_delay(mut self, delay: Time) -> Self {
        for l in &mut self.links {
            if self.nodes[l.a] == NodeKind::Host || self.nodes[l.b] == NodeKind::Host {
                l.delay = delay;
            }
        }
        self
    }

    /// Checks that the live topology is connected (BFS from node 0).
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for l in &self.links {
            adj[l.a].push(l.b);
            adj[l.b].push(l.a);
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::from([0usize]);
        seen[0] = true;
        let mut visited = 1;
        while let Some(v) = queue.pop_front() {
            for &u in &adj[v] {
                if !seen[u] {
                    seen[u] = true;
                    visited += 1;
                    queue.push_back(u);
                }
            }
        }
        visited == self.nodes.len()
    }
}

/// Convenience: a spine-leaf fabric with `spines` spine switches, `leaves`
/// leaf switches and `hosts_per_leaf` hosts per leaf. Each leaf is a
/// cluster.
pub fn spine_leaf(
    spines: usize,
    leaves: usize,
    hosts_per_leaf: usize,
    rate: DataRate,
    delay: Time,
) -> Topology {
    let mut nodes = Vec::new();
    let mut cluster_of = Vec::new();
    let mut links = Vec::new();
    // Spines first, then leaves, then hosts.
    for _ in 0..spines {
        nodes.push(NodeKind::Switch);
        cluster_of.push(0);
    }
    for l in 0..leaves {
        let leaf = nodes.len();
        nodes.push(NodeKind::Switch);
        cluster_of.push(l as u32);
        for s in 0..spines {
            links.push(TopoLink {
                a: s,
                b: leaf,
                rate,
                delay,
            });
        }
    }
    for l in 0..leaves {
        let leaf = spines + l;
        for _ in 0..hosts_per_leaf {
            let h = nodes.len();
            nodes.push(NodeKind::Host);
            cluster_of.push(l as u32);
            links.push(TopoLink {
                a: leaf,
                b: h,
                rate,
                delay,
            });
        }
    }
    // Spine switches belong to cluster 0 by convention.
    Topology {
        name: format!("spine-leaf({spines}x{leaves}x{hosts_per_leaf})"),
        nodes,
        links,
        cluster_of,
        clusters: leaves as u32,
    }
}

/// The DCTCP-style dumbbell: `senders` hosts behind switch A, `receivers`
/// hosts behind switch B, with a single bottleneck link A–B. Cluster 0 =
/// sender side, cluster 1 = receiver side.
pub fn dumbbell(
    senders: usize,
    receivers: usize,
    edge_rate: DataRate,
    bottleneck_rate: DataRate,
    delay: Time,
) -> Topology {
    let mut nodes = vec![NodeKind::Switch, NodeKind::Switch];
    let mut cluster_of = vec![0u32, 1u32];
    let mut links = vec![TopoLink {
        a: 0,
        b: 1,
        rate: bottleneck_rate,
        delay,
    }];
    for _ in 0..senders {
        let h = nodes.len();
        nodes.push(NodeKind::Host);
        cluster_of.push(0);
        links.push(TopoLink {
            a: 0,
            b: h,
            rate: edge_rate,
            delay,
        });
    }
    for _ in 0..receivers {
        let h = nodes.len();
        nodes.push(NodeKind::Host);
        cluster_of.push(1);
        links.push(TopoLink {
            a: 1,
            b: h,
            rate: edge_rate,
            delay,
        });
    }
    Topology {
        name: format!("dumbbell({senders}x{receivers})"),
        nodes,
        links,
        cluster_of,
        clusters: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spine_leaf_counts() {
        let t = spine_leaf(4, 8, 16, DataRate::gbps(10), Time::from_micros(3));
        assert_eq!(t.node_count(), 4 + 8 + 8 * 16);
        assert_eq!(t.host_count(), 128);
        assert_eq!(t.links.len(), 4 * 8 + 8 * 16);
        assert!(t.is_connected());
        assert_eq!(t.clusters, 8);
        assert_eq!(t.cluster_hosts(0).len(), 16);
    }

    #[test]
    fn dumbbell_shape() {
        let t = dumbbell(
            8,
            8,
            DataRate::gbps(1),
            DataRate::gbps(10),
            Time::from_micros(50),
        );
        assert_eq!(t.host_count(), 16);
        assert_eq!(t.links.len(), 17);
        assert!(t.is_connected());
        // Bottleneck is the only 10G link.
        let fat: Vec<_> = t
            .links
            .iter()
            .filter(|l| l.rate == DataRate::gbps(10))
            .collect();
        assert_eq!(fat.len(), 1);
        assert_eq!((fat[0].a, fat[0].b), (0, 1));
    }

    #[test]
    fn rate_and_delay_rescaling() {
        let t = spine_leaf(2, 2, 2, DataRate::gbps(10), Time::from_micros(3))
            .with_rate(DataRate::mbps(100))
            .with_delay(Time::from_micros(500));
        assert!(t
            .links
            .iter()
            .all(|l| l.rate == DataRate::mbps(100) && l.delay == Time::from_micros(500)));
    }

    #[test]
    fn host_link_delay_override() {
        let t = spine_leaf(2, 2, 2, DataRate::gbps(10), Time::from_micros(3))
            .with_host_link_delay(Time::ZERO);
        for l in &t.links {
            let host_link = t.nodes[l.a] == NodeKind::Host || t.nodes[l.b] == NodeKind::Host;
            assert_eq!(l.delay == Time::ZERO, host_link);
        }
    }
}
