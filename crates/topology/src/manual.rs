//! Static manual partition schemes for the PDES baselines.
//!
//! Adapting a DES model to classic PDES requires hand-writing one of these
//! per topology (the paper's §3.1 and Table 1). Each function returns a
//! dense node→LP assignment consumable by
//! [`PartitionMode::Manual`](unison_core::PartitionMode).

use crate::{NodeKind, Topology};

/// Fig. 3's symmetric fat-tree partition: each pod is one LP and the core
/// layer is distributed round-robin over pods. Works for any topology with
/// cluster labels (BCube0 groups, spine-leaf leaves, ...), since the
/// builders label core/spine switches round-robin already.
pub fn by_cluster(topo: &Topology) -> Vec<u32> {
    topo.cluster_of.clone()
}

/// Groups clusters into `lps` LPs of consecutive clusters (used when the
/// hardware has fewer slots than clusters, §3.1's re-partition scenario).
pub fn by_cluster_group(topo: &Topology, lps: u32) -> Vec<u32> {
    assert!(lps >= 1);
    let lps = lps.min(topo.clusters.max(1));
    let per = topo.clusters.div_ceil(lps);
    topo.cluster_of
        .iter()
        .map(|&c| (c / per).min(lps - 1))
        .collect()
}

/// The paper's torus partition: split the node-id range `[0, n)` into `lps`
/// equal sub-arrays.
pub fn by_id_range(topo: &Topology, lps: u32) -> Vec<u32> {
    assert!(lps >= 1);
    let n = topo.node_count() as u32;
    let lps = lps.min(n.max(1));
    let per = n.div_ceil(lps);
    (0..n).map(|i| (i / per).min(lps - 1)).collect()
}

/// A deliberately coarse two-way split for the dumbbell (Fig. 12b's
/// "coarse" scheme): sender side vs receiver side, cutting only the
/// bottleneck link.
pub fn dumbbell_halves(topo: &Topology) -> Vec<u32> {
    topo.cluster_of.iter().map(|&c| c.min(1)).collect()
}

/// One LP per node (the finest granularity; Fig. 12a's right end).
pub fn per_node(topo: &Topology) -> Vec<u32> {
    (0..topo.node_count() as u32).collect()
}

/// Sanity helper: number of hosts per LP of an assignment, used by tests
/// and by the Table 1 harness to report balance.
pub fn host_balance(topo: &Topology, assignment: &[u32]) -> Vec<usize> {
    let lps = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let mut counts = vec![0usize; lps as usize];
    for (i, kind) in topo.nodes.iter().enumerate() {
        if *kind == NodeKind::Host {
            counts[assignment[i] as usize] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fat_tree, torus2d};
    use unison_core::{DataRate, Time};

    #[test]
    fn fat_tree_pod_partition_is_balanced() {
        let t = fat_tree(4);
        let a = by_cluster(&t);
        let balance = host_balance(&t, &a);
        assert_eq!(balance, vec![4, 4, 4, 4]);
        // Dense LP ids.
        assert_eq!(a.iter().copied().max(), Some(3));
    }

    #[test]
    fn cluster_grouping_halves() {
        let t = fat_tree(4);
        let a = by_cluster_group(&t, 2);
        let balance = host_balance(&t, &a);
        assert_eq!(balance, vec![8, 8]);
    }

    #[test]
    fn torus_range_partition() {
        let t = torus2d(12, 12, DataRate::gbps(10), Time::from_micros(30));
        let a = by_id_range(&t, 4);
        let mut counts = vec![0usize; 4];
        for &lp in &a {
            counts[lp as usize] += 1;
        }
        assert_eq!(counts, vec![36, 36, 36, 36]);
    }

    #[test]
    fn per_node_is_identity() {
        let t = fat_tree(4);
        let a = per_node(&t);
        assert_eq!(a.len(), t.node_count());
        assert!(a.iter().enumerate().all(|(i, &l)| l == i as u32));
    }

    #[test]
    fn group_count_clamps_to_clusters() {
        let t = fat_tree(4);
        let a = by_cluster_group(&t, 100);
        assert_eq!(a.iter().copied().max(), Some(3));
    }
}
