//! Static manual partition schemes for the PDES baselines.
//!
//! Adapting a DES model to classic PDES requires hand-writing one of these
//! per topology (the paper's §3.1 and Table 1). Each function returns a
//! dense node→LP assignment consumable by
//! [`PartitionMode::Manual`](unison_core::PartitionMode).

use crate::{NodeKind, Topology};

/// Fig. 3's symmetric fat-tree partition: each pod is one LP and the core
/// layer is distributed round-robin over pods. Works for any topology with
/// cluster labels (BCube0 groups, spine-leaf leaves, ...), since the
/// builders label core/spine switches round-robin already.
pub fn by_cluster(topo: &Topology) -> Vec<u32> {
    topo.cluster_of.clone()
}

/// Groups clusters into `lps` LPs of consecutive clusters (used when the
/// hardware has fewer slots than clusters, §3.1's re-partition scenario).
pub fn by_cluster_group(topo: &Topology, lps: u32) -> Vec<u32> {
    assert!(lps >= 1);
    let lps = lps.min(topo.clusters.max(1));
    let per = topo.clusters.div_ceil(lps);
    topo.cluster_of
        .iter()
        .map(|&c| (c / per).min(lps - 1))
        .collect()
}

/// The paper's torus partition: split the node-id range `[0, n)` into `lps`
/// equal sub-arrays.
pub fn by_id_range(topo: &Topology, lps: u32) -> Vec<u32> {
    assert!(lps >= 1);
    let n = topo.node_count() as u32;
    let lps = lps.min(n.max(1));
    let per = n.div_ceil(lps);
    (0..n).map(|i| (i / per).min(lps - 1)).collect()
}

/// A deliberately coarse two-way split for the dumbbell (Fig. 12b's
/// "coarse" scheme): sender side vs receiver side, cutting only the
/// bottleneck link.
pub fn dumbbell_halves(topo: &Topology) -> Vec<u32> {
    topo.cluster_of.iter().map(|&c| c.min(1)).collect()
}

/// One LP per node (the finest granularity; Fig. 12a's right end).
pub fn per_node(topo: &Topology) -> Vec<u32> {
    (0..topo.node_count() as u32).collect()
}

/// Partition-quality helper: the fraction of topology links whose
/// endpoints share an LP. A placement-aware partitioner (e.g.
/// `PartitionPipeline` with its refine/place stages, DESIGN.md §4.5)
/// should keep this high — every cut link becomes a cross-LP channel
/// whose delay bounds the lookahead window. Returns 1.0 for a linkless
/// topology (nothing is cut).
pub fn intra_lp_link_share(topo: &Topology, assignment: &[u32]) -> f64 {
    if topo.links.is_empty() {
        return 1.0;
    }
    let intra = topo
        .links
        .iter()
        .filter(|l| assignment[l.a] == assignment[l.b])
        .count();
    intra as f64 / topo.links.len() as f64
}

/// Sanity helper: number of hosts per LP of an assignment, used by tests
/// and by the Table 1 harness to report balance.
pub fn host_balance(topo: &Topology, assignment: &[u32]) -> Vec<usize> {
    let lps = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let mut counts = vec![0usize; lps as usize];
    for (i, kind) in topo.nodes.iter().enumerate() {
        if *kind == NodeKind::Host {
            counts[assignment[i] as usize] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fat_tree, torus2d};
    use unison_core::{DataRate, Time};

    #[test]
    fn fat_tree_pod_partition_is_balanced() {
        let t = fat_tree(4);
        let a = by_cluster(&t);
        let balance = host_balance(&t, &a);
        assert_eq!(balance, vec![4, 4, 4, 4]);
        // Dense LP ids.
        assert_eq!(a.iter().copied().max(), Some(3));
    }

    #[test]
    fn cluster_grouping_halves() {
        let t = fat_tree(4);
        let a = by_cluster_group(&t, 2);
        let balance = host_balance(&t, &a);
        assert_eq!(balance, vec![8, 8]);
    }

    #[test]
    fn torus_range_partition() {
        let t = torus2d(12, 12, DataRate::gbps(10), Time::from_micros(30));
        let a = by_id_range(&t, 4);
        let mut counts = vec![0usize; 4];
        for &lp in &a {
            counts[lp as usize] += 1;
        }
        assert_eq!(counts, vec![36, 36, 36, 36]);
    }

    #[test]
    fn per_node_is_identity() {
        let t = fat_tree(4);
        let a = per_node(&t);
        assert_eq!(a.len(), t.node_count());
        assert!(a.iter().enumerate().all(|(i, &l)| l == i as u32));
    }

    #[test]
    fn link_locality_brackets() {
        let t = fat_tree(4);
        // One LP holds everything: no link is cut.
        let single = vec![0u32; t.node_count()];
        assert_eq!(intra_lp_link_share(&t, &single), 1.0);
        // One LP per node: every link is cut.
        assert_eq!(intra_lp_link_share(&t, &per_node(&t)), 0.0);
        // The pod partition keeps host↔edge↔aggregation links internal and
        // cuts only the aggregation↔core layer: strictly between.
        let pods = intra_lp_link_share(&t, &by_cluster(&t));
        assert!(
            pods > 0.0 && pods < 1.0,
            "pod locality {pods} not in (0, 1)"
        );
        // Coarsening pods into 2 LPs can only keep more links internal.
        assert!(intra_lp_link_share(&t, &by_cluster_group(&t, 2)) >= pods);
    }

    #[test]
    fn group_count_clamps_to_clusters() {
        let t = fat_tree(4);
        let a = by_cluster_group(&t, 100);
        assert_eq!(a.iter().copied().max(), Some(3));
    }
}
