//! Fat-tree builders.
//!
//! [`fat_tree`] builds the classic k-ary fat-tree of Al-Fares et al. (k
//! pods, each with k/2 edge and k/2 aggregation switches, (k/2)² cores,
//! k³/4 hosts). [`fat_tree_clusters`] builds the paper's "cluster"
//! parameterization (Fig. 1 uses 48–144 clusters of 16 hosts; the
//! DeepQueueNet comparison uses 4–16 clusters of 4–8 hosts), a generalized
//! fat-tree described by [`FatTreeShape`].

use unison_core::{DataRate, Time};

use crate::{NodeKind, TopoLink, Topology};

/// Shape of a generalized fat-tree.
///
/// Every pod (cluster) has `racks_per_pod` edge switches with
/// `hosts_per_rack` hosts each, and `aggs_per_pod` aggregation switches
/// fully meshed with the pod's edges. Aggregation switch `j` of every pod
/// connects to the `cores_per_agg` core switches numbered
/// `j * cores_per_agg ..`, giving `aggs_per_pod * cores_per_agg` cores.
#[derive(Clone, Copy, Debug)]
pub struct FatTreeShape {
    /// Number of pods (clusters).
    pub pods: usize,
    /// Edge switches per pod.
    pub racks_per_pod: usize,
    /// Hosts per edge switch.
    pub hosts_per_rack: usize,
    /// Aggregation switches per pod.
    pub aggs_per_pod: usize,
    /// Core switches attached to each aggregation index.
    pub cores_per_agg: usize,
    /// Link bandwidth (uniform).
    pub rate: DataRate,
    /// Link delay (uniform).
    pub delay: Time,
}

impl FatTreeShape {
    /// The classic k-ary fat-tree shape.
    pub fn k_ary(k: usize, rate: DataRate, delay: Time) -> Self {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "k-ary fat-tree needs even k >= 2"
        );
        FatTreeShape {
            pods: k,
            racks_per_pod: k / 2,
            hosts_per_rack: k / 2,
            aggs_per_pod: k / 2,
            cores_per_agg: k / 2,
            rate,
            delay,
        }
    }

    /// Total host count.
    pub fn host_count(&self) -> usize {
        self.pods * self.racks_per_pod * self.hosts_per_rack
    }

    /// Total core switch count.
    pub fn core_count(&self) -> usize {
        self.aggs_per_pod * self.cores_per_agg
    }

    /// Builds the topology.
    ///
    /// Node layout: cores, then per pod (aggs, edges, hosts). Every node of
    /// pod `p` gets cluster label `p`; core `c` gets label
    /// `c % pods` (the round-robin distribution of the core layer used by
    /// the static partition of Fig. 3).
    pub fn build(&self) -> Topology {
        let mut nodes = Vec::new();
        let mut cluster_of = Vec::new();
        let mut links = Vec::new();
        let cores = self.core_count();
        for c in 0..cores {
            nodes.push(NodeKind::Switch);
            cluster_of.push((c % self.pods) as u32);
        }
        let link = |a: usize, b: usize| TopoLink {
            a,
            b,
            rate: self.rate,
            delay: self.delay,
        };
        for p in 0..self.pods {
            let agg0 = nodes.len();
            for _ in 0..self.aggs_per_pod {
                nodes.push(NodeKind::Switch);
                cluster_of.push(p as u32);
            }
            let edge0 = nodes.len();
            for _ in 0..self.racks_per_pod {
                nodes.push(NodeKind::Switch);
                cluster_of.push(p as u32);
            }
            // Aggregation <-> core.
            for j in 0..self.aggs_per_pod {
                for c in 0..self.cores_per_agg {
                    links.push(link(agg0 + j, j * self.cores_per_agg + c));
                }
            }
            // Edge <-> aggregation full mesh within the pod.
            for e in 0..self.racks_per_pod {
                for j in 0..self.aggs_per_pod {
                    links.push(link(edge0 + e, agg0 + j));
                }
            }
            // Hosts.
            for e in 0..self.racks_per_pod {
                for _ in 0..self.hosts_per_rack {
                    let h = nodes.len();
                    nodes.push(NodeKind::Host);
                    cluster_of.push(p as u32);
                    links.push(link(edge0 + e, h));
                }
            }
        }
        Topology {
            name: format!("fat-tree(pods={},hosts={})", self.pods, self.host_count()),
            nodes,
            links,
            cluster_of,
            clusters: self.pods as u32,
        }
    }
}

/// The classic k-ary fat-tree with 100 Gbps links and 3 µs delays (the
/// paper's default DCN configuration); rescale with
/// [`Topology::with_rate`]/[`Topology::with_delay`].
pub fn fat_tree(k: usize) -> Topology {
    FatTreeShape::k_ary(k, DataRate::gbps(100), Time::from_micros(3)).build()
}

/// A cluster fat-tree with `clusters` pods of `hosts_per_cluster` hosts
/// (hosts are placed 4 per rack, or fewer for tiny clusters), matching the
/// paper's Fig. 1 and DeepQueueNet-comparison configurations.
pub fn fat_tree_clusters(clusters: usize, hosts_per_cluster: usize) -> Topology {
    // At least two racks per cluster so the core layer has several
    // switches (a single shared core would be an artificial hot spot).
    let racks = hosts_per_cluster.div_ceil(4).max(2);
    let hosts_per_rack = hosts_per_cluster.div_ceil(racks).max(1);
    FatTreeShape {
        pods: clusters,
        racks_per_pod: racks,
        hosts_per_rack,
        aggs_per_pod: racks,
        cores_per_agg: racks,
        rate: DataRate::gbps(100),
        delay: Time::from_micros(3),
    }
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k4_fat_tree_counts() {
        let t = fat_tree(4);
        // 4 cores, 4 pods x (2 agg + 2 edge + 4 hosts).
        assert_eq!(t.node_count(), 4 + 4 * (2 + 2 + 4));
        assert_eq!(t.host_count(), 16);
        // Links: agg-core 4*2*2=16, edge-agg 4*2*2=16, host 16.
        assert_eq!(t.links.len(), 48);
        assert!(t.is_connected());
        assert_eq!(t.clusters, 4);
    }

    #[test]
    fn k8_fat_tree_counts() {
        let t = fat_tree(8);
        assert_eq!(t.host_count(), 128);
        assert_eq!(t.node_count(), 16 + 8 * (4 + 4) + 128);
        assert!(t.is_connected());
    }

    #[test]
    fn cluster_fat_tree_shapes() {
        // Fat-tree 16: 4 clusters x 4 hosts = the k=4 fat-tree host count.
        let t16 = fat_tree_clusters(4, 4);
        assert_eq!(t16.host_count(), 16);
        assert_eq!(t16.clusters, 4);
        // Fat-tree 128: 16 clusters x 8 hosts.
        let t128 = fat_tree_clusters(16, 8);
        assert_eq!(t128.host_count(), 128);
        assert_eq!(t128.clusters, 16);
        assert!(t128.is_connected());
        // Fig. 1 scale: 48 clusters x 16 hosts.
        let t = fat_tree_clusters(48, 16);
        assert_eq!(t.host_count(), 768);
        assert!(t.is_connected());
    }

    #[test]
    fn every_cluster_has_its_hosts() {
        let t = fat_tree(4);
        for c in 0..4 {
            assert_eq!(t.cluster_hosts(c).len(), 4, "cluster {c}");
        }
    }

    #[test]
    fn core_switches_round_robin_clusters() {
        let t = fat_tree(4);
        // First 4 nodes are cores with labels 0..4.
        assert_eq!(&t.cluster_of[0..4], &[0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn odd_k_rejected() {
        FatTreeShape::k_ary(5, DataRate::gbps(1), Time::ZERO);
    }
}
