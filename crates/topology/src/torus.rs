//! 2-D torus builder.
//!
//! Every node of a torus is both a router and a traffic endpoint (direct
//! network). Following the paper's convention, the node at row `i`, column
//! `j` of an `rows × cols` torus has id `i + rows * j`, and the manual
//! partition for the baselines splits the id range into equal sub-arrays.

use unison_core::{DataRate, Time};

use crate::{NodeKind, TopoLink, Topology};

/// Builds an `rows × cols` wrap-around 2-D torus. All nodes are hosts (they
/// route *and* terminate traffic). Cluster label = column (`j`), giving
/// `cols` natural clusters.
pub fn torus2d(rows: usize, cols: usize, rate: DataRate, delay: Time) -> Topology {
    assert!(rows >= 2 && cols >= 2, "torus needs at least 2x2");
    let id = |i: usize, j: usize| i + rows * j;
    let n = rows * cols;
    let nodes = vec![NodeKind::Host; n];
    let mut cluster_of = vec![0u32; n];
    for j in 0..cols {
        for i in 0..rows {
            cluster_of[id(i, j)] = j as u32;
        }
    }
    let mut links = Vec::new();
    for j in 0..cols {
        for i in 0..rows {
            let right = id(i, (j + 1) % cols);
            let down = id((i + 1) % rows, j);
            // Avoid duplicate links on 2-wide dimensions.
            if cols > 2 || j == 0 {
                links.push(TopoLink {
                    a: id(i, j),
                    b: right,
                    rate,
                    delay,
                });
            }
            if rows > 2 || i == 0 {
                links.push(TopoLink {
                    a: id(i, j),
                    b: down,
                    rate,
                    delay,
                });
            }
        }
    }
    Topology {
        name: format!("torus({rows}x{cols})"),
        nodes,
        links,
        cluster_of,
        clusters: cols as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> (DataRate, Time) {
        (DataRate::gbps(10), Time::from_micros(30))
    }

    #[test]
    fn torus_4x4_degree() {
        let (r, d) = cfg();
        let t = torus2d(4, 4, r, d);
        assert_eq!(t.node_count(), 16);
        assert_eq!(t.links.len(), 32); // 2 links per node
        let mut degree = [0usize; 16];
        for l in &t.links {
            degree[l.a] += 1;
            degree[l.b] += 1;
        }
        assert!(degree.iter().all(|&d| d == 4));
        assert!(t.is_connected());
    }

    #[test]
    fn torus_12x12_counts() {
        let (r, d) = cfg();
        let t = torus2d(12, 12, r, d);
        assert_eq!(t.node_count(), 144);
        assert_eq!(t.links.len(), 288);
        assert!(t.is_connected());
    }

    #[test]
    fn id_convention_matches_paper() {
        let (r, d) = cfg();
        let t = torus2d(48, 48, r, d);
        // Row i, column j -> i + 48 j; cluster = column.
        assert_eq!(t.cluster_of[5 + 48 * 7], 7);
        assert_eq!(t.node_count(), 2304);
    }

    #[test]
    fn two_wide_torus_has_no_duplicate_links() {
        let (r, d) = cfg();
        let t = torus2d(2, 2, r, d);
        let mut seen = std::collections::HashSet::new();
        for l in &t.links {
            let key = (l.a.min(l.b), l.a.max(l.b));
            assert!(seen.insert(key), "duplicate link {key:?}");
        }
        assert!(t.is_connected());
    }
}
