//! Wide-area network topologies.
//!
//! The paper's Fig. 10c uses the GEANT and ChinaNet graphs from the
//! Internet Topology Zoo. The Zoo's data files are not redistributable
//! here, so these builders embed *representative* versions of the two
//! networks — same node scale, same irregular mesh-plus-tail structure,
//! geographic propagation delays — which is what the experiment actually
//! exercises (no symmetric partition exists; link delays are heterogeneous;
//! RIP routing converges over them). Every router gets one attached host
//! (low-delay access link) to terminate traffic.

use unison_core::{DataRate, Time};

use crate::{NodeKind, TopoLink, Topology};

/// Builds a WAN from `(a, b, delay_us)` router edges, attaching one host per
/// router. Cluster label = router id.
fn wan_from_edges(
    name: &str,
    routers: usize,
    edges: &[(usize, usize, u64)],
    backbone_rate: DataRate,
) -> Topology {
    let mut nodes = vec![NodeKind::Switch; routers];
    let mut cluster_of: Vec<u32> = (0..routers as u32).collect();
    let mut links: Vec<TopoLink> = edges
        .iter()
        .map(|&(a, b, us)| {
            assert!(a < routers && b < routers, "edge endpoint out of range");
            TopoLink {
                a,
                b,
                rate: backbone_rate,
                delay: Time::from_micros(us),
            }
        })
        .collect();
    for r in 0..routers {
        let h = nodes.len();
        nodes.push(NodeKind::Host);
        cluster_of.push(r as u32);
        links.push(TopoLink {
            a: r,
            b: h,
            rate: backbone_rate,
            delay: Time::from_micros(10),
        });
    }
    Topology {
        name: name.into(),
        nodes,
        links,
        cluster_of,
        clusters: routers as u32,
    }
}

/// A representative GEANT (European research backbone): 40 routers, 61
/// links, 1–17 ms propagation delays.
pub fn geant() -> Topology {
    // Router indices stand for PoPs (0 London, 1 Paris, 2 Amsterdam,
    // 3 Frankfurt, 4 Geneva, 5 Milan, 6 Vienna, 7 Prague, 8 Madrid,
    // 9 Lisbon, 10 Dublin, 11 Brussels, 12 Copenhagen, 13 Stockholm,
    // 14 Oslo, 15 Helsinki, 16 Tallinn, 17 Riga, 18 Kaunas, 19 Warsaw,
    // 20 Berlin?? (Hamburg), 21 Zurich, 22 Budapest, 23 Bratislava,
    // 24 Ljubljana, 25 Zagreb, 26 Rome, 27 Athens, 28 Sofia, 29 Bucharest,
    // 30 Istanbul, 31 Nicosia, 32 Malta, 33 Barcelona, 34 Marseille,
    // 35 Luxembourg, 36 Bern, 37 Belgrade, 38 Thessaloniki, 39 Dubrovnik.
    let edges: &[(usize, usize, u64)] = &[
        (0, 1, 1700),
        (0, 2, 1800),
        (0, 10, 2300),
        (0, 11, 1600),
        (1, 4, 2100),
        (1, 8, 5200),
        (1, 34, 3300),
        (1, 35, 1500),
        (2, 3, 1800),
        (2, 12, 3100),
        (2, 11, 900),
        (3, 7, 2100),
        (3, 6, 2900),
        (3, 21, 1500),
        (3, 20, 1900),
        (3, 35, 1000),
        (4, 5, 1400),
        (4, 21, 1100),
        (4, 36, 800),
        (5, 26, 2400),
        (5, 24, 1900),
        (6, 7, 1300),
        (6, 22, 1100),
        (6, 23, 300),
        (6, 24, 1400),
        (7, 19, 2500),
        (8, 9, 2500),
        (8, 33, 2500),
        (9, 0, 7900),
        (10, 2, 3700),
        (12, 13, 2600),
        (12, 20, 1500),
        (13, 14, 2100),
        (13, 15, 2000),
        (15, 16, 400),
        (16, 17, 1400),
        (17, 18, 1300),
        (18, 19, 2000),
        (19, 20, 2600),
        (22, 23, 900),
        (22, 29, 3200),
        (22, 37, 1600),
        (24, 25, 600),
        (25, 39, 1500),
        (26, 27, 4200),
        (26, 32, 3400),
        (27, 28, 2600),
        (27, 38, 1500),
        (27, 31, 4500),
        (28, 29, 1500),
        (29, 30, 2200),
        (30, 31, 3500),
        (33, 34, 1700),
        (34, 26, 3000),
        (35, 11, 900),
        (36, 21, 500),
        (37, 28, 1400),
        (37, 25, 1800),
        (38, 28, 1200),
        (39, 26, 2000),
        (14, 12, 2400),
    ];
    wan_from_edges("geant", 40, edges, DataRate::gbps(10))
}

/// A representative ChinaNet: 42 routers with a dense national backbone
/// mesh (Beijing/Shanghai/Guangzhou triangle) and many provincial tails.
pub fn chinanet() -> Topology {
    // 0 Beijing, 1 Shanghai, 2 Guangzhou, 3 Wuhan, 4 Chengdu, 5 Xian,
    // 6 Nanjing, 7 Hangzhou, 8 Shenyang, 9 Harbin, 10 Tianjin, 11 Jinan,
    // 12 Zhengzhou, 13 Changsha, 14 Chongqing, 15 Kunming, 16 Guiyang,
    // 17 Nanning, 18 Fuzhou, 19 Xiamen, 20 Shenzhen, 21 Hefei, 22 Nanchang,
    // 23 Taiyuan, 24 Shijiazhuang, 25 Lanzhou, 26 Xining, 27 Urumqi,
    // 28 Hohhot, 29 Changchun, 30 Dalian, 31 Qingdao, 32 Ningbo, 33 Wenzhou,
    // 34 Haikou, 35 Lhasa, 36 Yinchuan, 37 Suzhou, 38 Wuxi, 39 Dongguan,
    // 40 Foshan, 41 Zhuhai.
    let edges: &[(usize, usize, u64)] = &[
        // Backbone triangle and trunks.
        (0, 1, 5400),
        (0, 2, 9500),
        (1, 2, 6100),
        (0, 3, 5300),
        (1, 3, 3500),
        (2, 3, 4400),
        (0, 5, 4600),
        (0, 8, 2900),
        (0, 10, 600),
        (0, 24, 1400),
        (0, 28, 2100),
        (1, 6, 1400),
        (1, 7, 800),
        (1, 37, 500),
        (2, 20, 600),
        (2, 13, 2800),
        (2, 17, 2700),
        (2, 34, 2400),
        (3, 12, 2300),
        (3, 13, 1500),
        (3, 22, 1300),
        (4, 14, 1400),
        (4, 5, 3100),
        (4, 15, 2900),
        (4, 35, 6300),
        (5, 12, 2200),
        (5, 25, 3000),
        (5, 36, 2700),
        (6, 21, 700),
        (6, 38, 200),
        (7, 32, 700),
        (7, 33, 1500),
        (8, 9, 2400),
        (8, 29, 1300),
        (8, 30, 1500),
        (10, 11, 1400),
        (11, 31, 1300),
        (11, 12, 2000),
        (13, 16, 2900),
        (14, 16, 1500),
        (15, 16, 1800),
        (15, 17, 2600),
        (17, 34, 1900),
        (18, 19, 900),
        (18, 1, 3200),
        (19, 2, 2300),
        (20, 39, 300),
        (20, 41, 400),
        (21, 3, 1800),
        (22, 18, 1900),
        (23, 0, 2000),
        (23, 24, 900),
        (25, 26, 800),
        (25, 27, 7400),
        (26, 35, 5800),
        (28, 36, 2400),
        (29, 9, 1000),
        (30, 31, 1800),
        (37, 38, 200),
        (39, 40, 300),
        (40, 2, 200),
        (41, 2, 500),
    ];
    wan_from_edges("chinanet", 42, edges, DataRate::gbps(10))
}

#[cfg(test)]
mod tests {
    use super::*;
    use unison_core::{fine_grained_partition, LinkGraph, NodeId};

    #[test]
    fn geant_is_connected() {
        let t = geant();
        assert_eq!(t.node_count(), 80);
        assert_eq!(t.host_count(), 40);
        assert!(t.is_connected());
    }

    #[test]
    fn chinanet_is_connected() {
        let t = chinanet();
        assert_eq!(t.node_count(), 84);
        assert_eq!(t.host_count(), 42);
        assert!(t.is_connected());
    }

    #[test]
    fn wan_delays_are_heterogeneous() {
        for t in [geant(), chinanet()] {
            let mut delays: Vec<u64> = t.links.iter().map(|l| l.delay.as_nanos()).collect();
            delays.sort_unstable();
            delays.dedup();
            assert!(delays.len() > 10, "{}: too few distinct delays", t.name);
        }
    }

    #[test]
    fn fine_grained_partition_splits_wan() {
        // The access links (10us) fall below the median backbone delay, so
        // hosts merge with their routers while the backbone is cut.
        let t = geant();
        let mut g = LinkGraph::new(t.node_count());
        for l in &t.links {
            g.add_link(NodeId(l.a as u32), NodeId(l.b as u32), l.delay);
        }
        let p = fine_grained_partition(&g);
        assert!(p.lp_count >= 30, "lp_count = {}", p.lp_count);
        assert!((p.lp_count as usize) < t.node_count());
    }
}
