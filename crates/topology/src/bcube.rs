//! BCube builder (Guo et al., SIGCOMM '09).
//!
//! `BCube(n, levels)` has `n^levels` hosts, each with `levels` ports. Hosts
//! are addressed by `levels` base-`n` digits; the level-`l` switch with
//! index `j` connects the `n` hosts whose digits agree with `j` except at
//! digit `l`. The paper's Fig. 10b uses n = 8 with 2 levels (64 hosts);
//! each level-0 group ("BCube0") is a cluster.

use unison_core::{DataRate, Time};

use crate::{NodeKind, TopoLink, Topology};

/// Builds a BCube with `n` ports per switch and `levels` switch levels
/// (hosts = `n^levels`).
///
/// Node layout: hosts `0..n^levels`, then switches level by level. Cluster
/// label = host id / n (its BCube0 group); switches inherit the cluster of
/// their lowest-id attached host, which for level 0 is exactly the group.
///
/// # Panics
///
/// Panics unless `n >= 2` and `1 <= levels <= 8`.
pub fn bcube(n: usize, levels: usize, rate: DataRate, delay: Time) -> Topology {
    assert!(n >= 2, "BCube needs n >= 2");
    assert!((1..=8).contains(&levels), "BCube levels must be in 1..=8");
    let hosts = n.pow(levels as u32);
    let mut nodes = vec![NodeKind::Host; hosts];
    let mut cluster_of: Vec<u32> = (0..hosts).map(|h| (h / n) as u32).collect();
    let mut links = Vec::new();
    // Switches per level: n^(levels-1).
    let switches_per_level = n.pow(levels as u32 - 1);
    for level in 0..levels {
        for j in 0..switches_per_level {
            let sw = nodes.len();
            nodes.push(NodeKind::Switch);
            // The switch's first attached host: insert digit 0 at `level`.
            let stride = n.pow(level as u32);
            let high = j / stride;
            let low = j % stride;
            let first_host = high * stride * n + low;
            cluster_of.push((first_host / n) as u32);
            for d in 0..n {
                let host = high * stride * n + d * stride + low;
                debug_assert!(host < hosts);
                links.push(TopoLink {
                    a: sw,
                    b: host,
                    rate,
                    delay,
                });
            }
        }
    }
    Topology {
        name: format!("bcube(n={n},levels={levels})"),
        nodes,
        links,
        cluster_of,
        clusters: (hosts / n) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> (DataRate, Time) {
        (DataRate::gbps(10), Time::from_micros(3))
    }

    #[test]
    fn bcube_8_2_counts() {
        let (r, d) = cfg();
        let t = bcube(8, 2, r, d);
        assert_eq!(t.host_count(), 64);
        // 8 switches per level x 2 levels.
        assert_eq!(t.node_count(), 64 + 16);
        // Every switch has n=8 host links.
        assert_eq!(t.links.len(), 16 * 8);
        assert!(t.is_connected());
        assert_eq!(t.clusters, 8);
    }

    #[test]
    fn bcube_4_3_counts() {
        let (r, d) = cfg();
        let t = bcube(4, 3, r, d);
        assert_eq!(t.host_count(), 64);
        assert_eq!(t.node_count(), 64 + 3 * 16);
        assert!(t.is_connected());
    }

    #[test]
    fn every_host_has_one_port_per_level() {
        let (r, d) = cfg();
        let t = bcube(4, 2, r, d);
        let mut degree = vec![0usize; t.node_count()];
        for l in &t.links {
            degree[l.a] += 1;
            degree[l.b] += 1;
        }
        for h in t.hosts() {
            assert_eq!(degree[h], 2, "host {h}");
        }
    }

    #[test]
    fn level0_switch_serves_one_cluster() {
        let (r, d) = cfg();
        let t = bcube(8, 2, r, d);
        // Level-0 switches are nodes 64..72; their hosts must share cluster.
        for sw in 64..72 {
            let clusters: Vec<u32> = t
                .links
                .iter()
                .filter(|l| l.a == sw || l.b == sw)
                .map(|l| t.cluster_of[if l.a == sw { l.b } else { l.a }])
                .collect();
            assert!(clusters.windows(2).all(|w| w[0] == w[1]), "switch {sw}");
        }
    }
}
