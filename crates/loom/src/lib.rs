//! A minimal, dependency-free stand-in for the [loom] concurrency model
//! checker, implementing the API subset used by the unison-rs workspace.
//!
//! The build environment has no registry access, so this crate provides the
//! model-checking capability in-repo. Code written against `loom`'s API
//! (`loom::model`, `loom::sync::atomic`, `loom::cell::UnsafeCell`,
//! `loom::thread`, `loom::hint`) compiles and checks unchanged.
//!
//! # What it checks
//!
//! [`model`] runs a closure under **every thread interleaving** (up to a
//! CHESS-style preemption bound, default
//! [`model::DEFAULT_PREEMPTION_BOUND`], override with `LOOM_MAX_PREEMPTIONS`;
//! blocking switches are always fully explored). Within each execution it
//! verifies:
//!
//! - **assertions** — any panic on any managed thread fails the model and
//!   replays deterministically (the failing schedule is a decision path);
//! - **data races** — [`cell::UnsafeCell`] accesses are checked against a
//!   vector-clock happens-before relation derived from `Acquire`/`Release`
//!   atomics, spawn, and join edges; unordered conflicting accesses panic
//!   with a "data race" message;
//! - **deadlocks / lost wake-ups** — `yield_now` (and `hint::spin_loop`)
//!   park until an unobserved atomic write lands, so a spin loop that can
//!   never succeed is reported as a deadlock.
//!
//! # What it does not check
//!
//! Atomic *values* are sequentially consistent: the checker explores every
//! interleaving of accesses but not weak-memory value reorderings (a
//! `Relaxed` load here always returns the latest store). Synchronization
//! metadata, however, follows the C11 rules — a `Relaxed` store publishes
//! nothing and breaks the release sequence — so missing-edge bugs are still
//! caught as data races on the protected data; they are just never allowed
//! to produce stale values silently.
//!
//! [loom]: https://github.com/tokio-rs/loom

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cell;
pub mod hint;
pub mod model;
mod rt;
pub mod sync;
pub mod thread;

pub use model::{model, Builder};
