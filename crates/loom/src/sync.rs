//! `loom::sync` — model-checked atomics plus a re-export of `std::sync::Arc`.

pub use std::sync::Arc;

pub mod atomic {
    //! Atomic types with sequentially-consistent *values* and vector-clock
    //! *synchronization*: every access is a visible operation (a schedule
    //! point), loads always observe the latest store, and the happens-before
    //! edges induced by `Acquire`/`Release` orderings are tracked exactly so
    //! that [`crate::cell::UnsafeCell`] can detect data races.

    pub use std::sync::atomic::Ordering;

    use crate::rt::{register_atomic, visible_op, with_rt};

    fn is_acquire(o: Ordering) -> bool {
        matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    fn is_release(o: Ordering) -> bool {
        matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    /// Untyped core shared by the typed wrappers; values are widened to u64.
    #[derive(Debug)]
    struct AtomicCore {
        idx: usize,
    }

    impl AtomicCore {
        fn new(value: u64) -> Self {
            AtomicCore {
                idx: register_atomic(value),
            }
        }

        fn load(&self, order: Ordering) -> u64 {
            with_rt(|rt, tid| {
                visible_op(rt, tid, |ex, tid| {
                    if is_acquire(order) {
                        let sync = ex.atomics[self.idx].sync.clone();
                        ex.threads[tid].vc.join(&sync);
                    }
                    Ok(ex.atomics[self.idx].value)
                })
            })
        }

        fn store(&self, value: u64, order: Ordering) {
            with_rt(|rt, tid| {
                visible_op(rt, tid, |ex, tid| {
                    if is_release(order) {
                        let vc = ex.threads[tid].vc.clone();
                        ex.atomics[self.idx].sync = vc;
                    } else {
                        // A relaxed store starts a new (empty) release
                        // sequence: later acquire loads of this value
                        // synchronize with nothing.
                        ex.atomics[self.idx].sync.clear();
                    }
                    ex.atomics[self.idx].value = value;
                    ex.record_write();
                    Ok(())
                })
            })
        }

        /// Read-modify-write. RMWs continue the release sequence of the
        /// store they read from, so the existing `sync` clock is kept and —
        /// when the RMW itself is a release — joined with this thread's.
        fn rmw(&self, order: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
            with_rt(|rt, tid| {
                visible_op(rt, tid, |ex, tid| {
                    let old = ex.atomics[self.idx].value;
                    if is_acquire(order) {
                        let sync = ex.atomics[self.idx].sync.clone();
                        ex.threads[tid].vc.join(&sync);
                    }
                    if is_release(order) {
                        let vc = ex.threads[tid].vc.clone();
                        ex.atomics[self.idx].sync.join(&vc);
                    }
                    ex.atomics[self.idx].value = f(old);
                    ex.record_write();
                    Ok(old)
                })
            })
        }

        fn compare_exchange(
            &self,
            current: u64,
            new: u64,
            success: Ordering,
            failure: Ordering,
        ) -> Result<u64, u64> {
            with_rt(|rt, tid| {
                visible_op(rt, tid, |ex, tid| {
                    let old = ex.atomics[self.idx].value;
                    if old == current {
                        if is_acquire(success) {
                            let sync = ex.atomics[self.idx].sync.clone();
                            ex.threads[tid].vc.join(&sync);
                        }
                        if is_release(success) {
                            let vc = ex.threads[tid].vc.clone();
                            ex.atomics[self.idx].sync.join(&vc);
                        }
                        ex.atomics[self.idx].value = new;
                        ex.record_write();
                        Ok(Ok(old))
                    } else {
                        if is_acquire(failure) {
                            let sync = ex.atomics[self.idx].sync.clone();
                            ex.threads[tid].vc.join(&sync);
                        }
                        Ok(Err(old))
                    }
                })
            })
        }
    }

    macro_rules! atomic_int {
        ($name:ident, $t:ty) => {
            /// Model-checked atomic integer (see module docs).
            #[derive(Debug)]
            pub struct $name {
                core: AtomicCore,
            }

            impl $name {
                pub fn new(v: $t) -> Self {
                    $name {
                        core: AtomicCore::new(v as u64),
                    }
                }

                pub fn load(&self, order: Ordering) -> $t {
                    self.core.load(order) as $t
                }

                pub fn store(&self, v: $t, order: Ordering) {
                    self.core.store(v as u64, order)
                }

                pub fn swap(&self, v: $t, order: Ordering) -> $t {
                    self.core.rmw(order, |_| v as u64) as $t
                }

                pub fn compare_exchange(
                    &self,
                    current: $t,
                    new: $t,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$t, $t> {
                    self.core
                        .compare_exchange(current as u64, new as u64, success, failure)
                        .map(|v| v as $t)
                        .map_err(|v| v as $t)
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $t,
                    new: $t,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$t, $t> {
                    // The model never fails spuriously.
                    self.compare_exchange(current, new, success, failure)
                }

                pub fn fetch_add(&self, v: $t, order: Ordering) -> $t {
                    self.core
                        .rmw(order, |old| (old as $t).wrapping_add(v) as u64) as $t
                }

                pub fn fetch_sub(&self, v: $t, order: Ordering) -> $t {
                    self.core
                        .rmw(order, |old| (old as $t).wrapping_sub(v) as u64) as $t
                }

                pub fn fetch_and(&self, v: $t, order: Ordering) -> $t {
                    self.core.rmw(order, |old| (old as $t & v) as u64) as $t
                }

                pub fn fetch_or(&self, v: $t, order: Ordering) -> $t {
                    self.core.rmw(order, |old| (old as $t | v) as u64) as $t
                }

                pub fn fetch_xor(&self, v: $t, order: Ordering) -> $t {
                    self.core.rmw(order, |old| (old as $t ^ v) as u64) as $t
                }

                pub fn fetch_max(&self, v: $t, order: Ordering) -> $t {
                    self.core.rmw(order, |old| (old as $t).max(v) as u64) as $t
                }

                pub fn fetch_min(&self, v: $t, order: Ordering) -> $t {
                    self.core.rmw(order, |old| (old as $t).min(v) as u64) as $t
                }
            }
        };
    }

    atomic_int!(AtomicU32, u32);
    atomic_int!(AtomicU64, u64);
    atomic_int!(AtomicUsize, usize);

    /// Model-checked atomic boolean (see module docs).
    #[derive(Debug)]
    pub struct AtomicBool {
        core: AtomicCore,
    }

    impl AtomicBool {
        pub fn new(v: bool) -> Self {
            AtomicBool {
                core: AtomicCore::new(v as u64),
            }
        }

        pub fn load(&self, order: Ordering) -> bool {
            self.core.load(order) != 0
        }

        pub fn store(&self, v: bool, order: Ordering) {
            self.core.store(v as u64, order)
        }

        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            self.core.rmw(order, |_| v as u64) != 0
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            self.core
                .compare_exchange(current as u64, new as u64, success, failure)
                .map(|v| v != 0)
                .map_err(|v| v != 0)
        }

        pub fn compare_exchange_weak(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            self.compare_exchange(current, new, success, failure)
        }

        pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
            self.core.rmw(order, |old| old | v as u64) != 0
        }

        pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
            self.core.rmw(order, |old| old & v as u64) != 0
        }
    }
}
