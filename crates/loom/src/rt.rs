//! The execution runtime: one logical schedule at a time.
//!
//! All managed threads are real OS threads, but only one is ever *active*:
//! every visible operation (atomic access, cell access, spawn, join, yield)
//! runs while holding the global execution lock and ends by picking the next
//! active thread. The sequence of picks is the *schedule*; the explorer in
//! [`crate::model`] drives a depth-first search over all schedules (up to
//! the preemption bound).
//!
//! Happens-before is tracked with fixed-size vector clocks:
//!
//! - every thread carries a clock, bumped after each visible op;
//! - an atomic variable carries a `sync` clock — the clock published by the
//!   release sequence writing its current value. `Release` stores replace
//!   it, `Relaxed` stores clear it (breaking the release sequence), RMWs
//!   join into it (continuing the sequence), and `Acquire` loads join it
//!   into the reader's clock;
//! - a data cell carries last-writer / last-readers clocks, checked on each
//!   access: an access racing with one not ordered before it fails the
//!   execution with a "data race" panic. Overlap flags additionally catch
//!   accesses whose dynamic extents physically overlap.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Maximum number of logical threads per execution (driver included).
pub(crate) const MAX_THREADS: usize = 8;
/// Per-execution visible-op budget: a backstop against unbounded spins.
const MAX_STEPS: u64 = 1_000_000;

/// Fixed-width vector clock.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock([u32; MAX_THREADS]);

impl VClock {
    pub fn new() -> Self {
        VClock([0; MAX_THREADS])
    }

    pub fn bump(&mut self, tid: usize) {
        self.0[tid] += 1;
    }

    pub fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Pointwise ≤: "everything recorded in `self` happens-before `other`".
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    pub fn clear(&mut self) {
        self.0 = [0; MAX_THREADS];
    }

    pub fn get(&self, tid: usize) -> u32 {
        self.0[tid]
    }

    pub fn raise(&mut self, tid: usize, v: u32) {
        self.0[tid] = self.0[tid].max(v);
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum State {
    Ready,
    /// Parked in `yield_now` until any atomic write lands.
    BlockedOnWrite,
    /// Parked in `JoinHandle::join` until the target finishes.
    BlockedOnJoin(usize),
    Finished,
}

pub(crate) struct ThreadInfo {
    pub state: State,
    pub vc: VClock,
    /// Global write counter observed at this thread's last yield (or at
    /// spawn) — `yield_now` only parks when nothing has been written since.
    /// Plain loads must NOT update this: a spin loop reads several atomics
    /// per iteration, and counting a later load of variable B as having
    /// "observed" an earlier write to variable A would park the loop with a
    /// stale A in hand — a lost wake-up the real spin loop cannot exhibit
    /// (it re-reads A on the next iteration). Parking is sound exactly when
    /// no write landed since the previous yield: then every load in the
    /// iteration saw the freshest value and re-looping changes nothing.
    pub seen_writes: u64,
    /// Set when the thread finishes; joined into the joiner's clock.
    pub final_vc: Option<VClock>,
}

pub(crate) struct AtomicVar {
    pub value: u64,
    /// Clock published by the release sequence that wrote `value`.
    pub sync: VClock,
}

#[derive(Default)]
pub(crate) struct CellVar {
    pub write_vc: VClock,
    pub read_vc: VClock,
    /// Dynamic-extent overlap guards.
    pub readers: usize,
    pub writer: bool,
}

/// One schedule decision: which of `options` equally-ready threads ran.
#[derive(Clone, Debug)]
pub(crate) struct Choice {
    pub index: usize,
    pub options: usize,
}

pub(crate) struct Execution {
    pub threads: Vec<ThreadInfo>,
    pub atomics: Vec<AtomicVar>,
    pub cells: Vec<CellVar>,
    pub active: usize,
    pub write_seq: u64,
    /// Replayed prefix + newly recorded decisions (the DFS path).
    pub path: Vec<Choice>,
    pub depth: usize,
    pub preemptions: usize,
    pub bound: usize,
    pub steps: u64,
    /// First failure (deadlock, race, panic); echoed by every thread.
    pub failed: Option<String>,
}

impl Execution {
    fn new(path: Vec<Choice>, bound: usize) -> Self {
        let mut main = ThreadInfo {
            state: State::Ready,
            vc: VClock::new(),
            seen_writes: 0,
            final_vc: None,
        };
        main.vc.bump(0);
        Execution {
            threads: vec![main],
            atomics: Vec::new(),
            cells: Vec::new(),
            active: 0,
            write_seq: 0,
            path,
            depth: 0,
            preemptions: 0,
            bound,
            steps: 0,
            failed: None,
        }
    }

    /// Bumps the write counter and wakes every thread parked in `yield_now`.
    pub fn record_write(&mut self) {
        self.write_seq += 1;
        for t in &mut self.threads {
            if t.state == State::BlockedOnWrite {
                t.state = State::Ready;
            }
        }
    }
}

pub(crate) struct Rt {
    pub ex: Mutex<Execution>,
    pub cond: Condvar,
}

impl Rt {
    pub fn new(path: Vec<Choice>, bound: usize) -> Self {
        Rt {
            ex: Mutex::new(Execution::new(path, bound)),
            cond: Condvar::new(),
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn set_current(rt: &Arc<Rt>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(rt), tid)));
}

pub(crate) fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Runs `f` with the calling thread's runtime handle, or panics when called
/// outside `loom::model`.
pub(crate) fn with_rt<R>(f: impl FnOnce(&Arc<Rt>, usize) -> R) -> R {
    let cur = CURRENT.with(|c| c.borrow().clone());
    match cur {
        Some((rt, tid)) => f(&rt, tid),
        None => panic!(
            "loom primitives may only be used inside a loom::model closure \
             (thread not managed by the model checker)"
        ),
    }
}

/// Blocks until it is `tid`'s turn (echoing any recorded failure).
pub(crate) fn wait_turn<'a>(rt: &'a Rt, tid: usize) -> MutexGuard<'a, Execution> {
    let mut ex = rt.ex.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if let Some(msg) = &ex.failed {
            let msg = msg.clone();
            drop(ex);
            panic!("{msg}");
        }
        if ex.active == tid {
            return ex;
        }
        ex = rt.cond.wait(ex).unwrap_or_else(|e| e.into_inner());
    }
}

/// Records `msg` as the execution's failure, wakes everyone, and panics.
pub(crate) fn fail<R>(rt: &Rt, mut ex: MutexGuard<'_, Execution>, msg: String) -> R {
    if ex.failed.is_none() {
        ex.failed = Some(msg);
    }
    let msg = ex.failed.clone().expect("just set");
    rt.cond.notify_all();
    drop(ex);
    panic!("{msg}")
}

/// Executes one visible operation on the active thread: waits for the turn,
/// applies `f` under the lock, bumps the thread clock, schedules the next
/// thread, and wakes waiters. `f` returning `Err` fails the whole execution.
pub(crate) fn visible_op<R>(
    rt: &Arc<Rt>,
    tid: usize,
    f: impl FnOnce(&mut Execution, usize) -> Result<R, String>,
) -> R {
    let mut ex = wait_turn(rt, tid);
    ex.steps += 1;
    if ex.steps > MAX_STEPS {
        return fail(
            rt,
            ex,
            format!("loom: execution exceeded {MAX_STEPS} visible operations"),
        );
    }
    match f(&mut ex, tid) {
        Ok(r) => {
            ex.threads[tid].vc.bump(tid);
            if let Err(msg) = pick_next(&mut ex) {
                return fail(rt, ex, msg);
            }
            rt.cond.notify_all();
            r
        }
        Err(msg) => fail(rt, ex, msg),
    }
}

/// Chooses the next active thread. Replays the DFS path where recorded,
/// otherwise records a new first-option decision. Switching away from a
/// still-runnable thread consumes one unit of the preemption bound;
/// exhausted budgets force run-to-completion (only blocking switches).
fn pick_next(ex: &mut Execution) -> Result<(), String> {
    let cur = ex.active;
    let cur_ready = ex.threads[cur].state == State::Ready;
    let mut options = Vec::with_capacity(ex.threads.len());
    if cur_ready {
        options.push(cur);
    }
    for i in 0..ex.threads.len() {
        if i != cur && ex.threads[i].state == State::Ready {
            options.push(i);
        }
    }
    if options.is_empty() {
        if ex.threads.iter().all(|t| t.state == State::Finished) {
            // Execution complete; park the token.
            ex.active = usize::MAX;
            return Ok(());
        }
        let blocked: Vec<(usize, State)> = ex
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state != State::Finished)
            .map(|(i, t)| (i, t.state.clone()))
            .collect();
        return Err(format!(
            "loom: deadlock — every live thread is blocked: {blocked:?}"
        ));
    }
    let chosen = if options.len() == 1 {
        options[0]
    } else if cur_ready && ex.preemptions >= ex.bound {
        // Budget exhausted: no branch, keep running the current thread.
        cur
    } else {
        let d = ex.depth;
        ex.depth += 1;
        if d < ex.path.len() {
            if ex.path[d].options != options.len() {
                return Err(format!(
                    "loom: nondeterministic model — decision {d} had \
                     {} options on a previous run, {} now; the model closure \
                     must not depend on anything outside loom's control",
                    ex.path[d].options,
                    options.len()
                ));
            }
            options[ex.path[d].index]
        } else {
            ex.path.push(Choice {
                index: 0,
                options: options.len(),
            });
            options[0]
        }
    };
    if cur_ready && chosen != cur {
        ex.preemptions += 1;
    }
    ex.active = chosen;
    Ok(())
}

/// Registers a new atomic variable (itself a visible op so registration
/// order — and hence variable ids — is schedule-deterministic).
pub(crate) fn register_atomic(value: u64) -> usize {
    with_rt(|rt, tid| {
        visible_op(rt, tid, |ex, _| {
            ex.atomics.push(AtomicVar {
                value,
                sync: VClock::new(),
            });
            Ok(ex.atomics.len() - 1)
        })
    })
}

/// Registers a new data cell.
pub(crate) fn register_cell() -> usize {
    with_rt(|rt, tid| {
        visible_op(rt, tid, |ex, _| {
            ex.cells.push(CellVar::default());
            Ok(ex.cells.len() - 1)
        })
    })
}
