//! `loom::cell` — race-detected data cells.
//!
//! [`UnsafeCell`] wraps plain data whose synchronization is supposed to come
//! from *other* primitives (atomics, spawn/join). Every access goes through
//! [`UnsafeCell::with`] / [`UnsafeCell::with_mut`], which check the access
//! against the cell's access history using vector clocks: a write must
//! happen-after every previous access, a read must happen-after every
//! previous write. A violation panics with a "data race" message, failing
//! the current execution (and therefore the model).

use crate::rt::{register_cell, visible_op, with_rt, Rt};
use std::sync::Arc;

/// Race-detected cell; the checked analogue of `std::cell::UnsafeCell`.
#[derive(Debug)]
pub struct UnsafeCell<T> {
    idx: usize,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: the model checker serializes all access to the payload — `with` /
// `with_mut` fail the execution before any physically overlapping or
// unordered access pair touches `data` — so sharing across model threads
// cannot produce an actual data race as long as `T: Send`.
unsafe impl<T: Send> Send for UnsafeCell<T> {}
// SAFETY: as above; `Sync` hands out no `&T` without a begin-access check.
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    pub fn new(data: T) -> Self {
        UnsafeCell {
            idx: register_cell(),
            data: std::cell::UnsafeCell::new(data),
        }
    }

    /// Immutable access: checks read-after-write ordering, then hands the
    /// raw pointer to `f`.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        let rt = self.begin_read();
        let r = f(self.data.get());
        self.end_read(&rt);
        r
    }

    /// Mutable access: checks write-after-everything ordering, then hands
    /// the raw pointer to `f`.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        let rt = self.begin_write();
        let r = f(self.data.get());
        self.end_write(&rt);
        r
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    fn begin_read(&self) -> Arc<Rt> {
        with_rt(|rt, tid| {
            visible_op(rt, tid, |ex, tid| {
                let vc = ex.threads[tid].vc.clone();
                let own = vc.get(tid);
                let cell = &mut ex.cells[self.idx];
                if cell.writer {
                    return Err(format!(
                        "loom: data race — thread {tid} read a cell while a \
                         write access was in progress"
                    ));
                }
                if !cell.write_vc.le(&vc) {
                    return Err(format!(
                        "loom: data race — thread {tid} read a cell without a \
                         happens-before edge from its last write"
                    ));
                }
                cell.read_vc.raise(tid, own);
                cell.readers += 1;
                Ok(())
            });
            Arc::clone(rt)
        })
    }

    fn end_read(&self, rt: &Arc<Rt>) {
        // Not a schedule point: just retract the overlap guard.
        let mut ex = rt.ex.lock().unwrap_or_else(|e| e.into_inner());
        ex.cells[self.idx].readers -= 1;
    }

    fn begin_write(&self) -> Arc<Rt> {
        with_rt(|rt, tid| {
            visible_op(rt, tid, |ex, tid| {
                let vc = ex.threads[tid].vc.clone();
                let cell = &mut ex.cells[self.idx];
                if cell.writer || cell.readers > 0 {
                    return Err(format!(
                        "loom: data race — thread {tid} wrote a cell while \
                         another access was in progress"
                    ));
                }
                if !cell.write_vc.le(&vc) || !cell.read_vc.le(&vc) {
                    return Err(format!(
                        "loom: data race — thread {tid} wrote a cell without \
                         a happens-before edge from all previous accesses"
                    ));
                }
                cell.write_vc = vc;
                cell.writer = true;
                Ok(())
            });
            Arc::clone(rt)
        })
    }

    fn end_write(&self, rt: &Arc<Rt>) {
        let mut ex = rt.ex.lock().unwrap_or_else(|e| e.into_inner());
        ex.cells[self.idx].writer = false;
    }
}
