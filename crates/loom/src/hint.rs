//! `loom::hint` — spin hints under the model.

/// Under the model checker a spin-loop retry cannot observe anything new
/// until another thread writes, so `spin_loop` is the same blocking yield as
/// [`crate::thread::yield_now`]; a loop that would spin forever is reported
/// as a deadlock instead of hanging the checker.
pub fn spin_loop() {
    crate::thread::yield_now()
}
