//! The schedule explorer: depth-first search over scheduling decisions.
//!
//! Each execution records its decision path (`Vec<Choice>`); the next
//! execution replays the longest prefix with the last non-exhausted choice
//! advanced. The search is *bounded-exhaustive* in the CHESS style: at most
//! `preemption_bound` involuntary context switches (switching away from a
//! runnable thread) are explored per execution, which keeps the state space
//! tractable while empirically catching almost all interleaving bugs.
//! Blocking switches (yield, join, finish) are always explored fully.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use crate::rt::{self, visible_op, Choice, Rt, State};

/// Default CHESS-style preemption bound (override: `LOOM_MAX_PREEMPTIONS`).
pub const DEFAULT_PREEMPTION_BOUND: usize = 3;
const DEFAULT_MAX_ITERATIONS: u64 = 200_000;

/// Serializes `model` calls across the test harness's worker threads: the
/// runtime's thread-local bookkeeping assumes one execution at a time.
static MODEL_MUTEX: Mutex<()> = Mutex::new(());

/// Model-check configuration.
pub struct Builder {
    /// Maximum involuntary context switches per execution; `None` removes
    /// the bound (full DFS — only tractable for very small models).
    pub preemption_bound: Option<usize>,
    /// Backstop on the number of explored executions.
    pub max_iterations: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    pub fn new() -> Builder {
        let preemption_bound = std::env::var("LOOM_MAX_PREEMPTIONS")
            .ok()
            .and_then(|s| s.parse().ok())
            .or(Some(DEFAULT_PREEMPTION_BOUND));
        let max_iterations = std::env::var("LOOM_MAX_ITERATIONS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_MAX_ITERATIONS);
        Builder {
            preemption_bound,
            max_iterations,
        }
    }

    /// Runs `f` under every schedule (up to the preemption bound). Panics —
    /// and thereby fails the enclosing test — on the first execution that
    /// panics, data-races, or deadlocks.
    pub fn check<F: Fn()>(&self, f: F) {
        let _serial = MODEL_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
        let bound = self.preemption_bound.unwrap_or(usize::MAX);
        let mut path: Vec<Choice> = Vec::new();
        let mut executions: u64 = 0;
        loop {
            executions += 1;
            if executions > self.max_iterations {
                panic!(
                    "loom: exceeded {} executions without exhausting the \
                     schedule space; simplify the model or raise \
                     LOOM_MAX_ITERATIONS",
                    self.max_iterations
                );
            }
            let rt = Arc::new(Rt::new(std::mem::take(&mut path), bound));
            rt::set_current(&rt, 0);
            let result = catch_unwind(AssertUnwindSafe(|| {
                f();
                finish_main(&rt);
            }));
            rt::clear_current();
            if let Err(p) = result {
                resume_unwind(p);
            }
            path = rt.ex.lock().unwrap_or_else(|e| e.into_inner()).path.clone();
            if !advance(&mut path) {
                break;
            }
        }
        eprintln!("loom: model checked — {executions} execution(s) explored");
    }
}

/// The driver's finish op: every spawned thread must already be joined.
fn finish_main(rt: &Arc<Rt>) {
    visible_op(rt, 0, |ex, _| {
        let running: Vec<usize> = (1..ex.threads.len())
            .filter(|&i| ex.threads[i].state != State::Finished)
            .collect();
        if !running.is_empty() {
            return Err(format!(
                "loom: model closure returned while threads {running:?} were \
                 still running; join every spawned thread"
            ));
        }
        ex.threads[0].state = State::Finished;
        Ok(())
    });
}

/// Advances the DFS path to the next unexplored schedule: pops exhausted
/// trailing decisions and increments the deepest non-exhausted one.
fn advance(path: &mut Vec<Choice>) -> bool {
    while let Some(c) = path.last_mut() {
        if c.index + 1 < c.options {
            c.index += 1;
            return true;
        }
        path.pop();
    }
    false
}

/// Checks `f` under the default [`Builder`] configuration.
pub fn model<F: Fn()>(f: F) {
    Builder::new().check(f)
}
