//! `loom::thread` — managed threads.
//!
//! `spawn` creates a real OS thread registered with the current execution;
//! it only makes progress when the scheduler hands it the active token.
//! `spawn` and `join` carry the usual happens-before edges (parent-to-child
//! at spawn, child-to-joiner at join). `yield_now` parks the thread until
//! some atomic write lands — modeling "spinning cannot make progress until
//! somebody writes" — which lets the checker prove the absence of lost
//! wake-ups without executing unbounded spin loops.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use crate::rt::{self, visible_op, wait_turn, with_rt, Rt, State, ThreadInfo};

fn payload_str(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Records a child-thread panic as the execution's failure (unless the
/// panic itself was an echo of an earlier failure) and marks the thread
/// finished so the OS thread can exit.
fn poison(rt: &Rt, tid: usize, msg: String) {
    let mut ex = rt.ex.lock().unwrap_or_else(|e| e.into_inner());
    if ex.failed.is_none() {
        ex.failed = Some(format!("loom: thread {tid} panicked: {msg}"));
    }
    ex.threads[tid].state = State::Finished;
    rt.cond.notify_all();
}

/// The child's normal completion: publish the final clock and wake joiners.
fn finish_ok(rt: &Arc<Rt>, tid: usize) {
    visible_op(rt, tid, |ex, tid| {
        ex.threads[tid].state = State::Finished;
        let fvc = ex.threads[tid].vc.clone();
        ex.threads[tid].final_vc = Some(fvc);
        for t in ex.threads.iter_mut() {
            if t.state == State::BlockedOnJoin(tid) {
                t.state = State::Ready;
            }
        }
        Ok(())
    });
}

/// Handle to a managed thread; `join` is a visible (blocking) operation.
pub struct JoinHandle<T> {
    id: usize,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    os: Option<std::thread::JoinHandle<()>>,
}

impl<T> JoinHandle<T> {
    pub fn join(mut self) -> std::thread::Result<T> {
        let target = self.id;
        with_rt(|rt, tid| {
            let blocked = visible_op(rt, tid, |ex, tid| {
                if ex.threads[target].state == State::Finished {
                    if let Some(fvc) = ex.threads[target].final_vc.clone() {
                        ex.threads[tid].vc.join(&fvc);
                    }
                    Ok(false)
                } else {
                    ex.threads[tid].state = State::BlockedOnJoin(target);
                    Ok(true)
                }
            });
            if blocked {
                // Woken by the target's finish op once the scheduler picks
                // us again; the wake-up consumes that schedule decision.
                let mut ex = wait_turn(rt, tid);
                if let Some(fvc) = ex.threads[target].final_vc.clone() {
                    ex.threads[tid].vc.join(&fvc);
                }
                drop(ex);
            }
        });
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("loom: joined thread produced no result")
    }
}

/// Spawns a managed thread. The child inherits the parent's clock (the
/// spawn edge) and starts `Ready`; it runs only when scheduled.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    with_rt(|rt, parent| {
        let child = visible_op(rt, parent, |ex, parent| {
            let id = ex.threads.len();
            if id >= rt::MAX_THREADS {
                return Err(format!(
                    "loom: too many threads (max {} per execution)",
                    rt::MAX_THREADS
                ));
            }
            let mut vc = ex.threads[parent].vc.clone();
            vc.bump(id);
            let seen_writes = ex.write_seq;
            ex.threads.push(ThreadInfo {
                state: State::Ready,
                vc,
                seen_writes,
                final_vc: None,
            });
            Ok(id)
        });

        let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
        let rt2 = Arc::clone(rt);
        let res2 = Arc::clone(&result);
        let os = std::thread::Builder::new()
            .name(format!("loom-{child}"))
            .spawn(move || {
                rt::set_current(&rt2, child);
                let r = catch_unwind(AssertUnwindSafe(f));
                let panic_msg = r.as_ref().err().map(|p| payload_str(p.as_ref()));
                *res2.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
                match panic_msg {
                    // The finish op can itself panic when another thread
                    // failed the execution meanwhile; contain it so the OS
                    // thread exits cleanly either way.
                    None => {
                        let _ = catch_unwind(AssertUnwindSafe(|| finish_ok(&rt2, child)));
                    }
                    Some(msg) => poison(&rt2, child, msg),
                }
                rt::clear_current();
            })
            .expect("loom: failed to spawn OS thread");

        JoinHandle {
            id: child,
            result,
            os: Some(os),
        }
    })
}

/// Cooperative yield: parks the thread until an atomic write it has not yet
/// observed lands. In a spin loop this models "retrying cannot succeed until
/// shared state changes", so a loop that would spin forever shows up as a
/// deadlock instead of hanging the checker.
pub fn yield_now() {
    with_rt(|rt, tid| {
        let blocked = visible_op(rt, tid, |ex, tid| {
            if ex.write_seq > ex.threads[tid].seen_writes {
                ex.threads[tid].seen_writes = ex.write_seq;
                Ok(false)
            } else {
                ex.threads[tid].state = State::BlockedOnWrite;
                Ok(true)
            }
        });
        if blocked {
            let mut ex = wait_turn(rt, tid);
            let seq = ex.write_seq;
            ex.threads[tid].seen_writes = seq;
            drop(ex);
        }
    })
}
