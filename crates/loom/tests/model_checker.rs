//! Self-tests for the model checker. These run under plain `cargo test`
//! (the loom crate itself needs no `--cfg loom`): each test builds a tiny
//! concurrent program and checks that the explorer verifies it, finds its
//! bug, or detects its deadlock.

use std::sync::Mutex;

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

/// A correct release/acquire handoff must pass under every schedule.
#[test]
fn release_acquire_handoff_is_race_free() {
    loom::model(|| {
        let cell = Arc::new(UnsafeCell::new(0u32));
        let flag = Arc::new(AtomicBool::new(false));

        let t = {
            let cell = Arc::clone(&cell);
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                cell.with_mut(|p| {
                    // SAFETY: the flag protocol gives the writer exclusive
                    // access until the release store below.
                    unsafe { *p = 42 };
                });
                flag.store(true, Ordering::Release);
            })
        };

        while !flag.load(Ordering::Acquire) {
            thread::yield_now();
        }
        let v = cell.with(|p| {
            // SAFETY: the acquire load above synchronized with the writer's
            // release store, so the write happens-before this read.
            unsafe { *p }
        });
        assert_eq!(v, 42);
        t.join().unwrap();
    });
}

/// The same handoff with a `Relaxed` flag store publishes nothing: the
/// checker must find the data race on the cell.
#[test]
#[should_panic(expected = "data race")]
fn relaxed_flag_handoff_is_a_race() {
    loom::model(|| {
        let cell = Arc::new(UnsafeCell::new(0u32));
        let flag = Arc::new(AtomicBool::new(false));

        let t = {
            let cell = Arc::clone(&cell);
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                cell.with_mut(|p| {
                    // SAFETY: exclusive by intent — the point of the test is
                    // that the relaxed publish below fails to transfer it.
                    unsafe { *p = 42 };
                });
                flag.store(true, Ordering::Relaxed);
            })
        };

        while !flag.load(Ordering::Acquire) {
            thread::yield_now();
        }
        let _ = cell.with(|p| {
            // SAFETY: not actually sound — the checker reports the race
            // before this read's result is used.
            unsafe { *p }
        });
        t.join().unwrap();
    });
}

/// `fetch_add` hands out each intermediate value exactly once.
#[test]
fn fetch_add_is_claim_exclusive() {
    loom::model(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || counter.fetch_add(1, Ordering::Relaxed))
            })
            .collect();
        let mut claimed: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        claimed.sort_unstable();
        assert_eq!(claimed, vec![0, 1]);
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    });
}

/// A spin loop on a flag nobody sets is a lost-progress bug; the checker
/// reports it as a deadlock rather than hanging.
#[test]
#[should_panic(expected = "deadlock")]
fn spin_on_never_set_flag_deadlocks() {
    loom::model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let t = {
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                while !flag.load(Ordering::Acquire) {
                    thread::yield_now();
                }
            })
        };
        t.join().unwrap();
    });
}

/// An assertion failure on a child thread fails the model with the child's
/// panic message.
#[test]
#[should_panic(expected = "boom")]
fn child_panic_propagates() {
    loom::model(|| {
        let t = thread::spawn(|| panic!("boom"));
        t.join().unwrap();
    });
}

/// Two racing stores: the explorer must actually visit schedules where
/// either store lands last (i.e. it explores more than one execution).
#[test]
fn explores_both_store_orders() {
    let finals: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    loom::model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let t1 = {
            let x = Arc::clone(&x);
            thread::spawn(move || x.store(1, Ordering::Relaxed))
        };
        let t2 = {
            let x = Arc::clone(&x);
            thread::spawn(move || x.store(2, Ordering::Relaxed))
        };
        t1.join().unwrap();
        t2.join().unwrap();
        finals.lock().unwrap().push(x.load(Ordering::Relaxed));
    });
    let finals = finals.into_inner().unwrap();
    assert!(finals.len() > 1, "only one execution explored");
    assert!(finals.contains(&1), "never saw store(1) land last");
    assert!(finals.contains(&2), "never saw store(2) land last");
}

/// Unbounded DFS on a tiny model terminates and is exhaustive.
#[test]
fn unbounded_dfs_on_tiny_model() {
    let b = loom::Builder {
        preemption_bound: None,
        max_iterations: 100_000,
    };
    b.check(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let t = {
            let x = Arc::clone(&x);
            thread::spawn(move || x.fetch_add(1, Ordering::AcqRel))
        };
        x.fetch_add(1, Ordering::AcqRel);
        t.join().unwrap();
        assert_eq!(x.load(Ordering::Acquire), 2);
    });
}
