//! Piecewise-linear CDF tables.
//!
//! Workload generators describe flow-size distributions as empirical CDFs
//! (as the DCTCP and TIMELY papers publish them). A [`CdfTable`] supports
//! inverse-transform sampling and mean computation, both used to convert a
//! target load into a flow arrival rate.

/// An empirical CDF given as `(value, cumulative probability)` points with
/// linear interpolation between points.
#[derive(Clone, Debug)]
pub struct CdfTable {
    points: Vec<(f64, f64)>,
}

impl CdfTable {
    /// Builds a table from `(value, cum_prob)` points.
    ///
    /// # Panics
    ///
    /// Panics unless the points are non-empty, non-decreasing in both
    /// coordinates, and end at probability 1.0.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "CDF needs at least one point");
        for w in points.windows(2) {
            assert!(
                w[0].0 <= w[1].0 && w[0].1 <= w[1].1,
                "CDF points must be non-decreasing: {w:?}"
            );
        }
        let last = points.last().expect("non-empty");
        assert!(
            (last.1 - 1.0).abs() < 1e-9,
            "CDF must end at probability 1.0, ends at {}",
            last.1
        );
        CdfTable { points }
    }

    /// Inverse-transform sampling: maps a uniform `u ∈ [0, 1)` to a value.
    pub fn sample(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let first = self.points[0];
        if u <= first.1 {
            return first.0;
        }
        for w in self.points.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if u <= p1 {
                if p1 == p0 {
                    return v1;
                }
                return v0 + (v1 - v0) * (u - p0) / (p1 - p0);
            }
        }
        self.points.last().expect("non-empty").0
    }

    /// Mean of the distribution (trapezoidal over segments, with the mass at
    /// the first point treated as an atom).
    pub fn mean(&self) -> f64 {
        let first = self.points[0];
        let mut mean = first.0 * first.1;
        for w in self.points.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            mean += (p1 - p0) * (v0 + v1) / 2.0;
        }
        mean
    }

    /// The points of the table.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Largest value of the distribution.
    pub fn max_value(&self) -> f64 {
        self.points.last().expect("non-empty").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_0_10() -> CdfTable {
        CdfTable::new(vec![(0.0, 0.0), (10.0, 1.0)])
    }

    #[test]
    fn sample_interpolates_linearly() {
        let c = uniform_0_10();
        assert_eq!(c.sample(0.0), 0.0);
        assert_eq!(c.sample(0.5), 5.0);
        assert!((c.sample(0.999) - 9.99).abs() < 1e-9);
    }

    #[test]
    fn mean_of_uniform() {
        assert!((uniform_0_10().mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn atom_at_first_point() {
        // 30% of mass exactly at 4, rest uniform to 10.
        let c = CdfTable::new(vec![(4.0, 0.3), (10.0, 1.0)]);
        assert_eq!(c.sample(0.1), 4.0);
        assert_eq!(c.sample(0.3), 4.0);
        assert!(c.sample(0.65) > 4.0);
        let expected_mean = 4.0 * 0.3 + 0.7 * 7.0;
        assert!((c.mean() - expected_mean).abs() < 1e-9);
    }

    #[test]
    fn sampling_mean_converges_to_analytic_mean() {
        let c = CdfTable::new(vec![(1.0, 0.5), (100.0, 0.9), (10_000.0, 1.0)]);
        let n = 200_000;
        let mut sum = 0.0;
        let mut state = 0x12345u64;
        for _ in 0..n {
            // Cheap LCG for test-local uniforms.
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            sum += c.sample(u);
        }
        let sampled = sum / n as f64;
        let analytic = c.mean();
        assert!(
            (sampled / analytic - 1.0).abs() < 0.02,
            "sampled {sampled}, analytic {analytic}"
        );
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_decreasing_points() {
        CdfTable::new(vec![(5.0, 0.5), (4.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "end at probability")]
    fn rejects_incomplete_cdf() {
        CdfTable::new(vec![(5.0, 0.5)]);
    }
}
