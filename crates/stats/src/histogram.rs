//! Log-bucketed histograms with percentile estimation.

/// A histogram over non-negative values with logarithmically spaced buckets
/// (constant relative error), suited to latency-like quantities spanning
/// many orders of magnitude.
///
/// # Examples
///
/// ```
/// use unison_stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.add(v as f64);
/// }
/// let p50 = h.percentile(50.0);
/// assert!((p50 / 500.0 - 1.0).abs() < 0.1, "p50 ~ 500, got {p50}");
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Bucket `i` covers `[GROWTH^i, GROWTH^(i+1))`; bucket 0 also takes
    /// everything below 1.0.
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    max: f64,
}

/// Relative bucket growth: 5% per bucket bounds percentile error to ~5%.
const GROWTH: f64 = 1.05;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    fn bucket_of(v: f64) -> usize {
        if v < 1.0 {
            0
        } else {
            (v.ln() / GROWTH.ln()) as usize
        }
    }

    /// Adds one observation (negative values are clamped to 0).
    pub fn add(&mut self, v: f64) {
        let v = v.max(0.0);
        let b = Self::bucket_of(v);
        if b >= self.buckets.len() {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Estimates the p-th percentile (`p` in `[0, 100]`); 0 when empty.
    /// Accuracy is bounded by the 5% bucket growth.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                // Geometric midpoint of the bucket.
                let lo = if i == 0 { 0.0 } else { GROWTH.powi(i as i32) };
                let hi = GROWTH.powi(i as i32 + 1);
                return ((lo + hi) / 2.0).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.add(42.0);
        let p = h.percentile(50.0);
        assert!((p / 42.0 - 1.0).abs() < 0.06, "got {p}");
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 42.0);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new();
        for i in 0..10_000u64 {
            h.add((i % 977) as f64 + 1.0);
        }
        let mut prev = 0.0;
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9] {
            let v = h.percentile(p);
            assert!(v >= prev, "p{p} = {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn tail_accuracy() {
        let mut h = Histogram::new();
        for _ in 0..999 {
            h.add(10.0);
        }
        h.add(10_000.0);
        let p999 = h.percentile(99.95);
        assert!((p999 / 10_000.0 - 1.0).abs() < 0.06, "got {p999}");
    }

    #[test]
    fn merge_matches_combined() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for i in 0..1_000u64 {
            let v = (i * 13 % 701) as f64;
            all.add(v);
            if i % 2 == 0 {
                a.add(v)
            } else {
                b.add(v)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.percentile(50.0), all.percentile(50.0));
        assert_eq!(a.percentile(99.0), all.percentile(99.0));
    }

    #[test]
    fn sub_one_values_land_in_bucket_zero() {
        let mut h = Histogram::new();
        h.add(0.0);
        h.add(0.5);
        h.add(-3.0); // clamped
        assert_eq!(h.count(), 3);
        assert!(h.percentile(50.0) < 1.05);
    }
}
