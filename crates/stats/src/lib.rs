//! # unison-stats
//!
//! Small statistics toolkit used across the unison-rs workspace: streaming
//! summaries, log-bucketed histograms with percentile estimation, and
//! piecewise-linear CDF tables (used for flow-size distributions such as the
//! web-search and gRPC workloads).

pub mod cdf;
pub mod histogram;
pub mod summary;

pub use cdf::CdfTable;
pub use histogram::Histogram;
pub use summary::Summary;
