//! Streaming scalar summaries (Welford's online algorithm).

/// Streaming count / min / max / mean / variance accumulator.
///
/// # Examples
///
/// ```
/// use unison_stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.add(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.mean = (n1 * self.mean + n2 * other.mean) / n;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Minimum (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Population variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The raw accumulator state `(count, mean, m2, min, max, sum)`, for
    /// bit-exact serialization of a mid-stream summary.
    pub fn to_raw_parts(&self) -> (u64, f64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max, self.sum)
    }

    /// Rebuilds a summary from [`Summary::to_raw_parts`] output.
    pub fn from_raw_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64, sum: f64) -> Self {
        Summary {
            count,
            mean,
            m2,
            min,
            max,
            sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn variance_matches_direct_formula() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = Summary::new();
        for &x in &xs {
            s.add(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Summary::new();
        let mut a = Summary::new();
        let mut b = Summary::new();
        for (i, &x) in xs.iter().enumerate() {
            all.add(x);
            if i % 2 == 0 {
                a.add(x);
            } else {
                b.add(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn raw_parts_roundtrip_mid_stream() {
        let mut s = Summary::new();
        for x in [1.5, -2.0, 7.25] {
            s.add(x);
        }
        let (count, mean, m2, min, max, sum) = s.to_raw_parts();
        let mut r = Summary::from_raw_parts(count, mean, m2, min, max, sum);
        s.add(4.0);
        r.add(4.0);
        assert_eq!(s.count(), r.count());
        assert_eq!(s.mean().to_bits(), r.mean().to_bits());
        assert_eq!(s.variance().to_bits(), r.variance().to_bits());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Summary::new();
        a.add(3.0);
        let b = Summary::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Summary::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 3.0);
    }
}
