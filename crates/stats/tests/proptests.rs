//! Property-based tests of the statistics toolkit.

use proptest::prelude::*;

use unison_stats::{CdfTable, Histogram, Summary};

proptest! {
    /// Summary::merge is equivalent to observing the combined stream.
    #[test]
    fn summary_merge_equivalence(
        xs in proptest::collection::vec(-1e6f64..1e6, 0..100),
        ys in proptest::collection::vec(-1e6f64..1e6, 0..100),
    ) {
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut all = Summary::new();
        for &x in &xs { a.add(x); all.add(x); }
        for &y in &ys { b.add(y); all.add(y); }
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        if all.count() > 0 {
            prop_assert!((a.mean() - all.mean()).abs() < 1e-6 * (1.0 + all.mean().abs()));
            prop_assert!(
                (a.variance() - all.variance()).abs()
                    < 1e-5 * (1.0 + all.variance().abs())
            );
            prop_assert_eq!(a.min(), all.min());
            prop_assert_eq!(a.max(), all.max());
        }
    }

    /// Histogram percentiles are monotone in p and bounded by the maximum.
    #[test]
    fn histogram_percentiles_monotone(
        xs in proptest::collection::vec(0f64..1e9, 1..300),
        ps in proptest::collection::vec(0f64..100.0, 2..10),
    ) {
        let mut h = Histogram::new();
        for &x in &xs { h.add(x); }
        let mut ps = ps;
        ps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &p in &ps {
            let v = h.percentile(p);
            prop_assert!(v >= prev - 1e-9, "p{p}: {v} < {prev}");
            prop_assert!(v <= h.max() + 1e-9);
            prev = v;
        }
    }

    /// CDF sampling is monotone in the uniform input and stays within the
    /// table's value range.
    #[test]
    fn cdf_sample_monotone(
        points in proptest::collection::vec((1f64..1e9, 0.01f64..1.0), 2..12),
        us in proptest::collection::vec(0f64..1.0, 2..20),
    ) {
        // Build a valid CDF: sort and accumulate probabilities to 1.
        let mut values: Vec<f64> = points.iter().map(|(v, _)| *v).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let total: f64 = points.iter().map(|(_, w)| *w).sum();
        let mut cum = 0.0;
        let table: Vec<(f64, f64)> = values
            .iter()
            .zip(points.iter())
            .enumerate()
            .map(|(i, (v, (_, w)))| {
                cum += w / total;
                if i == points.len() - 1 {
                    cum = 1.0;
                }
                (*v, cum.min(1.0))
            })
            .collect();
        let cdf = CdfTable::new(table);
        let mut us = us;
        us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = values[0];
        let hi = *values.last().unwrap();
        let mut prev = f64::NEG_INFINITY;
        for &u in &us {
            let v = cdf.sample(u);
            prop_assert!(v >= prev - 1e-9);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prev = v;
        }
        // The analytic mean lies within the value range.
        let m = cdf.mean();
        prop_assert!(m >= 0.0 && m <= hi + 1e-9);
    }
}
