//! Checkpoint/resume of full network models (DESIGN.md §4.2).
//!
//! The core suite proves resume determinism for a synthetic model; these
//! tests prove it for the real stack: TCP sockets mid-flow, queued packets,
//! RED/RNG state, RIP tables, On/Off sources and trace buffers all
//! round-trip through a checkpoint, and the resumed run finishes in a state
//! byte-identical to the uninterrupted one. The digest is the canonical
//! `Snapshot` encoding of every node — if any bit of model state diverges,
//! the byte strings differ.

use std::path::PathBuf;

use unison_core::{
    checkpoint, kernel, CheckpointConfig, DataRate, KernelKind, MetricsLevel, PartitionMode,
    RunConfig, SchedConfig, Snapshot, SnapshotWriter, Time, World,
};
use unison_netsim::{NetEvent, NetNode, NetworkBuilder, OnOffConfig, RoutingKind, TransportKind};
use unison_topology::{dumbbell, fat_tree};
use unison_traffic::{SizeDist, TrafficConfig};

/// Canonical byte encoding of all node state: the strongest digest we have.
fn digest(world: &World<NetNode>) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    for n in world.nodes() {
        n.save(&mut w);
    }
    w.into_bytes()
}

fn unison_cfg(threads: usize) -> RunConfig {
    RunConfig {
        kernel: KernelKind::Unison { threads },
        partition: PartitionMode::Auto,
        sched: SchedConfig::default(),
        metrics: MetricsLevel::Summary,
        telemetry: Default::default(),
        fel: Default::default(),
        watchdog: Default::default(),
        fault: Default::default(),
    }
}

fn ckpt_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("netckpt-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clean stale checkpoint dir");
    }
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    dir
}

#[test]
fn tcp_fat_tree_resume_is_bit_identical() {
    let stop = Time::from_millis(6);
    let every = Time::from_millis(2); // checkpoints at 2ms and 4ms
    let build = || {
        NetworkBuilder::new(&fat_tree(4))
            .transport(TransportKind::NewReno)
            .traffic(
                &TrafficConfig::random_uniform(0.2)
                    .with_seed(11)
                    .with_sizes(SizeDist::Grpc)
                    .with_window(Time::ZERO, Time::from_millis(2)),
            )
            .trace_nodes([0usize, 4])
            .stop_at(stop)
            .build()
            .world
    };

    // Uninterrupted reference.
    let (w_ref, rep_ref) = kernel::try_run(build(), &unison_cfg(2)).expect("reference run");
    let ref_digest = digest(&w_ref);
    assert!(rep_ref.events > 1_000, "model too small to mean anything");

    // Checkpointed run: identical result, files left behind.
    let dir = ckpt_dir("tcp");
    let ck = CheckpointConfig::new(every, &dir);
    let mut world = build();
    checkpoint::schedule_checkpoints(&mut world, &ck);
    let (w_ck, _) = kernel::try_run(world, &unison_cfg(2)).expect("checkpointed run");
    assert_eq!(
        digest(&w_ck),
        ref_digest,
        "taking checkpoints perturbed the model"
    );

    // Resume from each checkpoint at several thread counts, always under
    // the saved partition (LP identity is part of the event tie-breaks).
    for t in [2u64, 4] {
        let path = ck.file_at(Time::from_millis(t));
        assert!(path.exists(), "missing checkpoint {path:?}");
        for threads in [1usize, 2, 4] {
            let resumed = checkpoint::resume::<NetNode>(&path, None).expect("load checkpoint");
            assert_eq!(resumed.time, Time::from_millis(t));
            let cfg = RunConfig {
                partition: PartitionMode::Manual(resumed.assignment.clone()),
                ..unison_cfg(threads)
            };
            let (w_res, _) = kernel::try_run(resumed.world, &cfg).expect("resumed run");
            assert_eq!(
                digest(&w_res),
                ref_digest,
                "resume from t={t}ms at {threads} threads diverged"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rip_and_udp_state_round_trips() {
    // A dumbbell under RIP routing with bursty UDP sources: exercises the
    // RipState table, OnOffApp RNGs, UDP receive accounting and datagram
    // payloads through the checkpoint encoding.
    let stop = Time::from_millis(12);
    let build = || {
        NetworkBuilder::new(&dumbbell(
            3,
            3,
            DataRate::gbps(1),
            DataRate::mbps(300),
            Time::from_micros(10),
        ))
        .routing(RoutingKind::Rip {
            update_interval: Time::from_millis(2),
        })
        .on_off_sources((0..3).map(|i| {
            (
                2 + i,
                OnOffConfig {
                    dst: (5 + i) as u32,
                    rate: DataRate::mbps(200),
                    pkt_bytes: 800,
                    mean_on: Time::from_micros(400),
                    mean_off: Time::from_micros(400),
                    until: Time::from_millis(10),
                    seed: 77 + i as u64,
                },
            )
        }))
        .stop_at(stop)
        .build()
        .world
    };

    let (w_ref, _) = kernel::try_run(build(), &unison_cfg(2)).expect("reference run");
    let ref_digest = digest(&w_ref);
    let udp_delivered: u64 = w_ref
        .nodes()
        .flat_map(|n| n.udp_rx.values())
        .map(|rx| rx.pkts)
        .sum();
    assert!(udp_delivered > 100, "udp model idle: {udp_delivered} pkts");

    let dir = ckpt_dir("rip");
    let ck = CheckpointConfig::new(Time::from_millis(5), &dir);
    let mut world = build();
    checkpoint::schedule_checkpoints(&mut world, &ck);
    let (w_ck, _) = kernel::try_run(world, &unison_cfg(2)).expect("checkpointed run");
    assert_eq!(digest(&w_ck), ref_digest);

    let path = ck.file_at(Time::from_millis(5));
    let resumed = checkpoint::resume::<NetNode>(&path, None).expect("load checkpoint");
    // The payload type round-trips too: pending events include RIP packets
    // and datagrams in flight at the cut.
    let _: &World<NetNode> = &resumed.world;
    let cfg = RunConfig {
        partition: PartitionMode::Manual(resumed.assignment.clone()),
        ..unison_cfg(4)
    };
    let (w_res, _) = kernel::try_run(resumed.world, &cfg).expect("resumed run");
    assert_eq!(digest(&w_res), ref_digest, "RIP/UDP resume diverged");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn net_event_payloads_round_trip() {
    use unison_core::{SnapshotReader, Time};
    use unison_netsim::{FlowId, Packet};

    let flow = FlowId {
        src: 3,
        dst: 9,
        sport: 1_000,
        dport: 80,
    };
    let events = vec![
        NetEvent::Arrive {
            dev: 2,
            packet: Packet::data(flow, 4_096, 1_448, 100_000, true, true, Time(55)),
        },
        NetEvent::TxDone { dev: 1 },
        NetEvent::FlowStart {
            dst: 9,
            bytes: 1 << 20,
        },
        NetEvent::Rto { flow },
        NetEvent::RipTick,
        NetEvent::RipTriggered,
        NetEvent::AppTick { app: 3 },
    ];
    let mut w = SnapshotWriter::new();
    events.save(&mut w);
    let bytes = w.into_bytes();
    let mut r = SnapshotReader::new(&bytes);
    let out = Vec::<NetEvent>::load(&mut r).expect("decode");
    r.finish().expect("fully consumed");
    // Re-encoding must be canonical: same bytes.
    let mut w2 = SnapshotWriter::new();
    out.save(&mut w2);
    assert_eq!(w2.into_bytes(), bytes);
}
