//! Property-based tests of the network-model substrates.

use proptest::prelude::*;

use unison_core::Time;
use unison_netsim::packet::{FlowId, Packet, MSS};
use unison_netsim::queue::{Enqueue, Queue, QueueConfig};
use unison_netsim::route::compute_static_tables;
use unison_netsim::tcp::TcpReceiver;

fn flow() -> FlowId {
    FlowId {
        src: 0,
        dst: 1,
        sport: 1,
        dport: 80,
    }
}

proptest! {
    /// The receiver reassembles any permutation of the segments: the final
    /// cumulative ACK covers the whole flow and ACKs are monotone.
    #[test]
    fn receiver_reassembles_any_order(
        segments in 1u64..60,
        perm_seed in any::<u64>(),
        dups in 0usize..10,
    ) {
        let size = segments * MSS as u64;
        let mut order: Vec<u64> = (0..segments).collect();
        let mut rng = unison_core::Rng::new(perm_seed);
        rng.shuffle(&mut order);
        // Inject some duplicate deliveries.
        for _ in 0..dups {
            let dup = order[rng.next_below(order.len() as u64) as usize];
            order.push(dup);
        }
        let mut rcv = TcpReceiver::new(flow(), size);
        let mut last_ack = 0u64;
        for (i, seg) in order.iter().enumerate() {
            let ack = rcv.on_data(seg * MSS as u64, MSS, false, Time(i as u64), false, Time(i as u64 + 1));
            prop_assert!(ack.ack >= last_ack, "cumulative ACK regressed");
            last_ack = ack.ack;
        }
        prop_assert_eq!(last_ack, size);
        prop_assert!(rcv.completed_at.is_some());
    }

    /// Queue byte accounting is exact under arbitrary enqueue/dequeue
    /// interleavings, and the limit is never exceeded.
    #[test]
    fn queue_accounting(ops in proptest::collection::vec((any::<bool>(), 64u32..2_000), 1..200)) {
        let limit = 10_000u32;
        let mut q = Queue::new(QueueConfig::DropTail { limit_bytes: limit }, 7);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        for (enq, bytes) in ops {
            if enq {
                let mut p = Packet::data(flow(), 0, bytes.saturating_sub(52).max(1), 1 << 20, false, false, Time::ZERO);
                p.bytes = bytes;
                if q.enqueue(p, Time::ZERO) == Enqueue::Accepted {
                    model.push_back(bytes);
                }
            } else {
                let popped = q.dequeue().map(|p| p.bytes);
                prop_assert_eq!(popped, model.pop_front());
            }
            let expect: u32 = model.iter().sum();
            prop_assert_eq!(q.bytes(), expect);
            prop_assert!(q.bytes() <= limit);
            prop_assert_eq!(q.len(), model.len());
        }
    }

    /// RED with marking never drops an ECN-capable packet below the hard
    /// limit, and counts marks consistently.
    #[test]
    fn red_marks_instead_of_dropping_ecn(packets in 1usize..150) {
        let mut q = Queue::new(QueueConfig::dctcp(1 << 20, 10_000), 3);
        let mut accepted = 0u64;
        for _ in 0..packets {
            let p = Packet::data(flow(), 0, MSS, 1 << 20, false, true, Time::ZERO);
            if q.enqueue(p, Time::ZERO) == Enqueue::Accepted {
                accepted += 1;
            }
        }
        prop_assert_eq!(accepted, packets as u64, "ECN packets must not early-drop");
        prop_assert_eq!(q.drops, 0);
        prop_assert_eq!(q.accepted, accepted);
    }

    /// Static routing on random connected graphs: every candidate next hop
    /// strictly decreases the BFS distance to the destination.
    #[test]
    fn static_routes_decrease_distance(
        n in 2usize..16,
        extra in proptest::collection::vec((0usize..16, 0usize..16), 0..24),
    ) {
        // Spanning chain guarantees connectivity; extras add ECMP variety.
        let mut pairs: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        for (a, b) in extra {
            let (a, b) = (a % n, b % n);
            if a != b && !pairs.contains(&(a, b)) && !pairs.contains(&(b, a)) {
                pairs.push((a, b));
            }
        }
        let mut adj: Vec<Vec<(u32, u8)>> = vec![Vec::new(); n];
        for &(a, b) in &pairs {
            let da = adj[a].len() as u8;
            let db = adj[b].len() as u8;
            adj[a].push((b as u32, da));
            adj[b].push((a as u32, db));
        }
        let tables = compute_static_tables(&adj);
        // Reference BFS distances per destination.
        for dst in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[dst] = 0;
            let mut queue = std::collections::VecDeque::from([dst]);
            while let Some(v) = queue.pop_front() {
                for &(u, _) in &adj[v] {
                    if dist[u as usize] == usize::MAX {
                        dist[u as usize] = dist[v] + 1;
                        queue.push_back(u as usize);
                    }
                }
            }
            let mut buf = [0u8; 16];
            for node in 0..n {
                let cands = tables[node].lookup(dst as u32, &mut buf);
                if node == dst {
                    prop_assert_eq!(cands, 0);
                    continue;
                }
                prop_assert!(cands > 0, "connected graph must have a route");
                for &dev in &buf[..cands] {
                    let (peer, _) = adj[node][dev as usize];
                    prop_assert_eq!(
                        dist[peer as usize] + 1,
                        dist[node],
                        "next hop must reduce distance"
                    );
                }
            }
        }
    }
}
