//! Golden-digest tests of the simulated-network fault axis
//! (DESIGN.md §4.7): link flaps, node crash/recovery and deterministic
//! loss bursts installed by [`install_faults`] perturb the simulation at
//! exact virtual-time points, so the complete final model state — the
//! canonical `Snapshot` encoding of every node — is bit-identical across
//! the sequential kernel, every Unison thread count and every rerun, and
//! the transport visibly rides out each failure.

use unison_core::{
    kernel, DataRate, KernelKind, MetricsLevel, PartitionMode, RunConfig, SchedConfig, Time,
};
use unison_netsim::{
    install_faults, world_digest as digest, FlowReport, NetFault, NetSim, NetworkBuilder,
};
use unison_topology::spine_leaf;
use unison_traffic::FlowSpec;

/// spine_leaf(2, 2, 2) node layout: spines 0–1, leaves 2–3, hosts 4–7
/// (4–5 under leaf 2, 6–7 under leaf 3).
const SPINE: usize = 0;
const LEAF: usize = 2;

/// A pinned two-LP partition: LP identity enters the deterministic
/// tie-break keys, so digests compare across kernels only under the same
/// assignment.
fn cfg(kernel: KernelKind, nodes: usize) -> RunConfig {
    RunConfig {
        kernel,
        partition: PartitionMode::Manual((0..nodes as u32).map(|i| i % 2).collect()),
        sched: SchedConfig::default(),
        metrics: MetricsLevel::Summary,
        telemetry: Default::default(),
        fel: Default::default(),
        watchdog: Default::default(),
        fault: Default::default(),
    }
}

/// 40 cross-leaf flows over a 2-spine fabric, with `faults` installed.
fn sim_with(faults: &[NetFault]) -> NetSim {
    let topo = spine_leaf(2, 2, 2, DataRate::gbps(10), Time::from_micros(5));
    let hosts = topo.hosts();
    let flows: Vec<FlowSpec> = (0..40)
        .map(|i| FlowSpec {
            src: hosts[i % 2],
            dst: hosts[2 + (i % 2)],
            bytes: 20_000,
            start: Time::from_micros(100 * i as u64),
        })
        .collect();
    let mut sim = NetworkBuilder::new(&topo)
        // DCN-tuned 1 ms minimum RTO: flows whose losses need a timeout
        // (not just dupACKs) still finish well inside the horizon.
        .tcp_config(unison_netsim::TcpConfig::newreno_dcn())
        .flows(flows)
        .stop_at(Time::from_millis(30))
        .build();
    install_faults(&mut sim, faults);
    sim
}

/// Runs one faulted scenario on every kernel and pins the invariants:
/// identical digest everywhere, and the caller's model-level checks hold.
fn run_matrix(faults: &[NetFault], mut check: impl FnMut(&FlowReport)) -> u64 {
    let n = sim_with(faults).world.node_count();
    let kernels = [
        KernelKind::Sequential { compat_keys: false },
        KernelKind::Unison { threads: 1 },
        KernelKind::Unison { threads: 2 },
        KernelKind::Unison { threads: 4 },
    ];
    let mut golden = None;
    for k in kernels {
        let sim = sim_with(faults);
        let (world, _) = kernel::try_run(sim.world, &cfg(k.clone(), n)).expect("faulted run");
        let report = FlowReport::collect(&world);
        check(&report);
        let d = digest(&world);
        match golden {
            None => golden = Some(d),
            Some(g) => assert_eq!(d, g, "kernel {k:?} diverged: {}", report.one_line()),
        }
    }
    golden.expect("at least one kernel ran")
}

#[test]
fn link_flap_reroutes_and_is_digest_invariant() {
    let flap = [NetFault::LinkFlap {
        link: 0, // leaf 2 ↔ spine 0: half of host 4/5's uplink capacity
        down_at: Time::from_millis(1),
        up_at: Time::from_millis(4),
    }];
    let faulted = run_matrix(&flap, |r| {
        assert_eq!(r.completed_flows(), 40, "{}", r.one_line());
    });
    let clean = run_matrix(&[], |r| {
        assert_eq!(r.completed_flows(), 40, "{}", r.one_line());
    });
    assert_ne!(faulted, clean, "the flap must actually perturb the run");
}

#[test]
fn node_crash_and_recovery_keeps_flows_completing() {
    // Spine 0 falls off the fabric for 3 ms: every cross-leaf path
    // degrades to spine 1, then full capacity returns.
    let crash = [NetFault::NodeCrash {
        node: SPINE,
        at: Time::from_millis(1),
        recover_at: Time::from_millis(4),
    }];
    run_matrix(&crash, |r| {
        assert_eq!(r.completed_flows(), 40, "{}", r.one_line());
    });
}

#[test]
fn loss_burst_drops_deterministically_and_tcp_recovers() {
    let burst = [NetFault::LossBurst {
        node: LEAF,
        from: Time::from_micros(200),
        until: Time::from_millis(2),
        period: 7,
    }];
    let mut drop_counts = Vec::new();
    run_matrix(&burst, |r| {
        assert!(r.burst_drops > 0, "burst never fired: {}", r.one_line());
        assert!(r.retransmits > 0, "losses must force retransmits");
        assert_eq!(r.completed_flows(), 40, "{}", r.one_line());
        drop_counts.push(r.burst_drops);
    });
    // The digest already pins this, but make the axis explicit: the exact
    // same packets are lost on every kernel.
    assert!(
        drop_counts.windows(2).all(|w| w[0] == w[1]),
        "drop counts diverged: {drop_counts:?}"
    );
}

#[test]
fn fault_schedules_are_deterministic_across_reruns() {
    let mixed = [
        NetFault::LinkFlap {
            link: 1,
            down_at: Time::from_millis(1),
            up_at: Time::from_millis(3),
        },
        NetFault::LossBurst {
            node: SPINE + 1,
            from: Time::from_millis(2),
            until: Time::from_millis(5),
            period: 11,
        },
    ];
    let once = || {
        let sim = sim_with(&mixed);
        let n = sim.world.node_count();
        let (world, _) = kernel::try_run(sim.world, &cfg(KernelKind::Unison { threads: 2 }, n))
            .expect("mixed-fault run");
        digest(&world)
    };
    assert_eq!(once(), once());
}
