//! End-to-end network simulation tests across kernels.

use unison_core::DataRate;
use unison_core::{KernelKind, MetricsLevel, PartitionMode, RunConfig, SchedConfig, Time};
use unison_netsim::{
    recompute_static_routes, set_link_state, NetworkBuilder, QueueConfig, RoutingKind,
    TransportKind,
};
use unison_topology::{dumbbell, fat_tree, geant, manual, spine_leaf};
use unison_traffic::{FlowSpec, SizeDist, TrafficConfig};

fn small_traffic(load: f64, seed: u64) -> TrafficConfig {
    TrafficConfig::random_uniform(load)
        .with_seed(seed)
        .with_sizes(SizeDist::Grpc)
        .with_window(Time::ZERO, Time::from_millis(2))
}

#[test]
fn flows_complete_on_unison() {
    let topo = fat_tree(4);
    let sim = NetworkBuilder::new(&topo)
        .transport(TransportKind::NewReno)
        .traffic(&small_traffic(0.2, 1))
        .stop_at(Time::from_millis(10))
        .build();
    let res = sim.run(KernelKind::Unison { threads: 2 });
    assert!(
        res.flows.total_flows() > 20,
        "flows: {}",
        res.flows.total_flows()
    );
    let completion = res.flows.completed_flows() as f64 / res.flows.total_flows() as f64;
    assert!(
        completion > 0.95,
        "only {:.0}% of flows completed: {}",
        completion * 100.0,
        res.flows.one_line()
    );
    assert!(res.flows.mean_rtt().as_nanos() > 0);
}

#[test]
fn single_flow_fct_matches_analytic_bound() {
    // One 100 kB flow across the fat-tree: 4 hops of 10 Gbps links, 3 µs
    // delay each. FCT must exceed the store-and-forward + serialization
    // lower bound and stay within a small factor of it.
    let topo = fat_tree(4).with_rate(DataRate::gbps(10));
    let hosts = topo.hosts();
    let flow = FlowSpec {
        src: hosts[0],
        dst: hosts[15], // different pod -> 6 hops via core
        bytes: 100_000,
        start: Time::ZERO,
    };
    let sim = NetworkBuilder::new(&topo)
        .flows([flow])
        .stop_at(Time::from_millis(50))
        .build();
    let res = sim.run(KernelKind::Sequential { compat_keys: false });
    assert_eq!(res.flows.completed_flows(), 1);
    let fct = res.flows.flows[0].fct().expect("completed");
    // Serialization of 100kB at 10Gbps = 80 µs; 6 links -> 18 µs
    // propagation. Handshake-free, so FCT >= ~98 µs.
    assert!(fct >= Time::from_micros(98), "fct {fct}");
    assert!(fct <= Time::from_micros(500), "fct {fct} too slow");
}

#[test]
fn all_kernels_complete_the_same_flows() {
    let topo = fat_tree(4);
    let build = || {
        NetworkBuilder::new(&topo)
            .transport(TransportKind::NewReno)
            .traffic(&small_traffic(0.15, 3))
            .stop_at(Time::from_millis(8))
            .build()
    };
    let seq = build().run(KernelKind::Sequential { compat_keys: false });
    let uni = build().run(KernelKind::Unison { threads: 3 });
    let manual_lp = manual::by_cluster(&topo);
    let bar = build()
        .run_with(&RunConfig {
            watchdog: Default::default(),
            kernel: KernelKind::Barrier,
            partition: PartitionMode::Manual(manual_lp.clone()),
            sched: SchedConfig::default(),
            metrics: MetricsLevel::Summary,
            telemetry: Default::default(),
            fel: Default::default(),
            fault: Default::default(),
        })
        .unwrap();
    let nm = build()
        .run_with(&RunConfig {
            watchdog: Default::default(),
            kernel: KernelKind::NullMessage,
            partition: PartitionMode::Manual(manual_lp),
            sched: SchedConfig::default(),
            metrics: MetricsLevel::Summary,
            telemetry: Default::default(),
            fel: Default::default(),
            fault: Default::default(),
        })
        .unwrap();
    assert_eq!(seq.flows.total_flows(), uni.flows.total_flows());
    assert_eq!(seq.flows.completed_flows(), uni.flows.completed_flows());
    // The baselines process the same traffic; tiny divergence is possible
    // from simultaneous-event ordering, but flow sets must match.
    assert_eq!(seq.flows.total_flows(), bar.flows.total_flows());
    assert_eq!(seq.flows.total_flows(), nm.flows.total_flows());
    let c = seq.flows.completed_flows() as i64;
    assert!((bar.flows.completed_flows() as i64 - c).abs() <= 2);
    assert!((nm.flows.completed_flows() as i64 - c).abs() <= 2);
}

#[test]
fn unison_flow_stats_bitwise_deterministic_across_threads() {
    let topo = fat_tree(4);
    let run = |threads| {
        let sim = NetworkBuilder::new(&topo)
            .transport(TransportKind::NewReno)
            .traffic(&small_traffic(0.2, 5))
            .stop_at(Time::from_millis(6))
            .build();
        let res = sim.run(KernelKind::Unison { threads });
        (
            res.kernel.events,
            res.flows
                .flows
                .iter()
                .map(|f| (f.flow, f.completed, f.retransmits))
                .collect::<Vec<_>>(),
            res.flows.rtt_ns.mean().to_bits(),
            res.flows.fct_us.mean().to_bits(),
        )
    };
    let a = run(1);
    let b = run(2);
    let c = run(4);
    assert_eq!(a, b);
    assert_eq!(a, c);
}

#[test]
fn unison_matches_compat_sequential_on_network() {
    let topo = fat_tree(4);
    let build = || {
        NetworkBuilder::new(&topo)
            .transport(TransportKind::NewReno)
            .traffic(&small_traffic(0.2, 9))
            .stop_at(Time::from_millis(5))
            .build()
    };
    let seq = build()
        .run_with(&RunConfig {
            watchdog: Default::default(),
            kernel: KernelKind::Sequential { compat_keys: true },
            partition: PartitionMode::Auto,
            sched: SchedConfig::default(),
            metrics: MetricsLevel::Summary,
            telemetry: Default::default(),
            fel: Default::default(),
            fault: Default::default(),
        })
        .unwrap();
    let uni = build().run(KernelKind::Unison { threads: 4 });
    assert_eq!(seq.kernel.events, uni.kernel.events);
    assert_eq!(
        seq.flows.rtt_ns.mean().to_bits(),
        uni.flows.rtt_ns.mean().to_bits()
    );
    assert_eq!(seq.flows.drops, uni.flows.drops);
}

#[test]
fn dctcp_marks_and_newreno_drops_under_incast() {
    let topo = dumbbell(
        8,
        8,
        DataRate::gbps(1),
        DataRate::gbps(1),
        Time::from_micros(20),
    );
    let hosts = topo.hosts();
    // 8 senders each push 500 kB at the same receiver through the
    // bottleneck.
    let flows: Vec<FlowSpec> = (0..8)
        .map(|i| FlowSpec {
            src: hosts[i],
            dst: hosts[8],
            bytes: 500_000,
            start: Time::from_micros(10 * i as u64),
        })
        .collect();
    let reno = NetworkBuilder::new(&topo)
        .transport(TransportKind::NewReno)
        .queue(QueueConfig::DropTail {
            limit_bytes: 250_000,
        })
        .flows(flows.clone())
        .stop_at(Time::from_millis(200))
        .build()
        .run(KernelKind::Unison { threads: 2 });
    let dctcp = NetworkBuilder::new(&topo)
        .transport(TransportKind::Dctcp)
        .queue(QueueConfig::dctcp(1 << 20, 8_000))
        .flows(flows)
        .stop_at(Time::from_millis(200))
        .build()
        .run(KernelKind::Unison { threads: 2 });
    assert!(
        reno.flows.drops > 0,
        "NewReno+DropTail should drop: {}",
        reno.flows.one_line()
    );
    assert!(
        dctcp.flows.marks > 0,
        "DCTCP should mark: {}",
        dctcp.flows.one_line()
    );
    assert_eq!(dctcp.flows.completed_flows(), 8);
    // DCTCP keeps queues shallow: lower mean queue delay.
    assert!(
        dctcp.flows.queue_delay_ns.mean() < reno.flows.queue_delay_ns.mean(),
        "dctcp qdelay {} vs reno {}",
        dctcp.flows.queue_delay_ns.mean(),
        reno.flows.queue_delay_ns.mean()
    );
}

#[test]
fn ecmp_spreads_flows_in_spine_leaf() {
    let topo = spine_leaf(4, 4, 4, DataRate::gbps(10), Time::from_micros(3));
    let sim = NetworkBuilder::new(&topo)
        .traffic(
            &TrafficConfig::random_uniform(0.3)
                .with_seed(2)
                .with_sizes(SizeDist::Grpc)
                .with_window(Time::ZERO, Time::from_millis(2)),
        )
        .stop_at(Time::from_millis(6))
        .build();
    let res = sim.run(KernelKind::Unison { threads: 2 });
    assert!(res.flows.completed_flows() > 0);
    // Every spine should have forwarded a share of the traffic.
    for spine in 0..4u32 {
        let node = res.world.node(unison_core::NodeId(spine));
        assert!(
            node.mon.forwarded > 0,
            "spine {spine} forwarded nothing: ECMP not spreading"
        );
    }
}

#[test]
fn rip_converges_and_routes_flows() {
    let topo = geant();
    let hosts = topo.hosts();
    let flows: Vec<FlowSpec> = (0..10)
        .map(|i| FlowSpec {
            src: hosts[i],
            dst: hosts[hosts.len() - 1 - i],
            bytes: 50_000,
            // Give RIP 60ms to converge first.
            start: Time::from_millis(60),
        })
        .collect();
    let sim = NetworkBuilder::new(&topo)
        .routing(RoutingKind::Rip {
            update_interval: Time::from_millis(20),
        })
        .flows(flows)
        .stop_at(Time::from_millis(400))
        .build();
    let res = sim.run(KernelKind::Unison { threads: 2 });
    assert_eq!(
        res.flows.completed_flows(),
        10,
        "RIP routing failed: {}",
        res.flows.one_line()
    );
}

#[test]
fn link_failure_reroutes_with_static_recompute() {
    // Spine-leaf with 2 spines: kill spine 0's links mid-run and recompute
    // routes; traffic must keep flowing via spine 1.
    let topo = spine_leaf(2, 2, 2, DataRate::gbps(10), Time::from_micros(5));
    let hosts = topo.hosts();
    let flows: Vec<FlowSpec> = (0..40)
        .map(|i| FlowSpec {
            src: hosts[i % 2],
            dst: hosts[2 + (i % 2)],
            bytes: 20_000,
            start: Time::from_micros(100 * i as u64),
        })
        .collect();
    let mut sim = NetworkBuilder::new(&topo)
        .flows(flows)
        .stop_at(Time::from_millis(20))
        .build();
    // Links touching spine 0 are topology links 0 and 1 (spine-leaf wiring
    // order: leaf0-spine0, leaf0-spine1, leaf1-spine0, leaf1-spine1).
    let broken: Vec<_> = sim
        .links
        .iter()
        .filter(|l| l.a == 0 || l.b == 0)
        .copied()
        .collect();
    assert_eq!(broken.len(), 2);
    // Inject the failure as a global event at 2 ms, mid-traffic.
    sim.world.add_global_event(
        Time::from_millis(2),
        Box::new(move |wa| {
            for l in &broken {
                set_link_state(wa, l, false);
            }
            recompute_static_routes(wa);
        }),
    );
    let res = sim.run(KernelKind::Unison { threads: 2 });
    assert_eq!(res.flows.completed_flows(), 40, "{}", res.flows.one_line());
}

#[test]
fn udp_onoff_burst_floods_and_tcp_survives() {
    use unison_netsim::OnOffConfig;
    // A DDoS-flavored scenario: 6 On/Off UDP sources flood one victim
    // through the dumbbell bottleneck while 2 TCP flows share the path.
    let topo = dumbbell(
        8,
        8,
        DataRate::gbps(1),
        DataRate::gbps(1),
        Time::from_micros(20),
    );
    let hosts = topo.hosts();
    let sources: Vec<_> = (0..6)
        .map(|i| {
            (
                hosts[i],
                OnOffConfig {
                    dst: hosts[8] as u32,
                    rate: DataRate::mbps(700),
                    pkt_bytes: 1_000,
                    mean_on: Time::from_micros(400),
                    mean_off: Time::from_micros(400),
                    until: Time::from_millis(20),
                    seed: 100 + i as u64,
                },
            )
        })
        .collect();
    let tcp_flows = [
        FlowSpec {
            src: hosts[6],
            dst: hosts[14],
            bytes: 100_000,
            start: Time::from_micros(100),
        },
        FlowSpec {
            src: hosts[7],
            dst: hosts[15],
            bytes: 100_000,
            start: Time::from_micros(200),
        },
    ];
    let sim = NetworkBuilder::new(&topo)
        .tcp_config(unison_netsim::TcpConfig::newreno_dcn())
        .flows(tcp_flows)
        .on_off_sources(sources)
        // Horizon past the 200 ms initial RTO: a flow whose whole first
        // window drowns in the flood recovers only after that timeout.
        .stop_at(Time::from_millis(400))
        .build();
    let res = sim.run(KernelKind::Unison { threads: 2 });
    // The flood ran: datagrams were emitted and (mostly) delivered; the
    // 3:1 oversubscription at the bottleneck must drop some.
    assert!(
        res.flows.udp_sent > 2_000,
        "udp sent {}",
        res.flows.udp_sent
    );
    assert!(res.flows.udp_pkts > 0);
    assert!(
        res.flows.udp_pkts < res.flows.udp_sent,
        "overload must lose datagrams: {} of {}",
        res.flows.udp_pkts,
        res.flows.udp_sent
    );
    // TCP flows complete despite the hostile background.
    assert_eq!(res.flows.completed_flows(), 2, "{}", res.flows.one_line());
}

#[test]
fn udp_results_deterministic_across_threads() {
    use unison_netsim::OnOffConfig;
    let topo = fat_tree(4);
    let hosts = topo.hosts();
    let run = |threads| {
        let sources: Vec<_> = (0..4)
            .map(|i| {
                (
                    hosts[i],
                    OnOffConfig {
                        dst: hosts[15 - i] as u32,
                        rate: DataRate::gbps(2),
                        pkt_bytes: 1_200,
                        mean_on: Time::from_micros(200),
                        mean_off: Time::from_micros(200),
                        until: Time::from_millis(2),
                        seed: 7 + i as u64,
                    },
                )
            })
            .collect();
        let sim = NetworkBuilder::new(&topo)
            .on_off_sources(sources)
            .stop_at(Time::from_millis(4))
            .build();
        let res = sim.run(KernelKind::Unison { threads });
        (res.kernel.events, res.flows.udp_sent, res.flows.udp_pkts)
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn bcube_hosts_relay_traffic() {
    // In BCube, hosts have one port per level and forward other hosts'
    // packets; static ECMP routing must exploit both ports.
    let topo = unison_topology::bcube(4, 2, DataRate::gbps(10), Time::from_micros(3));
    let hosts = topo.hosts();
    let flows: Vec<FlowSpec> = (0..24)
        .map(|i| FlowSpec {
            src: hosts[i % 16],
            dst: hosts[(i * 7 + 3) % 16],
            bytes: 30_000,
            start: Time::from_micros(20 * i as u64),
        })
        .filter(|f| f.src != f.dst)
        .collect();
    let n = flows.len() as u64;
    let sim = NetworkBuilder::new(&topo)
        .flows(flows)
        .stop_at(Time::from_millis(30))
        .build();
    let res = sim.run(KernelKind::Unison { threads: 2 });
    assert_eq!(res.flows.completed_flows(), n, "{}", res.flows.one_line());
    // Some host must have forwarded packets that were not its own
    // (multi-port relay).
    let relayed = res
        .world
        .nodes()
        .filter(|node| node.is_host && node.devices.len() == 2)
        .any(|node| node.mon.forwarded > 0);
    assert!(relayed, "BCube hosts should relay");
}

#[test]
fn zero_delay_host_links_merge_lps() {
    // §4.2 illustration: zero-delay host links merge hosts into their ToR
    // switch's LP; the simulation stays correct with intra-LP zero-delay
    // hops.
    let topo = fat_tree(4).with_host_link_delay(Time::ZERO);
    let traffic = small_traffic(0.15, 21);
    let sim = NetworkBuilder::new(&topo)
        .traffic(&traffic)
        .stop_at(Time::from_millis(6))
        .build();
    let res = sim.run(KernelKind::Unison { threads: 2 });
    // 36 nodes; 16 hosts merge into 8 edge LPs -> 4 core + 8 agg + 8 edge.
    assert_eq!(res.kernel.lp_count, 20);
    assert!(res.flows.completed_flows() > 0);
    // Cross-check against the sequential kernel.
    let sim = NetworkBuilder::new(&topo)
        .traffic(&traffic)
        .stop_at(Time::from_millis(6))
        .build();
    let seq = sim.run(KernelKind::Sequential { compat_keys: false });
    assert_eq!(seq.kernel.events, res.kernel.events);
}

#[test]
fn torus_nodes_route_and_terminate() {
    let topo = unison_topology::torus2d(6, 6, DataRate::gbps(10), Time::from_micros(30));
    let traffic = TrafficConfig::random_uniform(0.2)
        .with_seed(31)
        .with_sizes(SizeDist::Grpc)
        .with_window(Time::ZERO, Time::from_millis(1));
    let sim = NetworkBuilder::new(&topo)
        .traffic(&traffic)
        .stop_at(Time::from_millis(5))
        .build();
    let res = sim.run(KernelKind::Unison { threads: 3 });
    let completion = res.flows.completed_flows() as f64 / res.flows.total_flows().max(1) as f64;
    assert!(completion > 0.9, "{}", res.flows.one_line());
    // Wrap-around paths exist: max hop distance in a 6x6 torus is 6, and
    // multi-hop forwarding must have happened at pure relay nodes.
    assert!(res.world.nodes().filter(|n| n.mon.forwarded > 0).count() > 30);
}

#[test]
fn packet_trace_reconstructs_flow_path() {
    use unison_netsim::{Trace, TraceKind};
    let topo = fat_tree(4).with_rate(DataRate::gbps(10));
    let hosts = topo.hosts();
    let flow_spec = FlowSpec {
        src: hosts[0],
        dst: hosts[15],
        bytes: 10_000,
        start: Time::ZERO,
    };
    let sim = NetworkBuilder::new(&topo)
        .flows([flow_spec])
        .trace_nodes(0..topo.node_count())
        .stop_at(Time::from_millis(20))
        .build();
    let res = sim.run(KernelKind::Unison { threads: 2 });
    assert_eq!(res.flows.completed_flows(), 1);
    let trace = Trace::collect(&res.world);
    assert!(trace.truncated == 0);
    let flow = res.flows.flows[0].flow;
    let path = trace.path_of(flow);
    // Inter-pod route: src host, edge, agg, core, agg, edge, dst host.
    assert_eq!(path.len(), 7, "path {path:?}");
    assert_eq!(path[0], flow.src);
    assert_eq!(*path.last().unwrap(), flow.dst);
    // Arrivals strictly ordered in time along the path.
    let entries = trace.flow(flow);
    assert!(entries.windows(2).all(|w| w[0].ts <= w[1].ts));
    // The data direction saw at least ceil(10000/1448)=7 segments at the
    // destination.
    let dst_arrivals = entries
        .iter()
        .filter(|e| e.kind == TraceKind::Arrive && e.node == flow.dst)
        .count();
    assert!(dst_arrivals >= 7, "dst arrivals {dst_arrivals}");
}

#[test]
fn trace_is_deterministic_across_threads() {
    use unison_netsim::Trace;
    let topo = fat_tree(4);
    let run = |threads| {
        let sim = NetworkBuilder::new(&topo)
            .traffic(&small_traffic(0.1, 44))
            .trace_nodes([0usize, 1, 2, 3])
            .stop_at(Time::from_millis(3))
            .build();
        let res = sim.run(KernelKind::Unison { threads });
        let t = Trace::collect(&res.world);
        t.entries
            .iter()
            .map(|e| (e.ts, e.node, e.kind as u8, e.flow, e.bytes))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(3));
}
