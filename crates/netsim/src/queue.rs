//! Egress queue disciplines: DropTail and RED (with ECN marking).
//!
//! RED follows the classic Floyd/Jacobson algorithm: an EWMA of the queue
//! length drives a probabilistic early drop (or ECN mark). Setting
//! `min_th == max_th == K` with `mark_ecn` and instantaneous averaging
//! (`w_q = 1`) yields the DCTCP step-marking scheme at threshold K.

use std::collections::VecDeque;

use unison_core::{
    snapshot_struct, Rng, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, Time,
};

use crate::packet::Packet;

/// Outcome of an enqueue attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Enqueue {
    /// Packet accepted (it may additionally have been CE-marked).
    Accepted,
    /// Packet dropped.
    Dropped,
}

/// Queue discipline configuration.
#[derive(Clone, Copy, Debug)]
pub enum QueueConfig {
    /// FIFO with a byte capacity.
    DropTail {
        /// Maximum queued bytes.
        limit_bytes: u32,
    },
    /// Random Early Detection.
    Red {
        /// Maximum queued bytes (hard drop above this).
        limit_bytes: u32,
        /// Lower EWMA threshold, bytes.
        min_th: u32,
        /// Upper EWMA threshold, bytes.
        max_th: u32,
        /// Maximum early-drop/mark probability at `max_th`.
        max_p: f64,
        /// EWMA weight in `(0, 1]`; 1.0 = instantaneous queue.
        w_q: f64,
        /// Mark ECN-capable packets instead of dropping them.
        mark_ecn: bool,
    },
}

impl QueueConfig {
    /// The DCTCP step-marking configuration: instantaneous queue, mark at
    /// threshold `k_bytes`.
    pub fn dctcp(limit_bytes: u32, k_bytes: u32) -> Self {
        QueueConfig::Red {
            limit_bytes,
            min_th: k_bytes,
            max_th: k_bytes,
            max_p: 1.0,
            w_q: 1.0,
            mark_ecn: true,
        }
    }

    /// A classic RED queue for TCP (drop-based unless `mark_ecn`).
    pub fn red(limit_bytes: u32, min_th: u32, max_th: u32, mark_ecn: bool) -> Self {
        QueueConfig::Red {
            limit_bytes,
            min_th,
            max_th,
            max_p: 0.1,
            w_q: 0.002,
            mark_ecn,
        }
    }
}

/// An egress FIFO with a configurable drop/mark policy.
#[derive(Debug)]
pub struct Queue {
    config: QueueConfig,
    packets: VecDeque<Packet>,
    bytes: u32,
    /// RED EWMA of the queue length in bytes.
    avg: f64,
    /// Packets since the last early drop/mark (RED's `count`).
    count: u32,
    rng: Rng,
    /// Statistics: total packets dropped.
    pub drops: u64,
    /// Statistics: total packets CE-marked.
    pub marks: u64,
    /// Statistics: total packets accepted.
    pub accepted: u64,
}

impl Queue {
    /// Creates a queue; `seed` makes RED's probabilistic decisions
    /// deterministic per queue.
    pub fn new(config: QueueConfig, seed: u64) -> Self {
        Queue {
            config,
            packets: VecDeque::new(),
            bytes: 0,
            avg: 0.0,
            count: 0,
            rng: Rng::new(seed),
            drops: 0,
            marks: 0,
            accepted: 0,
        }
    }

    /// Queued bytes.
    pub fn bytes(&self) -> u32 {
        self.bytes
    }

    /// Queued packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Attempts to enqueue `packet` at time `now`.
    pub fn enqueue(&mut self, mut packet: Packet, now: Time) -> Enqueue {
        match self.config {
            QueueConfig::DropTail { limit_bytes } => {
                if self.bytes + packet.bytes > limit_bytes {
                    self.drops += 1;
                    return Enqueue::Dropped;
                }
            }
            QueueConfig::Red {
                limit_bytes,
                min_th,
                max_th,
                max_p,
                w_q,
                mark_ecn,
            } => {
                if self.bytes + packet.bytes > limit_bytes {
                    self.drops += 1;
                    return Enqueue::Dropped;
                }
                if self.packets.is_empty() {
                    // Idle adjustment (ns-3's "m packets could have left"
                    // estimate, coarse form): the EWMA must decay while the
                    // queue sits empty, or one burst would leave RED in
                    // drop-everything mode long after the queue drained.
                    self.avg *= 0.5;
                }
                self.avg = (1.0 - w_q) * self.avg + w_q * self.bytes as f64;
                let early = if self.avg < min_th as f64 {
                    self.count = 0;
                    false
                } else if self.avg >= 2.0 * max_th as f64 {
                    // Beyond the gentle band RED drops/marks everything.
                    true
                } else if self.avg >= max_th as f64 {
                    // Gentle RED: probability ramps from max_p to 1 between
                    // max_th and 2*max_th.
                    let p =
                        max_p + (1.0 - max_p) * (self.avg - max_th as f64) / max_th.max(1) as f64;
                    self.count = 0;
                    self.rng.next_bool(p.clamp(0.0, 1.0))
                } else {
                    let pb = max_p * (self.avg - min_th as f64)
                        / (max_th as f64 - min_th as f64).max(1.0);
                    let pa = pb / (1.0 - (self.count as f64 * pb).min(0.999));
                    self.count += 1;
                    self.rng.next_bool(pa.clamp(0.0, 1.0))
                };
                if early {
                    self.count = 0;
                    if mark_ecn && packet.ecn_capable {
                        packet.ecn_ce = true;
                        self.marks += 1;
                    } else {
                        self.drops += 1;
                        return Enqueue::Dropped;
                    }
                }
            }
        }
        packet.enqueued_at = now;
        self.bytes += packet.bytes;
        self.accepted += 1;
        self.packets.push_back(packet);
        Enqueue::Accepted
    }

    /// Dequeues the head packet.
    pub fn dequeue(&mut self) -> Option<Packet> {
        let p = self.packets.pop_front()?;
        self.bytes -= p.bytes;
        Some(p)
    }
}

impl Snapshot for QueueConfig {
    fn save(&self, w: &mut SnapshotWriter) {
        match *self {
            QueueConfig::DropTail { limit_bytes } => {
                w.u8(0);
                limit_bytes.save(w);
            }
            QueueConfig::Red {
                limit_bytes,
                min_th,
                max_th,
                max_p,
                w_q,
                mark_ecn,
            } => {
                w.u8(1);
                limit_bytes.save(w);
                min_th.save(w);
                max_th.save(w);
                max_p.save(w);
                w_q.save(w);
                mark_ecn.save(w);
            }
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => QueueConfig::DropTail {
                limit_bytes: u32::load(r)?,
            },
            1 => QueueConfig::Red {
                limit_bytes: u32::load(r)?,
                min_th: u32::load(r)?,
                max_th: u32::load(r)?,
                max_p: f64::load(r)?,
                w_q: f64::load(r)?,
                mark_ecn: bool::load(r)?,
            },
            t => return Err(SnapshotError::Corrupt(format!("invalid queue config {t}"))),
        })
    }
}

snapshot_struct!(Queue {
    config,
    packets,
    bytes,
    avg,
    count,
    rng,
    drops,
    marks,
    accepted
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, Packet};

    fn pkt(bytes: u32, ecn: bool) -> Packet {
        let mut p = Packet::data(
            FlowId {
                src: 0,
                dst: 1,
                sport: 1,
                dport: 1,
            },
            0,
            bytes - 52,
            1 << 20,
            false,
            ecn,
            Time::ZERO,
        );
        p.bytes = bytes;
        p
    }

    #[test]
    fn droptail_fifo_order() {
        let mut q = Queue::new(
            QueueConfig::DropTail {
                limit_bytes: 10_000,
            },
            1,
        );
        for i in 0..3 {
            let mut p = pkt(1000, false);
            p.sent_at = Time(i);
            assert_eq!(q.enqueue(p, Time(0)), Enqueue::Accepted);
        }
        assert_eq!(q.bytes(), 3000);
        assert_eq!(q.dequeue().unwrap().sent_at, Time(0));
        assert_eq!(q.dequeue().unwrap().sent_at, Time(1));
        assert_eq!(q.bytes(), 1000);
    }

    #[test]
    fn droptail_overflow_drops() {
        let mut q = Queue::new(QueueConfig::DropTail { limit_bytes: 2500 }, 1);
        assert_eq!(q.enqueue(pkt(1000, false), Time(0)), Enqueue::Accepted);
        assert_eq!(q.enqueue(pkt(1000, false), Time(0)), Enqueue::Accepted);
        assert_eq!(q.enqueue(pkt(1000, false), Time(0)), Enqueue::Dropped);
        assert_eq!(q.drops, 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn dctcp_marks_above_threshold() {
        let mut q = Queue::new(QueueConfig::dctcp(1_000_000, 3000), 1);
        // Below K: no marks.
        assert_eq!(q.enqueue(pkt(1500, true), Time(0)), Enqueue::Accepted);
        assert_eq!(q.enqueue(pkt(1500, true), Time(0)), Enqueue::Accepted);
        assert_eq!(q.marks, 0);
        // Queue now 3000 >= K: subsequent ECN packets get marked.
        assert_eq!(q.enqueue(pkt(1500, true), Time(0)), Enqueue::Accepted);
        assert_eq!(q.marks, 1);
        let _ = q.dequeue();
        let _ = q.dequeue();
        let marked = q.dequeue().unwrap();
        assert!(marked.ecn_ce);
    }

    #[test]
    fn dctcp_drops_non_ecn_above_threshold() {
        let mut q = Queue::new(QueueConfig::dctcp(1_000_000, 1000), 1);
        assert_eq!(q.enqueue(pkt(1500, false), Time(0)), Enqueue::Accepted);
        // avg = 1500 >= K, non-ECN packet is dropped instead of marked.
        assert_eq!(q.enqueue(pkt(1500, false), Time(0)), Enqueue::Dropped);
    }

    #[test]
    fn red_early_drops_between_thresholds() {
        let mut q = Queue::new(
            QueueConfig::Red {
                limit_bytes: 1_000_000,
                min_th: 5_000,
                max_th: 15_000,
                max_p: 0.5,
                w_q: 1.0,
                mark_ecn: false,
            },
            42,
        );
        let mut drops = 0;
        for _ in 0..200 {
            if q.enqueue(pkt(1500, false), Time(0)) == Enqueue::Dropped {
                drops += 1;
            }
            if q.bytes() > 10_000 {
                let _ = q.dequeue();
            }
        }
        assert!(drops > 0, "RED should early-drop under sustained load");
        assert!(drops < 200, "RED must not drop everything");
    }

    #[test]
    fn red_queue_never_exceeds_limit() {
        let mut q = Queue::new(QueueConfig::red(10_000, 2_000, 8_000, false), 7);
        for _ in 0..100 {
            let _ = q.enqueue(pkt(1500, false), Time(0));
        }
        assert!(q.bytes() <= 10_000);
    }

    #[test]
    fn queue_delay_timestamps() {
        let mut q = Queue::new(
            QueueConfig::DropTail {
                limit_bytes: 10_000,
            },
            1,
        );
        assert_eq!(q.enqueue(pkt(1000, false), Time(500)), Enqueue::Accepted);
        assert_eq!(q.dequeue().unwrap().enqueued_at, Time(500));
    }
}
