//! Checkpoint-encoding helpers for model state (DESIGN.md §4.2).
//!
//! The [`Snapshot`] encoding must be canonical — equal states, equal bytes
//! — but `HashMap` iteration order is arbitrary and [`Summary`] keeps its
//! accumulator private. These helpers bridge both: maps are written in
//! sorted key order, summaries through their raw-parts accessors.

use std::collections::HashMap;
use std::hash::Hash;

use unison_core::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use unison_stats::Summary;

/// Writes a map as `len` followed by `(key, value)` pairs in ascending key
/// order (the canonical form; plain iteration order is nondeterministic).
pub(crate) fn save_map<K, V>(m: &HashMap<K, V>, w: &mut SnapshotWriter)
where
    K: Snapshot + Ord + Eq + Hash,
    V: Snapshot,
{
    (m.len() as u64).save(w);
    let mut keys: Vec<&K> = m.keys().collect();
    keys.sort_unstable();
    for k in keys {
        k.save(w);
        m[k].save(w);
    }
}

/// Inverse of [`save_map`].
pub(crate) fn load_map<K, V>(r: &mut SnapshotReader<'_>) -> Result<HashMap<K, V>, SnapshotError>
where
    K: Snapshot + Eq + Hash,
    V: Snapshot,
{
    let n = usize::load(r)?;
    let mut out = HashMap::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let k = K::load(r)?;
        let v = V::load(r)?;
        out.insert(k, v);
    }
    Ok(out)
}

/// Writes a summary's raw accumulator (bit-exact, including the Welford
/// `m2` term and the `±inf` min/max of an empty summary).
pub(crate) fn save_summary(s: &Summary, w: &mut SnapshotWriter) {
    let (count, mean, m2, min, max, sum) = s.to_raw_parts();
    count.save(w);
    mean.save(w);
    m2.save(w);
    min.save(w);
    max.save(w);
    sum.save(w);
}

/// Inverse of [`save_summary`].
pub(crate) fn load_summary(r: &mut SnapshotReader<'_>) -> Result<Summary, SnapshotError> {
    Ok(Summary::from_raw_parts(
        u64::load(r)?,
        f64::load(r)?,
        f64::load(r)?,
        f64::load(r)?,
        f64::load(r)?,
        f64::load(r)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_encoding_is_sorted_and_roundtrips() {
        let mut m = HashMap::new();
        m.insert(9u32, 90u64);
        m.insert(1u32, 10u64);
        m.insert(5u32, 50u64);
        let mut w = SnapshotWriter::new();
        save_map(&m, &mut w);
        let bytes = w.into_bytes();
        // len, then keys 1, 5, 9 in order.
        assert_eq!(&bytes[8..12], &1u32.to_le_bytes());
        assert_eq!(&bytes[20..24], &5u32.to_le_bytes());
        let mut r = SnapshotReader::new(&bytes);
        let out: HashMap<u32, u64> = load_map(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(out, m);
    }

    #[test]
    fn summary_roundtrips_bit_exact() {
        let mut s = Summary::new();
        for x in [3.5, -1.0, 0.25, 1e9] {
            s.add(x);
        }
        let mut w = SnapshotWriter::new();
        save_summary(&s, &mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let out = load_summary(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(out.to_raw_parts(), s.to_raw_parts());
        // Empty summaries keep their infinities.
        let mut w = SnapshotWriter::new();
        save_summary(&Summary::new(), &mut w);
        let bytes = w.into_bytes();
        let out = load_summary(&mut SnapshotReader::new(&bytes)).unwrap();
        assert_eq!(out.min(), f64::INFINITY);
        assert_eq!(out.max(), f64::NEG_INFINITY);
    }
}
