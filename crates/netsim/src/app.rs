//! Applications beyond finite TCP flows: UDP On/Off sources.
//!
//! An On/Off source alternates exponentially distributed ON and OFF
//! periods; while ON it emits fixed-size UDP datagrams at a constant rate.
//! Bursty aggregates of such sources model the extreme scenarios the paper
//! motivates (DDoS-like floods, synchronized bursts) that stateful TCP
//! cannot express.

use unison_core::{snapshot_struct, DataRate, Rng, Time};

/// Configuration of one On/Off UDP source.
#[derive(Clone, Debug)]
pub struct OnOffConfig {
    /// Destination node.
    pub dst: u32,
    /// Sending rate while ON.
    pub rate: DataRate,
    /// Datagram payload bytes.
    pub pkt_bytes: u32,
    /// Mean ON duration.
    pub mean_on: Time,
    /// Mean OFF duration.
    pub mean_off: Time,
    /// Stop emitting after this time.
    pub until: Time,
    /// Per-source RNG seed.
    pub seed: u64,
}

/// Runtime state of an On/Off source (owned by its node).
#[derive(Debug)]
pub struct OnOffApp {
    /// Static configuration.
    pub cfg: OnOffConfig,
    rng: Rng,
    /// Whether the source is currently in an ON period.
    on: bool,
    /// When the current period ends.
    period_end: Time,
    /// Next datagram sequence number.
    seq: u64,
    /// Datagrams emitted.
    pub sent: u64,
}

/// What the node should do after an On/Off tick.
#[derive(Debug, PartialEq, Eq)]
pub enum OnOffAction {
    /// Emit one datagram of `len` bytes (seq provided) and tick again
    /// after `next` elapses.
    Send {
        /// Sequence number for the datagram.
        seq: u64,
        /// Payload length.
        len: u32,
        /// Delay until the next tick.
        next: Time,
    },
    /// Idle (OFF period); tick again after `next` elapses.
    Idle {
        /// Delay until the next tick.
        next: Time,
    },
    /// Past `until`: stop ticking.
    Done,
}

impl OnOffApp {
    /// Creates a source; the first tick should be scheduled immediately.
    pub fn new(cfg: OnOffConfig) -> Self {
        let rng = Rng::new(cfg.seed);
        OnOffApp {
            cfg,
            rng,
            on: false,
            period_end: Time::ZERO,
            seq: 0,
            sent: 0,
        }
    }

    /// Interval between datagrams while ON.
    fn gap(&self) -> Time {
        self.cfg.rate.tx_time(self.cfg.pkt_bytes + 52)
    }

    /// Advances the source at time `now`.
    pub fn tick(&mut self, now: Time) -> OnOffAction {
        if now >= self.cfg.until {
            return OnOffAction::Done;
        }
        // Flip periods as needed.
        while now >= self.period_end {
            self.on = !self.on;
            let mean = if self.on {
                self.cfg.mean_on
            } else {
                self.cfg.mean_off
            };
            let dur = self.rng.next_exp(mean.as_nanos() as f64).max(1.0) as u64;
            self.period_end = self.period_end.max(now).saturating_add(Time(dur));
        }
        if self.on {
            let seq = self.seq;
            self.seq += 1;
            self.sent += 1;
            OnOffAction::Send {
                seq,
                len: self.cfg.pkt_bytes,
                next: self.gap(),
            }
        } else {
            OnOffAction::Idle {
                next: self.period_end.saturating_sub(now).max(Time(1)),
            }
        }
    }
}

snapshot_struct!(OnOffConfig {
    dst,
    rate,
    pkt_bytes,
    mean_on,
    mean_off,
    until,
    seed
});

snapshot_struct!(OnOffApp {
    cfg,
    rng,
    on,
    period_end,
    seq,
    sent
});

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OnOffConfig {
        OnOffConfig {
            dst: 5,
            rate: DataRate::mbps(100),
            pkt_bytes: 1_000,
            mean_on: Time::from_micros(500),
            mean_off: Time::from_micros(500),
            until: Time::from_millis(10),
            seed: 3,
        }
    }

    #[test]
    fn alternates_on_and_off() {
        let mut app = OnOffApp::new(cfg());
        let mut now = Time::ZERO;
        let mut sends = 0;
        let mut idles = 0;
        for _ in 0..10_000 {
            match app.tick(now) {
                OnOffAction::Send { next, .. } => {
                    sends += 1;
                    now += next;
                }
                OnOffAction::Idle { next } => {
                    idles += 1;
                    now += next;
                }
                OnOffAction::Done => break,
            }
        }
        assert!(sends > 40, "sends {sends}");
        assert!(idles > 3, "idles {idles}");
        assert_eq!(app.sent, sends);
    }

    #[test]
    fn stops_at_deadline() {
        let mut app = OnOffApp::new(cfg());
        assert_eq!(app.tick(Time::from_millis(10)), OnOffAction::Done);
        assert_eq!(app.tick(Time::from_millis(20)), OnOffAction::Done);
    }

    #[test]
    fn on_rate_matches_configuration() {
        // While ON, gaps equal serialization time at the configured rate.
        let mut app = OnOffApp::new(OnOffConfig {
            mean_off: Time(1),
            mean_on: Time::from_millis(5),
            ..cfg()
        });
        let mut now = Time::ZERO;
        // Skip to an ON period.
        let gap = loop {
            match app.tick(now) {
                OnOffAction::Send { next, .. } => break next,
                OnOffAction::Idle { next } => now += next,
                OnOffAction::Done => panic!("ended too early"),
            }
        };
        // 1052 wire bytes at 100 Mbps = 84.16 us.
        assert_eq!(gap, DataRate::mbps(100).tx_time(1_052));
    }

    #[test]
    fn sequence_numbers_are_dense() {
        let mut app = OnOffApp::new(cfg());
        let mut now = Time::ZERO;
        let mut expect = 0u64;
        for _ in 0..1_000 {
            match app.tick(now) {
                OnOffAction::Send { seq, next, .. } => {
                    assert_eq!(seq, expect);
                    expect += 1;
                    now += next;
                }
                OnOffAction::Idle { next } => now += next,
                OnOffAction::Done => break,
            }
        }
    }
}
