//! Global flow monitoring.
//!
//! Each node records its local view (sender/receiver socket state plus the
//! `NodeMonitor` shard); [`FlowReport::collect`] merges the shards *after*
//! the run, in deterministic node order. This is the lock-free counterpart
//! of ns-3's FlowMonitor for the Unison execution model: no shared mutable
//! maps during the simulation, yet global per-flow statistics spanning LPs
//! — and bit-identical output regardless of thread count.

use std::time::Duration;

use unison_core::{Time, World};
use unison_stats::{Histogram, Summary};

use crate::node::NetNode;
use crate::packet::FlowId;

/// Statistics of one flow, assembled from both endpoints.
#[derive(Clone, Debug)]
pub struct FlowStat {
    /// Flow identity.
    pub flow: FlowId,
    /// Flow size in bytes.
    pub bytes: u64,
    /// Time the first segment was sent.
    pub started: Time,
    /// Completion time at the receiver (all bytes in order), if completed.
    pub completed: Option<Time>,
    /// Segments retransmitted by the sender.
    pub retransmits: u64,
}

impl FlowStat {
    /// Flow completion time, if the flow completed.
    pub fn fct(&self) -> Option<Time> {
        self.completed.map(|c| c.saturating_sub(self.started))
    }

    /// Goodput in bits/sec, if the flow completed.
    pub fn throughput_bps(&self) -> Option<f64> {
        let fct = self.fct()?;
        if fct == Time::ZERO {
            return None;
        }
        Some(self.bytes as f64 * 8.0 / fct.as_secs_f64())
    }
}

/// Aggregated, deterministic global statistics of a run.
#[derive(Debug, Default)]
pub struct FlowReport {
    /// Per-flow records, sorted by flow id.
    pub flows: Vec<FlowStat>,
    /// FCT distribution over completed flows, microseconds.
    pub fct_us: Histogram,
    /// RTT samples over all senders, nanoseconds.
    pub rtt_ns: Summary,
    /// Queueing delay over all devices, nanoseconds.
    pub queue_delay_ns: Summary,
    /// Per-completed-flow goodput, bits/sec.
    pub throughput_bps: Summary,
    /// Queue drops over all devices.
    pub drops: u64,
    /// ECN marks over all devices.
    pub marks: u64,
    /// Packets accepted into queues over all devices.
    pub queued_packets: u64,
    /// Packets dropped for lack of a route.
    pub routing_drops: u64,
    /// Packets dropped by injected loss bursts.
    pub burst_drops: u64,
    /// Sender retransmissions.
    pub retransmits: u64,
    /// RTO timer fires.
    pub rto_fires: u64,
    /// Payload bytes delivered in order at receivers.
    pub bytes_delivered: u64,
    /// UDP datagrams delivered.
    pub udp_pkts: u64,
    /// UDP payload bytes delivered.
    pub udp_bytes: u64,
    /// UDP datagrams emitted by On/Off sources.
    pub udp_sent: u64,
}

impl FlowReport {
    /// Merges all node shards of a finished world.
    pub fn collect(world: &World<NetNode>) -> Self {
        let mut report = FlowReport::default();
        // Receiver completion times keyed by flow, gathered first.
        let mut rx_done: std::collections::HashMap<FlowId, Time> = std::collections::HashMap::new();
        for node in world.nodes() {
            for (flow, rcv) in &node.receivers {
                if let Some(t) = rcv.completed_at {
                    rx_done.insert(*flow, t);
                }
                report.bytes_delivered += rcv.rcv_nxt();
            }
        }
        for node in world.nodes() {
            for rx in node.udp_rx.values() {
                report.udp_pkts += rx.pkts;
                report.udp_bytes += rx.bytes;
            }
            for app in &node.apps {
                report.udp_sent += app.sent;
            }
            report.rtt_ns.merge(&node.mon.rtt_ns);
            report.queue_delay_ns.merge(&node.mon.queue_delay_ns);
            report.routing_drops += node.mon.routing_drops;
            report.burst_drops += node.mon.burst_drops;
            report.rto_fires += node.mon.rto_fires;
            for dev in &node.devices {
                report.drops += dev.queue.drops;
                report.marks += dev.queue.marks;
                report.queued_packets += dev.queue.accepted;
            }
            let mut flows: Vec<&FlowId> = node.senders.keys().collect();
            flows.sort_unstable();
            for flow in flows {
                let snd = &node.senders[flow];
                let stat = FlowStat {
                    flow: *flow,
                    bytes: snd.size,
                    started: snd.first_sent.unwrap_or(Time::ZERO),
                    completed: rx_done.get(flow).copied(),
                    retransmits: snd.retransmits,
                };
                report.retransmits += snd.retransmits;
                if let Some(fct) = stat.fct() {
                    report.fct_us.add(fct.as_nanos() as f64 / 1_000.0);
                }
                if let Some(bps) = stat.throughput_bps() {
                    report.throughput_bps.add(bps);
                }
                report.flows.push(stat);
            }
        }
        report.flows.sort_by_key(|s| s.flow);
        report
    }

    /// Number of flows observed.
    pub fn total_flows(&self) -> u64 {
        self.flows.len() as u64
    }

    /// Number of completed flows.
    pub fn completed_flows(&self) -> u64 {
        self.flows.iter().filter(|f| f.completed.is_some()).count() as u64
    }

    /// Mean FCT over completed flows.
    pub fn mean_fct(&self) -> Duration {
        Duration::from_micros(self.fct_us.mean() as u64)
    }

    /// Mean RTT over all samples.
    pub fn mean_rtt(&self) -> Duration {
        Duration::from_nanos(self.rtt_ns.mean() as u64)
    }

    /// Jain's fairness index over per-flow goodputs of completed flows.
    pub fn jain_index(&self) -> f64 {
        let tputs: Vec<f64> = self
            .flows
            .iter()
            .filter_map(|f| f.throughput_bps())
            .collect();
        if tputs.is_empty() {
            return 1.0;
        }
        let sum: f64 = tputs.iter().sum();
        let sum_sq: f64 = tputs.iter().map(|x| x * x).sum();
        (sum * sum) / (tputs.len() as f64 * sum_sq)
    }

    /// A compact one-line summary for harness output.
    pub fn one_line(&self) -> String {
        format!(
            "flows={} completed={} mean_fct={:.3}ms p99_fct={:.3}ms mean_rtt={:.3}ms \
             mean_tput={:.2}Mbps drops={} marks={} retx={}",
            self.total_flows(),
            self.completed_flows(),
            self.fct_us.mean() / 1_000.0,
            self.fct_us.percentile(99.0) / 1_000.0,
            self.rtt_ns.mean() / 1e6,
            self.throughput_bps.mean() / 1e6,
            self.drops,
            self.marks,
            self.retransmits,
        )
    }
}
