//! Topology-change helpers for global events (§4.2 dynamic topologies).
//!
//! Reconfigurable-DCN experiments (Fig. 10d) and WAN convergence runs tear
//! links down and bring them back mid-simulation. Both the model layer
//! (device state, routing tables) and the kernel layer (link graph →
//! lookahead) must see the change; these helpers do both sides from inside
//! a global event.

use unison_core::{NodeId, WorldAccess};

use crate::build::BuiltLink;
use crate::node::NetNode;
use crate::route::{compute_static_tables, Routing};

/// Administratively enables/disables a link: both endpoint devices change
/// state (RIP reacts by invalidating routes) and the kernel's link graph is
/// updated for lookahead bookkeeping.
pub fn set_link_state(wa: &mut WorldAccess<'_, NetNode>, link: &BuiltLink, up: bool) {
    wa.node_mut(NodeId(link.a as u32))
        .set_device_state(link.a_dev, up);
    wa.node_mut(NodeId(link.b as u32))
        .set_device_state(link.b_dev, up);
    if up {
        wa.restore_link(link.core_id);
    } else {
        wa.remove_link(link.core_id);
    }
}

/// Recomputes every node's static ECMP table from the current device states
/// (ignored for RIP nodes, which converge on their own). Call after a batch
/// of [`set_link_state`] changes.
pub fn recompute_static_routes(wa: &mut WorldAccess<'_, NetNode>) {
    let n = wa.node_count();
    let mut adj: Vec<Vec<(u32, u8)>> = Vec::with_capacity(n);
    for i in 0..n {
        let node = wa.node_mut(NodeId(i as u32));
        adj.push(
            node.devices
                .iter()
                .enumerate()
                .filter(|(_, d)| d.up)
                .map(|(di, d)| (d.peer.0, di as u8))
                .collect(),
        );
    }
    let tables = compute_static_tables(&adj);
    for (i, table) in tables.into_iter().enumerate() {
        let node = wa.node_mut(NodeId(i as u32));
        if matches!(node.routing, Routing::Static(_)) {
            node.routing = Routing::Static(table);
        }
    }
}
