//! Topology-change helpers for global events (§4.2 dynamic topologies)
//! and the simulated-network fault axis (DESIGN.md §4.7).
//!
//! Reconfigurable-DCN experiments (Fig. 10d) and WAN convergence runs tear
//! links down and bring them back mid-simulation. Both the model layer
//! (device state, routing tables) and the kernel layer (link graph →
//! lookahead) must see the change; these helpers do both sides from inside
//! a global event.
//!
//! On top of the raw helpers, [`NetFault`] + [`install_faults`] describe a
//! *schedule* of simulated network failures — link flaps, node
//! crash/recovery, deterministic loss bursts — as global events keyed off
//! virtual time. Globals execute at an exact point in the deterministic
//! event order, so a fault schedule perturbs the simulation identically at
//! every worker thread count and on every rerun; the golden-digest tests
//! in `crates/netsim/tests/net_faults.rs` pin that invariant.

use unison_core::{NodeId, Time, WorldAccess};

use crate::build::{BuiltLink, NetSim};
use crate::node::{LossState, NetNode};
use crate::route::{compute_static_tables, Routing};

/// Administratively enables/disables a link: both endpoint devices change
/// state (RIP reacts by invalidating routes) and the kernel's link graph is
/// updated for lookahead bookkeeping.
pub fn set_link_state(wa: &mut WorldAccess<'_, NetNode>, link: &BuiltLink, up: bool) {
    wa.node_mut(NodeId(link.a as u32))
        .set_device_state(link.a_dev, up);
    wa.node_mut(NodeId(link.b as u32))
        .set_device_state(link.b_dev, up);
    if up {
        wa.restore_link(link.core_id);
    } else {
        wa.remove_link(link.core_id);
    }
}

/// Recomputes every node's static ECMP table from the current device states
/// (ignored for RIP nodes, which converge on their own). Call after a batch
/// of [`set_link_state`] changes.
pub fn recompute_static_routes(wa: &mut WorldAccess<'_, NetNode>) {
    let n = wa.node_count();
    let mut adj: Vec<Vec<(u32, u8)>> = Vec::with_capacity(n);
    for i in 0..n {
        let node = wa.node_mut(NodeId(i as u32));
        adj.push(
            node.devices
                .iter()
                .enumerate()
                .filter(|(_, d)| d.up)
                .map(|(di, d)| (d.peer.0, di as u8))
                .collect(),
        );
    }
    let tables = compute_static_tables(&adj);
    for (i, table) in tables.into_iter().enumerate() {
        let node = wa.node_mut(NodeId(i as u32));
        if matches!(node.routing, Routing::Static(_)) {
            node.routing = Routing::Static(table);
        }
    }
}

/// One simulated network failure on the fault axis, keyed off virtual
/// time. Install with [`install_faults`].
#[derive(Clone, Copy, Debug)]
pub enum NetFault {
    /// Link `link` (an index into [`NetSim::links`]) goes down at
    /// `down_at` and is restored at `up_at`.
    LinkFlap {
        /// Index into [`NetSim::links`].
        link: usize,
        /// Failure time.
        down_at: Time,
        /// Restoration time.
        up_at: Time,
    },
    /// Every link touching `node` goes down at `at` — the node falls off
    /// the network — and is restored at `recover_at`.
    NodeCrash {
        /// Topology node index.
        node: usize,
        /// Crash time.
        at: Time,
        /// Recovery time.
        recover_at: Time,
    },
    /// Between `from` and `until`, `node` drops every `period`-th packet
    /// it routes (see [`LossState`]) — a congestion-free loss regime that
    /// exercises retransmission paths without any randomness.
    LossBurst {
        /// Topology node index.
        node: usize,
        /// Burst start.
        from: Time,
        /// Burst end.
        until: Time,
        /// Drop every `period`-th routed packet.
        period: u64,
    },
}

/// Installs a fault schedule as global events on a built simulation.
///
/// Each fault becomes a pair of globals (inject, restore) that mutate both
/// the model layer and — for topology faults — the kernel's link graph,
/// then recompute static routes (RIP nodes converge on their own). Call
/// before running; the schedule perturbs the run at exact virtual-time
/// points, so results stay bit-identical across thread counts and reruns.
///
/// # Panics
///
/// On an out-of-range link/node index, a restore time not after the
/// inject time, or a zero loss period — a fault plan that cannot mean
/// anything is a harness bug, not a runtime condition.
pub fn install_faults(sim: &mut NetSim, faults: &[NetFault]) {
    let node_count = sim.world.node_count();
    for fault in faults {
        match *fault {
            NetFault::LinkFlap {
                link,
                down_at,
                up_at,
            } => {
                assert!(down_at < up_at, "link flap must restore after failing");
                let l = sim.links[link];
                sim.world.add_global_event(
                    down_at,
                    Box::new(move |wa| {
                        set_link_state(wa, &l, false);
                        recompute_static_routes(wa);
                    }),
                );
                sim.world.add_global_event(
                    up_at,
                    Box::new(move |wa| {
                        set_link_state(wa, &l, true);
                        recompute_static_routes(wa);
                    }),
                );
            }
            NetFault::NodeCrash {
                node,
                at,
                recover_at,
            } => {
                assert!(at < recover_at, "node crash must recover after failing");
                assert!(node < node_count, "crash target {node} out of range");
                let touching: Vec<BuiltLink> = sim
                    .links
                    .iter()
                    .filter(|l| l.a == node || l.b == node)
                    .copied()
                    .collect();
                assert!(!touching.is_empty(), "node {node} has no links to fail");
                let restored = touching.clone();
                sim.world.add_global_event(
                    at,
                    Box::new(move |wa| {
                        for l in &touching {
                            set_link_state(wa, l, false);
                        }
                        recompute_static_routes(wa);
                    }),
                );
                sim.world.add_global_event(
                    recover_at,
                    Box::new(move |wa| {
                        for l in &restored {
                            set_link_state(wa, l, true);
                        }
                        recompute_static_routes(wa);
                    }),
                );
            }
            NetFault::LossBurst {
                node,
                from,
                until,
                period,
            } => {
                assert!(from < until, "loss burst must end after starting");
                assert!(node < node_count, "loss target {node} out of range");
                assert!(period > 0, "loss period must be positive");
                sim.world.add_global_event(
                    from,
                    Box::new(move |wa| {
                        wa.node_mut(NodeId(node as u32)).loss =
                            Some(LossState { period, counter: 0 });
                    }),
                );
                sim.world.add_global_event(
                    until,
                    Box::new(move |wa| {
                        wa.node_mut(NodeId(node as u32)).loss = None;
                    }),
                );
            }
        }
    }
}
