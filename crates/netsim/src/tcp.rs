//! TCP senders and receivers: NewReno congestion control and DCTCP.
//!
//! Sockets are pure state machines: they consume protocol events (ACK
//! arrivals, data arrivals, retransmission timeouts) and emit packets into
//! a caller-provided buffer. The surrounding node schedules the actual
//! events and timers, keeping the transport logic independently testable.
//!
//! NewReno implements slow start, congestion avoidance, fast
//! retransmit/recovery with partial-ACK handling, and RFC 6298 RTO
//! estimation. DCTCP layers the ECN-fraction estimator (`alpha`) and the
//! proportional window reduction `cwnd *= 1 - alpha/2` on top.

use std::collections::BTreeMap;

use unison_core::{snapshot_struct, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, Time};

use crate::packet::{FlowId, Packet, MSS};

/// Transport flavor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransportKind {
    /// TCP NewReno (loss-based).
    NewReno,
    /// DCTCP (ECN-fraction-based).
    Dctcp,
}

/// Transport configuration shared by all sockets of a simulation.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Flavor.
    pub kind: TransportKind,
    /// Initial congestion window in segments.
    pub init_cwnd: u32,
    /// Lower bound on the retransmission timeout.
    pub min_rto: Time,
    /// RTO before the first valid RTT sample. Karn's rule never samples
    /// retransmitted segments, so a flow that loses its whole first
    /// window recovers at this timeout — a DCN profile wants it far below
    /// the RFC 6298 conservative default.
    pub initial_rto: Time,
    /// DCTCP's EWMA gain g.
    pub dctcp_g: f64,
    /// RFC 3042 limited transmit: send one new segment on each of the
    /// first two duplicate ACKs (helps recovery at small windows).
    pub limited_transmit: bool,
}

impl TcpConfig {
    /// NewReno with ns-3-like defaults (200 ms minimum RTO).
    pub fn newreno() -> Self {
        TcpConfig {
            kind: TransportKind::NewReno,
            init_cwnd: 10,
            min_rto: Time::from_millis(200),
            initial_rto: Time::from_millis(200),
            dctcp_g: 1.0 / 16.0,
            limited_transmit: true,
        }
    }

    /// A datacenter-tuned variant (1 ms minimum RTO), for scenarios that
    /// model modern DCN stacks rather than ns-3 defaults.
    pub fn newreno_dcn() -> Self {
        TcpConfig {
            min_rto: Time::from_millis(1),
            initial_rto: Time::from_millis(10),
            ..Self::newreno()
        }
    }

    /// DCTCP defaults.
    pub fn dctcp() -> Self {
        TcpConfig {
            kind: TransportKind::Dctcp,
            ..Self::newreno()
        }
    }
}

/// Congestion-control state.
#[derive(Clone, Copy, PartialEq, Debug)]
enum CcState {
    /// Slow start / congestion avoidance.
    Open,
    /// NewReno fast recovery until `recover` is cumulatively ACKed.
    FastRecovery {
        /// snd_nxt at loss detection.
        recover: u64,
    },
}

/// What the caller must do after feeding an event to a sender.
#[derive(Clone, Copy, Debug, Default)]
pub struct SenderUpdate {
    /// A valid RTT sample (non-retransmitted segment), if any.
    pub rtt_sample: Option<Time>,
    /// (Re-)arm the RTO timer for `rto()` from now (a new generation).
    pub rearm_rto: bool,
    /// All data has been cumulatively acknowledged.
    pub completed: bool,
}

/// A TCP sender for one finite flow.
#[derive(Debug)]
pub struct TcpSender {
    /// Flow identity (forward direction).
    pub flow: FlowId,
    /// Total bytes to deliver.
    pub size: u64,
    cfg: TcpConfig,
    cwnd: f64,
    ssthresh: f64,
    snd_nxt: u64,
    snd_una: u64,
    dup_acks: u32,
    state: CcState,
    srtt_ns: f64,
    rttvar_ns: f64,
    rto: Time,
    /// Timer generation: stale RTO events are ignored.
    pub rto_gen: u64,
    // DCTCP estimator.
    alpha: f64,
    ce_bytes: u64,
    acked_bytes: u64,
    window_end: u64,
    /// Statistics: segments retransmitted.
    pub retransmits: u64,
    /// RTO deadline managed by the owning node (lazy timer scheme: a
    /// timer event that fires before the deadline is re-scheduled instead
    /// of acting).
    pub rto_deadline: Time,
    /// Whether a timer event is currently outstanding.
    pub timer_pending: bool,
    /// Virtual fire time of the tracked outstanding timer event. RTO
    /// estimates can *shrink* (the first RTT sample replaces the
    /// conservative initial RTO), moving the deadline earlier than an
    /// already-scheduled event; the owning node then schedules a new,
    /// earlier event and this field tracks it. Events arriving before
    /// `timer_at` are superseded and ignored.
    pub timer_at: Time,
    /// Set when the flow completed (all bytes ACKed).
    pub completed_at: Option<Time>,
    /// Time the first segment was sent.
    pub first_sent: Option<Time>,
}

impl TcpSender {
    /// Creates a sender for `size` bytes on `flow`.
    pub fn new(flow: FlowId, size: u64, cfg: TcpConfig) -> Self {
        TcpSender {
            flow,
            size,
            cfg,
            cwnd: (cfg.init_cwnd * MSS) as f64,
            ssthresh: f64::INFINITY,
            snd_nxt: 0,
            snd_una: 0,
            dup_acks: 0,
            state: CcState::Open,
            srtt_ns: 0.0,
            rttvar_ns: 0.0,
            rto: cfg.initial_rto.max(cfg.min_rto),
            rto_gen: 0,
            alpha: 0.0,
            ce_bytes: 0,
            acked_bytes: 0,
            window_end: 0,
            retransmits: 0,
            rto_deadline: Time::MAX,
            timer_pending: false,
            timer_at: Time::MAX,
            completed_at: None,
            first_sent: None,
        }
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    /// Current DCTCP alpha (0 for NewReno).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> Time {
        self.rto
    }

    /// Whether all data is ACKed.
    pub fn is_complete(&self) -> bool {
        self.snd_una >= self.size
    }

    /// Bytes in flight.
    fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn ecn_capable(&self) -> bool {
        self.cfg.kind == TransportKind::Dctcp
    }

    /// Opens the flow: transmit the initial window. Returns true if the RTO
    /// timer must be armed.
    pub fn start(&mut self, now: Time, out: &mut Vec<Packet>) -> bool {
        self.first_sent = Some(now);
        self.transmit(now, out);
        !out.is_empty()
    }

    /// Fills the congestion window with new segments.
    fn transmit(&mut self, now: Time, out: &mut Vec<Packet>) {
        while self.snd_nxt < self.size && self.flight() + MSS as u64 / 2 < self.cwnd as u64 {
            let len = MSS.min((self.size - self.snd_nxt) as u32);
            out.push(Packet::data(
                self.flow,
                self.snd_nxt,
                len,
                self.size,
                false,
                self.ecn_capable(),
                now,
            ));
            self.snd_nxt += len as u64;
            if len < MSS {
                break;
            }
        }
    }

    /// Retransmits the first unacknowledged segment.
    fn retransmit_head(&mut self, now: Time, out: &mut Vec<Packet>) {
        let len = MSS.min((self.size - self.snd_una) as u32);
        out.push(Packet::data(
            self.flow,
            self.snd_una,
            len,
            self.size,
            true,
            self.ecn_capable(),
            now,
        ));
        self.retransmits += 1;
    }

    /// Updates the RFC 6298 estimator with one sample.
    fn update_rtt(&mut self, sample: Time) {
        let r = sample.as_nanos() as f64;
        if self.srtt_ns == 0.0 {
            self.srtt_ns = r;
            self.rttvar_ns = r / 2.0;
        } else {
            self.rttvar_ns = 0.75 * self.rttvar_ns + 0.25 * (self.srtt_ns - r).abs();
            self.srtt_ns = 0.875 * self.srtt_ns + 0.125 * r;
        }
        let rto_ns = self.srtt_ns + (4.0 * self.rttvar_ns).max(1.0);
        self.rto = Time::from_nanos(rto_ns as u64).max(self.cfg.min_rto);
    }

    /// DCTCP per-window bookkeeping; returns the window-boundary reduction
    /// factor when a window just ended.
    fn dctcp_on_ack(&mut self, acked: u64, ece: bool) {
        if self.cfg.kind != TransportKind::Dctcp {
            return;
        }
        self.acked_bytes += acked;
        if ece {
            self.ce_bytes += acked;
        }
        if self.snd_una >= self.window_end {
            if self.acked_bytes > 0 {
                let f = self.ce_bytes as f64 / self.acked_bytes as f64;
                self.alpha = (1.0 - self.cfg.dctcp_g) * self.alpha + self.cfg.dctcp_g * f;
                if self.ce_bytes > 0 {
                    self.cwnd = (self.cwnd * (1.0 - self.alpha / 2.0)).max((2 * MSS) as f64);
                    self.ssthresh = self.cwnd;
                }
            }
            self.ce_bytes = 0;
            self.acked_bytes = 0;
            self.window_end = self.snd_nxt;
        }
    }

    /// Handles a cumulative ACK.
    pub fn on_ack(
        &mut self,
        ack: u64,
        ece: bool,
        echo_ts: Time,
        echo_retx: bool,
        now: Time,
        out: &mut Vec<Packet>,
    ) -> SenderUpdate {
        let mut up = SenderUpdate::default();
        if self.completed_at.is_some() {
            return up;
        }
        if ack > self.snd_una {
            let acked = ack - self.snd_una;
            self.snd_una = ack;
            // After an RTO rewound snd_nxt (go-back-N), a late ACK for
            // pre-timeout data can acknowledge past it; keep the invariant
            // snd_nxt >= snd_una so flight() never underflows.
            self.snd_nxt = self.snd_nxt.max(ack);
            self.dup_acks = 0;
            if !echo_retx {
                let sample = now.saturating_sub(echo_ts);
                self.update_rtt(sample);
                up.rtt_sample = Some(sample);
            }
            match self.state {
                CcState::Open => {
                    if self.cwnd < self.ssthresh {
                        // Slow start: one MSS per MSS acked.
                        self.cwnd += acked.min(MSS as u64) as f64;
                    } else {
                        // Congestion avoidance.
                        self.cwnd += (MSS as f64 * MSS as f64) / self.cwnd;
                    }
                }
                CcState::FastRecovery { recover } => {
                    if ack >= recover {
                        // Full ACK: leave recovery.
                        self.cwnd = self.ssthresh.max((2 * MSS) as f64);
                        self.state = CcState::Open;
                    } else {
                        // Partial ACK: retransmit next hole, deflate.
                        self.retransmit_head(now, out);
                        self.cwnd = (self.cwnd - acked as f64 + MSS as f64).max((2 * MSS) as f64);
                    }
                }
            }
            self.dctcp_on_ack(acked, ece);
            up.rearm_rto = true;
            self.rto_gen += 1;
            if self.is_complete() {
                self.completed_at = Some(now);
                up.completed = true;
                up.rearm_rto = false;
                return up;
            }
        } else if self.flight() > 0 {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.cfg.limited_transmit
                && self.dup_acks <= 2
                && matches!(self.state, CcState::Open)
                && self.snd_nxt < self.size
            {
                // RFC 3042: one new segment per early duplicate ACK,
                // without inflating cwnd.
                let len = MSS.min((self.size - self.snd_nxt) as u32);
                out.push(Packet::data(
                    self.flow,
                    self.snd_nxt,
                    len,
                    self.size,
                    false,
                    self.ecn_capable(),
                    now,
                ));
                self.snd_nxt += len as u64;
            }
            match self.state {
                CcState::Open if self.dup_acks == 3 => {
                    self.ssthresh = (self.flight() as f64 / 2.0).max((2 * MSS) as f64);
                    self.cwnd = self.ssthresh + (3 * MSS) as f64;
                    self.state = CcState::FastRecovery {
                        recover: self.snd_nxt,
                    };
                    self.retransmit_head(now, out);
                }
                CcState::FastRecovery { .. } => {
                    // Window inflation.
                    self.cwnd += MSS as f64;
                }
                CcState::Open => {}
            }
        }
        self.transmit(now, out);
        up
    }

    /// Handles a retransmission timeout of generation `gen`.
    pub fn on_rto(&mut self, gen: u64, now: Time, out: &mut Vec<Packet>) -> bool {
        if gen != self.rto_gen || self.completed_at.is_some() || self.flight() == 0 {
            return false;
        }
        self.ssthresh = (self.flight() as f64 / 2.0).max((2 * MSS) as f64);
        self.cwnd = MSS as f64;
        self.state = CcState::Open;
        self.dup_acks = 0;
        // Go-back-N: rewind and retransmit the head.
        self.snd_nxt = self.snd_una;
        self.retransmit_head(now, out);
        self.snd_nxt = self.snd_una
            + out.last().map_or(0, |p| match p.kind {
                crate::packet::PacketKind::Data { len, .. } => len as u64,
                _ => 0,
            });
        // Exponential backoff.
        self.rto =
            Time::from_nanos((self.rto.as_nanos()).saturating_mul(2)).min(Time::from_secs(60));
        self.rto_gen += 1;
        true
    }
}

impl Snapshot for TransportKind {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u8(match self {
            TransportKind::NewReno => 0,
            TransportKind::Dctcp => 1,
        });
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(TransportKind::NewReno),
            1 => Ok(TransportKind::Dctcp),
            t => Err(SnapshotError::Corrupt(format!(
                "invalid transport kind {t}"
            ))),
        }
    }
}

snapshot_struct!(TcpConfig {
    kind,
    init_cwnd,
    min_rto,
    initial_rto,
    dctcp_g,
    limited_transmit
});

impl Snapshot for CcState {
    fn save(&self, w: &mut SnapshotWriter) {
        match *self {
            CcState::Open => w.u8(0),
            CcState::FastRecovery { recover } => {
                w.u8(1);
                recover.save(w);
            }
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(CcState::Open),
            1 => Ok(CcState::FastRecovery {
                recover: u64::load(r)?,
            }),
            t => Err(SnapshotError::Corrupt(format!("invalid cc state {t}"))),
        }
    }
}

snapshot_struct!(TcpSender {
    flow,
    size,
    cfg,
    cwnd,
    ssthresh,
    snd_nxt,
    snd_una,
    dup_acks,
    state,
    srtt_ns,
    rttvar_ns,
    rto,
    rto_gen,
    alpha,
    ce_bytes,
    acked_bytes,
    window_end,
    retransmits,
    rto_deadline,
    timer_pending,
    timer_at,
    completed_at,
    first_sent
});

snapshot_struct!(TcpReceiver {
    flow,
    size,
    rcv_nxt,
    ooo,
    bytes_rx,
    first_rx,
    completed_at
});

/// What the receiver wants sent back after a data arrival.
#[derive(Clone, Copy, Debug)]
pub struct AckInfo {
    /// Cumulative next expected byte.
    pub ack: u64,
    /// Echo of the data packet's CE mark.
    pub ece: bool,
    /// Echo of the data packet's send timestamp.
    pub echo_ts: Time,
    /// Echo of the retransmission flag.
    pub echo_retx: bool,
}

/// A TCP receiver for one finite flow.
#[derive(Debug)]
pub struct TcpReceiver {
    /// Flow identity (forward direction).
    pub flow: FlowId,
    /// Expected flow size.
    pub size: u64,
    rcv_nxt: u64,
    ooo: BTreeMap<u64, u32>,
    /// Payload bytes received (including duplicates).
    pub bytes_rx: u64,
    /// First data arrival.
    pub first_rx: Option<Time>,
    /// Completion time (all bytes in order).
    pub completed_at: Option<Time>,
}

impl TcpReceiver {
    /// Creates a receiver expecting `size` bytes.
    pub fn new(flow: FlowId, size: u64) -> Self {
        TcpReceiver {
            flow,
            size,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            bytes_rx: 0,
            first_rx: None,
            completed_at: None,
        }
    }

    /// Next expected byte.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Handles one data segment; returns the ACK to send.
    pub fn on_data(
        &mut self,
        seq: u64,
        len: u32,
        ce: bool,
        sent_at: Time,
        retx: bool,
        now: Time,
    ) -> AckInfo {
        self.first_rx.get_or_insert(now);
        self.bytes_rx += len as u64;
        let end = seq + len as u64;
        if end > self.rcv_nxt {
            if seq <= self.rcv_nxt {
                self.rcv_nxt = end;
                // Drain contiguous out-of-order segments.
                while let Some((&s, &l)) = self.ooo.first_key_value() {
                    if s <= self.rcv_nxt {
                        self.ooo.remove(&s);
                        self.rcv_nxt = self.rcv_nxt.max(s + l as u64);
                    } else {
                        break;
                    }
                }
            } else {
                let entry = self.ooo.entry(seq).or_insert(len);
                *entry = (*entry).max(len);
            }
        }
        if self.completed_at.is_none() && self.rcv_nxt >= self.size {
            self.completed_at = Some(now);
        }
        AckInfo {
            ack: self.rcv_nxt,
            ece: ce,
            echo_ts: sent_at,
            echo_retx: retx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    fn flow() -> FlowId {
        FlowId {
            src: 0,
            dst: 1,
            sport: 1,
            dport: 80,
        }
    }

    fn seg_bounds(p: &Packet) -> (u64, u32, bool) {
        match p.kind {
            PacketKind::Data { seq, len, retx, .. } => (seq, len, retx),
            _ => panic!("expected data"),
        }
    }

    #[test]
    fn initial_window_is_init_cwnd() {
        let mut s = TcpSender::new(flow(), 1_000_000, TcpConfig::newreno());
        let mut out = Vec::new();
        assert!(s.start(Time::ZERO, &mut out));
        assert_eq!(out.len(), 10);
        let (seq0, len0, retx0) = seg_bounds(&out[0]);
        assert_eq!((seq0, len0, retx0), (0, MSS, false));
    }

    #[test]
    fn small_flow_sends_partial_segment() {
        let mut s = TcpSender::new(flow(), 500, TcpConfig::newreno());
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(seg_bounds(&out[0]).1, 500);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = TcpSender::new(flow(), 10_000_000, TcpConfig::newreno());
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        let initial = s.cwnd();
        // ACK the whole initial window segment by segment.
        let mut acked = 0;
        let n = out.len();
        out.clear();
        for _ in 0..n {
            acked += MSS as u64;
            s.on_ack(acked, false, Time::ZERO, false, Time(100_000), &mut out);
        }
        assert!(
            s.cwnd() >= initial * 2 - MSS as u64,
            "cwnd {} after window, initial {initial}",
            s.cwnd()
        );
    }

    #[test]
    fn limited_transmit_sends_new_data_on_early_dupacks() {
        let mut s = TcpSender::new(flow(), 10_000_000, TcpConfig::newreno());
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        let highest = out.iter().map(|p| seg_bounds(p).0).max().unwrap();
        out.clear();
        s.on_ack(0, false, Time::ZERO, false, Time(1000), &mut out);
        assert_eq!(out.len(), 1, "one new segment per early dupack");
        let (seq, _, retx) = seg_bounds(&out[0]);
        assert!(!retx);
        assert!(seq > highest, "limited transmit sends NEW data");
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut s = TcpSender::new(flow(), 10_000_000, TcpConfig::newreno());
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        out.clear();
        for _ in 0..2 {
            s.on_ack(0, false, Time::ZERO, false, Time(1000), &mut out);
            assert!(out.iter().all(|p| !seg_bounds(p).2), "no retx yet");
        }
        out.clear();
        s.on_ack(0, false, Time::ZERO, false, Time(1000), &mut out);
        let retx: Vec<_> = out.iter().filter(|p| seg_bounds(p).2).collect();
        assert_eq!(retx.len(), 1);
        assert_eq!(seg_bounds(retx[0]).0, 0);
        assert_eq!(s.retransmits, 1);
    }

    #[test]
    fn rto_rewinds_and_backs_off() {
        let mut s = TcpSender::new(flow(), 1_000_000, TcpConfig::newreno());
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        out.clear();
        let gen = s.rto_gen;
        let rto_before = s.rto();
        assert!(s.on_rto(gen, Time(1_000_000), &mut out));
        assert_eq!(out.len(), 1);
        assert!(seg_bounds(&out[0]).2);
        assert_eq!(s.cwnd(), MSS as u64);
        assert!(s.rto() >= rto_before);
        // Stale generation is ignored.
        assert!(!s.on_rto(gen, Time(2_000_000), &mut out));
    }

    #[test]
    fn completion_reported_once() {
        let mut s = TcpSender::new(flow(), 1_000, TcpConfig::newreno());
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        let up = s.on_ack(1_000, false, Time::ZERO, false, Time(500), &mut out);
        assert!(up.completed);
        assert!(s.is_complete());
        assert_eq!(s.completed_at, Some(Time(500)));
        let up2 = s.on_ack(1_000, false, Time::ZERO, false, Time(900), &mut out);
        assert!(!up2.completed);
    }

    #[test]
    fn rtt_estimator_tracks_sample() {
        let mut s = TcpSender::new(flow(), 10_000_000, TcpConfig::newreno_dcn());
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        out.clear();
        let up = s.on_ack(MSS as u64, false, Time(0), false, Time(2_000_000), &mut out);
        assert_eq!(up.rtt_sample, Some(Time(2_000_000)));
        // RTO = srtt + 4*rttvar = 2ms + 4ms = 6ms.
        assert_eq!(s.rto(), Time::from_millis(6));
    }

    #[test]
    fn karn_rule_skips_retransmitted_samples() {
        let mut s = TcpSender::new(flow(), 10_000_000, TcpConfig::newreno());
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        out.clear();
        let up = s.on_ack(MSS as u64, false, Time(0), true, Time(2_000_000), &mut out);
        assert_eq!(up.rtt_sample, None);
    }

    #[test]
    fn dctcp_alpha_rises_under_marking_and_shrinks_cwnd() {
        let mut s = TcpSender::new(flow(), 100_000_000, TcpConfig::dctcp());
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        out.clear();
        let mut acked = 0u64;
        let mut now = 0u64;
        // Several fully-marked windows: alpha -> 1, cwnd shrinks.
        let before = s.cwnd();
        for _ in 0..200 {
            acked += MSS as u64;
            now += 10_000;
            s.on_ack(acked, true, Time(now - 5_000), false, Time(now), &mut out);
            out.clear();
        }
        assert!(s.alpha() > 0.5, "alpha {}", s.alpha());
        assert!(s.cwnd() < before, "cwnd should shrink under marks");
        // Unmarked windows: alpha decays.
        let alpha_high = s.alpha();
        for _ in 0..200 {
            acked += MSS as u64;
            now += 10_000;
            s.on_ack(acked, false, Time(now - 5_000), false, Time(now), &mut out);
            out.clear();
        }
        assert!(s.alpha() < alpha_high / 4.0, "alpha should decay");
    }

    #[test]
    fn newreno_ignores_ece() {
        let mut s = TcpSender::new(flow(), 10_000_000, TcpConfig::newreno());
        let mut out = Vec::new();
        s.start(Time::ZERO, &mut out);
        out.clear();
        s.on_ack(MSS as u64, true, Time(0), false, Time(1000), &mut out);
        assert_eq!(s.alpha(), 0.0);
    }

    #[test]
    fn receiver_in_order_delivery() {
        let mut r = TcpReceiver::new(flow(), 3 * MSS as u64);
        let a1 = r.on_data(0, MSS, false, Time(0), false, Time(10));
        assert_eq!(a1.ack, MSS as u64);
        let a2 = r.on_data(MSS as u64, MSS, false, Time(1), false, Time(20));
        assert_eq!(a2.ack, 2 * MSS as u64);
        assert!(r.completed_at.is_none());
        let a3 = r.on_data(2 * MSS as u64, MSS, false, Time(2), false, Time(30));
        assert_eq!(a3.ack, 3 * MSS as u64);
        assert_eq!(r.completed_at, Some(Time(30)));
    }

    #[test]
    fn receiver_reorders_and_dupacks() {
        let mut r = TcpReceiver::new(flow(), 3 * MSS as u64);
        // Segment 1 missing: segment 2 arrives first.
        let a = r.on_data(MSS as u64, MSS, false, Time(0), false, Time(10));
        assert_eq!(a.ack, 0, "dup ack for the hole");
        let a = r.on_data(2 * MSS as u64, MSS, false, Time(0), false, Time(11));
        assert_eq!(a.ack, 0);
        // The hole fills: cumulative ACK jumps over the buffered segments.
        let a = r.on_data(0, MSS, false, Time(0), false, Time(12));
        assert_eq!(a.ack, 3 * MSS as u64);
        assert_eq!(r.completed_at, Some(Time(12)));
    }

    #[test]
    fn receiver_echoes_ce_and_timestamps() {
        let mut r = TcpReceiver::new(flow(), 10_000);
        let a = r.on_data(0, 1000, true, Time(77), true, Time(100));
        assert!(a.ece);
        assert_eq!(a.echo_ts, Time(77));
        assert!(a.echo_retx);
    }

    #[test]
    fn duplicate_data_does_not_regress() {
        let mut r = TcpReceiver::new(flow(), 10_000);
        r.on_data(0, 1000, false, Time(0), false, Time(1));
        let a = r.on_data(0, 1000, false, Time(0), true, Time(2));
        assert_eq!(a.ack, 1000);
        assert_eq!(r.rcv_nxt(), 1000);
    }
}
