//! The network node: devices, forwarding, transport glue and timers.
//!
//! `NetNode` implements [`SimNode`]; all node interaction happens through
//! [`NetEvent`]s, which keeps the model runnable unmodified on every kernel
//! (the paper's user-transparency property).

use std::collections::HashMap;

use unison_core::{
    snapshot_struct, NodeId, SimCtx, SimCtxExt, SimNode, Snapshot, SnapshotError, SnapshotReader,
    SnapshotWriter, Time,
};
use unison_stats::Summary;

use crate::app::{OnOffAction, OnOffApp};
use crate::packet::{FlowId, Packet, PacketKind, RipMsg};
use crate::queue::Queue;
use crate::route::Routing;
use crate::snapshot::{load_map, load_summary, save_map, save_summary};
use crate::tcp::{TcpConfig, TcpReceiver, TcpSender};
use crate::trace::{TraceBuffer, TraceEntry, TraceKind};

/// Delay before a RIP triggered update is sent (batches rapid changes).
const RIP_TRIGGER_DELAY: Time = Time::from_micros(200);
/// RIP/UDP port used for advertisement packets.
const RIP_PORT: u16 = 520;

/// Events delivered to a [`NetNode`].
#[derive(Debug)]
pub enum NetEvent {
    /// A packet finished propagating and arrives on device `dev`.
    Arrive {
        /// Ingress device index.
        dev: u8,
        /// The packet.
        packet: Packet,
    },
    /// Device `dev` finished serializing its current packet.
    TxDone {
        /// Egress device index.
        dev: u8,
    },
    /// Application: open a TCP flow of `bytes` towards `dst`.
    FlowStart {
        /// Destination node.
        dst: u32,
        /// Flow size in bytes.
        bytes: u64,
    },
    /// Retransmission-timer event for `flow` (lazy single-timer scheme).
    Rto {
        /// Forward flow id.
        flow: FlowId,
    },
    /// RIP periodic advertisement timer.
    RipTick,
    /// RIP triggered-update timer.
    RipTriggered,
    /// On/Off UDP application tick.
    AppTick {
        /// Index into the node's application list.
        app: u16,
    },
}

/// One attachment point (NIC port) of a node.
#[derive(Debug)]
pub struct Device {
    /// Peer node.
    pub peer: NodeId,
    /// Device index on the peer where our packets arrive.
    pub peer_dev: u8,
    /// Link bandwidth.
    pub rate: unison_core::DataRate,
    /// Link propagation delay.
    pub delay: Time,
    /// Egress queue.
    pub queue: Queue,
    /// A packet is currently being serialized.
    pub busy: bool,
    /// Administrative state.
    pub up: bool,
    /// Stable link id in the kernel's [`LinkGraph`](unison_core::LinkGraph).
    pub link_id: usize,
}

/// Active deterministic loss burst on a node, installed and removed by the
/// [`reconfig::install_faults`](crate::reconfig::install_faults) window
/// globals: while present, every `period`-th packet the node routes is
/// dropped. A plain counter — no randomness — so the exact same packets
/// are lost at every thread count and on every rerun.
#[derive(Debug, Clone, Copy)]
pub struct LossState {
    /// Drop every `period`-th routed packet.
    pub period: u64,
    /// Packets routed since the burst began.
    pub counter: u64,
}

snapshot_struct!(LossState { period, counter });

/// Receiver-side accounting of one UDP flow.
#[derive(Debug, Default, Clone, Copy)]
pub struct UdpRx {
    /// Payload bytes received.
    pub bytes: u64,
    /// Datagrams received.
    pub pkts: u64,
    /// Highest sequence number seen (gap-based loss estimation).
    pub max_seq: u64,
}

/// Per-node measurement shard (merged globally by
/// [`FlowReport`](crate::flowmon::FlowReport)).
#[derive(Debug, Default)]
pub struct NodeMonitor {
    /// RTT samples observed by local senders, nanoseconds.
    pub rtt_ns: Summary,
    /// Queuing delay of packets dequeued from local devices, nanoseconds.
    pub queue_delay_ns: Summary,
    /// Packets dropped for lack of a route (or a downed egress).
    pub routing_drops: u64,
    /// Packets dropped by an injected loss burst ([`LossState`]).
    pub burst_drops: u64,
    /// Retransmission timeouts fired.
    pub rto_fires: u64,
    /// Flows originated here.
    pub flows_started: u64,
    /// Packets this node routed (originated or forwarded).
    pub forwarded: u64,
}

/// A simulated host or switch.
pub struct NetNode {
    /// Node id.
    pub id: NodeId,
    /// Whether this node terminates traffic.
    pub is_host: bool,
    /// Attached devices.
    pub devices: Vec<Device>,
    /// Routing state.
    pub routing: Routing,
    /// Transport configuration for locally originated flows.
    pub tcp_cfg: TcpConfig,
    /// Active and completed senders, keyed by forward flow id.
    pub senders: HashMap<FlowId, TcpSender>,
    /// Active and completed receivers, keyed by forward flow id.
    pub receivers: HashMap<FlowId, TcpReceiver>,
    /// On/Off UDP sources attached to this node.
    pub apps: Vec<OnOffApp>,
    /// UDP receive accounting, keyed by forward flow id.
    pub udp_rx: HashMap<FlowId, UdpRx>,
    /// Packet tracing, when enabled for this node.
    pub trace: Option<TraceBuffer>,
    /// Injected loss burst, when one is active ([`LossState`]).
    pub loss: Option<LossState>,
    /// Measurement shard.
    pub mon: NodeMonitor,
    next_sport: u16,
    /// Reusable packet buffer for transport output.
    out_buf: Vec<Packet>,
}

impl NetNode {
    /// Creates a node with no devices (the builder attaches them).
    pub fn new(id: NodeId, is_host: bool, routing: Routing, tcp_cfg: TcpConfig) -> Self {
        NetNode {
            id,
            is_host,
            devices: Vec::new(),
            routing,
            tcp_cfg,
            senders: HashMap::new(),
            receivers: HashMap::new(),
            apps: Vec::new(),
            udp_rx: HashMap::new(),
            trace: None,
            loss: None,
            mon: NodeMonitor::default(),
            next_sport: 1_000,
            out_buf: Vec::new(),
        }
    }

    /// Records a trace entry when tracing is enabled.
    #[inline]
    fn trace_event(&mut self, ts: Time, dev: u8, kind: TraceKind, packet: &Packet) {
        if let Some(buf) = &mut self.trace {
            let backlog = self
                .devices
                .get(dev as usize)
                .map_or(0, |d| d.queue.bytes());
            buf.push(TraceEntry {
                ts,
                node: self.id.0,
                dev,
                kind,
                flow: packet.flow,
                bytes: packet.bytes,
                backlog,
            });
        }
    }

    /// Starts serializing `packet` on device `dev_idx` (the device must be
    /// idle) and schedules both the TxDone and the remote arrival.
    fn transmit(&mut self, dev_idx: usize, packet: Packet, ctx: &mut dyn SimCtx<Self>) {
        if self.trace.is_some() {
            self.trace_event(ctx.now(), dev_idx as u8, TraceKind::TxStart, &packet);
        }
        let dev = &mut self.devices[dev_idx];
        let tx = dev.rate.tx_time(packet.bytes);
        if tx == Time::MAX {
            // Zero-rate link: black-hole the packet.
            self.mon.routing_drops += 1;
            return;
        }
        dev.busy = true;
        let peer = dev.peer;
        let peer_dev = dev.peer_dev;
        let arrival = tx + dev.delay;
        ctx.schedule_self(tx, NetEvent::TxDone { dev: dev_idx as u8 });
        ctx.schedule(
            arrival,
            peer,
            NetEvent::Arrive {
                dev: peer_dev,
                packet,
            },
        );
    }

    /// Sends `packet` out of device `dev_idx`, queueing when busy.
    fn send_on(&mut self, dev_idx: usize, packet: Packet, ctx: &mut dyn SimCtx<Self>) {
        let now = ctx.now();
        let dev = &mut self.devices[dev_idx];
        if !dev.up {
            self.mon.routing_drops += 1;
            return;
        }
        if dev.busy {
            // Drops and marks are counted by the queue itself.
            if self.trace.is_some() {
                let dropped =
                    dev.queue.enqueue(packet.clone(), now) == crate::queue::Enqueue::Dropped;
                if dropped {
                    self.trace_event(now, dev_idx as u8, TraceKind::Drop, &packet);
                }
            } else {
                let _ = dev.queue.enqueue(packet, now);
            }
        } else {
            self.transmit(dev_idx, packet, ctx);
        }
    }

    /// Routes `packet` towards its destination and sends it.
    fn route_and_send(&mut self, packet: Packet, ctx: &mut dyn SimCtx<Self>) {
        if let Some(loss) = &mut self.loss {
            loss.counter += 1;
            if loss.counter % loss.period == 0 {
                self.mon.burst_drops += 1;
                return;
            }
        }
        let mut buf = [0u8; 16];
        let n = self.routing.lookup(packet.flow.dst, &mut buf);
        if n == 0 {
            self.mon.routing_drops += 1;
            return;
        }
        let pick = (packet.ecmp_hash(self.id.0) % n as u64) as usize;
        self.mon.forwarded += 1;
        self.send_on(buf[pick] as usize, packet, ctx);
    }

    /// Flushes the transport output buffer through routing.
    fn flush_out(&mut self, ctx: &mut dyn SimCtx<Self>) {
        let mut out = std::mem::take(&mut self.out_buf);
        for p in out.drain(..) {
            self.route_and_send(p, ctx);
        }
        // Nothing repopulates the buffer while it is detached
        // (`route_and_send` never touches it), so the swap-back is lossless.
        debug_assert!(self.out_buf.is_empty());
        self.out_buf = out;
    }

    /// Ensures an RTO timer event will fire no later than the deadline
    /// already stored in the sender.
    ///
    /// Lazy timer scheme with one twist: RTO estimates can *shrink* — the
    /// first RTT sample replaces the conservative initial RTO, and a
    /// post-backoff sample undoes the doubling — moving the deadline
    /// earlier than the outstanding event. A scheme that never schedules
    /// while `timer_pending` is set would then leave the only physical
    /// event far in the future and the timeout would silently never fire.
    /// Instead, schedule an additional earlier event and track its fire
    /// time in `timer_at`; the superseded later event is ignored when it
    /// arrives (see [`Self::on_rto_timer`]).
    fn arm_timer(&mut self, flow: FlowId, ctx: &mut dyn SimCtx<Self>) {
        let now = ctx.now();
        if let Some(s) = self.senders.get_mut(&flow) {
            if s.completed_at.is_some() {
                return;
            }
            let delay = s.rto_deadline.saturating_sub(now).max(Time(1));
            let fire_at = now + delay;
            if !s.timer_pending || fire_at < s.timer_at {
                s.timer_pending = true;
                s.timer_at = fire_at;
                ctx.schedule_self(delay, NetEvent::Rto { flow });
            }
        }
    }

    fn on_flow_start(&mut self, dst: u32, bytes: u64, ctx: &mut dyn SimCtx<Self>) {
        let flow = FlowId {
            src: self.id.0,
            dst,
            sport: self.next_sport,
            dport: 80,
        };
        self.next_sport = self.next_sport.wrapping_add(1).max(1_000);
        let mut sender = TcpSender::new(flow, bytes, self.tcp_cfg);
        let now = ctx.now();
        let mut out = std::mem::take(&mut self.out_buf);
        let arm = sender.start(now, &mut out);
        self.out_buf = out;
        sender.rto_deadline = now + sender.rto();
        self.senders.insert(flow, sender);
        self.mon.flows_started += 1;
        self.flush_out(ctx);
        if arm {
            self.arm_timer(flow, ctx);
        }
    }

    fn on_data(
        &mut self,
        packet: &Packet,
        seq: u64,
        len: u32,
        size: u64,
        retx: bool,
        ctx: &mut dyn SimCtx<Self>,
    ) {
        let now = ctx.now();
        let flow = packet.flow;
        let rcv = self
            .receivers
            .entry(flow)
            .or_insert_with(|| TcpReceiver::new(flow, size));
        let ack = rcv.on_data(seq, len, packet.ecn_ce, packet.sent_at, retx, now);
        let ack_pkt = Packet::ack(flow, ack.ack, ack.ece, ack.echo_ts, ack.echo_retx, now);
        self.route_and_send(ack_pkt, ctx);
    }

    fn on_ack(
        &mut self,
        packet: &Packet,
        ack: u64,
        ece: bool,
        echo_ts: Time,
        echo_retx: bool,
        ctx: &mut dyn SimCtx<Self>,
    ) {
        // The ACK travels on the reversed flow; recover the forward id.
        let fwd = FlowId {
            src: packet.flow.dst,
            dst: packet.flow.src,
            sport: packet.flow.dport,
            dport: packet.flow.sport,
        };
        let now = ctx.now();
        let Some(sender) = self.senders.get_mut(&fwd) else {
            return;
        };
        let mut out = std::mem::take(&mut self.out_buf);
        let up = sender.on_ack(ack, ece, echo_ts, echo_retx, now, &mut out);
        self.out_buf = out;
        if let Some(rtt) = up.rtt_sample {
            self.mon.rtt_ns.add(rtt.as_nanos() as f64);
        }
        if up.rearm_rto {
            sender.rto_deadline = now + sender.rto();
        }
        let arm = up.rearm_rto;
        self.flush_out(ctx);
        if arm {
            self.arm_timer(fwd, ctx);
        }
    }

    fn on_rto_timer(&mut self, flow: FlowId, ctx: &mut dyn SimCtx<Self>) {
        let now = ctx.now();
        let Some(sender) = self.senders.get_mut(&flow) else {
            return;
        };
        if sender.completed_at.is_some() {
            sender.timer_pending = false;
            return;
        }
        if now < sender.timer_at {
            // A superseded event: the deadline moved earlier after this
            // one was scheduled and a replacement owns the chain.
            return;
        }
        sender.timer_pending = false;
        if now < sender.rto_deadline {
            // The deadline moved forward since this timer was scheduled.
            self.arm_timer(flow, ctx);
            return;
        }
        let gen = sender.rto_gen;
        let mut out = std::mem::take(&mut self.out_buf);
        let fired = sender.on_rto(gen, now, &mut out);
        self.out_buf = out;
        if fired {
            self.mon.rto_fires += 1;
            sender.rto_deadline = now + sender.rto();
            self.flush_out(ctx);
            self.arm_timer(flow, ctx);
        } else if !sender.is_complete() {
            // Nothing in flight yet the flow is incomplete (e.g. the window
            // was empty); keep the timer alive defensively.
            sender.rto_deadline = now + sender.rto();
            self.arm_timer(flow, ctx);
        }
    }

    fn rip_state(&mut self) -> Option<&mut crate::route::RipState> {
        match &mut self.routing {
            Routing::Rip(r) => Some(r),
            Routing::Static(_) => None,
        }
    }

    /// Sends a RIP advertisement on every live device.
    fn rip_advertise(&mut self, ctx: &mut dyn SimCtx<Self>) {
        let now = ctx.now();
        let id = self.id.0;
        let dev_count = self.devices.len();
        for dev_idx in 0..dev_count {
            if !self.devices[dev_idx].up {
                continue;
            }
            let Some(rip) = self.rip_state() else { return };
            let msg = rip.advertisement(id, dev_idx as u8);
            let bytes = 32 + 4 * msg.routes.len() as u32;
            let peer = self.devices[dev_idx].peer;
            let packet = Packet {
                flow: FlowId {
                    src: id,
                    dst: peer.0,
                    sport: RIP_PORT,
                    dport: RIP_PORT,
                },
                kind: PacketKind::Rip(Box::new(msg)),
                bytes,
                ecn_capable: false,
                ecn_ce: false,
                sent_at: now,
                enqueued_at: now,
            };
            self.send_on(dev_idx, packet, ctx);
        }
    }

    fn on_rip_msg(&mut self, msg: &RipMsg, in_dev: u8, ctx: &mut dyn SimCtx<Self>) {
        let Some(rip) = self.rip_state() else { return };
        let changed = rip.on_advertisement(msg, in_dev);
        if changed && !rip.triggered_pending {
            rip.triggered_pending = true;
            ctx.schedule_self(RIP_TRIGGER_DELAY, NetEvent::RipTriggered);
        }
    }

    /// Marks a device up/down and lets RIP react; used by topology-change
    /// global events.
    pub fn set_device_state(&mut self, dev: u8, up: bool) {
        self.devices[dev as usize].up = up;
        if !up {
            if let Routing::Rip(r) = &mut self.routing {
                if r.on_device_down(dev) {
                    r.triggered_pending = true;
                    // The next periodic tick will flush it; triggered
                    // updates cannot be scheduled from global events
                    // directly, the flag shortens the wait.
                }
            }
        }
    }
}

impl SimNode for NetNode {
    type Payload = NetEvent;

    fn handle(&mut self, payload: NetEvent, ctx: &mut dyn SimCtx<Self>) {
        match payload {
            NetEvent::Arrive { dev, packet } => {
                if self.trace.is_some() {
                    self.trace_event(ctx.now(), dev, TraceKind::Arrive, &packet);
                }
                if packet.flow.dst == self.id.0 {
                    match packet.kind.clone() {
                        PacketKind::Data {
                            seq,
                            len,
                            size,
                            retx,
                        } => self.on_data(&packet, seq, len, size, retx, ctx),
                        PacketKind::Ack {
                            ack,
                            ece,
                            echo_ts,
                            echo_retx,
                        } => self.on_ack(&packet, ack, ece, echo_ts, echo_retx, ctx),
                        PacketKind::Rip(msg) => self.on_rip_msg(&msg, dev, ctx),
                        PacketKind::Datagram { seq, len } => {
                            let rx = self.udp_rx.entry(packet.flow).or_default();
                            rx.bytes += len as u64;
                            rx.pkts += 1;
                            rx.max_seq = rx.max_seq.max(seq);
                        }
                    }
                } else {
                    self.route_and_send(packet, ctx);
                }
            }
            NetEvent::TxDone { dev } => {
                let now = ctx.now();
                let d = &mut self.devices[dev as usize];
                d.busy = false;
                if let Some(p) = d.queue.dequeue() {
                    self.mon
                        .queue_delay_ns
                        .add(now.saturating_sub(p.enqueued_at).as_nanos() as f64);
                    self.transmit(dev as usize, p, ctx);
                }
            }
            NetEvent::FlowStart { dst, bytes } => self.on_flow_start(dst, bytes, ctx),
            NetEvent::Rto { flow } => self.on_rto_timer(flow, ctx),
            NetEvent::RipTick => {
                self.rip_advertise(ctx);
                if let Some(rip) = self.rip_state() {
                    rip.triggered_pending = false;
                    let interval = rip.update_interval;
                    ctx.schedule_self(interval, NetEvent::RipTick);
                }
            }
            NetEvent::RipTriggered => {
                self.rip_advertise(ctx);
                if let Some(rip) = self.rip_state() {
                    rip.triggered_pending = false;
                }
            }
            NetEvent::AppTick { app } => {
                let now = ctx.now();
                let Some(a) = self.apps.get_mut(app as usize) else {
                    return;
                };
                match a.tick(now) {
                    OnOffAction::Send { seq, len, next } => {
                        let flow = FlowId {
                            src: self.id.0,
                            dst: a.cfg.dst,
                            // Port 7000+idx distinguishes concurrent apps.
                            sport: 7_000 + app,
                            dport: 7,
                        };
                        let pkt = Packet::datagram(flow, seq, len, now);
                        ctx.schedule_self(next, NetEvent::AppTick { app });
                        self.route_and_send(pkt, ctx);
                    }
                    OnOffAction::Idle { next } => {
                        ctx.schedule_self(next, NetEvent::AppTick { app });
                    }
                    OnOffAction::Done => {}
                }
            }
        }
    }
}

impl Snapshot for NetEvent {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            NetEvent::Arrive { dev, packet } => {
                w.u8(0);
                dev.save(w);
                packet.save(w);
            }
            NetEvent::TxDone { dev } => {
                w.u8(1);
                dev.save(w);
            }
            NetEvent::FlowStart { dst, bytes } => {
                w.u8(2);
                dst.save(w);
                bytes.save(w);
            }
            NetEvent::Rto { flow } => {
                w.u8(3);
                flow.save(w);
            }
            NetEvent::RipTick => w.u8(4),
            NetEvent::RipTriggered => w.u8(5),
            NetEvent::AppTick { app } => {
                w.u8(6);
                app.save(w);
            }
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => NetEvent::Arrive {
                dev: u8::load(r)?,
                packet: Packet::load(r)?,
            },
            1 => NetEvent::TxDone { dev: u8::load(r)? },
            2 => NetEvent::FlowStart {
                dst: u32::load(r)?,
                bytes: u64::load(r)?,
            },
            3 => NetEvent::Rto {
                flow: FlowId::load(r)?,
            },
            4 => NetEvent::RipTick,
            5 => NetEvent::RipTriggered,
            6 => NetEvent::AppTick { app: u16::load(r)? },
            t => return Err(SnapshotError::Corrupt(format!("invalid net event {t}"))),
        })
    }
}

snapshot_struct!(Device {
    peer,
    peer_dev,
    rate,
    delay,
    queue,
    busy,
    up,
    link_id
});

snapshot_struct!(UdpRx {
    bytes,
    pkts,
    max_seq
});

impl Snapshot for NodeMonitor {
    fn save(&self, w: &mut SnapshotWriter) {
        save_summary(&self.rtt_ns, w);
        save_summary(&self.queue_delay_ns, w);
        self.routing_drops.save(w);
        self.burst_drops.save(w);
        self.rto_fires.save(w);
        self.flows_started.save(w);
        self.forwarded.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(NodeMonitor {
            rtt_ns: load_summary(r)?,
            queue_delay_ns: load_summary(r)?,
            routing_drops: u64::load(r)?,
            burst_drops: u64::load(r)?,
            rto_fires: u64::load(r)?,
            flows_started: u64::load(r)?,
            forwarded: u64::load(r)?,
        })
    }
}

impl Snapshot for NetNode {
    fn save(&self, w: &mut SnapshotWriter) {
        self.id.save(w);
        self.is_host.save(w);
        self.devices.save(w);
        self.routing.save(w);
        self.tcp_cfg.save(w);
        // Socket and UDP maps are written in sorted flow order — HashMap
        // iteration order must not leak into the canonical encoding.
        save_map(&self.senders, w);
        save_map(&self.receivers, w);
        self.apps.save(w);
        save_map(&self.udp_rx, w);
        self.trace.save(w);
        self.loss.save(w);
        self.mon.save(w);
        self.next_sport.save(w);
        self.out_buf.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(NetNode {
            id: NodeId::load(r)?,
            is_host: bool::load(r)?,
            devices: Vec::load(r)?,
            routing: Routing::load(r)?,
            tcp_cfg: TcpConfig::load(r)?,
            senders: load_map(r)?,
            receivers: load_map(r)?,
            apps: Vec::load(r)?,
            udp_rx: load_map(r)?,
            trace: Option::load(r)?,
            loss: Option::load(r)?,
            mon: NodeMonitor::load(r)?,
            next_sport: u16::load(r)?,
            out_buf: Vec::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueConfig;
    use crate::route::StaticTable;

    #[test]
    fn node_construction() {
        let n = NetNode::new(
            NodeId(3),
            true,
            Routing::Static(StaticTable::default()),
            TcpConfig::newreno(),
        );
        assert!(n.devices.is_empty());
        assert!(n.is_host);
        assert_eq!(n.id, NodeId(3));
    }

    #[test]
    fn device_state_toggles() {
        let mut n = NetNode::new(
            NodeId(0),
            false,
            Routing::Static(StaticTable::default()),
            TcpConfig::newreno(),
        );
        n.devices.push(Device {
            peer: NodeId(1),
            peer_dev: 0,
            rate: unison_core::DataRate::gbps(10),
            delay: Time::from_micros(3),
            queue: Queue::new(
                QueueConfig::DropTail {
                    limit_bytes: 1 << 20,
                },
                1,
            ),
            busy: false,
            up: true,
            link_id: 0,
        });
        n.set_device_state(0, false);
        assert!(!n.devices[0].up);
        n.set_device_state(0, true);
        assert!(n.devices[0].up);
    }
}
