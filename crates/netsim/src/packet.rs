//! Packets and headers.
//!
//! Packets are metadata-only (no payload bytes are materialized), as is
//! standard for performance-oriented packet-level simulation: a packet
//! carries its flow identity, a TCP-like header variant, its wire size and
//! ECN state.

use unison_core::{snapshot_struct, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, Time};

/// Flow identity: a 4-tuple over node ids and ports.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FlowId {
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Source port (unique per flow at the source).
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
}

/// Maximum TCP payload bytes per segment.
pub const MSS: u32 = 1448;
/// Header overhead per segment (Ethernet + IP + TCP).
pub const HEADER_BYTES: u32 = 52;
/// Wire size of a pure ACK.
pub const ACK_BYTES: u32 = 64;

/// Transport-level content of a packet.
#[derive(Clone, Debug)]
pub enum PacketKind {
    /// A TCP data segment `[seq, seq + len)` of a flow totalling `size`
    /// bytes (carried so receivers can detect completion statelessly).
    Data {
        /// First payload byte number.
        seq: u64,
        /// Payload length.
        len: u32,
        /// Total flow size in bytes.
        size: u64,
        /// Set on retransmissions (Karn's rule: no RTT sample).
        retx: bool,
    },
    /// A cumulative ACK.
    Ack {
        /// Next expected byte.
        ack: u64,
        /// ECN echo: the data packet that triggered this ACK carried a CE
        /// mark.
        ece: bool,
        /// Echoed send timestamp of the triggering data packet.
        echo_ts: Time,
        /// Echoed retransmission flag of the triggering data packet.
        echo_retx: bool,
    },
    /// A RIP distance-vector advertisement.
    Rip(Box<RipMsg>),
    /// A connectionless UDP datagram (no ACKs, no retransmission).
    Datagram {
        /// Sequence number within the flow (loss accounting).
        seq: u64,
        /// Payload length.
        len: u32,
    },
}

/// A RIP advertisement: `(destination node, metric)` pairs.
#[derive(Clone, Debug)]
pub struct RipMsg {
    /// Advertising node.
    pub from: u32,
    /// Route entries.
    pub routes: Vec<(u32, u8)>,
}

/// A simulated packet.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Flow identity.
    pub flow: FlowId,
    /// Transport content.
    pub kind: PacketKind,
    /// Bytes on the wire (headers included).
    pub bytes: u32,
    /// ECN-capable transport (ECT set).
    pub ecn_capable: bool,
    /// Congestion-experienced mark.
    pub ecn_ce: bool,
    /// Time the packet left its source's transport layer.
    pub sent_at: Time,
    /// Time the packet was enqueued at the current hop (queue-delay stats).
    pub enqueued_at: Time,
}

impl Packet {
    /// Builds a data segment for `flow`.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        flow: FlowId,
        seq: u64,
        len: u32,
        size: u64,
        retx: bool,
        ecn_capable: bool,
        now: Time,
    ) -> Self {
        Packet {
            flow,
            kind: PacketKind::Data {
                seq,
                len,
                size,
                retx,
            },
            bytes: len + HEADER_BYTES,
            ecn_capable,
            ecn_ce: false,
            sent_at: now,
            enqueued_at: now,
        }
    }

    /// Builds an ACK for the reverse direction of `flow`.
    pub fn ack(
        flow: FlowId,
        ack: u64,
        ece: bool,
        echo_ts: Time,
        echo_retx: bool,
        now: Time,
    ) -> Self {
        Packet {
            flow: FlowId {
                src: flow.dst,
                dst: flow.src,
                sport: flow.dport,
                dport: flow.sport,
            },
            kind: PacketKind::Ack {
                ack,
                ece,
                echo_ts,
                echo_retx,
            },
            bytes: ACK_BYTES,
            ecn_capable: false,
            ecn_ce: false,
            sent_at: now,
            enqueued_at: now,
        }
    }

    /// Builds a UDP datagram for `flow`.
    pub fn datagram(flow: FlowId, seq: u64, len: u32, now: Time) -> Self {
        Packet {
            flow,
            kind: PacketKind::Datagram { seq, len },
            bytes: len + HEADER_BYTES,
            ecn_capable: false,
            ecn_ce: false,
            sent_at: now,
            enqueued_at: now,
        }
    }

    /// Deterministic per-flow hash used for ECMP path selection.
    pub fn ecmp_hash(&self, salt: u32) -> u64 {
        let f = &self.flow;
        let mut h = (f.src as u64) << 32 | f.dst as u64;
        h ^= ((f.sport as u64) << 16 | f.dport as u64) << 13;
        h ^= (salt as u64) << 47;
        // SplitMix-style finalizer.
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^ (h >> 31)
    }
}

snapshot_struct!(FlowId {
    src,
    dst,
    sport,
    dport
});

snapshot_struct!(RipMsg { from, routes });

impl Snapshot for PacketKind {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            PacketKind::Data {
                seq,
                len,
                size,
                retx,
            } => {
                w.u8(0);
                seq.save(w);
                len.save(w);
                size.save(w);
                retx.save(w);
            }
            PacketKind::Ack {
                ack,
                ece,
                echo_ts,
                echo_retx,
            } => {
                w.u8(1);
                ack.save(w);
                ece.save(w);
                echo_ts.save(w);
                echo_retx.save(w);
            }
            PacketKind::Rip(msg) => {
                w.u8(2);
                msg.save(w);
            }
            PacketKind::Datagram { seq, len } => {
                w.u8(3);
                seq.save(w);
                len.save(w);
            }
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => PacketKind::Data {
                seq: u64::load(r)?,
                len: u32::load(r)?,
                size: u64::load(r)?,
                retx: bool::load(r)?,
            },
            1 => PacketKind::Ack {
                ack: u64::load(r)?,
                ece: bool::load(r)?,
                echo_ts: Time::load(r)?,
                echo_retx: bool::load(r)?,
            },
            2 => PacketKind::Rip(Box::new(RipMsg::load(r)?)),
            3 => PacketKind::Datagram {
                seq: u64::load(r)?,
                len: u32::load(r)?,
            },
            t => return Err(SnapshotError::Corrupt(format!("invalid packet kind {t}"))),
        })
    }
}

snapshot_struct!(Packet {
    flow,
    kind,
    bytes,
    ecn_capable,
    ecn_ce,
    sent_at,
    enqueued_at
});

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowId {
        FlowId {
            src: 1,
            dst: 2,
            sport: 100,
            dport: 200,
        }
    }

    #[test]
    fn data_wire_size_includes_header() {
        let p = Packet::data(flow(), 0, MSS, 10_000, false, true, Time::ZERO);
        assert_eq!(p.bytes, 1500);
    }

    #[test]
    fn ack_reverses_flow() {
        let p = Packet::ack(flow(), 1448, false, Time(5), false, Time(9));
        assert_eq!(p.flow.src, 2);
        assert_eq!(p.flow.dst, 1);
        assert_eq!(p.flow.sport, 200);
        assert_eq!(p.flow.dport, 100);
        assert_eq!(p.bytes, ACK_BYTES);
    }

    #[test]
    fn ecmp_hash_is_flow_stable_and_salt_sensitive() {
        let a = Packet::data(flow(), 0, 100, 1_000, false, false, Time::ZERO);
        let b = Packet::data(flow(), 5000, 100, 1_000, false, false, Time(99));
        assert_eq!(a.ecmp_hash(7), b.ecmp_hash(7));
        assert_ne!(a.ecmp_hash(7), a.ecmp_hash(8));
    }
}
