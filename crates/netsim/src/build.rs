//! Building a runnable simulation from a topology + traffic description.
//!
//! [`NetworkBuilder`] converts a kernel-agnostic
//! [`Topology`](unison_topology::Topology) into a [`World`] of
//! [`NetNode`]s: devices are attached pairwise per link, routing tables are
//! computed (or RIP is seeded), queue disciplines are instantiated with
//! deterministic per-queue seeds, application flows become initial
//! `FlowStart` events, and the stop time is registered. The result,
//! [`NetSim`], runs on any kernel unchanged.

use unison_core::{
    kernel, DataRate, KernelError, KernelKind, MetricsLevel, NodeId, PartitionMode, RunConfig,
    RunReport, SchedConfig, Time, World, WorldBuilder,
};
use unison_topology::{NodeKind, Topology};
use unison_traffic::{FlowSpec, TrafficConfig};

use crate::app::{OnOffApp, OnOffConfig};
use crate::flowmon::FlowReport;
use crate::node::{Device, NetEvent, NetNode};
use crate::queue::{Queue, QueueConfig};
use crate::route::{compute_static_tables, RipState, Routing, StaticTable};
use crate::tcp::{TcpConfig, TransportKind};

/// How packets find their way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingKind {
    /// Global shortest paths with ECMP, computed before the run.
    StaticEcmp,
    /// RIP distance-vector with this periodic advertisement interval.
    Rip {
        /// Periodic full-advertisement interval.
        update_interval: Time,
    },
}

/// Mapping of one topology link to its built artifacts.
#[derive(Clone, Copy, Debug)]
pub struct BuiltLink {
    /// Kernel link id (for lookahead bookkeeping in global events).
    pub core_id: usize,
    /// First endpoint node and its device index.
    pub a: usize,
    /// Device index on `a`.
    pub a_dev: u8,
    /// Second endpoint node.
    pub b: usize,
    /// Device index on `b`.
    pub b_dev: u8,
}

/// Builder for a packet-level network simulation.
pub struct NetworkBuilder<'a> {
    topo: &'a Topology,
    tcp: TcpConfig,
    queue: QueueConfig,
    routing: RoutingKind,
    flows: Vec<FlowSpec>,
    on_off: Vec<(usize, OnOffConfig)>,
    trace_nodes: Vec<usize>,
    trace_capacity: usize,
    stop: Option<Time>,
}

impl<'a> NetworkBuilder<'a> {
    /// Starts a builder over `topo` with NewReno, 1 MiB DropTail queues and
    /// static ECMP routing.
    pub fn new(topo: &'a Topology) -> Self {
        NetworkBuilder {
            topo,
            tcp: TcpConfig::newreno(),
            queue: QueueConfig::DropTail {
                limit_bytes: 1 << 20,
            },
            routing: RoutingKind::StaticEcmp,
            flows: Vec::new(),
            on_off: Vec::new(),
            trace_nodes: Vec::new(),
            trace_capacity: 100_000,
            stop: None,
        }
    }

    /// Chooses the transport flavor (with its default configuration).
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.tcp = match kind {
            TransportKind::NewReno => TcpConfig::newreno(),
            TransportKind::Dctcp => TcpConfig::dctcp(),
        };
        if kind == TransportKind::Dctcp {
            // DCTCP pairs with a step-marking queue by default.
            self.queue = QueueConfig::dctcp(1 << 20, 65 * 1_448);
        }
        self
    }

    /// Overrides the full transport configuration.
    pub fn tcp_config(mut self, cfg: TcpConfig) -> Self {
        self.tcp = cfg;
        self
    }

    /// Overrides the queue discipline.
    pub fn queue(mut self, queue: QueueConfig) -> Self {
        self.queue = queue;
        self
    }

    /// Chooses the routing scheme.
    pub fn routing(mut self, routing: RoutingKind) -> Self {
        self.routing = routing;
        self
    }

    /// Generates flows from a traffic description (host rate is taken from
    /// the first host-attached link of the topology).
    pub fn traffic(mut self, cfg: &TrafficConfig) -> Self {
        let host_rate = self.host_rate();
        self.flows.extend(cfg.generate(self.topo, host_rate));
        self
    }

    /// Adds explicit flows.
    pub fn flows(mut self, flows: impl IntoIterator<Item = FlowSpec>) -> Self {
        self.flows.extend(flows);
        self
    }

    /// Attaches On/Off UDP sources (`(source node, config)` pairs).
    pub fn on_off_sources(
        mut self,
        sources: impl IntoIterator<Item = (usize, OnOffConfig)>,
    ) -> Self {
        self.on_off.extend(sources);
        self
    }

    /// Enables packet tracing on the given nodes (bounded per-node buffers;
    /// see [`Trace::collect`](crate::trace::Trace::collect)).
    pub fn trace_nodes(mut self, nodes: impl IntoIterator<Item = usize>) -> Self {
        self.trace_nodes.extend(nodes);
        self
    }

    /// Overrides the per-node trace buffer capacity.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Sets the stop time.
    pub fn stop_at(mut self, stop: Time) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Bandwidth of the first host-attached link (used to scale traffic).
    pub fn host_rate(&self) -> DataRate {
        self.topo
            .links
            .iter()
            .find(|l| {
                self.topo.nodes[l.a] == NodeKind::Host || self.topo.nodes[l.b] == NodeKind::Host
            })
            .map(|l| l.rate)
            .unwrap_or(DataRate::gbps(10))
    }

    /// Builds the runnable simulation.
    pub fn build(self) -> NetSim {
        let topo = self.topo;
        let n = topo.node_count();
        // Nodes are assembled fully (devices, routing) before they move
        // into the world builder.
        let mut nodes: Vec<NetNode> = (0..n)
            .map(|i| {
                let is_host = topo.nodes[i] == NodeKind::Host;
                let routing = match self.routing {
                    RoutingKind::StaticEcmp => Routing::Static(StaticTable::default()),
                    RoutingKind::Rip { update_interval } => {
                        Routing::Rip(RipState::new(i as u32, update_interval))
                    }
                };
                NetNode::new(NodeId(i as u32), is_host, routing, self.tcp)
            })
            .collect();

        let mut links = Vec::with_capacity(topo.links.len());
        for (li, l) in topo.links.iter().enumerate() {
            let a_dev = nodes[l.a].devices.len() as u8;
            let b_dev = nodes[l.b].devices.len() as u8;
            // The configured discipline applies to switch ports; host NICs
            // get a deep FIFO (a sender's own window burst must not be
            // dropped/marked at its source — AQM lives in the fabric).
            let mk_queue = |end: usize| {
                let endpoint = if end == 0 { l.a } else { l.b };
                let cfg = if topo.nodes[endpoint] == NodeKind::Host {
                    QueueConfig::DropTail {
                        limit_bytes: 4 << 20,
                    }
                } else {
                    self.queue
                };
                // Deterministic per-queue seed.
                Queue::new(cfg, (li as u64) << 1 | end as u64)
            };
            nodes[l.a].devices.push(Device {
                peer: NodeId(l.b as u32),
                peer_dev: b_dev,
                rate: l.rate,
                delay: l.delay,
                queue: mk_queue(0),
                busy: false,
                up: true,
                link_id: li,
            });
            nodes[l.b].devices.push(Device {
                peer: NodeId(l.a as u32),
                peer_dev: a_dev,
                rate: l.rate,
                delay: l.delay,
                queue: mk_queue(1),
                busy: false,
                up: true,
                link_id: li,
            });
            links.push(BuiltLink {
                core_id: usize::MAX, // filled when registering with the kernel
                a: l.a,
                a_dev,
                b: l.b,
                b_dev,
            });
        }

        if self.routing == RoutingKind::StaticEcmp {
            let adj: Vec<Vec<(u32, u8)>> = nodes
                .iter()
                .map(|node| {
                    node.devices
                        .iter()
                        .enumerate()
                        .filter(|(_, d)| d.up)
                        .map(|(i, d)| (d.peer.0, i as u8))
                        .collect()
                })
                .collect();
            let tables = compute_static_tables(&adj);
            for (node, table) in nodes.iter_mut().zip(tables) {
                node.routing = Routing::Static(table);
            }
        }

        for &t in &self.trace_nodes {
            nodes[t].trace = Some(crate::trace::TraceBuffer::new(self.trace_capacity));
        }
        // Attach On/Off applications before the nodes move into the world.
        let mut app_ticks: Vec<(usize, u16)> = Vec::new();
        for (src, cfg) in &self.on_off {
            let idx = nodes[*src].apps.len() as u16;
            nodes[*src].apps.push(OnOffApp::new(cfg.clone()));
            app_ticks.push((*src, idx));
        }
        let mut wb: WorldBuilder<NetNode> = WorldBuilder::new();
        let rip = matches!(self.routing, RoutingKind::Rip { .. });
        for node in nodes {
            let id = wb.add_node(node);
            if rip {
                // Staggered initial advertisements avoid a synchronized
                // burst at t=0.
                wb.schedule(
                    Time::from_nanos(1 + id.0 as u64 * 997),
                    id,
                    NetEvent::RipTick,
                );
            }
        }
        for (li, l) in topo.links.iter().enumerate() {
            let core_id = wb.add_link(NodeId(l.a as u32), NodeId(l.b as u32), l.delay);
            links[li].core_id = core_id;
        }
        for f in &self.flows {
            wb.schedule(
                f.start,
                NodeId(f.src as u32),
                NetEvent::FlowStart {
                    dst: f.dst as u32,
                    bytes: f.bytes,
                },
            );
        }
        for (src, app) in app_ticks {
            wb.schedule(Time(1), NodeId(src as u32), NetEvent::AppTick { app });
        }
        if let Some(stop) = self.stop {
            wb.stop_at(stop);
        }
        NetSim {
            world: wb.build(),
            links,
            flow_count: self.flows.len() as u64,
        }
    }
}

/// A runnable network simulation.
pub struct NetSim {
    /// The world (consume with [`NetSim::run`] or take it for custom
    /// harnesses that add global events).
    pub world: World<NetNode>,
    /// Per-topology-link build artifacts (for topology-change events).
    pub links: Vec<BuiltLink>,
    /// Number of injected flows.
    pub flow_count: u64,
}

/// Result of a network simulation run.
pub struct SimResult {
    /// Global flow statistics.
    pub flows: FlowReport,
    /// Kernel execution report (events, rounds, P/S/M, profile).
    pub kernel: RunReport,
    /// Final world (for custom inspection).
    pub world: World<NetNode>,
}

impl NetSim {
    /// Runs on the chosen kernel with automatic partitioning.
    pub fn run(self, kernel_kind: KernelKind) -> SimResult {
        self.run_with(&RunConfig {
            watchdog: Default::default(),
            kernel: kernel_kind,
            partition: PartitionMode::Auto,
            sched: SchedConfig::default(),
            metrics: MetricsLevel::Summary,
            telemetry: Default::default(),
            fel: Default::default(),
            fault: Default::default(),
        })
        .expect("valid default configuration")
    }

    /// Runs with a full configuration — kernel, FEL backend, watchdog,
    /// telemetry, and the pluggable partition/scheduling stages
    /// ([`RunConfig::with_partitioner`] / [`RunConfig::with_sched`],
    /// DESIGN.md §4.5). Every combination is bit-identical on the same
    /// partition; the knobs trade wall clock, never results.
    pub fn run_with(self, cfg: &RunConfig) -> Result<SimResult, KernelError> {
        let (world, report) = kernel::run(self.world, cfg)?;
        Ok(SimResult {
            flows: FlowReport::collect(&world),
            kernel: report,
            world,
        })
    }
}
