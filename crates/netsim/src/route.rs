//! Routing: global static shortest paths with ECMP, and RIP dynamic
//! distance-vector routing.
//!
//! Static tables are computed once (and recomputed on demand after topology
//! changes) from a global adjacency snapshot: one BFS per destination; all
//! equal-cost next hops are kept and a per-flow hash picks among them
//! (ECMP). The table layout is CSR-packed to stay compact at torus scales
//! (thousands of nodes).
//!
//! RIP is the classic distance-vector protocol with split horizon and
//! poisoned reverse, periodic full advertisements, triggered updates on
//! change, and an infinity metric of 16 — matching ns-3's RIP model closely
//! enough for the paper's WAN and convergence experiments.

use std::collections::HashMap;

use unison_core::{snapshot_struct, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, Time};

use crate::packet::RipMsg;
use crate::snapshot::{load_map, save_map};

/// RIP's unreachable metric.
pub const RIP_INFINITY: u8 = 16;

/// Per-node routing state.
#[derive(Debug)]
pub enum Routing {
    /// Pre-computed global shortest paths with ECMP.
    Static(StaticTable),
    /// RIP distance-vector.
    Rip(RipState),
}

impl Routing {
    /// Looks up the candidate egress devices for `dst`, writing up to 16
    /// device indices into `buf`; returns how many.
    pub fn lookup(&self, dst: u32, buf: &mut [u8; 16]) -> usize {
        match self {
            Routing::Static(t) => t.lookup(dst, buf),
            Routing::Rip(r) => match r.table.get(&dst) {
                Some(route) if route.metric < RIP_INFINITY => {
                    buf[0] = route.dev;
                    1
                }
                _ => 0,
            },
        }
    }
}

/// CSR-packed per-destination next-hop candidates.
#[derive(Debug, Clone, Default)]
pub struct StaticTable {
    offsets: Vec<u32>,
    devs: Vec<u8>,
}

impl StaticTable {
    /// Builds from per-destination candidate lists.
    pub fn from_candidates(per_dst: &[Vec<u8>]) -> Self {
        let mut offsets = Vec::with_capacity(per_dst.len() + 1);
        let mut devs = Vec::new();
        offsets.push(0u32);
        for cands in per_dst {
            devs.extend_from_slice(cands);
            offsets.push(devs.len() as u32);
        }
        StaticTable { offsets, devs }
    }

    /// Candidate devices for `dst` (up to 16).
    pub fn lookup(&self, dst: u32, buf: &mut [u8; 16]) -> usize {
        let d = dst as usize;
        if d + 1 >= self.offsets.len() {
            return 0;
        }
        let (lo, hi) = (self.offsets[d] as usize, self.offsets[d + 1] as usize);
        let n = (hi - lo).min(16);
        buf[..n].copy_from_slice(&self.devs[lo..lo + n]);
        n
    }
}

/// A global adjacency snapshot used to compute static tables: for each node,
/// `(peer node, local device index)` per *live* device.
pub fn compute_static_tables(adj: &[Vec<(u32, u8)>]) -> Vec<StaticTable> {
    let n = adj.len();
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    // Iterating destinations in ascending order lets each node's CSR table
    // be appended directly (dst-major), avoiding O(n²) temporary vectors.
    let mut tables: Vec<StaticTable> = (0..n)
        .map(|_| StaticTable {
            offsets: vec![0],
            devs: Vec::new(),
        })
        .collect();
    for dst in 0..n {
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        dist[dst] = 0;
        queue.clear();
        queue.push_back(dst);
        while let Some(v) = queue.pop_front() {
            for &(u, _) in &adj[v] {
                if dist[u as usize] == u32::MAX {
                    dist[u as usize] = dist[v] + 1;
                    queue.push_back(u as usize);
                }
            }
        }
        for (node, table) in tables.iter_mut().enumerate() {
            if node != dst && dist[node] != u32::MAX {
                for &(peer, dev) in &adj[node] {
                    if dist[peer as usize] + 1 == dist[node] {
                        table.devs.push(dev);
                    }
                }
            }
            table.offsets.push(table.devs.len() as u32);
        }
    }
    tables
}

/// One RIP route.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RipRoute {
    /// Hop-count metric (16 = unreachable).
    pub metric: u8,
    /// Egress device.
    pub dev: u8,
}

/// Per-node RIP state.
#[derive(Debug)]
pub struct RipState {
    /// Destination → route.
    pub table: HashMap<u32, RipRoute>,
    /// Periodic advertisement interval.
    pub update_interval: Time,
    /// A triggered update is pending.
    pub triggered_pending: bool,
}

impl RipState {
    /// Fresh state knowing only the self route.
    pub fn new(self_id: u32, update_interval: Time) -> Self {
        let mut table = HashMap::new();
        table.insert(
            self_id,
            RipRoute {
                metric: 0,
                dev: u8::MAX,
            },
        );
        RipState {
            table,
            update_interval,
            triggered_pending: false,
        }
    }

    /// Builds the advertisement for a given egress device, applying split
    /// horizon with poisoned reverse.
    pub fn advertisement(&self, self_id: u32, out_dev: u8) -> RipMsg {
        let mut routes: Vec<(u32, u8)> = self
            .table
            .iter()
            .map(|(&dst, r)| {
                let metric = if r.dev == out_dev && r.metric != 0 {
                    RIP_INFINITY
                } else {
                    r.metric
                };
                (dst, metric)
            })
            .collect();
        // HashMap iteration order is arbitrary; sort for determinism.
        routes.sort_unstable();
        RipMsg {
            from: self_id,
            routes,
        }
    }

    /// Integrates a received advertisement arriving on `in_dev`; returns
    /// true when the table changed (schedule a triggered update).
    pub fn on_advertisement(&mut self, msg: &RipMsg, in_dev: u8) -> bool {
        let mut changed = false;
        for &(dst, metric) in &msg.routes {
            let new_metric = metric.saturating_add(1).min(RIP_INFINITY);
            match self.table.get_mut(&dst) {
                Some(route) => {
                    if route.dev == in_dev {
                        // Updates from the current next hop are authoritative.
                        if route.metric != new_metric {
                            route.metric = new_metric;
                            changed = true;
                        }
                    } else if new_metric < route.metric {
                        *route = RipRoute {
                            metric: new_metric,
                            dev: in_dev,
                        };
                        changed = true;
                    }
                }
                None => {
                    if new_metric < RIP_INFINITY {
                        self.table.insert(
                            dst,
                            RipRoute {
                                metric: new_metric,
                                dev: in_dev,
                            },
                        );
                        changed = true;
                    }
                }
            }
        }
        changed
    }

    /// Invalidates routes through a device that went down; returns true if
    /// any route changed.
    pub fn on_device_down(&mut self, dev: u8) -> bool {
        let mut changed = false;
        for route in self.table.values_mut() {
            if route.dev == dev && route.metric < RIP_INFINITY {
                route.metric = RIP_INFINITY;
                changed = true;
            }
        }
        changed
    }
}

snapshot_struct!(StaticTable { offsets, devs });

snapshot_struct!(RipRoute { metric, dev });

impl Snapshot for RipState {
    fn save(&self, w: &mut SnapshotWriter) {
        save_map(&self.table, w);
        self.update_interval.save(w);
        self.triggered_pending.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(RipState {
            table: load_map(r)?,
            update_interval: Time::load(r)?,
            triggered_pending: bool::load(r)?,
        })
    }
}

impl Snapshot for Routing {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            Routing::Static(t) => {
                w.u8(0);
                t.save(w);
            }
            Routing::Rip(s) => {
                w.u8(1);
                s.save(w);
            }
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(Routing::Static(StaticTable::load(r)?)),
            1 => Ok(Routing::Rip(RipState::load(r)?)),
            t => Err(SnapshotError::Corrupt(format!("invalid routing tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Line: 0 - 1 - 2, plus a parallel 0 - 3 - 2 path.
    fn diamond() -> Vec<Vec<(u32, u8)>> {
        vec![
            vec![(1, 0), (3, 1)],
            vec![(0, 0), (2, 1)],
            vec![(1, 0), (3, 1)],
            vec![(0, 0), (2, 1)],
        ]
    }

    #[test]
    fn static_tables_shortest_and_ecmp() {
        let tables = compute_static_tables(&diamond());
        let mut buf = [0u8; 16];
        // From 0 to 2: two equal-cost candidates (via 1 and via 3).
        let n = tables[0].lookup(2, &mut buf);
        assert_eq!(n, 2);
        assert_eq!(&buf[..2], &[0, 1]);
        // From 0 to 1: single next hop, dev 0.
        let n = tables[0].lookup(1, &mut buf);
        assert_eq!(n, 1);
        assert_eq!(buf[0], 0);
        // No route to self.
        assert_eq!(tables[0].lookup(0, &mut buf), 0);
        // Out-of-range dst.
        assert_eq!(tables[0].lookup(99, &mut buf), 0);
    }

    #[test]
    fn static_tables_on_disconnected_graph() {
        let adj = vec![vec![(1, 0)], vec![(0, 0)], vec![], vec![]];
        let tables = compute_static_tables(&adj);
        let mut buf = [0u8; 16];
        assert_eq!(tables[0].lookup(1, &mut buf), 1);
        assert_eq!(tables[0].lookup(2, &mut buf), 0);
    }

    #[test]
    fn rip_learns_and_prefers_shorter() {
        let mut r = RipState::new(0, Time::from_millis(10));
        let changed = r.on_advertisement(
            &RipMsg {
                from: 1,
                routes: vec![(1, 0), (2, 1)],
            },
            0,
        );
        assert!(changed);
        assert_eq!(r.table[&1], RipRoute { metric: 1, dev: 0 });
        assert_eq!(r.table[&2], RipRoute { metric: 2, dev: 0 });
        // A better route via another device wins.
        let changed = r.on_advertisement(
            &RipMsg {
                from: 3,
                routes: vec![(2, 0)],
            },
            1,
        );
        assert!(changed);
        assert_eq!(r.table[&2], RipRoute { metric: 1, dev: 1 });
        // A worse route via another device is ignored.
        let changed = r.on_advertisement(
            &RipMsg {
                from: 1,
                routes: vec![(2, 5)],
            },
            0,
        );
        assert!(!changed);
    }

    #[test]
    fn rip_next_hop_is_authoritative_for_withdrawals() {
        let mut r = RipState::new(0, Time::from_millis(10));
        r.on_advertisement(
            &RipMsg {
                from: 1,
                routes: vec![(2, 1)],
            },
            0,
        );
        // The same next hop now reports the destination unreachable.
        let changed = r.on_advertisement(
            &RipMsg {
                from: 1,
                routes: vec![(2, RIP_INFINITY)],
            },
            0,
        );
        assert!(changed);
        assert_eq!(r.table[&2].metric, RIP_INFINITY);
        let mut buf = [0u8; 16];
        assert_eq!(Routing::Rip(r).lookup(2, &mut buf), 0);
    }

    #[test]
    fn rip_split_horizon_poisons_reverse() {
        let mut r = RipState::new(0, Time::from_millis(10));
        r.on_advertisement(
            &RipMsg {
                from: 1,
                routes: vec![(2, 1)],
            },
            0,
        );
        let adv = r.advertisement(0, 0);
        let entry = adv.routes.iter().find(|(d, _)| *d == 2).unwrap();
        assert_eq!(entry.1, RIP_INFINITY, "poisoned reverse on dev 0");
        let adv = r.advertisement(0, 1);
        let entry = adv.routes.iter().find(|(d, _)| *d == 2).unwrap();
        assert_eq!(entry.1, 2, "normal metric on other devices");
        // Self route advertised with metric 0.
        let me = adv.routes.iter().find(|(d, _)| *d == 0).unwrap();
        assert_eq!(me.1, 0);
    }

    #[test]
    fn rip_device_down_invalidates() {
        let mut r = RipState::new(0, Time::from_millis(10));
        r.on_advertisement(
            &RipMsg {
                from: 1,
                routes: vec![(2, 1), (3, 2)],
            },
            0,
        );
        assert!(r.on_device_down(0));
        assert_eq!(r.table[&2].metric, RIP_INFINITY);
        assert_eq!(r.table[&3].metric, RIP_INFINITY);
        assert!(!r.on_device_down(0), "already invalidated");
    }

    #[test]
    fn metric_saturates_at_infinity() {
        let mut r = RipState::new(0, Time::from_millis(10));
        let changed = r.on_advertisement(
            &RipMsg {
                from: 1,
                routes: vec![(5, RIP_INFINITY - 1)],
            },
            0,
        );
        // Metric 15 + 1 saturates at infinity: the route is never learned.
        assert!(!changed);
        assert!(!r.table.contains_key(&5));
        let mut buf = [0u8; 16];
        assert_eq!(Routing::Rip(r).lookup(5, &mut buf), 0);
    }
}
