//! Per-node packet tracing (the equivalent of ns-3's trace sources).
//!
//! Tracing is opt-in per node: enabled nodes record one [`TraceEntry`] per
//! packet event (arrival, transmission start, queue drop) into a bounded
//! local buffer — no shared state, so tracing composes with parallel
//! execution and stays deterministic. [`Trace::collect`] merges the
//! buffers into one global, time-ordered log after the run.

use unison_core::{
    snapshot_struct, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, Time, World,
};

use crate::node::NetNode;
use crate::packet::FlowId;

/// What happened to a packet at a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// Packet arrived from a link.
    Arrive,
    /// Packet started serializing on an egress device.
    TxStart,
    /// Packet was dropped by an egress queue.
    Drop,
}

/// One traced packet event.
#[derive(Clone, Copy, Debug)]
pub struct TraceEntry {
    /// Virtual time of the event.
    pub ts: Time,
    /// Node where it happened.
    pub node: u32,
    /// Device index involved.
    pub dev: u8,
    /// Event kind.
    pub kind: TraceKind,
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// Wire bytes.
    pub bytes: u32,
    /// Egress queue backlog (bytes) after the event, when applicable.
    pub backlog: u32,
}

/// A bounded per-node trace buffer.
#[derive(Debug)]
pub struct TraceBuffer {
    entries: Vec<TraceEntry>,
    capacity: usize,
    /// Events not recorded because the buffer was full.
    pub truncated: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding up to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            entries: Vec::new(),
            capacity,
            truncated: 0,
        }
    }

    /// Records one event (drops it when full, counting the truncation).
    #[inline]
    pub fn push(&mut self, entry: TraceEntry) {
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else {
            self.truncated += 1;
        }
    }

    /// Recorded entries in insertion order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }
}

impl Snapshot for TraceKind {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u8(match self {
            TraceKind::Arrive => 0,
            TraceKind::TxStart => 1,
            TraceKind::Drop => 2,
        });
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(TraceKind::Arrive),
            1 => Ok(TraceKind::TxStart),
            2 => Ok(TraceKind::Drop),
            t => Err(SnapshotError::Corrupt(format!("invalid trace kind {t}"))),
        }
    }
}

snapshot_struct!(TraceEntry {
    ts,
    node,
    dev,
    kind,
    flow,
    bytes,
    backlog
});

snapshot_struct!(TraceBuffer {
    entries,
    capacity,
    truncated
});

/// A merged global trace.
#[derive(Debug, Default)]
pub struct Trace {
    /// Entries in `(ts, node, kind order)` order.
    pub entries: Vec<TraceEntry>,
    /// Total entries dropped across nodes due to buffer capacity.
    pub truncated: u64,
}

impl Trace {
    /// Merges every enabled node's buffer from a finished world.
    pub fn collect(world: &World<NetNode>) -> Self {
        let mut out = Trace::default();
        for node in world.nodes() {
            if let Some(buf) = &node.trace {
                out.entries.extend_from_slice(buf.entries());
                out.truncated += buf.truncated;
            }
        }
        out.entries
            .sort_by_key(|e| (e.ts, e.node, e.kind as u8, e.flow));
        out
    }

    /// Entries of one flow, in time order.
    pub fn flow(&self, flow: FlowId) -> Vec<TraceEntry> {
        self.entries
            .iter()
            .filter(|e| e.flow == flow)
            .copied()
            .collect()
    }

    /// The per-hop forwarding path of a flow: node ids in first-arrival
    /// order (the source's first TxStart node prepended).
    pub fn path_of(&self, flow: FlowId) -> Vec<u32> {
        let mut path = Vec::new();
        for e in self.entries.iter().filter(|e| e.flow == flow) {
            let relevant = match e.kind {
                TraceKind::TxStart => e.node == flow.src,
                TraceKind::Arrive => true,
                TraceKind::Drop => false,
            };
            if relevant && !path.contains(&e.node) {
                path.push(e.node);
            }
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ts: u64, node: u32, kind: TraceKind) -> TraceEntry {
        TraceEntry {
            ts: Time(ts),
            node,
            dev: 0,
            kind,
            flow: FlowId {
                src: 0,
                dst: 9,
                sport: 1,
                dport: 80,
            },
            bytes: 1500,
            backlog: 0,
        }
    }

    #[test]
    fn buffer_bounds_and_counts_truncation() {
        let mut b = TraceBuffer::new(2);
        b.push(entry(1, 0, TraceKind::TxStart));
        b.push(entry(2, 0, TraceKind::TxStart));
        b.push(entry(3, 0, TraceKind::TxStart));
        assert_eq!(b.entries().len(), 2);
        assert_eq!(b.truncated, 1);
    }

    #[test]
    fn path_reconstruction() {
        let mut t = Trace::default();
        t.entries.push(entry(0, 0, TraceKind::TxStart)); // src
        t.entries.push(entry(5, 3, TraceKind::Arrive)); // switch
        t.entries.push(entry(6, 3, TraceKind::TxStart));
        t.entries.push(entry(9, 9, TraceKind::Arrive)); // dst
        let flow = t.entries[0].flow;
        assert_eq!(t.path_of(flow), vec![0, 3, 9]);
    }
}
