//! # unison-netsim
//!
//! The packet-level network model stack of the unison-rs workspace — the
//! substrate the paper gets from ns-3, rebuilt from scratch:
//!
//! - point-to-point full-duplex links with serialization + propagation
//!   delay ([`node::Device`]);
//! - DropTail and RED/ECN egress queues, including DCTCP step marking
//!   ([`queue`]);
//! - global shortest-path routing with ECMP, and RIP dynamic routing with
//!   split horizon, poisoned reverse and triggered updates ([`route`]);
//! - TCP NewReno and DCTCP transports ([`tcp`]);
//! - applications (finite TCP flows driven by `FlowStart` events);
//! - deterministic, lock-free global flow monitoring ([`flowmon`]);
//! - topology-change helpers for reconfigurable-DCN experiments, plus a
//!   deterministic simulated-network fault axis — link flaps, node
//!   crashes, loss bursts ([`reconfig`]).
//!
//! The model is kernel-agnostic: a built [`NetSim`] runs unmodified on the
//! sequential kernel, the barrier/null-message PDES baselines, or Unison —
//! which is the paper's user-transparency claim, demonstrated in Rust.
//!
//! # Example
//!
//! ```
//! use unison_core::{KernelKind, Time};
//! use unison_netsim::{NetworkBuilder, TransportKind};
//! use unison_topology::fat_tree;
//! use unison_traffic::TrafficConfig;
//!
//! let topo = fat_tree(4);
//! let traffic = TrafficConfig::random_uniform(0.2)
//!     .with_seed(7)
//!     .with_window(Time::ZERO, Time::from_millis(1));
//! let sim = NetworkBuilder::new(&topo)
//!     .transport(TransportKind::NewReno)
//!     .traffic(&traffic)
//!     .stop_at(Time::from_millis(3))
//!     .build();
//! let result = sim.run(KernelKind::Unison { threads: 2 });
//! assert!(result.kernel.events > 0);
//! ```

pub mod app;
pub mod build;
pub mod flowmon;
pub mod node;
pub mod packet;
pub mod queue;
pub mod reconfig;
pub mod route;
pub mod scenario;
pub(crate) mod snapshot;
pub mod tcp;
pub mod trace;

pub use app::{OnOffAction, OnOffApp, OnOffConfig};
pub use build::{BuiltLink, NetSim, NetworkBuilder, RoutingKind, SimResult};
pub use flowmon::{FlowReport, FlowStat};
pub use node::{Device, LossState, NetEvent, NetNode};
pub use packet::{FlowId, Packet, PacketKind, MSS};
pub use queue::{Enqueue, Queue, QueueConfig};
pub use reconfig::{install_faults, recompute_static_routes, set_link_state, NetFault};
pub use scenario::{build_scenario, run_scenario, world_digest};
pub use tcp::{TcpConfig, TcpReceiver, TcpSender, TransportKind};
pub use trace::{Trace, TraceBuffer, TraceEntry, TraceKind};
