//! The netsim half of the scenario contract (DESIGN.md §4.10): mapping a
//! parsed [`ScenarioSpec`] onto the concrete transport/queue/routing types
//! and assembling a runnable [`NetSim`].
//!
//! The mapping is defined to be *structurally identical* to what the
//! hand-assembled experiment binaries build: the same `TcpConfig`
//! constructors, the same DCTCP default-queue coupling that
//! [`NetworkBuilder::transport`] applies, the same builder call order. The
//! golden corpus test (`crates/bench/tests/scenario_corpus.rs`) pins this
//! equivalence bit-for-bit via [`world_digest`].

use unison_core::{KernelError, Snapshot, SnapshotWriter, World};
use unison_scenario::{
    QueueSpec, RoutingSpec, ScenarioSpec, TcpProfile, TransportKindSpec, TransportSpec,
};
use unison_topology::Topology;

use crate::app::OnOffConfig;
use crate::build::{NetSim, NetworkBuilder, RoutingKind, SimResult};
use crate::node::NetNode;
use crate::queue::QueueConfig;
use crate::tcp::{TcpConfig, TransportKind};

/// FNV-1a over the canonical [`Snapshot`] encodings of every node: any
/// diverging bit of model state — socket, queue, RNG, routing table,
/// monitor — changes the hash. This is the digest the golden corpus and
/// the fault-axis tests pin; its encoding is part of the scenario
/// contract's digest-stability guarantee.
pub fn world_digest(world: &World<NetNode>) -> u64 {
    let mut w = SnapshotWriter::new();
    for n in world.nodes() {
        n.save(&mut w);
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in w.into_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Maps a `[transport]` spec onto a [`TcpConfig`]: pick the base profile
/// the hand-written binaries use, then apply field overrides.
pub fn tcp_config_of(spec: &TransportSpec) -> TcpConfig {
    let mut cfg = match (spec.kind, spec.profile) {
        (TransportKindSpec::NewReno, TcpProfile::Default) => TcpConfig::newreno(),
        (TransportKindSpec::NewReno, TcpProfile::Dcn) => TcpConfig::newreno_dcn(),
        (TransportKindSpec::Dctcp, TcpProfile::Default) => TcpConfig::dctcp(),
        (TransportKindSpec::Dctcp, TcpProfile::Dcn) => TcpConfig {
            kind: TransportKind::Dctcp,
            ..TcpConfig::newreno_dcn()
        },
    };
    if let Some(w) = spec.init_cwnd {
        cfg.init_cwnd = w;
    }
    if let Some(t) = spec.min_rto {
        cfg.min_rto = t;
    }
    if let Some(t) = spec.initial_rto {
        cfg.initial_rto = t;
    }
    if let Some(g) = spec.dctcp_g {
        cfg.dctcp_g = g;
    }
    if let Some(lt) = spec.limited_transmit {
        cfg.limited_transmit = lt;
    }
    cfg
}

/// Maps a `[queue]` spec onto a [`QueueConfig`].
pub fn queue_config_of(spec: &QueueSpec) -> QueueConfig {
    match *spec {
        QueueSpec::DropTail { limit_bytes } => QueueConfig::DropTail { limit_bytes },
        QueueSpec::Red {
            limit_bytes,
            min_th,
            max_th,
            max_p,
            w_q,
            mark_ecn,
        } => QueueConfig::Red {
            limit_bytes,
            min_th,
            max_th,
            max_p,
            w_q,
            mark_ecn,
        },
        QueueSpec::Dctcp {
            limit_bytes,
            k_bytes,
        } => QueueConfig::dctcp(limit_bytes, k_bytes),
    }
}

/// Maps a `[routing]` spec onto a [`RoutingKind`].
pub fn routing_kind_of(spec: &RoutingSpec) -> RoutingKind {
    match *spec {
        RoutingSpec::StaticEcmp => RoutingKind::StaticEcmp,
        RoutingSpec::Rip { update_interval } => RoutingKind::Rip { update_interval },
    }
}

impl<'a> NetworkBuilder<'a> {
    /// Starts a builder configured from a scenario. `topo` must be the
    /// scenario's own topology (`spec.build_topology()`); it is passed in
    /// because the builder borrows it.
    ///
    /// Defaulting mirrors the hand-written binaries: with no `[queue]`
    /// section, DCTCP transport brings the step-marking fabric queue that
    /// [`NetworkBuilder::transport`] installs, and NewReno keeps the 1 MiB
    /// DropTail default.
    pub fn from_scenario(topo: &'a Topology, spec: &ScenarioSpec) -> Self {
        let mut b = NetworkBuilder::new(topo);
        if spec.transport.kind == TransportKindSpec::Dctcp {
            // Establish the DCTCP default-queue coupling first, then let an
            // explicit [queue] or tcp override refine it.
            b = b.transport(TransportKind::Dctcp);
        }
        b = b.tcp_config(tcp_config_of(&spec.transport));
        if let Some(q) = &spec.queue {
            b = b.queue(queue_config_of(q));
        }
        b = b.routing(routing_kind_of(&spec.routing));
        if let Some(traffic) = spec.traffic_config() {
            b = b.traffic(&traffic);
        }
        b = b.flows(spec.flows.iter().copied());
        b = b.on_off_sources(spec.on_off.iter().map(|o| {
            (
                o.src,
                OnOffConfig {
                    dst: o.dst,
                    rate: o.rate,
                    pkt_bytes: o.pkt_bytes,
                    mean_on: o.mean_on,
                    mean_off: o.mean_off,
                    until: o.until,
                    seed: o.seed,
                },
            )
        }));
        b.stop_at(spec.run.stop)
    }
}

/// Builds the runnable simulation a scenario describes (topology built
/// internally; use [`NetworkBuilder::from_scenario`] to keep the topology).
pub fn build_scenario(spec: &ScenarioSpec) -> NetSim {
    let topo = spec.build_topology();
    NetworkBuilder::from_scenario(&topo, spec).build()
}

/// Builds and runs a scenario end to end with its own `[run]`
/// configuration. This is what `unison-run` executes.
pub fn run_scenario(spec: &ScenarioSpec) -> Result<SimResult, KernelError> {
    let topo = spec.build_topology();
    let cfg = spec.run_config(&topo);
    let sim = NetworkBuilder::from_scenario(&topo, spec).build();
    sim.run_with(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unison_core::Time;
    use unison_scenario::parse_scenario;

    #[test]
    fn dctcp_transport_brings_step_marking_queue() {
        let spec = parse_scenario(
            r#"
[topology]
kind = "fat_tree"
k = 4
[traffic]
load = 0.1
duration_us = 500
[transport]
kind = "dctcp"
[run]
stop_us = 2000
kernel = "unison"
threads = 2
"#,
        )
        .unwrap();
        let topo = spec.build_topology();
        let via_scenario = NetworkBuilder::from_scenario(&topo, &spec).build();
        let hand = NetworkBuilder::new(&topo)
            .transport(TransportKind::Dctcp)
            .traffic(&spec.traffic_config().unwrap())
            .stop_at(Time::from_millis(2))
            .build();
        assert_eq!(world_digest(&via_scenario.world), world_digest(&hand.world));
    }

    #[test]
    fn transport_overrides_apply() {
        let spec = parse_scenario(
            r#"
[topology]
kind = "fat_tree"
k = 4
[transport]
kind = "newreno"
profile = "dcn"
init_cwnd = 4
limited_transmit = false
[[flow]]
src = 8
dst = 9
bytes = 10000
start_us = 1
[run]
stop_us = 1000
kernel = "sequential"
"#,
        )
        .unwrap();
        let tcp = tcp_config_of(&spec.transport);
        assert_eq!(tcp.kind, TransportKind::NewReno);
        assert_eq!(tcp.min_rto, Time::from_millis(1));
        assert_eq!(tcp.init_cwnd, 4);
        assert!(!tcp.limited_transmit);
    }
}
