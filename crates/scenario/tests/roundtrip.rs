//! Round-trip tests: scenario text → AST → `RunConfig`/`Topology`/
//! `TrafficConfig`, for every kernel, partitioner, and FEL variant the
//! dialect can name. The builder-equivalence half (AST → `NetworkBuilder`
//! vs. hand-assembled) lives in `crates/bench/tests/scenario_corpus.rs`,
//! where netsim is in scope.

use std::time::Duration;

use unison_core::kernel::{KernelKind, PartitionMode};
use unison_core::partition::PartitionPipeline;
use unison_core::pin::PinPolicy;
use unison_core::sched::{SchedMetric, SchedPolicyKind};
use unison_core::{FelImpl, Time};
use unison_scenario::{parse_scenario, QueueSpec, RoutingSpec, ScenarioSpec, TrafficPattern};
use unison_traffic::SizeDist;

/// A minimal valid scenario with `$RUN` spliced into the `[run]` section.
fn with_run(extra: &str) -> ScenarioSpec {
    let src = format!(
        r#"
name = "roundtrip"
[topology]
kind = "fat_tree_clusters"
clusters = 2
hosts_per_cluster = 4
[traffic]
load = 0.2
[run]
stop_us = 1000
{extra}
"#
    );
    parse_scenario(&src).unwrap_or_else(|e| panic!("parse failed for {extra:?}: {e}"))
}

#[test]
fn every_kernel_variant_maps() {
    let cases: &[(&str, KernelKind)] = &[
        (
            "kernel = \"sequential\"",
            KernelKind::Sequential { compat_keys: false },
        ),
        (
            "kernel = \"sequential_compat\"",
            KernelKind::Sequential { compat_keys: true },
        ),
        ("kernel = \"barrier\"", KernelKind::Barrier),
        ("kernel = \"nullmsg\"", KernelKind::NullMessage),
        (
            "kernel = \"unison\"\nthreads = 3",
            KernelKind::Unison { threads: 3 },
        ),
        (
            "kernel = \"async_cons\"\nthreads = 2",
            KernelKind::AsyncCons { threads: 2 },
        ),
        (
            "kernel = \"hybrid\"\nhosts = 2\nthreads_per_host = 2",
            KernelKind::Hybrid {
                hosts: 2,
                threads_per_host: 2,
            },
        ),
    ];
    for (run, want) in cases {
        let spec = with_run(run);
        let topo = spec.build_topology();
        let cfg = spec.run_config(&topo);
        assert_eq!(&cfg.kernel, want, "for {run:?}");
    }
}

#[test]
fn kernel_default_partitions() {
    let seq = with_run("kernel = \"sequential\"");
    let topo = seq.build_topology();
    assert_eq!(seq.run_config(&topo).partition, PartitionMode::SingleLp);

    let uni = with_run("kernel = \"unison\"\nthreads = 2");
    assert_eq!(uni.run_config(&topo).partition, PartitionMode::Auto);

    // barrier/nullmsg default to one LP per topology cluster.
    let bar = with_run("kernel = \"barrier\"");
    let mode = bar.run_config(&topo).partition;
    let PartitionMode::Manual(assign) = mode else {
        panic!("expected manual partition, got {mode:?}");
    };
    assert_eq!(assign, unison_topology::manual::by_cluster(&topo));
}

#[test]
fn every_partition_variant_maps() {
    let base = "kernel = \"unison\"\nthreads = 2\n";
    let topo = with_run(base).build_topology();
    let cases: &[(&str, PartitionMode)] = &[
        ("partition = \"auto\"", PartitionMode::Auto),
        ("partition = \"single_lp\"", PartitionMode::SingleLp),
        (
            "partition = \"bound\"\nbound_us = 5",
            PartitionMode::Bound(Time::from_micros(5)),
        ),
        (
            "partition = \"by_cluster\"",
            PartitionMode::Manual(unison_topology::manual::by_cluster(&topo)),
        ),
        (
            "partition = \"pipeline\"\npipeline = \"median_cut\"",
            PartitionMode::Pipeline(PartitionPipeline::median_cut()),
        ),
        (
            "partition = \"pipeline\"\npipeline = \"refined\"",
            PartitionMode::Pipeline(PartitionPipeline::refined()),
        ),
    ];
    for (part, want) in cases {
        let spec = with_run(&format!("{base}{part}"));
        let cfg = spec.run_config(&topo);
        // Pipelines compare by stage names (PartitionPipeline is not Eq).
        assert_eq!(
            format!("{:?}", cfg.partition),
            format!("{want:?}"),
            "for {part:?}"
        );
    }
    // An explicit per-node assignment (2 clusters of 4 hosts → node count
    // from the built topology).
    let n = topo.node_count();
    let assignment: Vec<String> = (0..n).map(|i| (i % 2).to_string()).collect();
    let spec = with_run(&format!(
        "{base}partition = \"manual\"\nassignment = [{}]",
        assignment.join(", ")
    ));
    let PartitionMode::Manual(got) = spec.run_config(&topo).partition else {
        panic!("expected manual");
    };
    assert_eq!(got.len(), n);
}

#[test]
fn fel_sched_and_knobs_map() {
    let spec = with_run(
        "kernel = \"unison\"\nthreads = 2\nfel = \"binary_heap\"\n\
         sched_metric = \"by-pending-events\"\nsched_policy = \"steal-deque\"\n\
         sched_period = 4\nfusion_threshold = 64\npin = \"compact\"\n\
         watchdog_ms = 2000\nper_round_metrics = true",
    );
    let topo = spec.build_topology();
    let cfg = spec.run_config(&topo);
    assert_eq!(cfg.fel, FelImpl::BinaryHeap);
    assert_eq!(cfg.sched.metric, SchedMetric::ByPendingEvents);
    assert_eq!(cfg.sched.policy, SchedPolicyKind::StealDeque);
    assert_eq!(cfg.sched.period, Some(4));
    assert!(cfg.sched.fusion.enabled);
    assert_eq!(cfg.sched.fusion.threshold, 64);
    assert_eq!(cfg.sched.pin, PinPolicy::Compact);
    assert_eq!(
        cfg.watchdog.round_deadline,
        Some(Duration::from_millis(2000))
    );

    let spec = with_run("kernel = \"unison\"\nthreads = 2\nfusion = false");
    let cfg = spec.run_config(&topo);
    assert!(!cfg.sched.fusion.enabled);
    // Defaults when the keys are absent.
    let spec = with_run("kernel = \"unison\"\nthreads = 2");
    let cfg = spec.run_config(&topo);
    assert_eq!(cfg.fel, FelImpl::Ladder);
    assert_eq!(cfg.sched.metric, SchedMetric::ByLastRoundTime);
    assert_eq!(cfg.watchdog.round_deadline, None);
}

#[test]
fn faults_ride_along() {
    let src = r#"
[topology]
kind = "fat_tree"
k = 4
[traffic]
load = 0.1
[run]
stop_us = 1000
kernel = "unison"
threads = 2
[[fault]]
kind = "worker_panic"
round = 3
phase = "receive"
worker = 1
[[fault]]
kind = "checkpoint_fail"
at_us = 500
"#;
    let spec = parse_scenario(src).unwrap();
    assert_eq!(spec.run.fault.specs().len(), 2);
    let topo = spec.build_topology();
    let cfg = spec.run_config(&topo);
    assert_eq!(cfg.fault.specs().len(), 2);
}

#[test]
fn traffic_and_topology_sections_map() {
    let src = r#"
name = "map"
[topology]
kind = "fat_tree_clusters"
clusters = 4
hosts_per_cluster = 4
rate_mbps = 100
delay_us = 500
[traffic]
pattern = "incast"
load = 0.5
incast_ratio = 0.7
sizes = "grpc"
seed = 11
start_us = 0
duration_us = 40000
[run]
stop_us = 60000
kernel = "unison"
threads = 2
"#;
    let spec = parse_scenario(src).unwrap();
    let topo = spec.build_topology();
    assert_eq!(topo.clusters, 4);
    assert_eq!(topo.hosts().len(), 16);
    // The rate/delay overrides hit every link.
    assert!(topo
        .links
        .iter()
        .all(|l| l.rate.as_bps() == 100_000_000 && l.delay == Time::from_micros(500)));
    let t = spec.traffic_config().unwrap();
    assert_eq!(t.load, 0.5);
    assert_eq!(t.incast_ratio, 0.7);
    assert_eq!(t.size_dist, SizeDist::Grpc);
    assert_eq!(t.seed, 11);
    assert_eq!(t.duration, Time::from_micros(40_000));
    assert_eq!(
        spec.traffic.as_ref().unwrap().pattern,
        TrafficPattern::Incast
    );
}

#[test]
fn transport_queue_routing_specs_parse() {
    let src = r#"
[topology]
kind = "dumbbell"
senders = 2
receivers = 2
edge_rate_mbps = 1000
bottleneck_rate_mbps = 1000
delay_us = 20
[transport]
kind = "dctcp"
profile = "dcn"
[queue]
kind = "dctcp"
limit_bytes = 400000
k_bytes = 8000
[routing]
kind = "rip"
update_interval_us = 10000
[[flow]]
src = 2
dst = 4
bytes = 2000000
start_us = 50
[run]
stop_us = 400000
kernel = "unison"
threads = 2
"#;
    let spec = parse_scenario(src).unwrap();
    assert_eq!(
        spec.queue,
        Some(QueueSpec::Dctcp {
            limit_bytes: 400_000,
            k_bytes: 8_000
        })
    );
    assert_eq!(
        spec.routing,
        RoutingSpec::Rip {
            update_interval: Time::from_millis(10)
        }
    );
    assert_eq!(spec.flows.len(), 1);
    assert_eq!(spec.flows[0].bytes, 2_000_000);
}

#[test]
fn strictness_rejects_mistakes() {
    let ok = r#"
[topology]
kind = "fat_tree"
k = 4
[traffic]
load = 0.1
[run]
stop_us = 1000
kernel = "unison"
threads = 2
"#;
    assert!(parse_scenario(ok).is_ok());
    // Unknown key in a known section.
    let e = parse_scenario(&ok.replace("k = 4", "k = 4\nkk = 9")).unwrap_err();
    assert!(e.msg.contains("unknown key `kk`"), "{e}");
    // Unknown section.
    let e = parse_scenario(&format!("{ok}[wat]\nx = 1\n")).unwrap_err();
    assert!(e.msg.contains("unknown section"), "{e}");
    // Unknown enum value, with the options listed.
    let e = parse_scenario(&ok.replace("\"unison\"", "\"warp\"")).unwrap_err();
    assert!(e.msg.contains("unknown kernel `warp`"), "{e}");
    assert!(e.msg.contains("async_cons"), "{e}");
    // Missing required key.
    let e = parse_scenario(&ok.replace("threads = 2", "")).unwrap_err();
    assert!(e.msg.contains("missing required key `threads`"), "{e}");
    // Type mismatch.
    let e = parse_scenario(&ok.replace("threads = 2", "threads = \"two\"")).unwrap_err();
    assert!(e.msg.contains("must be a"), "{e}");
    // `threads` on a kernel that has none.
    let e = parse_scenario(&ok.replace("kernel = \"unison\"", "kernel = \"barrier\"")).unwrap_err();
    assert!(e.msg.contains("not valid for kernel"), "{e}");
    // Semantic validation: flow endpoints must be hosts.
    let e = parse_scenario(&format!(
        "{ok}[[flow]]\nsrc = 0\ndst = 1\nbytes = 100\nstart_us = 0\n"
    ))
    .unwrap_err();
    assert!(e.msg.contains("is not a host"), "{e}");
    // Duplicate section.
    let e = parse_scenario(&format!("{ok}[run]\nstop_us = 1\nkernel = \"barrier\"\n")).unwrap_err();
    assert!(e.msg.contains("duplicate"), "{e}");
}

#[test]
fn errors_carry_spans() {
    let e = parse_scenario(
        "[topology]\nkind = \"fat_tree\"\nk = 4\n  kindd = 9\n[run]\nstop_us = 1\nkernel = \"sequential\"\n",
    )
    .unwrap_err();
    assert_eq!((e.line, e.col), (4, 3), "{e}");
}
