//! The scenario AST: a typed, validated description of one experiment.
//!
//! A scenario file is the declarative counterpart of a hand-assembled
//! bench binary: it names a topology, a workload, a transport/queue/routing
//! configuration, and a full kernel selection (`[run]`), in the TOML
//! dialect of [`crate::toml`]. [`parse_scenario`] turns source text into a
//! [`ScenarioSpec`]; the spec then builds the concrete artifacts —
//! [`ScenarioSpec::build_topology`], [`ScenarioSpec::traffic_config`],
//! [`ScenarioSpec::run_config`] — that the netsim/bench layers consume.
//!
//! Parsing is strict: unknown sections and unknown keys are rejected with
//! line/column spans, and every enum-valued key lists its accepted values
//! in the error message. Defaulting rules are documented per section in
//! DESIGN.md §4.10 (the "scenario contract"); the golden corpus test pins
//! the digest of every committed scenario, so the defaults here are part
//! of the reproducibility surface and must not drift silently.

use std::fmt;
use std::time::Duration;

use unison_core::fault::FaultPlan;
use unison_core::kernel::{KernelKind, PartitionMode, RunConfig};
use unison_core::partition::PartitionPipeline;
use unison_core::pin::PinPolicy;
use unison_core::sched::{FusionConfig, SchedConfig, SchedMetric, SchedPolicyKind};
use unison_core::{DataRate, FelImpl, RunPhase, Time};
use unison_topology::{self as topology, NodeKind, TopoLink, Topology};
use unison_traffic::{FlowSpec, SizeDist, TrafficConfig};

use crate::toml::{self, Entry, Table, Value};

/// A scenario-level error with a 1-based line/column span into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    pub line: usize,
    pub col: usize,
    pub msg: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ScenarioError {}

impl From<toml::ParseError> for ScenarioError {
    fn from(e: toml::ParseError) -> Self {
        ScenarioError {
            line: e.line,
            col: e.col,
            msg: e.msg,
        }
    }
}

fn serr(line: usize, col: usize, msg: impl Into<String>) -> ScenarioError {
    ScenarioError {
        line,
        col,
        msg: msg.into(),
    }
}

// ---------------------------------------------------------------------------
// Spec types
// ---------------------------------------------------------------------------

/// Which topology builder a scenario uses, with its parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum TopoKind {
    /// `topology::fat_tree(k)`.
    FatTree { k: usize },
    /// `topology::fat_tree_clusters(clusters, hosts_per_cluster)`.
    FatTreeClusters {
        clusters: usize,
        hosts_per_cluster: usize,
    },
    /// `topology::spine_leaf(spines, leaves, hosts_per_leaf, rate, delay)`.
    SpineLeaf {
        spines: usize,
        leaves: usize,
        hosts_per_leaf: usize,
    },
    /// `topology::dumbbell(senders, receivers, edge, bottleneck, delay)`.
    Dumbbell {
        senders: usize,
        receivers: usize,
        edge_rate: DataRate,
        bottleneck_rate: DataRate,
    },
    /// `topology::bcube(n, levels, rate, delay)`.
    BCube { n: usize, levels: usize },
    /// `topology::torus2d(rows, cols, rate, delay)`.
    Torus2d { rows: usize, cols: usize },
    /// The GÉANT European research WAN.
    Geant,
    /// The CHINANET provider WAN.
    Chinanet,
    /// An explicit node/link list (`nodes`, `hosts`, `clusters`, `[[link]]`).
    Manual {
        nodes: usize,
        hosts: Vec<usize>,
        clusters: Vec<u32>,
        links: Vec<ManualLink>,
    },
}

/// One `[[link]]` of a manual topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManualLink {
    pub a: usize,
    pub b: usize,
    pub rate: DataRate,
    pub delay: Time,
}

/// The `[topology]` section.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    pub kind: TopoKind,
    /// Override every link rate (`Topology::with_rate`) for the named
    /// builders, or the constructor rate for spine-leaf/bcube/torus.
    pub rate: Option<DataRate>,
    /// Link delay override / constructor delay (see DESIGN.md §4.10).
    pub delay: Option<Time>,
    /// Host-access-link delay override (`with_host_link_delay`).
    pub host_delay: Option<Time>,
}

/// The `[traffic]` arrival pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    RandomUniform,
    Incast,
}

/// The `[traffic]` section: a declarative [`TrafficConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    pub pattern: TrafficPattern,
    pub load: f64,
    pub incast_ratio: f64,
    pub incast_cluster: Option<u32>,
    pub sizes: SizeDist,
    pub seed: u64,
    pub start: Time,
    pub duration: Time,
}

impl TrafficSpec {
    /// The equivalent [`TrafficConfig`].
    pub fn to_config(&self) -> TrafficConfig {
        let mut cfg = match self.pattern {
            TrafficPattern::RandomUniform => TrafficConfig::random_uniform(self.load),
            TrafficPattern::Incast => TrafficConfig::incast(self.load, self.incast_ratio),
        };
        cfg.incast_cluster = self.incast_cluster;
        cfg = cfg
            .with_seed(self.seed)
            .with_sizes(self.sizes)
            .with_window(self.start, self.duration);
        cfg
    }
}

/// The TCP flavor of the `[transport]` section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKindSpec {
    NewReno,
    Dctcp,
}

/// Which base parameter profile `[transport]` starts from before field
/// overrides: WAN-scale RTOs (`default`) or datacenter RTOs (`dcn`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpProfile {
    Default,
    Dcn,
}

/// The `[transport]` section. Pure data — the netsim layer maps it onto
/// `TcpConfig` (`NetworkBuilder::from_scenario`).
#[derive(Debug, Clone, PartialEq)]
pub struct TransportSpec {
    pub kind: TransportKindSpec,
    pub profile: TcpProfile,
    pub init_cwnd: Option<u32>,
    pub min_rto: Option<Time>,
    pub initial_rto: Option<Time>,
    pub dctcp_g: Option<f64>,
    pub limited_transmit: Option<bool>,
}

impl Default for TransportSpec {
    fn default() -> Self {
        TransportSpec {
            kind: TransportKindSpec::NewReno,
            profile: TcpProfile::Default,
            init_cwnd: None,
            min_rto: None,
            initial_rto: None,
            dctcp_g: None,
            limited_transmit: None,
        }
    }
}

/// The `[queue]` section. Pure data — maps onto netsim's `QueueConfig`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueSpec {
    DropTail {
        limit_bytes: u32,
    },
    Red {
        limit_bytes: u32,
        min_th: u32,
        max_th: u32,
        max_p: f64,
        w_q: f64,
        mark_ecn: bool,
    },
    /// DCTCP-style ECN marking at a step threshold (`QueueConfig::dctcp`).
    Dctcp {
        limit_bytes: u32,
        k_bytes: u32,
    },
}

/// The `[routing]` section. Pure data — maps onto netsim's `RoutingKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingSpec {
    StaticEcmp,
    Rip { update_interval: Time },
}

/// One `[[on_off]]` background source. Pure data — maps onto netsim's
/// `OnOffConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnOffSpec {
    pub src: usize,
    pub dst: u32,
    pub rate: DataRate,
    pub pkt_bytes: u32,
    pub mean_on: Time,
    pub mean_off: Time,
    pub until: Time,
    pub seed: u64,
}

/// The `partition = ...` selection of the `[run]` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionSpec {
    /// Fine-grained partitioning (Algorithm 1) — the Unison default.
    Auto,
    /// Everything in one LP (sequential kernels).
    SingleLp,
    /// `PartitionMode::Bound(lookahead)`.
    Bound(Time),
    /// An explicit per-node LP assignment.
    Manual(Vec<u32>),
    /// One LP per topology cluster (`manual::by_cluster`) — resolved
    /// against the built topology, so the file does not hard-code sizes.
    ByCluster,
    /// A staged partition pipeline.
    Pipeline(PipelineSpec),
}

/// Which staged pipeline `partition = "pipeline"` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineSpec {
    MedianCut,
    Refined,
}

impl PartitionSpec {
    /// Resolves to a concrete [`PartitionMode`] against the built topology.
    pub fn mode(&self, topo: &Topology) -> PartitionMode {
        match self {
            PartitionSpec::Auto => PartitionMode::Auto,
            PartitionSpec::SingleLp => PartitionMode::SingleLp,
            PartitionSpec::Bound(t) => PartitionMode::Bound(*t),
            PartitionSpec::Manual(v) => PartitionMode::Manual(v.clone()),
            PartitionSpec::ByCluster => PartitionMode::Manual(topology::manual::by_cluster(topo)),
            PartitionSpec::Pipeline(PipelineSpec::MedianCut) => {
                PartitionMode::Pipeline(PartitionPipeline::median_cut())
            }
            PartitionSpec::Pipeline(PipelineSpec::Refined) => {
                PartitionMode::Pipeline(PartitionPipeline::refined())
            }
        }
    }
}

/// The `[run]` section: stop time plus the full kernel selection.
#[derive(Debug, Clone)]
pub struct RunSpec {
    pub stop: Time,
    pub kernel: KernelKind,
    pub partition: PartitionSpec,
    pub sched: SchedConfig,
    pub fel: FelImpl,
    pub watchdog: Option<Duration>,
    pub per_round_metrics: bool,
    pub fault: FaultPlan,
}

/// A parsed, validated scenario.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (the root `name = "..."` key).
    pub name: String,
    pub topology: TopologySpec,
    pub traffic: Option<TrafficSpec>,
    /// Explicit `[[flow]]` injections (in addition to `[traffic]`).
    pub flows: Vec<FlowSpec>,
    /// `[[on_off]]` background sources.
    pub on_off: Vec<OnOffSpec>,
    pub transport: TransportSpec,
    pub queue: Option<QueueSpec>,
    pub routing: RoutingSpec,
    pub run: RunSpec,
}

impl ScenarioSpec {
    /// Builds the concrete [`Topology`] this scenario describes.
    pub fn build_topology(&self) -> Topology {
        let spec = &self.topology;
        let rate = spec.rate.unwrap_or(DataRate::gbps(100));
        let delay = spec.delay.unwrap_or(Time::from_micros(3));
        let mut topo = match &spec.kind {
            TopoKind::FatTree { k } => topology::fat_tree(*k),
            TopoKind::FatTreeClusters {
                clusters,
                hosts_per_cluster,
            } => topology::fat_tree_clusters(*clusters, *hosts_per_cluster),
            TopoKind::SpineLeaf {
                spines,
                leaves,
                hosts_per_leaf,
            } => topology::spine_leaf(*spines, *leaves, *hosts_per_leaf, rate, delay),
            TopoKind::Dumbbell {
                senders,
                receivers,
                edge_rate,
                bottleneck_rate,
            } => topology::dumbbell(*senders, *receivers, *edge_rate, *bottleneck_rate, delay),
            TopoKind::BCube { n, levels } => topology::bcube(*n, *levels, rate, delay),
            TopoKind::Torus2d { rows, cols } => topology::torus2d(*rows, *cols, rate, delay),
            TopoKind::Geant => topology::geant(),
            TopoKind::Chinanet => topology::chinanet(),
            TopoKind::Manual {
                nodes,
                hosts,
                clusters,
                links,
            } => {
                let kinds: Vec<NodeKind> = (0..*nodes)
                    .map(|i| {
                        if hosts.contains(&i) {
                            NodeKind::Host
                        } else {
                            NodeKind::Switch
                        }
                    })
                    .collect();
                let cluster_of = if clusters.is_empty() {
                    vec![0u32; *nodes]
                } else {
                    clusters.clone()
                };
                let n_clusters = cluster_of.iter().copied().max().map_or(1, |m| m + 1);
                Topology {
                    name: format!("manual({nodes})"),
                    nodes: kinds,
                    links: links
                        .iter()
                        .map(|l| TopoLink {
                            a: l.a,
                            b: l.b,
                            rate: l.rate,
                            delay: l.delay,
                        })
                        .collect(),
                    cluster_of,
                    clusters: n_clusters,
                }
            }
        };
        // For builders with internal defaults the rate/delay keys act as
        // whole-topology overrides; the parameterized builders above
        // consumed them as constructor arguments instead.
        if matches!(
            spec.kind,
            TopoKind::FatTree { .. }
                | TopoKind::FatTreeClusters { .. }
                | TopoKind::Geant
                | TopoKind::Chinanet
        ) {
            if let Some(r) = spec.rate {
                topo = topo.with_rate(r);
            }
            if let Some(d) = spec.delay {
                topo = topo.with_delay(d);
            }
        }
        if let Some(hd) = spec.host_delay {
            topo = topo.with_host_link_delay(hd);
        }
        topo
    }

    /// The generated-traffic configuration, if a `[traffic]` section was
    /// present.
    pub fn traffic_config(&self) -> Option<TrafficConfig> {
        self.traffic.as_ref().map(TrafficSpec::to_config)
    }

    /// The [`RunConfig`] this scenario selects, resolved against the built
    /// topology (needed for `partition = "by_cluster"`).
    pub fn run_config(&self, topo: &Topology) -> RunConfig {
        self.run_config_with_kernel(topo, self.run.kernel.clone())
    }

    /// Like [`ScenarioSpec::run_config`] but with the kernel replaced —
    /// the corpus test uses this to sweep thread counts over one file.
    pub fn run_config_with_kernel(&self, topo: &Topology, kernel: KernelKind) -> RunConfig {
        let base = RunConfig::sequential();
        let mut cfg = RunConfig {
            kernel,
            partition: self.run.partition.mode(topo),
            sched: self.run.sched,
            fel: self.run.fel,
            ..base
        };
        if let Some(deadline) = self.run.watchdog {
            cfg = cfg.with_watchdog(deadline);
        }
        if self.run.per_round_metrics {
            cfg = cfg.with_per_round_metrics();
        }
        if !self.run.fault.is_empty() {
            cfg = cfg.with_faults(self.run.fault.clone());
        }
        cfg
    }

    /// Semantic validation beyond what parsing enforces: node references
    /// in bounds, hosts where hosts are required, sane numeric ranges.
    /// Builds the topology internally (cheap — no simulation).
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let fail = |msg: String| Err(serr(0, 0, msg));
        if let TopoKind::Manual {
            nodes,
            hosts,
            clusters,
            links,
        } = &self.topology.kind
        {
            if *nodes == 0 {
                return fail("manual topology needs `nodes >= 1`".into());
            }
            if let Some(h) = hosts.iter().find(|h| **h >= *nodes) {
                return fail(format!("manual host id {h} out of range (nodes = {nodes})"));
            }
            if !clusters.is_empty() && clusters.len() != *nodes {
                return fail(format!(
                    "manual `clusters` has {} entries for {} nodes",
                    clusters.len(),
                    nodes
                ));
            }
            if let Some(l) = links.iter().find(|l| l.a >= *nodes || l.b >= *nodes) {
                return fail(format!(
                    "manual link {}-{} out of range (nodes = {})",
                    l.a, l.b, nodes
                ));
            }
        }
        let topo = self.build_topology();
        let n = topo.node_count();
        if let Some(t) = &self.traffic {
            if !(0.0..=10.0).contains(&t.load) {
                return fail(format!("traffic load {} out of range [0, 10]", t.load));
            }
            if !(0.0..=1.0).contains(&t.incast_ratio) {
                return fail(format!(
                    "incast_ratio {} out of range [0, 1]",
                    t.incast_ratio
                ));
            }
            if let Some(c) = t.incast_cluster {
                if c >= topo.clusters {
                    return fail(format!(
                        "incast_cluster {c} out of range ({} clusters)",
                        topo.clusters
                    ));
                }
            }
        }
        for f in &self.flows {
            for (role, id) in [("src", f.src), ("dst", f.dst)] {
                if id >= n {
                    return fail(format!("flow {role} {id} out of range ({n} nodes)"));
                }
                if !matches!(topo.nodes[id], NodeKind::Host) {
                    return fail(format!("flow {role} {id} is not a host"));
                }
            }
            if f.src == f.dst {
                return fail(format!("flow src == dst ({})", f.src));
            }
        }
        for o in &self.on_off {
            if o.src >= n || (o.dst as usize) >= n {
                return fail(format!(
                    "on_off {}-{} out of range ({n} nodes)",
                    o.src, o.dst
                ));
            }
        }
        match &self.run.kernel {
            KernelKind::Unison { threads } | KernelKind::AsyncCons { threads } if *threads == 0 => {
                return fail("`threads` must be >= 1".into());
            }
            KernelKind::Hybrid {
                hosts,
                threads_per_host,
            } if (*hosts == 0 || *threads_per_host == 0) => {
                return fail("hybrid `hosts`/`threads_per_host` must be >= 1".into());
            }
            _ => {}
        }
        if let PartitionSpec::Manual(assign) = &self.run.partition {
            if assign.len() != n {
                return fail(format!(
                    "manual partition has {} entries for {} nodes",
                    assign.len(),
                    n
                ));
            }
        }
        if self.run.stop == Time::ZERO {
            return fail("`stop_us` must be positive".into());
        }
        if !topo.is_connected() {
            return fail(format!("topology `{}` is not connected", topo.name));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Tracks which keys of a table have been consumed so leftovers can be
/// rejected with their spans — the unknown-key half of strict parsing.
struct Keys<'a> {
    table: &'a Table,
    section: String,
    used: Vec<&'a str>,
}

impl<'a> Keys<'a> {
    fn new(table: &'a Table) -> Self {
        let section = if table.name.is_empty() {
            "the top level".to_string()
        } else if table.is_array {
            format!("[[{}]]", table.name)
        } else {
            format!("[{}]", table.name)
        };
        Keys {
            table,
            section,
            used: Vec::new(),
        }
    }

    fn entry(&mut self, key: &'a str) -> Option<&'a Entry> {
        self.used.push(key);
        self.table.entry(key)
    }

    fn mismatch(&self, e: &Entry, want: &str) -> ScenarioError {
        serr(
            e.line,
            e.col,
            format!(
                "`{}` in {} must be a {want}, got a {}",
                e.key,
                self.section,
                e.value.type_name()
            ),
        )
    }

    fn missing(&self, key: &str) -> ScenarioError {
        serr(
            self.table.line,
            self.table.col,
            format!("{} is missing required key `{key}`", self.section),
        )
    }

    fn str(&mut self, key: &'a str) -> Result<Option<&'a str>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                Value::Str(s) => Ok(Some(s)),
                _ => Err(self.mismatch(e, "string")),
            },
        }
    }

    fn req_str(&mut self, key: &'a str) -> Result<&'a str, ScenarioError> {
        self.str(key)?.ok_or_else(|| self.missing(key))
    }

    fn int(&mut self, key: &'a str) -> Result<Option<i64>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                Value::Int(n) => Ok(Some(*n)),
                _ => Err(self.mismatch(e, "integer")),
            },
        }
    }

    fn req_int(&mut self, key: &'a str) -> Result<i64, ScenarioError> {
        self.int(key)?.ok_or_else(|| self.missing(key))
    }

    fn usize(&mut self, key: &'a str) -> Result<Option<usize>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                Value::Int(n) if *n >= 0 => Ok(Some(*n as usize)),
                Value::Int(_) => Err(self.mismatch(e, "non-negative integer")),
                _ => Err(self.mismatch(e, "integer")),
            },
        }
    }

    fn req_usize(&mut self, key: &'a str) -> Result<usize, ScenarioError> {
        self.usize(key)?.ok_or_else(|| self.missing(key))
    }

    fn u64(&mut self, key: &'a str) -> Result<Option<u64>, ScenarioError> {
        match self.usize(key)? {
            Some(v) => Ok(Some(v as u64)),
            None => Ok(None),
        }
    }

    fn u32(&mut self, key: &'a str) -> Result<Option<u32>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                Value::Int(n) if *n >= 0 && *n <= i64::from(u32::MAX) => Ok(Some(*n as u32)),
                Value::Int(_) => Err(self.mismatch(e, "u32")),
                _ => Err(self.mismatch(e, "integer")),
            },
        }
    }

    fn float(&mut self, key: &'a str) -> Result<Option<f64>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                Value::Float(f) => Ok(Some(*f)),
                Value::Int(n) => Ok(Some(*n as f64)),
                _ => Err(self.mismatch(e, "number")),
            },
        }
    }

    fn bool(&mut self, key: &'a str) -> Result<Option<bool>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                Value::Bool(b) => Ok(Some(*b)),
                _ => Err(self.mismatch(e, "boolean")),
            },
        }
    }

    /// A `<key>_us` integer read as microseconds.
    fn time_us(&mut self, key: &'a str) -> Result<Option<Time>, ScenarioError> {
        Ok(self.u64(key)?.map(Time::from_micros))
    }

    fn req_time_us(&mut self, key: &'a str) -> Result<Time, ScenarioError> {
        self.time_us(key)?.ok_or_else(|| self.missing(key))
    }

    /// A `<key>_mbps` integer read as a data rate.
    fn rate_mbps(&mut self, key: &'a str) -> Result<Option<DataRate>, ScenarioError> {
        Ok(self.u64(key)?.map(DataRate::mbps))
    }

    /// An array of non-negative integers.
    fn int_array(&mut self, key: &'a str) -> Result<Option<Vec<u64>>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                Value::Array(items) => {
                    let mut out = Vec::with_capacity(items.len());
                    for item in items {
                        match item {
                            Value::Int(n) if *n >= 0 => out.push(*n as u64),
                            _ => {
                                return Err(self.mismatch(e, "array of non-negative integers"));
                            }
                        }
                    }
                    Ok(Some(out))
                }
                _ => Err(self.mismatch(e, "array")),
            },
        }
    }

    /// A string key constrained to an enumerated set, mapped to `T`.
    fn choice<T: Copy>(
        &mut self,
        key: &'a str,
        options: &[(&str, T)],
    ) -> Result<Option<T>, ScenarioError> {
        let Some(e) = self.entry(key) else {
            return Ok(None);
        };
        let Value::Str(s) = &e.value else {
            return Err(self.mismatch(e, "string"));
        };
        for (name, v) in options {
            if name == s {
                return Ok(Some(*v));
            }
        }
        let names: Vec<&str> = options.iter().map(|(n, _)| *n).collect();
        Err(serr(
            e.line,
            e.col,
            format!(
                "`{}` in {} must be one of {} (got `{s}`)",
                e.key,
                self.section,
                names.join(" | ")
            ),
        ))
    }

    /// Rejects any key that was never consumed.
    fn finish(self) -> Result<(), ScenarioError> {
        for e in &self.table.entries {
            if !self.used.iter().any(|u| *u == e.key) {
                return Err(serr(
                    e.line,
                    e.col,
                    format!("unknown key `{}` in {}", e.key, self.section),
                ));
            }
        }
        Ok(())
    }
}

fn parse_topology(table: &Table, links: &[ManualLink]) -> Result<TopologySpec, ScenarioError> {
    let mut k = Keys::new(table);
    let kind_name = k.req_str("kind")?;
    let rate = k.rate_mbps("rate_mbps")?;
    let delay = k.time_us("delay_us")?;
    let host_delay = k.time_us("host_delay_us")?;
    let kind = match kind_name {
        "fat_tree" => TopoKind::FatTree {
            k: k.req_usize("k")?,
        },
        "fat_tree_clusters" => TopoKind::FatTreeClusters {
            clusters: k.req_usize("clusters")?,
            hosts_per_cluster: k.req_usize("hosts_per_cluster")?,
        },
        "spine_leaf" => TopoKind::SpineLeaf {
            spines: k.req_usize("spines")?,
            leaves: k.req_usize("leaves")?,
            hosts_per_leaf: k.req_usize("hosts_per_leaf")?,
        },
        "dumbbell" => TopoKind::Dumbbell {
            senders: k.req_usize("senders")?,
            receivers: k.req_usize("receivers")?,
            edge_rate: DataRate::mbps(k.req_int("edge_rate_mbps")?.max(0) as u64),
            bottleneck_rate: DataRate::mbps(k.req_int("bottleneck_rate_mbps")?.max(0) as u64),
        },
        "bcube" => TopoKind::BCube {
            n: k.req_usize("n")?,
            levels: k.req_usize("levels")?,
        },
        "torus2d" => TopoKind::Torus2d {
            rows: k.req_usize("rows")?,
            cols: k.req_usize("cols")?,
        },
        "geant" => TopoKind::Geant,
        "chinanet" => TopoKind::Chinanet,
        "manual" => TopoKind::Manual {
            nodes: k.req_usize("nodes")?,
            hosts: k
                .int_array("hosts")?
                .unwrap_or_default()
                .into_iter()
                .map(|h| h as usize)
                .collect(),
            clusters: k
                .int_array("clusters")?
                .unwrap_or_default()
                .into_iter()
                .map(|c| c as u32)
                .collect(),
            links: links.to_vec(),
        },
        other => {
            let e = table.entry("kind").expect("kind was read");
            return Err(serr(
                e.line,
                e.col,
                format!(
                    "unknown topology kind `{other}` (expected fat_tree | fat_tree_clusters | \
                     spine_leaf | dumbbell | bcube | torus2d | geant | chinanet | manual)"
                ),
            ));
        }
    };
    if !links.is_empty() && !matches!(kind, TopoKind::Manual { .. }) {
        return Err(serr(
            table.line,
            table.col,
            "[[link]] tables are only valid with `kind = \"manual\"`",
        ));
    }
    k.finish()?;
    Ok(TopologySpec {
        kind,
        rate,
        delay,
        host_delay,
    })
}

fn parse_link(table: &Table) -> Result<ManualLink, ScenarioError> {
    let mut k = Keys::new(table);
    let link = ManualLink {
        a: k.req_usize("a")?,
        b: k.req_usize("b")?,
        rate: k.rate_mbps("rate_mbps")?.unwrap_or(DataRate::gbps(100)),
        delay: k.time_us("delay_us")?.unwrap_or(Time::from_micros(3)),
    };
    k.finish()?;
    Ok(link)
}

fn parse_traffic(table: &Table) -> Result<TrafficSpec, ScenarioError> {
    let mut k = Keys::new(table);
    let pattern = k
        .choice(
            "pattern",
            &[
                ("random_uniform", TrafficPattern::RandomUniform),
                ("incast", TrafficPattern::Incast),
            ],
        )?
        .unwrap_or(TrafficPattern::RandomUniform);
    let load = k.float("load")?.ok_or_else(|| k.missing("load"))?;
    let incast_ratio = k.float("incast_ratio")?;
    if pattern == TrafficPattern::Incast && incast_ratio.is_none() {
        return Err(k.missing("incast_ratio"));
    }
    let sizes_kind = k.choice(
        "sizes",
        &[("web_search", 0u8), ("grpc", 1u8), ("fixed", 2u8)],
    )?;
    let fixed_bytes = k.u64("fixed_bytes")?;
    let sizes = match sizes_kind {
        None | Some(0) => SizeDist::WebSearch,
        Some(1) => SizeDist::Grpc,
        _ => {
            let bytes = fixed_bytes.ok_or_else(|| k.missing("fixed_bytes"))?;
            SizeDist::Fixed(bytes)
        }
    };
    if sizes_kind != Some(2) && fixed_bytes.is_some() {
        let e = table.entry("fixed_bytes").expect("was read");
        return Err(serr(
            e.line,
            e.col,
            "`fixed_bytes` requires `sizes = \"fixed\"`",
        ));
    }
    let spec = TrafficSpec {
        pattern,
        load,
        incast_ratio: incast_ratio.unwrap_or(0.0),
        incast_cluster: k.u32("incast_cluster")?,
        sizes,
        seed: k.u64("seed")?.unwrap_or(1),
        start: k.time_us("start_us")?.unwrap_or(Time::ZERO),
        duration: k.time_us("duration_us")?.unwrap_or(Time::from_millis(10)),
    };
    k.finish()?;
    Ok(spec)
}

fn parse_flow(table: &Table) -> Result<FlowSpec, ScenarioError> {
    let mut k = Keys::new(table);
    let flow = FlowSpec {
        src: k.req_usize("src")?,
        dst: k.req_usize("dst")?,
        bytes: k.req_int("bytes")?.max(0) as u64,
        start: k.req_time_us("start_us")?,
    };
    k.finish()?;
    Ok(flow)
}

fn parse_on_off(table: &Table) -> Result<OnOffSpec, ScenarioError> {
    let mut k = Keys::new(table);
    let spec = OnOffSpec {
        src: k.req_usize("src")?,
        dst: k.req_usize("dst")? as u32,
        rate: DataRate::mbps(k.req_int("rate_mbps")?.max(0) as u64),
        pkt_bytes: k.u32("pkt_bytes")?.unwrap_or(1448),
        mean_on: k.req_time_us("mean_on_us")?,
        mean_off: k.req_time_us("mean_off_us")?,
        until: k.req_time_us("until_us")?,
        seed: k.u64("seed")?.unwrap_or(1),
    };
    k.finish()?;
    Ok(spec)
}

fn parse_transport(table: &Table) -> Result<TransportSpec, ScenarioError> {
    let mut k = Keys::new(table);
    let spec = TransportSpec {
        kind: k
            .choice(
                "kind",
                &[
                    ("newreno", TransportKindSpec::NewReno),
                    ("dctcp", TransportKindSpec::Dctcp),
                ],
            )?
            .unwrap_or(TransportKindSpec::NewReno),
        profile: k
            .choice(
                "profile",
                &[("default", TcpProfile::Default), ("dcn", TcpProfile::Dcn)],
            )?
            .unwrap_or(TcpProfile::Default),
        init_cwnd: k.u32("init_cwnd")?,
        min_rto: k.time_us("min_rto_us")?,
        initial_rto: k.time_us("initial_rto_us")?,
        dctcp_g: k.float("dctcp_g")?,
        limited_transmit: k.bool("limited_transmit")?,
    };
    k.finish()?;
    Ok(spec)
}

fn parse_queue(table: &Table) -> Result<QueueSpec, ScenarioError> {
    let mut k = Keys::new(table);
    let kind = k.req_str("kind")?;
    let spec = match kind {
        "drop_tail" => QueueSpec::DropTail {
            limit_bytes: k.u32("limit_bytes")?.unwrap_or(1 << 20),
        },
        "red" => QueueSpec::Red {
            limit_bytes: k.u32("limit_bytes")?.unwrap_or(1 << 20),
            min_th: k.u32("min_th")?.ok_or_else(|| k.missing("min_th"))?,
            max_th: k.u32("max_th")?.ok_or_else(|| k.missing("max_th"))?,
            max_p: k.float("max_p")?.unwrap_or(0.1),
            w_q: k.float("w_q")?.unwrap_or(0.002),
            mark_ecn: k.bool("mark_ecn")?.unwrap_or(false),
        },
        "dctcp" => QueueSpec::Dctcp {
            limit_bytes: k.u32("limit_bytes")?.unwrap_or(1 << 20),
            k_bytes: k.u32("k_bytes")?.ok_or_else(|| k.missing("k_bytes"))?,
        },
        other => {
            let e = table.entry("kind").expect("kind was read");
            return Err(serr(
                e.line,
                e.col,
                format!("unknown queue kind `{other}` (expected drop_tail | red | dctcp)"),
            ));
        }
    };
    k.finish()?;
    Ok(spec)
}

fn parse_routing(table: &Table) -> Result<RoutingSpec, ScenarioError> {
    let mut k = Keys::new(table);
    let kind = k.req_str("kind")?;
    let spec = match kind {
        "static_ecmp" => RoutingSpec::StaticEcmp,
        "rip" => RoutingSpec::Rip {
            update_interval: k
                .time_us("update_interval_us")?
                .unwrap_or(Time::from_millis(10)),
        },
        other => {
            let e = table.entry("kind").expect("kind was read");
            return Err(serr(
                e.line,
                e.col,
                format!("unknown routing kind `{other}` (expected static_ecmp | rip)"),
            ));
        }
    };
    k.finish()?;
    Ok(spec)
}

fn parse_fault(table: &Table, plan: FaultPlan) -> Result<FaultPlan, ScenarioError> {
    let mut k = Keys::new(table);
    let kind = k.req_str("kind")?;
    let plan = match kind {
        "worker_panic" => {
            let round = k.req_int("round")?.max(0) as u64;
            let phase = k
                .choice(
                    "phase",
                    &[
                        ("process", RunPhase::Process),
                        ("global", RunPhase::Global),
                        ("receive", RunPhase::Receive),
                        ("control", RunPhase::Control),
                    ],
                )?
                .unwrap_or(RunPhase::Process);
            let worker = k.req_usize("worker")?;
            plan.worker_panic(round, phase, worker)
        }
        "mailbox_stall" => plan.mailbox_stall(
            k.req_int("round")?.max(0) as u64,
            k.req_usize("worker")?,
            k.req_int("millis")?.max(0) as u64,
        ),
        "barrier_delay" => plan.barrier_delay(
            k.req_int("round")?.max(0) as u64,
            k.req_usize("worker")?,
            k.req_int("millis")?.max(0) as u64,
        ),
        "checkpoint_fail" => plan.checkpoint_fail(k.req_time_us("at_us")?),
        "alloc_fail" => plan.alloc_fail(k.req_int("round")?.max(0) as u64, k.req_usize("worker")?),
        other => {
            let e = table.entry("kind").expect("kind was read");
            return Err(serr(
                e.line,
                e.col,
                format!(
                    "unknown fault kind `{other}` (expected worker_panic | mailbox_stall | \
                     barrier_delay | checkpoint_fail | alloc_fail)"
                ),
            ));
        }
    };
    k.finish()?;
    Ok(plan)
}

fn parse_run(table: &Table, faults: FaultPlan) -> Result<RunSpec, ScenarioError> {
    let mut k = Keys::new(table);
    let stop = k.req_time_us("stop_us")?;
    let kernel_name = k.req_str("kernel")?;
    let threads = k.usize("threads")?;
    let req_threads = |threads: Option<usize>, k: &Keys| -> Result<usize, ScenarioError> {
        threads.ok_or_else(|| k.missing("threads"))
    };
    let (kernel, default_partition) = match kernel_name {
        "sequential" => (
            KernelKind::Sequential { compat_keys: false },
            PartitionSpec::SingleLp,
        ),
        "sequential_compat" => (
            KernelKind::Sequential { compat_keys: true },
            PartitionSpec::SingleLp,
        ),
        "barrier" => (KernelKind::Barrier, PartitionSpec::ByCluster),
        "nullmsg" => (KernelKind::NullMessage, PartitionSpec::ByCluster),
        "unison" => (
            KernelKind::Unison {
                threads: req_threads(threads, &k)?,
            },
            PartitionSpec::Auto,
        ),
        "async_cons" => (
            KernelKind::AsyncCons {
                threads: req_threads(threads, &k)?,
            },
            PartitionSpec::Auto,
        ),
        "hybrid" => (
            KernelKind::Hybrid {
                hosts: k.req_usize("hosts")?,
                threads_per_host: k.req_usize("threads_per_host")?,
            },
            PartitionSpec::Auto,
        ),
        other => {
            let e = table.entry("kernel").expect("kernel was read");
            return Err(serr(
                e.line,
                e.col,
                format!(
                    "unknown kernel `{other}` (expected sequential | sequential_compat | \
                     barrier | nullmsg | unison | async_cons | hybrid)"
                ),
            ));
        }
    };
    if threads.is_some() && !matches!(kernel_name, "unison" | "async_cons") {
        let e = table.entry("threads").expect("was read");
        return Err(serr(
            e.line,
            e.col,
            format!("`threads` is not valid for kernel `{kernel_name}`"),
        ));
    }
    let partition_name = k.str("partition")?;
    let partition = match partition_name {
        None => default_partition,
        Some("auto") => PartitionSpec::Auto,
        Some("single_lp") => PartitionSpec::SingleLp,
        Some("by_cluster") => PartitionSpec::ByCluster,
        Some("bound") => PartitionSpec::Bound(k.req_time_us("bound_us")?),
        Some("manual") => {
            let assign = k
                .int_array("assignment")?
                .ok_or_else(|| k.missing("assignment"))?;
            PartitionSpec::Manual(assign.into_iter().map(|v| v as u32).collect())
        }
        Some("pipeline") => {
            let pipe = k
                .choice(
                    "pipeline",
                    &[
                        ("median_cut", PipelineSpec::MedianCut),
                        ("refined", PipelineSpec::Refined),
                    ],
                )?
                .unwrap_or(PipelineSpec::MedianCut);
            PartitionSpec::Pipeline(pipe)
        }
        Some(other) => {
            let e = table.entry("partition").expect("was read");
            return Err(serr(
                e.line,
                e.col,
                format!(
                    "unknown partition `{other}` (expected auto | single_lp | by_cluster | \
                     bound | manual | pipeline)"
                ),
            ));
        }
    };
    let mut sched = SchedConfig::default();
    if let Some(metric) = k.choice(
        "sched_metric",
        &[
            ("by-last-round-time", SchedMetric::ByLastRoundTime),
            ("by-pending-events", SchedMetric::ByPendingEvents),
            ("none", SchedMetric::None),
        ],
    )? {
        sched.metric = metric;
    }
    if let Some(policy) = k.choice(
        "sched_policy",
        &[
            ("ljf-cursor", SchedPolicyKind::LjfCursor),
            ("steal-deque", SchedPolicyKind::StealDeque),
        ],
    )? {
        sched.policy = policy;
    }
    if let Some(period) = k.u32("sched_period")? {
        sched.period = Some(period);
    }
    match (k.bool("fusion")?, k.u64("fusion_threshold")?) {
        (Some(false), None) => sched.fusion = FusionConfig::off(),
        (Some(false), Some(_)) => {
            let e = table.entry("fusion_threshold").expect("was read");
            return Err(serr(
                e.line,
                e.col,
                "`fusion_threshold` conflicts with `fusion = false`",
            ));
        }
        (_, Some(th)) => sched.fusion.threshold = th,
        (Some(true) | None, None) => {}
    }
    if let Some(pin) = k.choice(
        "pin",
        &[("off", PinPolicy::Off), ("compact", PinPolicy::Compact)],
    )? {
        sched.pin = pin;
    }
    let fel = k
        .choice(
            "fel",
            &[
                ("ladder", FelImpl::Ladder),
                ("binary_heap", FelImpl::BinaryHeap),
            ],
        )?
        .unwrap_or_default();
    let watchdog = k.u64("watchdog_ms")?.map(Duration::from_millis);
    let per_round_metrics = k.bool("per_round_metrics")?.unwrap_or(false);
    k.finish()?;
    Ok(RunSpec {
        stop,
        kernel,
        partition,
        sched,
        fel,
        watchdog,
        per_round_metrics,
        fault: faults,
    })
}

/// Parses scenario source text into a validated [`ScenarioSpec`].
///
/// Strictness guarantees: every section name, key, and enum string is
/// checked; the first violation is returned with its line/column span.
/// Semantic checks that need the built topology (`validate`) run too, so a
/// successfully parsed scenario is runnable as-is.
pub fn parse_scenario(src: &str) -> Result<ScenarioSpec, ScenarioError> {
    let tables = toml::parse(src)?;
    let mut name = None;
    let mut topology_table = None;
    let mut traffic = None;
    let mut transport = None;
    let mut queue = None;
    let mut routing = None;
    let mut run_table = None;
    let mut flows = Vec::new();
    let mut on_off = Vec::new();
    let mut links = Vec::new();
    let mut faults = FaultPlan::new();

    // Singleton sections may appear once; [[flow]]/[[on_off]]/[[link]]/
    // [[fault]] accumulate in file order.
    let mut seen: Vec<&str> = Vec::new();
    for table in &tables {
        let dup = |name: &str| -> ScenarioError {
            serr(table.line, table.col, format!("duplicate [{name}] section"))
        };
        match table.name.as_str() {
            "" => {
                let mut k = Keys::new(table);
                name = k.str("name")?.map(str::to_string);
                k.finish()?;
            }
            "topology" | "traffic" | "transport" | "queue" | "routing" | "run"
                if table.is_array =>
            {
                return Err(serr(
                    table.line,
                    table.col,
                    format!(
                        "[[{}]] is not an array section — use [{}]",
                        table.name, table.name
                    ),
                ));
            }
            "topology" => {
                if seen.contains(&"topology") {
                    return Err(dup("topology"));
                }
                topology_table = Some(table);
                seen.push("topology");
            }
            "traffic" => {
                if seen.contains(&"traffic") {
                    return Err(dup("traffic"));
                }
                traffic = Some(parse_traffic(table)?);
                seen.push("traffic");
            }
            "transport" => {
                if seen.contains(&"transport") {
                    return Err(dup("transport"));
                }
                transport = Some(parse_transport(table)?);
                seen.push("transport");
            }
            "queue" => {
                if seen.contains(&"queue") {
                    return Err(dup("queue"));
                }
                queue = Some(parse_queue(table)?);
                seen.push("queue");
            }
            "routing" => {
                if seen.contains(&"routing") {
                    return Err(dup("routing"));
                }
                routing = Some(parse_routing(table)?);
                seen.push("routing");
            }
            "run" => {
                if seen.contains(&"run") {
                    return Err(dup("run"));
                }
                run_table = Some(table);
                seen.push("run");
            }
            "flow" | "on_off" | "link" | "fault" if !table.is_array => {
                return Err(serr(
                    table.line,
                    table.col,
                    format!(
                        "[{}] must be an array section — use [[{}]]",
                        table.name, table.name
                    ),
                ));
            }
            "flow" => flows.push(parse_flow(table)?),
            "on_off" => on_off.push(parse_on_off(table)?),
            "link" => links.push(parse_link(table)?),
            "fault" => faults = parse_fault(table, faults)?,
            other => {
                return Err(serr(
                    table.line,
                    table.col,
                    format!(
                        "unknown section `[{other}]` (expected topology | traffic | transport | \
                         queue | routing | run | [[flow]] | [[on_off]] | [[link]] | [[fault]])"
                    ),
                ));
            }
        }
    }

    let topology_table =
        topology_table.ok_or_else(|| serr(1, 1, "scenario is missing its [topology] section"))?;
    let run_table = run_table.ok_or_else(|| serr(1, 1, "scenario is missing its [run] section"))?;

    let spec = ScenarioSpec {
        name: name.unwrap_or_else(|| "unnamed".to_string()),
        topology: parse_topology(topology_table, &links)?,
        traffic,
        flows,
        on_off,
        transport: transport.unwrap_or_default(),
        queue,
        routing: routing.unwrap_or(RoutingSpec::StaticEcmp),
        run: parse_run(run_table, faults)?,
    };
    spec.validate()?;
    Ok(spec)
}
