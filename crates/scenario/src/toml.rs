//! A dependency-free parser for the TOML dialect used by scenario files and
//! `ATOMICS.toml`.
//!
//! The workspace builds offline with no third-party crates, so both the
//! scenario corpus and the atomics manifest stick to a deliberately small
//! grammar and this module parses exactly that:
//!
//! - `# comment` lines and blank lines,
//! - `[table]` and `[[array-of-tables]]` headers (bare-key names with `.`,
//!   `-`, `_` allowed),
//! - `key = "string"` with `\"`, `\\`, `\n`, `\t` escapes,
//! - `key = 42`, `key = -3`, `key = 1_000_000` integers,
//! - `key = 0.5` floats, `key = true` / `key = false` booleans,
//! - `key = [v, ...]` arrays of scalar values, which may span multiple
//!   lines until the closing `]`.
//!
//! Anything else (inline tables, dates, dotted keys) is a parse error
//! carrying a 1-based line *and column* span, which is the right behavior
//! for reviewed config files: unknown syntax should fail loudly, not be
//! guessed at. Consumers layer unknown-*key* rejection on top via
//! [`Table::entries`] (see `unison_scenario::ast`).

use std::fmt;

/// A parsed scalar or array value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Array(Vec<Value>),
}

impl Value {
    /// A short grammar-class name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

/// One `key = value` entry with its source span.
#[derive(Debug, Clone)]
pub struct Entry {
    pub key: String,
    pub value: Value,
    /// 1-based source line of the key.
    pub line: usize,
    /// 1-based source column of the key.
    pub col: usize,
}

/// One `[name]` / `[[name]]` table with its key-value entries in file order.
#[derive(Debug, Clone)]
pub struct Table {
    /// Header name; `""` for the implicit root table before any header.
    pub name: String,
    /// True for `[[name]]` (array-of-tables) headers.
    pub is_array: bool,
    /// 1-based line of the header (or 1 for the implicit root table).
    pub line: usize,
    /// 1-based column of the header (or 1 for the implicit root table).
    pub col: usize,
    /// Entries in file order.
    pub entries: Vec<Entry>,
}

impl Table {
    /// The first entry for `key`, if present.
    pub fn entry(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }

    /// The first value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entry(key).map(|e| &e.value)
    }

    /// The value for `key` as a string, if present and a string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// The value for `key` as an integer, if present and an integer.
    pub fn get_int(&self, key: &str) -> Option<i64> {
        match self.get(key) {
            Some(Value::Int(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value for `key` as a float (integers coerce), if present.
    pub fn get_float(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Value::Float(f)) => Some(*f),
            Some(Value::Int(n)) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value for `key` as a boolean, if present and a boolean.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key) {
            Some(Value::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// The value for `key` as an array of strings, if present and every
    /// element is a string (a bare string is accepted as a one-element
    /// array for ergonomic single-value keys).
    pub fn get_array(&self, key: &str) -> Option<Vec<String>> {
        match self.get(key) {
            Some(Value::Array(v)) => v
                .iter()
                .map(|item| match item {
                    Value::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .collect(),
            Some(Value::Str(s)) => Some(vec![s.clone()]),
            _ => None,
        }
    }
}

/// A parse failure with a 1-based line/column span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub col: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for String {
    fn from(e: ParseError) -> String {
        e.to_string()
    }
}

fn err(line: usize, col: usize, msg: impl Into<String>) -> ParseError {
    ParseError {
        line,
        col,
        msg: msg.into(),
    }
}

/// Strips a trailing `# comment` from a line, respecting string quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, ch) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match ch {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn valid_key(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

/// Parses one double-quoted string starting at `s` (which must begin with
/// `"`). Returns the decoded string and the rest of the input after the
/// closing quote.
fn parse_string(s: &str, line: usize, col: usize) -> Result<(String, &str), ParseError> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => return Err(err(line, col, "expected `\"`")),
    }
    while let Some((i, ch)) = chars.next() {
        match ch {
            '"' => return Ok((out, &s[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, other)) => {
                    return Err(err(line, col, format!("unsupported escape `\\{other}`")))
                }
                None => return Err(err(line, col, "dangling `\\` in string")),
            },
            _ => out.push(ch),
        }
    }
    Err(err(line, col, "unterminated string"))
}

/// Parses one bare scalar token (integer, float, or boolean). `tok` must be
/// non-empty and already trimmed.
fn parse_scalar(tok: &str, line: usize, col: usize) -> Result<Value, ParseError> {
    match tok {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    // TOML permits `_` separators between digits (`2_000_000`).
    let cleaned: String = tok.chars().filter(|&c| c != '_').collect();
    let looks_numeric = cleaned
        .strip_prefix(['-', '+'])
        .unwrap_or(&cleaned)
        .starts_with(|c: char| c.is_ascii_digit());
    if looks_numeric {
        if !cleaned.contains(['.', 'e', 'E']) {
            if let Ok(n) = cleaned.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        if let Ok(f) = cleaned.parse::<f64>() {
            return Ok(Value::Float(f));
        }
    }
    Err(err(
        line,
        col,
        format!("unsupported value `{tok}` (expected string, number, boolean, or array)"),
    ))
}

/// Parses one scalar value (quoted string or bare scalar) from the front of
/// `s`; returns the value and the rest of the input.
fn parse_value_token(s: &str, line: usize, col: usize) -> Result<(Value, &str), ParseError> {
    if s.starts_with('"') {
        let (v, tail) = parse_string(s, line, col)?;
        return Ok((Value::Str(v), tail));
    }
    // A bare token runs until `,`, `]`, whitespace, or end of input.
    let end = s
        .find(|c: char| c == ',' || c == ']' || c.is_whitespace())
        .unwrap_or(s.len());
    let tok = &s[..end];
    if tok.is_empty() {
        return Err(err(line, col, "expected a value"));
    }
    Ok((parse_scalar(tok, line, col)?, &s[end..]))
}

/// Parses manifest text into tables (see module docs for the grammar).
pub fn parse(src: &str) -> Result<Vec<Table>, ParseError> {
    let mut tables: Vec<Table> = Vec::new();
    let mut current = Table {
        name: String::new(),
        is_array: false,
        line: 1,
        col: 1,
        entries: Vec::new(),
    };
    let lines: Vec<&str> = src.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let lineno = i + 1;
        let stripped = strip_comment(lines[i]);
        let raw = stripped.trim();
        // 1-based column where the trimmed content starts.
        let colno = stripped.len() - stripped.trim_start().len() + 1;
        i += 1;
        if raw.is_empty() {
            continue;
        }
        if let Some(head) = raw.strip_prefix("[[") {
            let Some(name) = head.strip_suffix("]]") else {
                return Err(err(lineno, colno, "malformed `[[table]]` header"));
            };
            let name = name.trim();
            if !valid_key(name) {
                return Err(err(lineno, colno, format!("invalid table name `{name}`")));
            }
            tables.push(std::mem::replace(
                &mut current,
                Table {
                    name: name.to_string(),
                    is_array: true,
                    line: lineno,
                    col: colno,
                    entries: Vec::new(),
                },
            ));
            continue;
        }
        if let Some(head) = raw.strip_prefix('[') {
            let Some(name) = head.strip_suffix(']') else {
                return Err(err(lineno, colno, "malformed `[table]` header"));
            };
            let name = name.trim();
            if !valid_key(name) {
                return Err(err(lineno, colno, format!("invalid table name `{name}`")));
            }
            tables.push(std::mem::replace(
                &mut current,
                Table {
                    name: name.to_string(),
                    is_array: false,
                    line: lineno,
                    col: colno,
                    entries: Vec::new(),
                },
            ));
            continue;
        }
        let Some(eq) = raw.find('=') else {
            return Err(err(
                lineno,
                colno,
                format!("expected `key = value`, got `{raw}`"),
            ));
        };
        let key = raw[..eq].trim();
        if !valid_key(key) {
            return Err(err(lineno, colno, format!("invalid key `{key}`")));
        }
        let value_col = colno + eq + 1 + raw[eq + 1..].len() - raw[eq + 1..].trim_start().len();
        let mut rest = raw[eq + 1..].trim().to_string();
        if rest.is_empty() {
            return Err(err(lineno, value_col, format!("missing value for `{key}`")));
        }
        let value = if rest.starts_with('[') {
            // Accumulate lines until the closing `]` (arrays may span lines).
            while !rest.contains(']') {
                if i >= lines.len() {
                    return Err(err(lineno, value_col, "unterminated array"));
                }
                rest.push(' ');
                rest.push_str(strip_comment(lines[i]).trim());
                i += 1;
            }
            let body = rest.trim();
            let Some(body) = body.strip_prefix('[').and_then(|b| b.strip_suffix(']')) else {
                return Err(err(lineno, value_col, "trailing text after array value"));
            };
            let mut items = Vec::new();
            let mut cur = body.trim();
            while !cur.is_empty() {
                let (v, tail) = parse_value_token(cur, lineno, value_col)?;
                items.push(v);
                cur = tail.trim();
                if let Some(t) = cur.strip_prefix(',') {
                    cur = t.trim();
                } else if !cur.is_empty() {
                    return Err(err(lineno, value_col, "expected `,` between array items"));
                }
            }
            Value::Array(items)
        } else {
            let (v, tail) = parse_value_token(&rest, lineno, value_col)?;
            if !tail.trim().is_empty() {
                return Err(err(lineno, value_col, "trailing text after value"));
            }
            v
        };
        current.entries.push(Entry {
            key: key.to_string(),
            value,
            line: lineno,
            col: colno,
        });
    }
    tables.push(current);
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_strings_and_arrays() {
        let src = "\
# comment
[scope]
enforce = [\"crates/core/src\"] # trailing comment

[[field]]
name = \"head\"
load = [\n  \"Acquire\",\n  \"Relaxed\",\n]
why = \"a \\\"quoted\\\" reason\"
";
        let tables = parse(src).unwrap();
        assert_eq!(tables.len(), 3, "root + scope + field");
        let scope = &tables[1];
        assert_eq!(scope.name, "scope");
        assert_eq!(
            scope.get_array("enforce").unwrap(),
            vec!["crates/core/src".to_string()]
        );
        let field = &tables[2];
        assert!(field.is_array);
        assert_eq!(field.get_str("name"), Some("head"));
        assert_eq!(
            field.get_array("load").unwrap(),
            vec!["Acquire".to_string(), "Relaxed".to_string()]
        );
        assert_eq!(field.get_str("why"), Some("a \"quoted\" reason"));
    }

    #[test]
    fn parses_scalars() {
        let src = "\
threads = 4
load = 0.5
negative = -3
big = 2_000_000
fast = true
slow = false
mixed = [1, 2, 3]
floats = [0.25, 0.75]
";
        let t = &parse(src).unwrap()[0];
        assert_eq!(t.get_int("threads"), Some(4));
        assert_eq!(t.get_float("load"), Some(0.5));
        assert_eq!(t.get_int("negative"), Some(-3));
        assert_eq!(t.get_int("big"), Some(2_000_000));
        assert_eq!(t.get_bool("fast"), Some(true));
        assert_eq!(t.get_bool("slow"), Some(false));
        assert_eq!(
            t.get("mixed"),
            Some(&Value::Array(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(3)
            ]))
        );
        assert_eq!(
            t.get("floats"),
            Some(&Value::Array(vec![Value::Float(0.25), Value::Float(0.75)]))
        );
        // Integers coerce to floats on demand, not the other way round.
        assert_eq!(t.get_float("threads"), Some(4.0));
        assert_eq!(t.get_int("load"), None);
    }

    #[test]
    fn rejects_unsupported_syntax_with_line_numbers() {
        assert!(parse("x = @\n").unwrap_err().to_string().contains("line 1"));
        assert!(parse("[t]\nk = { a = 1 }\n")
            .unwrap_err()
            .to_string()
            .contains("line 2"));
        assert!(parse("k = \"unterminated\n")
            .unwrap_err()
            .to_string()
            .contains("line 1"));
        assert!(parse("[bad name]\n")
            .unwrap_err()
            .to_string()
            .contains("line 1"));
    }

    #[test]
    fn errors_carry_columns() {
        // `k = @` — the bad value starts at column 5.
        let e = parse("k = @\n").unwrap_err();
        assert_eq!((e.line, e.col), (1, 5));
        // Indented header: column reflects the `[`.
        let e = parse("  [bad name]\n").unwrap_err();
        assert_eq!((e.line, e.col), (1, 3));
    }

    #[test]
    fn rejects_missing_value_and_trailing_text() {
        let e = parse("k =\n").unwrap_err();
        assert!(e.msg.contains("missing value"), "{e}");
        let e = parse("k = 1 2\n").unwrap_err();
        assert!(e.msg.contains("trailing text"), "{e}");
        let e = parse("k = [1 2]\n").unwrap_err();
        assert!(e.msg.contains("expected `,`"), "{e}");
        let e = parse("k = [1,\n").unwrap_err();
        assert!(e.msg.contains("unterminated array"), "{e}");
    }

    #[test]
    fn mixed_arrays_reject_string_coercion() {
        let t = &parse("xs = [\"a\", 1]\n").unwrap()[0];
        // `get_array` (string view) refuses a mixed array rather than
        // silently dropping the non-string element.
        assert_eq!(t.get_array("xs"), None);
    }
}
