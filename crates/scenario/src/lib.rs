//! # unison-scenario
//!
//! The declarative scenario layer for the unison-rs workspace.
//!
//! The paper's core promise is *user transparency*: describe the network,
//! and the kernel does the rest. This crate makes the description a config
//! file instead of a hand-assembled binary — one `scenarios/*.toml` per
//! experiment, parsed by a dependency-free TOML dialect ([`toml`]) into a
//! typed, validated AST ([`ScenarioSpec`]), which then produces the
//! concrete artifacts the other layers consume:
//!
//! - [`ScenarioSpec::build_topology`] → `unison_topology::Topology`,
//! - [`ScenarioSpec::traffic_config`] → `unison_traffic::TrafficConfig`,
//! - [`ScenarioSpec::run_config`] → `unison_core::RunConfig` (kernel,
//!   partition, scheduling, FEL, watchdog, fault plan),
//! - the transport/queue/routing specs, mapped onto netsim types by
//!   `NetworkBuilder::from_scenario` in `unison-netsim` (that crate sits
//!   above this one in the dependency graph).
//!
//! Parsing is strict — unknown sections, unknown keys, and out-of-range
//! values are rejected with line/column spans — because committed scenario
//! files are pinned by golden digests in CI: silently-ignored typos would
//! silently change the experiment. The schema and defaulting rules are
//! documented in DESIGN.md §4.10 (the "scenario contract").
//!
//! ```
//! use unison_scenario::parse_scenario;
//!
//! let spec = parse_scenario(
//!     r#"
//!     name = "smoke"
//!     [topology]
//!     kind = "fat_tree"
//!     k = 4
//!     [traffic]
//!     load = 0.3
//!     sizes = "grpc"
//!     seed = 7
//!     duration_us = 2000
//!     [run]
//!     stop_us = 6000
//!     kernel = "unison"
//!     threads = 2
//!     "#,
//! )
//! .unwrap();
//! let topo = spec.build_topology();
//! assert_eq!(topo.hosts().len(), 16);
//! let cfg = spec.run_config(&topo);
//! assert_eq!(cfg.kernel.name(), "unison");
//! ```

pub mod ast;
pub mod toml;

pub use ast::{
    parse_scenario, ManualLink, OnOffSpec, PartitionSpec, PipelineSpec, QueueSpec, RoutingSpec,
    RunSpec, ScenarioError, ScenarioSpec, TcpProfile, TopoKind, TopologySpec, TrafficPattern,
    TrafficSpec, TransportKindSpec, TransportSpec,
};
