//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace builds in fully offline environments where the real
//! `criterion` cannot be fetched, so this crate implements the small API
//! subset used by `crates/bench/benches/*`: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Methodology is intentionally simple: a short warm-up, then a fixed
//! number of timed samples, reporting the median and min per-iteration
//! time on stdout. There are no statistical comparisons, plots, or saved
//! baselines — the point is that `cargo bench` exercises every bench code
//! path and prints a stable, readable timing summary.

use std::time::{Duration, Instant};

/// Target wall-clock spent measuring each benchmark (after warm-up).
const TARGET_MEASURE: Duration = Duration::from_millis(200);
/// Wall-clock spent warming up each benchmark.
const TARGET_WARMUP: Duration = Duration::from_millis(50);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single benchmark and print its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, DEFAULT_SAMPLES, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

const DEFAULT_SAMPLES: usize = 10;

/// A group of related benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// How `iter_batched` amortizes setup cost. All variants behave the same
/// here: setup runs outside the timed region for every batch of one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Passed to every benchmark closure; accumulates timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it `self.iters` times.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F>(name: &str, samples: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: how many iterations fit in one sample's time slice?
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = (TARGET_MEASURE / samples as u32).max(Duration::from_micros(100));
    let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    // Warm-up.
    let warm_start = Instant::now();
    while warm_start.elapsed() < TARGET_WARMUP {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
    }

    // Measure.
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    println!(
        "bench {name:<50} median {:>12}  min {:>12}  ({samples} samples x {iters} iters)",
        fmt_time(median),
        fmt_time(min),
    );
}

fn fmt_time(secs: f64) -> String {
    let ns = secs * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{secs:.3} s")
    }
}

/// Build a function that runs a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_and_batched_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32, 2, 3],
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(5e-9), "5.0 ns");
        assert_eq!(fmt_time(2.5e-6), "2.50 us");
        assert_eq!(fmt_time(3.25e-3), "3.25 ms");
        assert_eq!(fmt_time(1.5), "1.500 s");
    }
}
