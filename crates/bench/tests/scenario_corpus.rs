//! The golden scenario corpus (DESIGN.md §4.10): every committed file
//! under `scenarios/` must load, run on the Unison kernel at 1/2/4 worker
//! threads, and reproduce its committed digest from `scenarios/goldens.toml`
//! bit-for-bit — the executable form of the scenario contract's
//! digest-stability guarantee.
//!
//! The equivalence tests pin the other half of the contract: building a
//! simulation through `NetworkBuilder::from_scenario` is *structurally
//! identical* to the hand-assembled builder chains the experiment binaries
//! used before the scenario layer existed.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use unison_core::{DataRate, KernelKind, Time};
use unison_netsim::{world_digest, NetworkBuilder, QueueConfig, TcpConfig, TransportKind};
use unison_scenario::{parse_scenario, toml, ScenarioSpec};
use unison_topology::{dumbbell, fat_tree_clusters, geant};
use unison_traffic::{FlowSpec, SizeDist, TrafficConfig};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// Every committed scenario, keyed by file stem.
fn load_corpus() -> Vec<(String, ScenarioSpec)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(corpus_dir()).expect("scenarios/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf-8 file stem")
            .to_string();
        if stem == "goldens" {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("readable scenario");
        let spec = parse_scenario(&src)
            .unwrap_or_else(|e| panic!("scenarios/{stem}.toml failed to parse: {e}"));
        out.push((stem, spec));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(
        out.len() >= 4,
        "the committed corpus holds at least the four ported experiments"
    );
    out
}

/// The committed goldens, keyed by scenario stem.
fn load_goldens() -> BTreeMap<String, u64> {
    let src = std::fs::read_to_string(corpus_dir().join("goldens.toml")).expect("goldens.toml");
    let tables = toml::parse(&src).expect("goldens.toml parses");
    tables
        .iter()
        .filter(|t| !t.name.is_empty())
        .map(|t| {
            let hex = match t.get("digest") {
                Some(toml::Value::Str(s)) => s.clone(),
                other => panic!("[{}] needs digest = \"<hex>\", got {other:?}", t.name),
            };
            let digest = u64::from_str_radix(&hex, 16)
                .unwrap_or_else(|e| panic!("[{}] digest `{hex}`: {e}", t.name));
            (t.name.clone(), digest)
        })
        .collect()
}

/// Runs a scenario with its kernel swapped for `Unison { threads }` and
/// digests the final model state.
fn digest_at(spec: &ScenarioSpec, threads: usize) -> u64 {
    let topo = spec.build_topology();
    let cfg = spec.run_config_with_kernel(&topo, KernelKind::Unison { threads });
    let sim = NetworkBuilder::from_scenario(&topo, spec).build();
    let res = sim.run_with(&cfg).expect("corpus scenario run");
    world_digest(&res.world)
}

/// Every corpus file runs at 1/2/4 threads, digests agree across thread
/// counts, and match the committed goldens — and every golden entry still
/// has a scenario file behind it.
#[test]
fn corpus_digests_are_thread_invariant_and_match_goldens() {
    let goldens = load_goldens();
    let mut seen = BTreeSet::new();
    for (stem, spec) in load_corpus() {
        let d1 = digest_at(&spec, 1);
        for threads in [2usize, 4] {
            assert_eq!(
                digest_at(&spec, threads),
                d1,
                "{stem}: digest diverged at {threads} threads"
            );
        }
        let golden = goldens.get(&stem).unwrap_or_else(|| {
            panic!("{stem} has no entry in scenarios/goldens.toml — add digest = \"{d1:016x}\"")
        });
        assert_eq!(
            d1, *golden,
            "{stem}: digest {d1:016x} != committed {golden:016x} — if the model \
             change is intentional, regenerate scenarios/goldens.toml"
        );
        seen.insert(stem);
    }
    for stem in goldens.keys() {
        assert!(
            seen.contains(stem),
            "goldens.toml entry [{stem}] has no scenarios/{stem}.toml behind it"
        );
    }
}

/// Loads one committed scenario by stem.
fn committed(stem: &str) -> ScenarioSpec {
    let src = std::fs::read_to_string(corpus_dir().join(format!("{stem}.toml")))
        .expect("committed scenario");
    parse_scenario(&src).expect("committed scenario parses")
}

/// Digest of a freshly built (un-run) simulation: pins that the scenario
/// mapping assembles the exact same initial world as a hand-written
/// builder chain — sockets, queues, routing tables, RNGs and all.
fn built_digest(sim: unison_netsim::NetSim) -> u64 {
    world_digest(&sim.world)
}

#[test]
fn quickstart_matches_hand_assembled_builder() {
    let spec = committed("quickstart");
    let topo = spec.build_topology();
    let via_scenario = built_digest(NetworkBuilder::from_scenario(&topo, &spec).build());
    // The original examples/quickstart.rs assembly.
    let traffic = TrafficConfig::random_uniform(0.3)
        .with_seed(7)
        .with_sizes(SizeDist::Grpc)
        .with_window(Time::ZERO, Time::from_millis(2));
    let hand = NetworkBuilder::new(&topo)
        .transport(TransportKind::NewReno)
        .traffic(&traffic)
        .stop_at(Time::from_millis(6))
        .build();
    assert_eq!(via_scenario, built_digest(hand));
}

#[test]
fn datacenter_dctcp_matches_hand_assembled_builder() {
    let spec = committed("datacenter_dctcp");
    let topo = spec.build_topology();
    let via_scenario = built_digest(NetworkBuilder::from_scenario(&topo, &spec).build());
    // The original examples/datacenter_dctcp.rs DCTCP arm.
    let hand_topo = dumbbell(
        8,
        8,
        DataRate::gbps(1),
        DataRate::gbps(1),
        Time::from_micros(20),
    );
    let hosts = hand_topo.hosts();
    let flows: Vec<FlowSpec> = (0..8)
        .map(|i| FlowSpec {
            src: hosts[i],
            dst: hosts[8 + i],
            bytes: 2_000_000,
            start: Time::from_micros(50 * i as u64),
        })
        .collect();
    let dctcp_dcn = TcpConfig {
        kind: TransportKind::Dctcp,
        ..TcpConfig::newreno_dcn()
    };
    let hand = NetworkBuilder::new(&hand_topo)
        .tcp_config(dctcp_dcn)
        .queue(QueueConfig::dctcp(400_000, 8_000))
        .flows(flows)
        .stop_at(Time::from_millis(400))
        .build();
    assert_eq!(via_scenario, built_digest(hand));
}

#[test]
fn fig08a_matches_hand_assembled_builder() {
    let spec = committed("fig08a");
    let topo = spec.build_topology();
    let via_scenario = built_digest(NetworkBuilder::from_scenario(&topo, &spec).build());
    // The original fig08a.rs base row (quick scale).
    let hand_topo = fat_tree_clusters(4, 4)
        .with_rate(DataRate::mbps(100))
        .with_delay(Time::from_micros(500));
    let traffic = TrafficConfig::random_uniform(0.5)
        .with_seed(11)
        .with_sizes(SizeDist::Grpc)
        .with_window(Time::ZERO, Time::from_millis(40));
    let hand = NetworkBuilder::new(&hand_topo)
        .transport(TransportKind::NewReno)
        .traffic(&traffic)
        .stop_at(Time::from_millis(60))
        .build();
    assert_eq!(via_scenario, built_digest(hand));
}

#[test]
fn fig10c_matches_hand_assembled_builder() {
    let spec = committed("fig10c");
    let topo = spec.build_topology();
    let via_scenario = built_digest(NetworkBuilder::from_scenario(&topo, &spec).build());
    // The original fig10c.rs GEANT row (quick scale).
    let hand_topo = geant();
    let traffic = TrafficConfig::random_uniform(0.5)
        .with_seed(17)
        .with_sizes(SizeDist::WebSearch)
        .with_window(Time::from_millis(20), Time::from_millis(30));
    let hand = NetworkBuilder::new(&hand_topo)
        .routing(unison_netsim::RoutingKind::Rip {
            update_interval: Time::from_millis(10),
        })
        .traffic(&traffic)
        .stop_at(Time::from_millis(60))
        .build();
    assert_eq!(via_scenario, built_digest(hand));
}
