//! Perf-smoke tripwires for the hot-path event engine (CI `perf-smoke`
//! job; DESIGN.md §4.4).
//!
//! These are `#[ignore]`d by default — they measure wall-clock time, so
//! running them under `cargo test` on a loaded laptop would be noise. CI
//! runs them explicitly, serialized so the wall-clock arms never contend
//! with each other:
//!
//! ```sh
//! cargo test -p unison-bench --release --test perf_smoke -- --ignored \
//!     --test-threads=1
//! ```
//!
//! Six claims are guarded, with deliberately loose thresholds (these
//! are tripwires against large regressions, not micro-benchmarks — the
//! committed `BENCH_kernels.json` baseline holds the precise numbers):
//!
//! 1. on the 2-thread Unison kernel the ladder FEL is not materially
//!    slower than the binary-heap reference on the fat-tree incast
//!    workload (interleaved medians, ≥ 0.85x — measured parity, see
//!    `BENCH_kernels.json`);
//! 2. on the sequential kernel the ladder keeps a real lead over the heap
//!    (≥ 1.05x; measured 1.2–1.45x);
//! 3. the mailbox node pool reaches a > 90% hit rate at steady state —
//!    i.e. after warm-up, receive-phase traffic reuses recycled nodes
//!    instead of allocating;
//! 4. the work-stealing scheduler (`SchedPolicyKind::StealDeque`) is not
//!    materially slower than the shared LJF cursor on the same workload
//!    (≥ 0.9x — its whole point is overlap, so losing 10%+ to deque
//!    overhead would mean the extension broke its contract, DESIGN.md
//!    §4.5);
//! 5. on the large tier (fat-tree k = 8, ≥ 10⁷ events) the barrier-free
//!    asynchronous conservative kernel at 4 threads holds parity or
//!    better against the Unison kernel at 4 threads (contract ≥ 1.0x,
//!    recorded in `BENCH_kernels.json`; enforcement floor 0.85 absorbs
//!    shared-runner noise — removing the round barrier is the kernel's
//!    entire reason to exist, DESIGN.md §4.8);
//! 6. on the same large tier the round-based Unison kernel at 4 threads
//!    holds parity or better against itself at 1 thread (contract ≥ 1.0x,
//!    the `unison_4t_over_1t` headline in `BENCH_kernels.json`; same 0.85
//!    enforcement floor for timesliced 1-CPU runners) — the ratio round
//!    fusion and the hierarchical tree barrier exist to lift (DESIGN.md
//!    §4.9, ROADMAP item 1).

use unison_bench::harness::{fat_tree_scenario, Scale, Scenario};
use unison_core::{
    DataRate, FelImpl, KernelKind, PartitionMode, SchedConfig, SchedPolicyKind, Time,
};

/// The paper's §3.2 profiling workload at quick scale: a k=4 fat-tree with
/// a 50% incast share — mailbox- and FEL-heavy by construction.
fn incast() -> Scenario {
    fat_tree_scenario(Scale::Quick, 0.5, DataRate::gbps(100), Time::from_micros(3))
}

/// One wall-clock sample: events per second under the given FEL backend on
/// the 2-thread Unison kernel.
fn sample(scenario: &Scenario, fel: FelImpl) -> f64 {
    scenario
        .run_real_with_fel(KernelKind::Unison { threads: 2 }, PartitionMode::Auto, fel)
        .kernel
        .events_per_sec()
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_unstable_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Tripwire 1: the ladder queue must not lose materially to the heap on
/// the incast workload. Samples are interleaved so machine drift hits
/// both arms equally; medians defeat one-off outliers.
///
/// Measured status (see `BENCH_kernels.json`): the ladder wins clearly on
/// the sequential kernel (~1.3x) and sits at parity on the multi-threaded
/// Unison kernel, whose per-LP FELs are small enough that the heap's
/// shallow sifts are already cheap. The 0.85 threshold guards against a
/// real regression without flaking on run-to-run noise around parity.
#[test]
#[ignore = "wall-clock tripwire; run explicitly in the CI perf-smoke job"]
fn ladder_not_slower_than_heap_on_incast() {
    let scenario = incast();
    // Warm-up (page cache, allocator, frequency scaling).
    sample(&scenario, FelImpl::Ladder);
    sample(&scenario, FelImpl::BinaryHeap);
    let mut ladder = Vec::new();
    let mut heap = Vec::new();
    for _ in 0..5 {
        ladder.push(sample(&scenario, FelImpl::Ladder));
        heap.push(sample(&scenario, FelImpl::BinaryHeap));
    }
    let (l, h) = (median(&mut ladder), median(&mut heap));
    let ratio = l / h;
    eprintln!(
        "perf-smoke: incast events/sec — ladder {l:.0}, heap {h:.0} \
         (ratio {ratio:.3})"
    );
    assert!(
        ratio >= 0.85,
        "ladder FEL regressed below the binary-heap reference on the \
         fat-tree incast workload: {l:.0} vs {h:.0} events/sec \
         (ratio {ratio:.3}, tripwire 0.85)"
    );
}

/// Tripwire 1b: on the sequential kernel — one global FEL holding the
/// whole simulation, the ladder's best case — the ladder must keep a real
/// lead over the heap. Every recorded baseline run measures 1.2–1.45x;
/// the 1.05 threshold trips on a genuine loss of the win, not on noise.
#[test]
#[ignore = "wall-clock tripwire; run explicitly in the CI perf-smoke job"]
fn ladder_beats_heap_on_sequential() {
    let scenario = incast();
    let sample_seq = |fel: FelImpl| {
        scenario
            .run_real_with_fel(
                KernelKind::Sequential { compat_keys: true },
                PartitionMode::Auto,
                fel,
            )
            .kernel
            .events_per_sec()
    };
    sample_seq(FelImpl::Ladder);
    sample_seq(FelImpl::BinaryHeap);
    let mut ladder = Vec::new();
    let mut heap = Vec::new();
    for _ in 0..5 {
        ladder.push(sample_seq(FelImpl::Ladder));
        heap.push(sample_seq(FelImpl::BinaryHeap));
    }
    let (l, h) = (median(&mut ladder), median(&mut heap));
    let ratio = l / h;
    eprintln!(
        "perf-smoke: sequential events/sec — ladder {l:.0}, heap {h:.0} \
         (ratio {ratio:.3})"
    );
    assert!(
        ratio >= 1.05,
        "ladder FEL lost its sequential-kernel lead over the binary heap: \
         {l:.0} vs {h:.0} events/sec (ratio {ratio:.3}, tripwire 1.05)"
    );
}

/// Tripwire 2: at steady state the mailbox pool must serve > 90% of
/// pooled pushes from recycled nodes. Misses are expected only while each
/// inbox queue grows to its steady-state depth in the first rounds.
#[test]
#[ignore = "wall-clock tripwire; run explicitly in the CI perf-smoke job"]
fn pool_hit_rate_above_90_percent_steady_state() {
    let run = incast().run_real_with_fel(
        KernelKind::Unison { threads: 2 },
        PartitionMode::Auto,
        FelImpl::Ladder,
    );
    let engine = run.kernel.engine;
    let rate = engine.pool_hit_rate();
    eprintln!(
        "perf-smoke: pool hits {} misses {} (hit rate {:.1}%)",
        engine.pool_hits,
        engine.pool_misses,
        rate * 100.0
    );
    assert!(
        engine.pool_hits + engine.pool_misses > 0,
        "incast run produced no mailbox traffic — workload is broken"
    );
    assert!(
        rate > 0.9,
        "mailbox pool hit rate fell to {:.1}% (tripwire 90%) — drained \
         nodes are not being recycled onto the freelist",
        rate * 100.0
    );
}

/// Tripwire 3: the work-stealing scheduler must not lose materially to
/// the shared LJF cursor on the incast workload. StealDeque pays for its
/// per-claim deque traversal with overlap when LP costs are skewed; on a
/// balanced workload the two should sit at parity (measured 1.0x in
/// `BENCH_kernels.json`'s `steal_over_ljf_2t`). A ratio below 0.9 means
/// claim-path overhead grew past what overlap can buy back (DESIGN.md
/// §4.5).
#[test]
#[ignore = "wall-clock tripwire; run explicitly in the CI perf-smoke job"]
fn steal_deque_not_slower_than_ljf_cursor_on_incast() {
    let scenario = incast();
    let sample_sched = |policy: SchedPolicyKind| {
        scenario
            .run_real_opts(
                KernelKind::Unison { threads: 2 },
                PartitionMode::Auto,
                FelImpl::Ladder,
                SchedConfig {
                    policy,
                    ..Default::default()
                },
            )
            .kernel
            .events_per_sec()
    };
    // Warm-up (page cache, allocator, frequency scaling).
    sample_sched(SchedPolicyKind::StealDeque);
    sample_sched(SchedPolicyKind::LjfCursor);
    let mut steal = Vec::new();
    let mut ljf = Vec::new();
    for _ in 0..5 {
        steal.push(sample_sched(SchedPolicyKind::StealDeque));
        ljf.push(sample_sched(SchedPolicyKind::LjfCursor));
    }
    let (s, l) = (median(&mut steal), median(&mut ljf));
    let ratio = s / l;
    eprintln!(
        "perf-smoke: incast events/sec — steal-deque {s:.0}, ljf-cursor \
         {l:.0} (ratio {ratio:.3})"
    );
    assert!(
        ratio >= 0.9,
        "work-stealing scheduler regressed below the shared LJF cursor on \
         the fat-tree incast workload: {s:.0} vs {l:.0} events/sec \
         (ratio {ratio:.3}, tripwire 0.9)"
    );
}

/// Tripwire 4: the async-conservative kernel's headline. On the large
/// tier — big enough that per-event work dominates thread start-up — the
/// barrier-free kernel must not lose to the round-based Unison kernel at
/// the same thread count. Five interleaved sample pairs per arm, with the
/// within-pair order alternating so a monotone machine drift (cache and
/// allocator warm-up, frequency scaling) cannot systematically favor the
/// arm that runs second.
///
/// The contract is parity or better (≥ 1.0x medians; the committed
/// `async_over_unison_4t` in `BENCH_kernels.json` records the measured
/// ratio). The *enforcement* threshold is 0.85, like tripwire 1's: on
/// timesliced single-CPU CI runners the per-pair ratio of two kernels at
/// true parity was measured to swing ±15% with neighbor load, so a 1.0
/// assertion would trip on scheduler luck, not regressions. A median
/// below 0.85 means the barrier-free sweep machinery genuinely costs
/// more than the barrier it replaced.
#[test]
#[ignore = "wall-clock tripwire; run explicitly in the CI perf-smoke job"]
fn async_cons_not_slower_than_unison_on_large_tier() {
    let scenario = fat_tree_scenario(Scale::Large, 0.5, DataRate::gbps(100), Time::from_micros(3));
    let threads = 4usize;
    let sample_kernel = |kernel: KernelKind| {
        let run = scenario.run_real_with_fel(kernel, PartitionMode::Auto, FelImpl::Ladder);
        (run.kernel.events, run.kernel.events_per_sec())
    };
    // Warm-up (page cache, allocator, frequency scaling).
    sample_kernel(KernelKind::AsyncCons { threads });
    let mut async_rates = Vec::new();
    let mut unison_rates = Vec::new();
    let mut events = u64::MAX;
    for pair in 0..5 {
        let (first, second) = if pair % 2 == 0 {
            (
                KernelKind::AsyncCons { threads },
                KernelKind::Unison { threads },
            )
        } else {
            (
                KernelKind::Unison { threads },
                KernelKind::AsyncCons { threads },
            )
        };
        for kernel in [first, second] {
            let is_async = matches!(kernel, KernelKind::AsyncCons { .. });
            let (n, r) = sample_kernel(kernel);
            events = events.min(n);
            if is_async {
                async_rates.push(r);
            } else {
                unison_rates.push(r);
            }
        }
    }
    assert!(
        events >= 10_000_000,
        "the large tier must clear 10^7 events per run, got {events}"
    );
    let (a, u) = (median(&mut async_rates), median(&mut unison_rates));
    let ratio = a / u;
    eprintln!(
        "perf-smoke: large-tier events/sec — async_cons {a:.0}, unison \
         {u:.0} (ratio {ratio:.3}, {events} events)"
    );
    assert!(
        ratio >= 0.85,
        "the barrier-free kernel lost to the round-based kernel at \
         {threads} threads on the large tier: {a:.0} vs {u:.0} events/sec \
         (ratio {ratio:.3}, tripwire 0.85 — contract is parity, see \
         BENCH_kernels.json async_over_unison_4t)"
    );
}

/// Tripwire 5: the round-based kernel's own thread scaling on the large
/// tier — the `unison_4t_over_1t` headline. Round fusion (DESIGN.md §4.9)
/// removes barrier crossings from sparse rounds and the hierarchical tree
/// barrier cheapens the rest, so 4 threads must not run *slower* than 1
/// thread on a ≥ 10⁷-event workload (the kernels-v4 baseline measured
/// 0.96 — ROADMAP item 1 verbatim).
///
/// Same measurement discipline as tripwire 4: interleaved pairs with
/// alternating within-pair order, medians per arm. The contract is
/// parity or better (≥ 1.0x); the enforcement threshold is 0.85 because
/// on timesliced single-CPU runners four workers sharing one core pay
/// a context-switch tax no barrier topology can remove, and a 1.0
/// assertion there would trip on the runner, not the kernel.
#[test]
#[ignore = "wall-clock tripwire; run explicitly in the CI perf-smoke job"]
fn unison_4t_not_slower_than_1t_on_large_tier() {
    let scenario = fat_tree_scenario(Scale::Large, 0.5, DataRate::gbps(100), Time::from_micros(3));
    let sample_threads = |threads: usize| {
        let run = scenario.run_real_with_fel(
            KernelKind::Unison { threads },
            PartitionMode::Auto,
            FelImpl::Ladder,
        );
        (run.kernel.events, run.kernel.events_per_sec())
    };
    // Warm-up (page cache, allocator, frequency scaling).
    sample_threads(4);
    let mut wide = Vec::new();
    let mut narrow = Vec::new();
    let mut events = u64::MAX;
    for pair in 0..5 {
        let order: [usize; 2] = if pair % 2 == 0 { [4, 1] } else { [1, 4] };
        for threads in order {
            let (n, r) = sample_threads(threads);
            events = events.min(n);
            if threads == 4 {
                wide.push(r);
            } else {
                narrow.push(r);
            }
        }
    }
    assert!(
        events >= 10_000_000,
        "the large tier must clear 10^7 events per run, got {events}"
    );
    let (w, n) = (median(&mut wide), median(&mut narrow));
    let ratio = w / n;
    eprintln!(
        "perf-smoke: large-tier events/sec — unison 4t {w:.0}, unison 1t \
         {n:.0} (ratio {ratio:.3}, {events} events)"
    );
    assert!(
        ratio >= 0.85,
        "the round-based kernel at 4 threads lost to itself at 1 thread \
         on the large tier: {w:.0} vs {n:.0} events/sec (ratio {ratio:.3}, \
         tripwire 0.85 — contract is parity, see BENCH_kernels.json \
         unison_4t_over_1t and DESIGN.md §4.9)"
    );
}
