//! Micro-benchmarks of kernel primitives: FEL operations, partitioning,
//! mailboxes, scheduling, routing-table construction and raw event
//! throughput per kernel.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use unison_core::{
    fine_grained_partition, kernel, Event, EventKey, Fel, FelImpl, LinkGraph, NodeId, Rng,
    RunConfig, SimCtx, SimNode, Time, WorldBuilder,
};

/// FEL push+pop of a shuffled batch, A/B over both backends (the ladder
/// queue vs. the binary-heap reference, DESIGN.md §4.4).
fn bench_fel(c: &mut Criterion) {
    let mut rng = Rng::new(1);
    let mut keys: Vec<u64> = (0..1_000).collect();
    rng.shuffle(&mut keys);
    let mut group = c.benchmark_group("fel_push_pop_1k");
    for fel in [FelImpl::Ladder, FelImpl::BinaryHeap] {
        group.bench_function(fel.name(), |b| {
            b.iter_batched(
                || keys.clone(),
                |keys| {
                    let mut q: Fel<u64> = Fel::with_impl(fel);
                    for &k in &keys {
                        q.push(Event {
                            key: EventKey::external(Time(k), k),
                            node: NodeId(0),
                            payload: k,
                        });
                    }
                    let mut sum = 0u64;
                    while let Some(ev) = q.pop() {
                        sum = sum.wrapping_add(ev.payload);
                    }
                    black_box(sum)
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// FEL windowed drain: pushes interleaved with `pop_below`, the access
/// pattern of the kernel's process phase (events cluster near the window).
fn bench_fel_windowed(c: &mut Criterion) {
    let mut group = c.benchmark_group("fel_windowed_8k");
    for fel in [FelImpl::Ladder, FelImpl::BinaryHeap] {
        group.bench_function(fel.name(), |b| {
            b.iter(|| {
                let mut q: Fel<u64> = Fel::with_impl(fel);
                let mut rng = Rng::new(7);
                let mut seq = 0u64;
                let mut sum = 0u64;
                for window in 0..64u64 {
                    let base = window * 1_000;
                    for _ in 0..128 {
                        seq += 1;
                        let ts = base + rng.next_below(4_000);
                        q.push(Event {
                            key: EventKey::external(Time(ts), seq),
                            node: NodeId(0),
                            payload: ts,
                        });
                    }
                    while let Some(ev) = q.pop_below(Time(base + 1_000)) {
                        sum = sum.wrapping_add(ev.payload);
                    }
                }
                while let Some(ev) = q.pop() {
                    sum = sum.wrapping_add(ev.payload);
                }
                black_box(sum)
            })
        });
    }
    group.finish();
}

/// Algorithm 1 over the k=8 fat-tree graph.
fn bench_partition(c: &mut Criterion) {
    let topo = unison_topology::fat_tree(8);
    let mut graph = LinkGraph::new(topo.node_count());
    for l in &topo.links {
        graph.add_link(NodeId(l.a as u32), NodeId(l.b as u32), l.delay);
    }
    c.bench_function("fine_grained_partition_k8", |b| {
        b.iter(|| black_box(fine_grained_partition(&graph)))
    });
}

/// Mailbox round trip.
fn bench_mailbox(c: &mut Criterion) {
    use unison_core::mailbox::Mailboxes;
    let m: Mailboxes<u64> = Mailboxes::new(8, &[(0, 1), (2, 1), (3, 1)]);
    c.bench_function("mailbox_push_drain_100", |b| {
        b.iter(|| {
            for i in 0..100u64 {
                m.try_push(
                    0,
                    1,
                    Event {
                        key: EventKey::external(Time(i), i),
                        node: NodeId(1),
                        payload: i,
                    },
                )
                .unwrap();
            }
            let mut n = 0;
            m.drain(1, |_| n += 1);
            black_box(n)
        })
    });
}

/// Raw MPSC queue, pooled vs. plain, over repeated push/drain rounds — the
/// steady-state mailbox traffic pattern. The pooled arm recycles drained
/// nodes onto the freelist, so after round one it allocates nothing.
///
/// Read this A/B with care: it is single-threaded, which favors the
/// plain arm (thread-local malloc fast path, frees on the allocating
/// thread). The pool's value shows up in the parallel kernels, where
/// plain nodes are allocated on producer threads and freed on the
/// consumer — the cross-thread pattern allocators handle worst — and
/// where steady state must not allocate at all (perf-smoke pins the
/// hit rate above 90%).
fn bench_mailbox_pool(c: &mut Criterion) {
    use unison_core::queue::MpscQueue;
    let mut group = c.benchmark_group("mpsc_100x8_rounds");
    group.bench_function("plain_alloc", |b| {
        b.iter(|| {
            let q: MpscQueue<u64> = MpscQueue::new();
            let mut sum = 0u64;
            for _ in 0..8 {
                for i in 0..100u64 {
                    q.push(i);
                }
                q.drain(|v| sum = sum.wrapping_add(v));
            }
            black_box(sum)
        })
    });
    group.bench_function("pooled", |b| {
        b.iter(|| {
            let q: MpscQueue<u64> = MpscQueue::new();
            let mut sum = 0u64;
            for _ in 0..8 {
                for i in 0..100u64 {
                    q.push_pooled(i);
                }
                q.drain_recycle(|v| sum = sum.wrapping_add(v));
            }
            black_box(sum)
        })
    });
    group.finish();
}

/// LPT scheduling of 256 LPs on 16 cores.
fn bench_sched(c: &mut Criterion) {
    use unison_core::sched::{lpt_makespan, order_by_estimate};
    let mut rng = Rng::new(3);
    let est: Vec<u64> = (0..256).map(|_| rng.next_below(10_000)).collect();
    let actual: Vec<f64> = est.iter().map(|&e| e as f64 + 5.0).collect();
    c.bench_function("lpt_schedule_256x16", |b| {
        b.iter(|| {
            let order = order_by_estimate(&est);
            black_box(lpt_makespan(&order, &actual, 16))
        })
    });
}

/// ECMP static-table construction for the k=4 fat-tree.
fn bench_routes(c: &mut Criterion) {
    let topo = unison_topology::fat_tree(4);
    let mut adj: Vec<Vec<(u32, u8)>> = vec![Vec::new(); topo.node_count()];
    for l in &topo.links {
        let da = adj[l.a].len() as u8;
        let db = adj[l.b].len() as u8;
        adj[l.a].push((l.b as u32, da));
        adj[l.b].push((l.a as u32, db));
    }
    c.bench_function("static_routes_k4", |b| {
        b.iter(|| black_box(unison_netsim::route::compute_static_tables(&adj)))
    });
}

/// Token-ring hop node for raw event-throughput measurements.
struct Hop {
    next: NodeId,
    count: u64,
}

impl SimNode for Hop {
    type Payload = ();
    fn handle(&mut self, _p: (), ctx: &mut dyn SimCtx<Self>) {
        self.count += 1;
        ctx.schedule(Time(1_000), self.next, ());
    }
}

fn ring(n: usize, events: u64) -> unison_core::World<Hop> {
    let mut b = WorldBuilder::new();
    for i in 0..n {
        b.add_node(Hop {
            next: NodeId(((i + 1) % n) as u32),
            count: 0,
        });
    }
    for i in 0..n {
        b.add_link(NodeId(i as u32), NodeId(((i + 1) % n) as u32), Time(1_000));
    }
    b.schedule(Time::ZERO, NodeId(0), ());
    b.stop_at(Time(events * 1_000));
    b.build()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_event_throughput");
    group.sample_size(10);
    for (name, cfg) in [
        ("sequential_10k", RunConfig::sequential()),
        ("unison1_10k", RunConfig::unison(1)),
        ("unison2_10k", RunConfig::unison(2)),
        (
            "unison2_10k_heap_fel",
            RunConfig::unison(2).with_fel(FelImpl::BinaryHeap),
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let (_, report) = kernel::run(ring(16, 10_000), &cfg).unwrap();
                black_box(report.events)
            })
        });
    }
    group.finish();
}

/// Telemetry perf guard (DESIGN.md §4.3): the profiler must be free when
/// not in use. Two configurations of the same unison(2) ring workload:
/// the default disabled sink (recorder compiled in, runtime-off — one
/// predictable branch per record site) and full recording.
///
/// Documented threshold: the *recording* median must stay within 1.5x of
/// the disabled-sink median over 15 interleaved runs. Recording is two
/// monotonic clock reads and one bounded push per span — far below the
/// event-processing work between spans — so a breach means a hot-path
/// regression (clock reads or allocation on the disabled path, a lock in
/// the recorder), and a fortiori bounds the disabled sink itself. The
/// compile-time-off path cannot be compared in this binary (cargo feature
/// unification re-enables `telemetry` through the netsim dependency);
/// CI's `--no-default-features` build of unison-core covers it.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let disabled = RunConfig::unison(2);
    let recording = RunConfig::unison(2).with_telemetry();

    let time_once = |cfg: &RunConfig| -> u64 {
        let world = ring(16, 10_000);
        let t0 = std::time::Instant::now();
        let (_, report) = kernel::run(world, cfg).unwrap();
        black_box(report.events);
        t0.elapsed().as_nanos() as u64
    };
    // Warm-up, then interleave samples so drift hits both arms equally.
    for cfg in [&disabled, &recording] {
        time_once(cfg);
    }
    let mut d_ns = Vec::new();
    let mut r_ns = Vec::new();
    for _ in 0..15 {
        d_ns.push(time_once(&disabled));
        r_ns.push(time_once(&recording));
    }
    d_ns.sort_unstable();
    r_ns.sort_unstable();
    let (d, r) = (d_ns[d_ns.len() / 2], r_ns[r_ns.len() / 2]);
    let ratio = r as f64 / d as f64;
    assert!(
        ratio < 1.5,
        "telemetry overhead tripwire: recording median {r} ns is {ratio:.2}x \
         the disabled-sink median {d} ns (threshold 1.5x) — a hot-path \
         regression in the span recorder"
    );
    eprintln!("telemetry overhead: recording/disabled median ratio {ratio:.3}");

    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    for (name, cfg) in [
        ("unison2_10k_disabled_sink", &disabled),
        ("unison2_10k_recording", &recording),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let (_, report) = kernel::run(ring(16, 10_000), cfg).unwrap();
                black_box(report.events)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fel,
    bench_fel_windowed,
    bench_partition,
    bench_mailbox,
    bench_mailbox_pool,
    bench_sched,
    bench_routes,
    bench_kernels,
    bench_telemetry_overhead
);
criterion_main!(benches);
