//! Smoke-scale Criterion versions of every figure/table family so that
//! `cargo bench --workspace` exercises each experiment's code path. The
//! presentation-quality runs live in `src/bin/fig*.rs` / `table*.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use unison_bench::harness::{partition_info, Scenario};
use unison_bench::surrogate;
use unison_core::{
    DataRate, KernelKind, MetricsLevel, PartitionMode, PerfModel, RunConfig, SchedConfig,
    SchedMetric, Time,
};
use unison_netsim::NetworkBuilder;
use unison_topology::{fat_tree, fat_tree_clusters, manual, torus2d};
use unison_traffic::{SizeDist, TrafficConfig};

/// A tiny incast fat-tree scenario shared by several smoke benches.
fn tiny_scenario(incast: f64) -> Scenario {
    let topo = fat_tree(4);
    let traffic = TrafficConfig::incast(0.2, incast)
        .with_seed(1)
        .with_sizes(SizeDist::Grpc)
        .with_window(Time::ZERO, Time::from_micros(300));
    Scenario::new(topo, traffic, Time::from_micros(600))
}

/// Fig. 1 / Fig. 8 family: profile + replay all algorithms.
fn bench_fig01_family(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig01_fig08_replay");
    g.sample_size(10);
    g.bench_function("profile_and_replay", |b| {
        b.iter(|| {
            let s = tiny_scenario(1.0);
            let topo = &s.topo;
            let base = s.profile(PartitionMode::Manual(manual::by_cluster(topo)));
            let auto = s.profile(PartitionMode::Auto);
            let mb = PerfModel::new(&base.profile);
            let mu = PerfModel::new(&auto.profile);
            black_box((
                mb.sequential().total_ns,
                mb.barrier().total_ns,
                mb.nullmsg(&base.neighbors).total_ns,
                mu.unison(4, SchedConfig::default()).total_ns,
            ))
        })
    });
    g.finish();
}

/// Fig. 5 / Fig. 9 family: P/S/M decomposition paths.
fn bench_fig05_family(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05_fig09_psm");
    g.sample_size(10);
    g.bench_function("psm_sweep_point", |b| {
        b.iter(|| {
            let s = tiny_scenario(0.5);
            let base = s.profile(PartitionMode::Manual(manual::by_cluster(&s.topo)));
            let m = PerfModel::new(&base.profile);
            let bar = m.barrier();
            black_box((bar.s_ratio(), bar.s_ratio_per_round.len()))
        })
    });
    g.finish();
}

/// Fig. 10 family: torus + model sweep.
fn bench_fig10_family(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_topologies");
    g.sample_size(10);
    g.bench_function("torus_profile_replay", |b| {
        b.iter(|| {
            let topo = torus2d(6, 6, DataRate::gbps(10), Time::from_micros(30));
            let traffic = TrafficConfig::random_uniform(0.2)
                .with_seed(2)
                .with_sizes(SizeDist::Grpc)
                .with_window(Time::ZERO, Time::from_micros(300));
            let s = Scenario::new(topo, traffic, Time::from_micros(600));
            let auto = s.profile(PartitionMode::Auto);
            black_box(
                PerfModel::new(&auto.profile)
                    .unison(8, SchedConfig::default())
                    .total_ns,
            )
        })
    });
    g.finish();
}

/// Fig. 11 family: determinism (two identical Unison runs must agree).
fn bench_fig11_determinism(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_determinism");
    g.sample_size(10);
    g.bench_function("unison_two_run_compare", |b| {
        b.iter(|| {
            let run = |threads| {
                let s = tiny_scenario(0.0);
                let sim = NetworkBuilder::new(&s.topo)
                    .traffic(&s.traffic)
                    .stop_at(s.stop)
                    .build();
                sim.run(KernelKind::Unison { threads }).kernel.events
            };
            let a = run(1);
            let b2 = run(2);
            assert_eq!(a, b2);
            black_box(a)
        })
    });
    g.finish();
}

/// Fig. 12 family: granularity sweep + scheduler metrics.
fn bench_fig12_family(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_partition_sched");
    g.sample_size(10);
    g.bench_function("granularity_point", |b| {
        b.iter(|| {
            let topo = torus2d(6, 6, DataRate::gbps(10), Time::from_micros(30));
            let traffic = TrafficConfig::random_uniform(0.2)
                .with_seed(3)
                .with_sizes(SizeDist::Grpc)
                .with_window(Time::ZERO, Time::from_micros(300));
            let sim = NetworkBuilder::new(&topo)
                .traffic(&traffic)
                .stop_at(Time::from_micros(600))
                .build();
            let res = sim
                .run_with(&RunConfig {
                    watchdog: Default::default(),
                    kernel: KernelKind::Unison { threads: 1 },
                    partition: PartitionMode::Manual(manual::by_id_range(&topo, 6)),
                    sched: SchedConfig::default(),
                    metrics: MetricsLevel::Summary,
                    telemetry: Default::default(),
                    fel: Default::default(),
                    fault: Default::default(),
                })
                .unwrap();
            black_box(res.kernel.node_switches())
        })
    });
    g.bench_function("slowdown_alpha", |b| {
        let s = tiny_scenario(0.0);
        let auto = s.profile(PartitionMode::Auto);
        b.iter(|| {
            let m = PerfModel::new(&auto.profile);
            black_box(
                m.unison_detailed(
                    8,
                    SchedConfig {
                        metric: SchedMetric::ByLastRoundTime,
                        period: None,
                        ..Default::default()
                    },
                )
                .slowdown,
            )
        })
    });
    g.finish();
}

/// Fig. 13 family: bucketed heat-map data.
fn bench_fig13_buckets(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_heatmap");
    g.sample_size(10);
    let s = tiny_scenario(0.6);
    let base = s.profile(PartitionMode::Manual(manual::by_cluster(&s.topo)));
    g.bench_function("bucketed_costs", |b| {
        b.iter(|| black_box(PerfModel::new(&base.profile).bucketed_costs(10)))
    });
    g.finish();
}

/// Table 1 family: partition-scheme construction.
fn bench_table1_partitions(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_manual_partitions");
    g.sample_size(20);
    let topo = fat_tree(4);
    g.bench_function("by_cluster", |b| {
        b.iter(|| black_box(manual::by_cluster(&topo)))
    });
    g.bench_function("partition_info_auto", |b| {
        b.iter(|| black_box(partition_info(&topo, &PartitionMode::Auto).0.lp_count))
    });
    g.finish();
}

/// Table 2 family: accuracy comparison path (tiny).
fn bench_table2_accuracy(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_accuracy");
    g.sample_size(10);
    g.bench_function("seq_vs_unison_vs_surrogate", |b| {
        b.iter(|| {
            let topo = fat_tree_clusters(2, 4)
                .with_rate(DataRate::mbps(100))
                .with_delay(Time::from_micros(500));
            let traffic = TrafficConfig::random_uniform(0.5)
                .with_seed(4)
                .with_sizes(SizeDist::Grpc)
                .with_window(Time::ZERO, Time::from_millis(5));
            let sim = NetworkBuilder::new(&topo)
                .traffic(&traffic)
                .stop_at(Time::from_millis(10))
                .build();
            let res = sim.run(KernelKind::Sequential { compat_keys: false });
            let flows = traffic.generate(&topo, DataRate::mbps(100));
            let sur = surrogate::predict(&topo, &flows, Time::from_millis(5));
            black_box((res.flows.fct_us.mean(), sur.mean_fct_ms))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig01_family,
    bench_fig05_family,
    bench_fig10_family,
    bench_fig11_determinism,
    bench_fig12_family,
    bench_fig13_buckets,
    bench_table1_partitions,
    bench_table2_accuracy
);
criterion_main!(benches);
