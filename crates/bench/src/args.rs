//! Unified command-line parsing for the experiment binaries.
//!
//! Every figure binary historically re-scanned `std::env::args()` with its
//! own loop; the shared flag vocabulary now lives in one place, so a flag
//! means the same thing — and is parsed the same way — everywhere:
//!
//! - `--scale quick|full|large` (with `--full` as shorthand): experiment
//!   scale, see [`Scale`];
//! - `--bench-json <path>`: machine-readable report destination
//!   ([`crate::harness::bench_json_path`]);
//! - `--profile <dir>`: per-run Chrome-trace telemetry export
//!   ([`crate::harness::profile_dir`]);
//! - `--fault-profile`: the resilience-overhead section of
//!   `bench_kernels`;
//! - `unison-run`'s own `--check`, `--threads <n>` and `--json <path>`.

use std::path::PathBuf;

use crate::harness::Scale;

/// True iff the bare flag `name` appears anywhere on the command line.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The operand following `name` (the `--flag value` form), if any.
pub fn value_of(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// [`value_of`], interpreted as a filesystem path.
pub fn path_of(name: &str) -> Option<PathBuf> {
    value_of(name).map(PathBuf::from)
}

/// Parses `--scale quick|full|large` (with `--full` kept as shorthand for
/// `--scale full`), exiting with a usage message on an unknown value.
pub fn scale() -> Scale {
    let mut scale = if flag("--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    if flag("--scale") {
        scale = match value_of("--scale").as_deref() {
            Some("quick") => Scale::Quick,
            Some("full") => Scale::Full,
            Some("large") => Scale::Large,
            other => {
                eprintln!(
                    "--scale expects quick|full|large, got {:?}",
                    other.unwrap_or("<missing>")
                );
                std::process::exit(2);
            }
        };
    }
    scale
}
