//! Figure 9a: Unison's P/S/M decomposition vs incast ratio (same workload
//! as Fig. 5a, Unison kernel with #threads = #pods).
//!
//! Expected shape: S below a few percent of T at every ratio; P below the
//! baselines' P (cache boost); M negligible.

use unison_bench::harness::{fat_tree_manual, fat_tree_scenario, header, row, secs, Scale};
use unison_core::{DataRate, PartitionMode, PerfModel, SchedConfig, Time};

fn main() {
    let scale = Scale::from_args();
    let threads = scale.pick(4, 8);
    println!("Figure 9a: Unison P/S/M vs incast ratio ({threads} threads)");
    let widths = [7, 10, 10, 10, 8, 10];
    header(
        &["ratio", "P_U(s)", "S_U(s)", "M_U(s)", "S_U/T", "P_B(s)"],
        &widths,
    );
    for ratio in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let scenario = fat_tree_scenario(scale, ratio, DataRate::gbps(100), Time::from_micros(3));
        let auto = scenario.profile(PartitionMode::Auto);
        let uni = PerfModel::new(&auto.profile).unison(threads, SchedConfig::default());
        // Baseline P for comparison (coarse pod partition).
        let base = scenario.profile(PartitionMode::Manual(fat_tree_manual(&scenario)));
        let bar = PerfModel::new(&base.profile).barrier();
        row(
            &[
                format!("{ratio:.2}"),
                secs(uni.p_total()),
                secs(uni.s_total()),
                secs(uni.m_total()),
                format!("{:.1}%", uni.s_ratio() * 100.0),
                secs(bar.p_total()),
            ],
            &widths,
        );
    }
    println!(
        "\n(paper: S_U < 2% of T everywhere; P_U ≈ 20% below the baselines' P \
         thanks to fine-grained cache affinity)"
    );
}
