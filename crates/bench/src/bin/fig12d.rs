//! Figure 12d: simulation time vs scheduling period (k-ary fat-tree,
//! 8 virtual cores).
//!
//! Expected shape: a shallow U — short periods pay re-sort overhead, long
//! periods pay stale schedules; the automatic `ceil(log2(n))` period sits
//! near the minimum.

use unison_bench::harness::{fat_tree_scenario, header, row, Scale};
use unison_core::{DataRate, PartitionMode, PerfModel, SchedConfig, SchedMetric, Time};

fn main() {
    let scale = Scale::from_args();
    let scenario = fat_tree_scenario(scale, 0.0, DataRate::gbps(100), Time::from_micros(3));
    let auto = scenario.profile(PartitionMode::Auto);
    let model = PerfModel::new(&auto.profile);
    let auto_period = SchedConfig::default().effective_period(auto.partition.lp_count as usize);

    println!("Figure 12d: time vs scheduling period (8 cores; auto period = {auto_period})");
    let widths = [8, 12, 14];
    header(&["period", "T(s)", "sched-cost(s)"], &widths);
    for period in [1u32, 2, 4, 8, 16, 32, 64] {
        let detail = model.unison_detailed(
            8,
            SchedConfig {
                metric: SchedMetric::ByLastRoundTime,
                period: Some(period),
                ..Default::default()
            },
        );
        row(
            &[
                period.to_string(),
                format!("{:.6}", detail.result.total_ns / 1e9),
                format!("{:.6}", detail.sched_cost_ns / 1e9),
            ],
            &widths,
        );
    }
    println!("\n(paper: best around period 16; larger periods degrade slightly)");
}
