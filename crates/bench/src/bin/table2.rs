//! Table 2: accuracy of Unison against the ns-3-default sequential kernel,
//! and of the data-driven surrogate (MimicNet stand-in) against the same
//! ground truth, on 2-cluster and 4-cluster fat-trees.
//!
//! Setup mirrors the paper: TCP NewReno + RED queues, 100 Mbps / 500 µs
//! links, web-search traffic at 70% load, and a 10% chance per flow of
//! redirecting its destination into the rightmost cluster.
//!
//! Expected shape: Unison within a few percent of sequential everywhere
//! (differences stem only from simultaneous-event ordering); the surrogate
//! decent on the balanced 2-cluster case but visibly degraded on the
//! 4-cluster incast-skewed RTT/throughput.

use unison_bench::harness::{export_profile, profile_telemetry, Scale};
use unison_bench::surrogate;
use unison_core::{
    DataRate, KernelKind, MetricsLevel, PartitionMode, RunConfig, SchedConfig, Time,
};
use unison_netsim::{NetworkBuilder, QueueConfig, SimResult, TransportKind};
use unison_topology::fat_tree_clusters;
use unison_traffic::TrafficConfig;

struct Metrics {
    fct_ms: f64,
    rtt_ms: f64,
    thr_mbps: f64,
}

impl Metrics {
    fn of(res: &SimResult) -> Metrics {
        Metrics {
            fct_ms: res.flows.fct_us.mean() / 1_000.0,
            rtt_ms: res.flows.rtt_ns.mean() / 1e6,
            thr_mbps: res.flows.throughput_bps.mean() / 1e6,
        }
    }
}

fn rel_err(a: f64, b: f64) -> String {
    if b == 0.0 {
        return "-".into();
    }
    format!("{:.1}%", ((a - b) / b).abs() * 100.0)
}

fn main() {
    let scale = Scale::from_args();
    let window = scale.pick(Time::from_millis(300), Time::from_secs(2));
    let stop = window + scale.pick(Time::from_millis(300), Time::from_secs(1));

    println!("Table 2: accuracy on 2-/4-cluster fat-trees (NewReno + RED, 100 Mbps)");
    println!(
        "{:<22} {:>9} {:>9} {:>10}",
        "simulator", "FCT(ms)", "RTT(ms)", "Thr(Mbps)"
    );
    println!("{}", "-".repeat(55));
    for clusters in [2usize, 4] {
        let topo = fat_tree_clusters(clusters, 4)
            .with_rate(DataRate::mbps(100))
            .with_delay(Time::from_micros(500));
        let traffic = TrafficConfig::random_uniform(0.7)
            .with_seed(9)
            .with_window(Time::ZERO, window);
        let traffic = TrafficConfig {
            incast_ratio: 0.1,
            incast_cluster: Some(clusters as u32 - 1),
            ..traffic
        };
        let build = || {
            NetworkBuilder::new(&topo)
                .transport(TransportKind::NewReno)
                .queue(QueueConfig::red(1 << 19, 30_000, 90_000, false))
                .traffic(&traffic)
                .stop_at(stop)
                .build()
        };
        let seq = build()
            .run_with(&RunConfig {
                watchdog: Default::default(),
                kernel: KernelKind::Sequential { compat_keys: false },
                partition: PartitionMode::SingleLp,
                sched: SchedConfig::default(),
                metrics: MetricsLevel::Summary,
                telemetry: profile_telemetry(),
                fel: Default::default(),
                fault: Default::default(),
            })
            .expect("sequential run");
        export_profile(&seq.kernel);
        let uni = build().run(KernelKind::Unison { threads: 4 });
        let m_seq = Metrics::of(&seq);
        let m_uni = Metrics::of(&uni);
        let flows = traffic.generate(&topo, DataRate::mbps(100));
        let sur = surrogate::predict(&topo, &flows, window);

        println!("--- {clusters}-cluster ---");
        println!(
            "{:<22} {:>9.2} {:>9.2} {:>10.2}",
            "sequential (ns-3 dflt)", m_seq.fct_ms, m_seq.rtt_ms, m_seq.thr_mbps
        );
        println!(
            "{:<22} {:>9.2} {:>9.2} {:>10.2}",
            "Unison (4 threads)", m_uni.fct_ms, m_uni.rtt_ms, m_uni.thr_mbps
        );
        println!(
            "{:<22} {:>9} {:>9} {:>10}",
            "  rel. error",
            rel_err(m_uni.fct_ms, m_seq.fct_ms),
            rel_err(m_uni.rtt_ms, m_seq.rtt_ms),
            rel_err(m_uni.thr_mbps, m_seq.thr_mbps)
        );
        println!(
            "{:<22} {:>9.2} {:>9.2} {:>10.2}",
            "surrogate (MimicNet*)", sur.mean_fct_ms, sur.mean_rtt_ms, sur.mean_throughput_mbps
        );
        println!(
            "{:<22} {:>9} {:>9} {:>10}",
            "  rel. error",
            rel_err(sur.mean_fct_ms, m_seq.fct_ms),
            rel_err(sur.mean_rtt_ms, m_seq.rtt_ms),
            rel_err(sur.mean_throughput_mbps, m_seq.thr_mbps)
        );
    }
    println!(
        "\n(paper: Unison within ~3% of sequential — ours is bit-identical, the \
         strongest case; MimicNet's throughput error grows from 4.8% to 45.2% at \
         4 clusters. Our untrained queueing surrogate shows the same degradation \
         pattern with larger absolute errors — it has no training phase to \
         calibrate against, by design of the substitution.)"
    );
}
