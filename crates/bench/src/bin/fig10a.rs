//! Figure 10a: 2-D torus — total simulation time vs core count for the
//! baselines and Unison (30% bisection load, 10 Gbps, 30 µs).
//!
//! The baselines' partition splits the node-id range into #core equal
//! sub-arrays (the paper's manual scheme); Unison partitions per node.
//! Expected shape: Unison several-fold below both baselines at every core
//! count.

use unison_bench::harness::{header, row, secs, Scale, Scenario};
use unison_core::{DataRate, PartitionMode, PerfModel, SchedConfig, Time};
use unison_topology::{manual, torus2d};
use unison_traffic::{SizeDist, TrafficConfig};

fn main() {
    let scale = Scale::from_args();
    let side = scale.pick(12, 24);
    let window = scale.pick(Time::from_millis(2), Time::from_millis(5));
    let cores = scale.pick(vec![4usize, 8, 12, 16, 24], vec![8usize, 16, 24, 48, 72]);
    let topo = torus2d(side, side, DataRate::gbps(10), Time::from_micros(30));
    let traffic = TrafficConfig::random_uniform(0.3)
        .with_seed(5)
        .with_sizes(SizeDist::WebSearch)
        .with_window(Time::ZERO, window);
    let scenario = Scenario::new(topo.clone(), traffic, window + Time::from_millis(1));

    let auto = scenario.profile(PartitionMode::Auto);
    let model_u = PerfModel::new(&auto.profile);
    let seq = model_u.sequential().total_ns;

    println!(
        "Figure 10a: {side}x{side} torus, time vs #core (seq = {})",
        secs(seq)
    );
    let widths = [6, 12, 12, 12];
    header(&["#core", "barrier(s)", "nullmsg(s)", "unison(s)"], &widths);
    for &c in &cores {
        let assignment = manual::by_id_range(&topo, c as u32);
        let base = scenario.profile(PartitionMode::Manual(assignment));
        let model_b = PerfModel::new(&base.profile);
        let uni = model_u.unison(c, SchedConfig::default());
        row(
            &[
                c.to_string(),
                secs(model_b.barrier().total_ns),
                secs(model_b.nullmsg(&base.neighbors).total_ns),
                secs(uni.total_ns),
            ],
            &widths,
        );
    }
    println!("\n(paper: Unison ~4x below both baselines across core counts)");
}
