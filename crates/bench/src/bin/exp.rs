//! Artifact-style experiment runner: maps the paper artifact's experiment
//! names (Appendix B.4.2, `exp.py <name>`) to this reproduction's harness
//! binaries and executes them.
//!
//! ```text
//! cargo run --release -p unison-bench --bin exp -- <name> [--full]
//! cargo run --release -p unison-bench --bin exp -- --list
//! ```

use std::process::Command;

/// `(artifact name, paper experiment, our harness binary)`.
const MAP: &[(&str, &str, &str)] = &[
    ("fat-tree-distributed", "Exp 1 (Fig. 1)", "fig01"),
    ("fat-tree-default", "Exp 2 (Fig. 1, sequential)", "fig01"),
    ("mpi-sync-incast", "Exp 3 (Fig. 5a)", "fig05a"),
    ("mpi-sync", "Exp 4 (Fig. 5b)", "fig05b"),
    ("mpi-sync-delay", "Exp 5 (Fig. 5c)", "fig05c"),
    ("mpi-sync-bandwidth", "Exp 6 (Fig. 5d)", "fig05d"),
    ("mtp-sync-incast", "Exp 7 (Fig. 9a)", "fig09a"),
    ("mtp-sync", "Exp 8 (Fig. 9b)", "fig09b"),
    ("flexible", "Exp 9 (Fig. 8b)", "fig08b"),
    ("flexible-barrier", "Exp 10 (Fig. 8b, barrier)", "fig08b"),
    ("flexible-default", "Exp 11 (Fig. 8b, sequential)", "fig08b"),
    ("bcube", "Exp 12 (Fig. 10b)", "fig10b"),
    ("bcube-old", "Exp 13 (Fig. 10b, baselines)", "fig10b"),
    ("bcube-default", "Exp 14 (Fig. 10b, sequential)", "fig10b"),
    ("deterministic", "Exp 15 (Fig. 11)", "fig11"),
    ("partition-cache", "Exp 16 (Fig. 12a)", "fig12a"),
    ("scheduling-metrics", "Exp 17 (Fig. 12c)", "fig12c"),
    ("torus", "Fig. 10a", "fig10a"),
    ("wan", "Fig. 10c", "fig10c"),
    ("reconfigurable", "Fig. 10d", "fig10d"),
    ("partition-schemes", "Fig. 12b", "fig12b"),
    ("scheduling-periods", "Fig. 12d", "fig12d"),
    ("processing-time", "Fig. 13 (appendix A)", "fig13"),
    ("loc-change", "Table 1", "table1"),
    ("accuracy", "Table 2", "table2"),
    ("dqn-comparison", "Fig. 8a", "fig08a"),
];

fn list() {
    println!("{:<22} {:<28} harness", "artifact name", "paper experiment");
    println!("{}", "-".repeat(64));
    for (name, exp, bin) in MAP {
        println!("{name:<22} {exp:<28} {bin}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(name) = args.first() else {
        eprintln!("usage: exp <experiment-name> [--full] | exp --list");
        list();
        std::process::exit(2);
    };
    if name == "--list" {
        list();
        return;
    }
    let Some((_, exp, bin)) = MAP.iter().find(|(n, _, _)| n == name) else {
        eprintln!("unknown experiment `{name}`; use --list");
        std::process::exit(2);
    };
    println!(">> {name} = {exp} -> {bin}\n");
    let me = std::env::current_exe().expect("own path");
    let target = me.parent().expect("target dir").join(bin);
    let status = Command::new(&target)
        .args(args.iter().skip(1))
        .status()
        .unwrap_or_else(|e| {
            panic!(
                "could not launch {}: {e}; build the harnesses first \
                 (cargo build --release -p unison-bench)",
                target.display()
            )
        });
    std::process::exit(status.code().unwrap_or(1));
}
