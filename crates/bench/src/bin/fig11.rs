//! Figure 11: determinism — event count and mean end-to-end delay across
//! repeated *real* parallel runs (epochs) of the same workload.
//!
//! Expected shape: Unison's event count and statistics are bit-identical
//! across every epoch and every thread count; the barrier and null-message
//! baselines fluctuate from run to run (real-time arrival interleaving of
//! simultaneous events).

use unison_bench::harness::{export_profile, header, profile_telemetry, row, Scale};
use unison_core::{KernelKind, MetricsLevel, PartitionMode, RunConfig, SchedConfig, Time};
use unison_netsim::{NetworkBuilder, TransportKind};
use unison_topology::{fat_tree, manual};
use unison_traffic::{SizeDist, TrafficConfig};

fn run_epoch(kernel: KernelKind, partition: PartitionMode) -> (u64, f64) {
    let topo = fat_tree(4);
    let traffic = TrafficConfig::random_uniform(0.25)
        .with_seed(31)
        .with_sizes(SizeDist::Grpc)
        .with_window(Time::ZERO, Time::from_millis(2));
    let sim = NetworkBuilder::new(&topo)
        .transport(TransportKind::NewReno)
        .traffic(&traffic)
        .stop_at(Time::from_millis(5))
        .build();
    let res = sim
        .run_with(&RunConfig {
            watchdog: Default::default(),
            kernel,
            partition,
            sched: SchedConfig::default(),
            metrics: MetricsLevel::Summary,
            telemetry: profile_telemetry(),
            fel: Default::default(),
            fault: Default::default(),
        })
        .expect("run");
    export_profile(&res.kernel);
    (res.kernel.events, res.flows.fct_us.mean())
}

fn main() {
    let scale = Scale::from_args();
    let epochs = scale.pick(5, 10);
    let topo = fat_tree(4);
    let pods = manual::by_cluster(&topo);

    println!("Figure 11: determinism across {epochs} epochs (real parallel runs)");
    let widths = [7, 12, 14, 12, 14, 12, 14];
    header(
        &[
            "epoch",
            "uni #event",
            "uni delay(us)",
            "bar #event",
            "bar delay(us)",
            "nm #event",
            "nm delay(us)",
        ],
        &widths,
    );
    let mut uni_counts = Vec::new();
    let mut bar_counts = Vec::new();
    let mut nm_counts = Vec::new();
    for e in 0..epochs {
        let (ue, ud) = run_epoch(KernelKind::Unison { threads: 4 }, PartitionMode::Auto);
        let (be, bd) = run_epoch(KernelKind::Barrier, PartitionMode::Manual(pods.clone()));
        let (ne, nd) = run_epoch(KernelKind::NullMessage, PartitionMode::Manual(pods.clone()));
        uni_counts.push(ue);
        bar_counts.push(be);
        nm_counts.push(ne);
        row(
            &[
                (e + 1).to_string(),
                ue.to_string(),
                format!("{ud:.3}"),
                be.to_string(),
                format!("{bd:.3}"),
                ne.to_string(),
                format!("{nd:.3}"),
            ],
            &widths,
        );
    }
    let spread = |v: &[u64]| v.iter().max().unwrap() - v.iter().min().unwrap();
    println!(
        "\nevent-count spread over epochs: unison = {}, barrier = {}, nullmsg = {}",
        spread(&uni_counts),
        spread(&bar_counts),
        spread(&nm_counts)
    );
    // The stronger determinism axis: Unison across thread counts.
    let mut per_thread = Vec::new();
    for threads in [1usize, 2, 4, 8, 16] {
        let (e, d) = run_epoch(KernelKind::Unison { threads }, PartitionMode::Auto);
        per_thread.push((threads, e, d));
    }
    let all_equal = per_thread
        .windows(2)
        .all(|w| w[0].1 == w[1].1 && w[0].2.to_bits() == w[1].2.to_bits());
    println!(
        "unison across 1/2/4/8/16 threads: event counts {:?} -> {}",
        per_thread.iter().map(|p| p.1).collect::<Vec<_>>(),
        if all_equal {
            "IDENTICAL (bitwise)"
        } else {
            "DIVERGED"
        }
    );
    assert!(all_equal, "Unison must be thread-count invariant");
    println!(
        "(paper: Unison identical every run and for any thread count; baselines \
         fluctuate. Note: on a single-core host the baselines' races interleave \
         less, so their spread may be small — rerun on a multi-core machine to \
         widen it.)"
    );
}
