//! Figure 5a: P/S decomposition of the barrier and null-message baselines
//! as the incast traffic ratio sweeps 0 → 1 on a k-ary fat-tree with the
//! static pod partition.
//!
//! Expected shape: S grows with the incast ratio and dominates T (paper:
//! > 70% at ratio 1); P stays roughly flat.

use unison_bench::harness::{fat_tree_manual, fat_tree_scenario, header, row, secs, Scale};
use unison_core::{DataRate, PartitionMode, PerfModel, Time};

fn main() {
    let scale = Scale::from_args();
    println!("Figure 5a: P/S of barrier (B) and null message (N) vs incast ratio");
    let widths = [7, 10, 10, 10, 10, 10, 8];
    header(
        &[
            "ratio", "P_B(s)", "S_B(s)", "P_N(s)", "S_N(s)", "T_B(s)", "S_B/T",
        ],
        &widths,
    );
    for ratio in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let scenario = fat_tree_scenario(scale, ratio, DataRate::gbps(100), Time::from_micros(3));
        let run = scenario.profile(PartitionMode::Manual(fat_tree_manual(&scenario)));
        let model = PerfModel::new(&run.profile);
        let bar = model.barrier();
        let nm = model.nullmsg(&run.neighbors);
        // Paper plots the *sum over LPs*; T here is the wall time of one LP
        // (they all span the same wall interval under barriers).
        row(
            &[
                format!("{ratio:.2}"),
                secs(bar.p_total()),
                secs(bar.s_total()),
                secs(nm.p_total()),
                secs(nm.s_total()),
                secs(bar.total_ns),
                format!("{:.0}%", bar.s_ratio() * 100.0),
            ],
            &widths,
        );
    }
    println!("\n(paper: S_B/T rises above 70% as the incast ratio approaches 1)");
}
