//! Figure 8b: speedup over sequential DES vs core count, Unison vs the
//! barrier baseline, on the 100 Gbps k-ary fat-tree.
//!
//! The barrier baseline can only use as many cores as its symmetric
//! partition has LPs (2, 4, 8 for k = 8); Unison's thread count is free.
//! Expected shape: Unison scales far beyond the baseline's ceiling (paper:
//! 40× at 24 cores incl. super-linear cache effects; the virtual-core
//! replay reproduces the scheduling part of that, not the cache part, so
//! expect "grows with cores while barrier saturates").

use unison_bench::harness::{fat_tree_scenario, header, row, Scale};
use unison_core::{DataRate, PartitionMode, PerfModel, SchedConfig, Time};
use unison_topology::manual;

fn main() {
    let scale = Scale::from_args();
    let scenario = fat_tree_scenario(scale, 0.0, DataRate::gbps(100), Time::from_micros(3));
    let auto = scenario.profile(PartitionMode::Auto);
    let model_u = PerfModel::new(&auto.profile);
    let seq_ns = model_u.sequential().total_ns;

    // The barrier baseline at 2/4/8-LP symmetric partitions.
    let mut barrier_points = Vec::new();
    for lps in [2u32, 4, 8] {
        let assignment = manual::by_cluster_group(&scenario.topo, lps);
        let run = scenario.profile(PartitionMode::Manual(assignment));
        let bar = PerfModel::new(&run.profile).barrier();
        barrier_points.push((lps as usize, seq_ns / bar.total_ns));
    }

    println!("Figure 8b: speedup vs #cores (k-ary fat-tree, 100 Gbps)");
    let widths = [6, 8, 9, 9];
    header(&["#core", "linear", "barrier", "unison"], &widths);
    for cores in [1usize, 2, 4, 8, 12, 16, 20, 24] {
        let uni = model_u.unison(cores, SchedConfig::default());
        let bar = barrier_points
            .iter()
            .filter(|(l, _)| *l <= cores)
            .map(|(_, s)| *s)
            .fold(f64::NAN, f64::max);
        row(
            &[
                cores.to_string(),
                format!("{cores}.0x"),
                if bar.is_nan() {
                    "-".into()
                } else {
                    format!("{bar:.1}x")
                },
                format!("{:.1}x", seq_ns / uni.total_ns),
            ],
            &widths,
        );
    }
    println!(
        "\n(barrier saturates at its 8-LP partition; Unison keeps scaling. The paper's \
         super-linear 40x additionally includes measured cache gains — see fig12a for \
         the real single-thread locality measurement)"
    );
}
