//! Figure 10d: reconfigurable DCN — simulation time vs topology-change
//! interval, sequential kernel vs Unison, measured for real (single
//! thread; topology changes are global events on the public LP).
//!
//! At every interval the core layer is swapped for an "optical" plane and
//! back (link state toggles + route recomputation), as in the TDTCP-style
//! configuration the paper uses.
//!
//! Expected shape: both curves rise only slightly as the change frequency
//! increases — the cost of dynamic topologies is negligible.

use std::time::Duration;

use unison_bench::harness::{export_profile, header, profile_telemetry, row, Scale};
use unison_core::WorldAccess;
use unison_core::{KernelKind, MetricsLevel, PartitionMode, RunConfig, SchedConfig, Time};
use unison_netsim::{recompute_static_routes, set_link_state, BuiltLink, NetNode, NetworkBuilder};
use unison_topology::{fat_tree, NodeKind};
use unison_traffic::TrafficConfig;

/// Schedules one plane toggle at `at` (state → `down`), with the opposite
/// toggle following `restore_after` later, both via public-LP global
/// events.
fn schedule_toggle(
    world: &mut unison_core::World<NetNode>,
    core_links: Vec<BuiltLink>,
    restore_after: Time,
    at: Time,
    down: bool,
) {
    world.add_global_event(
        at,
        Box::new(move |wa: &mut WorldAccess<'_, NetNode>| {
            for l in &core_links {
                set_link_state(wa, l, down);
            }
            recompute_static_routes(wa);
            let links = core_links.clone();
            wa.schedule_global(
                wa.now() + restore_after,
                Box::new(move |wa2: &mut WorldAccess<'_, NetNode>| {
                    for l in &links {
                        set_link_state(wa2, l, !down);
                    }
                    recompute_static_routes(wa2);
                }),
            );
        }),
    );
}

fn run_once(interval: Time, kernel: KernelKind, window: Time) -> (Duration, u64) {
    let topo = fat_tree(4)
        .with_rate(unison_core::DataRate::gbps(10))
        .with_delay(Time::from_micros(3));
    let traffic = TrafficConfig::random_uniform(0.3)
        .with_seed(23)
        .with_window(Time::ZERO, window);
    let sim = NetworkBuilder::new(&topo)
        .traffic(&traffic)
        .stop_at(window + Time::from_millis(1))
        .build();
    // Core switches are the first (k/2)^2 nodes; "optical plane swap" =
    // take down half the core links, then restore, every interval.
    let core_count = topo
        .nodes
        .iter()
        .take_while(|k| **k == NodeKind::Switch)
        .count()
        .min(4);
    let plane: Vec<BuiltLink> = sim
        .links
        .iter()
        .filter(|l| l.a < core_count / 2 || l.b < core_count / 2)
        .copied()
        .collect();
    let mut world = sim.world;
    // Pre-register toggles across the whole horizon (each event toggles
    // down at t and back up at t + interval/2).
    let mut t = interval;
    while t < window {
        schedule_toggle(&mut world, plane.clone(), Time(interval.0 / 2), t, true);
        t += interval;
    }
    let cfg = RunConfig {
        watchdog: Default::default(),
        kernel,
        partition: PartitionMode::Auto,
        sched: SchedConfig::default(),
        metrics: MetricsLevel::Summary,
        telemetry: profile_telemetry(),
        fel: Default::default(),
        fault: Default::default(),
    };
    let (_, report) = unison_core::run(world, &cfg).expect("run");
    export_profile(&report);
    (report.wall, report.global_events)
}

fn main() {
    let scale = Scale::from_args();
    let window = scale.pick(Time::from_millis(4), Time::from_millis(20));
    println!("Figure 10d: reconfigurable DCN, wall time vs topology-change interval");
    let widths = [13, 9, 12, 12];
    header(
        &["interval", "#changes", "seq wall(s)", "unison wall(s)"],
        &widths,
    );
    for interval_us in [4000u64, 2000, 1000, 500, 250] {
        let interval = Time::from_micros(interval_us);
        let (seq_wall, changes) = run_once(
            interval,
            KernelKind::Sequential { compat_keys: false },
            window,
        );
        let (uni_wall, _) = run_once(interval, KernelKind::Unison { threads: 1 }, window);
        row(
            &[
                format!("{interval_us}us"),
                changes.to_string(),
                format!("{:.3}", seq_wall.as_secs_f64()),
                format!("{:.3}", uni_wall.as_secs_f64()),
            ],
            &widths,
        );
    }
    println!(
        "\n(paper: both kernels' time rises only slightly with change frequency; \
         the dynamic-topology overhead of Unison is negligible)"
    );
}
