//! Figure 10c: wide-area networks (GEANT, ChinaNet) with RIP dynamic
//! routing and web-search traffic at 50% load — sequential DES vs Unison
//! with 8 threads.
//!
//! No symmetric manual partition exists for these irregular graphs (the
//! paper opts the baselines out for the same reason). Expected shape:
//! Unison several-fold faster (paper: >10x incl. cache effects).

use unison_bench::harness::{export_profile, header, profile_telemetry, row, secs, Scale};
use unison_core::{KernelKind, MetricsLevel, RunConfig};
use unison_core::{PartitionMode, PerfModel, SchedConfig, Time};
use unison_netsim::NetworkBuilder;
use unison_netsim::RoutingKind;
use unison_topology::{chinanet, geant};
use unison_traffic::{SizeDist, TrafficConfig};

fn main() {
    let scale = Scale::from_args();
    let window = scale.pick(Time::from_millis(30), Time::from_millis(120));

    println!("Figure 10c: WAN with RIP routing, sequential vs Unison(8)");
    let widths = [10, 9, 12, 12, 10];
    header(
        &["network", "#lp", "seq(s)", "unison(s)", "speedup"],
        &widths,
    );
    for topo in [geant(), chinanet()] {
        let traffic = TrafficConfig::random_uniform(0.5)
            .with_seed(17)
            .with_sizes(SizeDist::WebSearch)
            .with_window(Time::from_millis(20), window);
        // RIP needs its own builder (routing kind), so assemble manually.
        let sim = NetworkBuilder::new(&topo)
            .routing(RoutingKind::Rip {
                update_interval: Time::from_millis(10),
            })
            .traffic(&traffic)
            .stop_at(Time::from_millis(20) + window + Time::from_millis(10))
            .build();
        let res = sim
            .run_with(&RunConfig {
                watchdog: Default::default(),
                kernel: KernelKind::Unison { threads: 1 },
                partition: PartitionMode::Auto,
                sched: unison_core::SchedConfig::default(),
                metrics: MetricsLevel::PerRound,
                telemetry: profile_telemetry(),
                fel: Default::default(),
                fault: Default::default(),
            })
            .expect("profiled run");
        export_profile(&res.kernel);
        let profile = res.kernel.rounds_profile.as_deref().unwrap_or(&[]);
        let model = PerfModel::new(profile);
        let seq = model.sequential().total_ns;
        let uni = model.unison(8, SchedConfig::default()).total_ns;
        row(
            &[
                topo.name.clone(),
                res.kernel.lp_count.to_string(),
                secs(seq),
                secs(uni),
                format!("{:.1}x", seq / uni),
            ],
            &widths,
        );
    }
    println!("\n(paper: >10x over sequential DES with 8 threads incl. cache gains)");
}
