//! Figure 10c: wide-area networks (GEANT, ChinaNet) with RIP dynamic
//! routing and web-search traffic at 50% load — sequential DES vs Unison
//! with 8 threads.
//!
//! The base row (GEANT, quick window) is the committed
//! `scenarios/fig10c.toml`, digest-pinned by the golden corpus test; the
//! ChinaNet row and the full-scale window mutate the parsed spec.
//!
//! No symmetric manual partition exists for these irregular graphs (the
//! paper opts the baselines out for the same reason). Expected shape:
//! Unison several-fold faster (paper: >10x incl. cache effects).

use unison_bench::harness::{export_profile, header, profile_telemetry, row, secs, Scale};
use unison_core::{KernelKind, MetricsLevel, PerfModel, SchedConfig, Time};
use unison_netsim::NetworkBuilder;
use unison_scenario::{parse_scenario, TopoKind};

fn main() {
    let scale = Scale::from_args();
    let base = parse_scenario(include_str!("../../../../scenarios/fig10c.toml"))
        .expect("committed scenario parses");
    let window = scale.pick(Time::from_millis(30), Time::from_millis(120));

    println!("Figure 10c: WAN with RIP routing, sequential vs Unison(8)");
    let widths = [10, 9, 12, 12, 10];
    header(
        &["network", "#lp", "seq(s)", "unison(s)", "speedup"],
        &widths,
    );
    for kind in [TopoKind::Geant, TopoKind::Chinanet] {
        let mut spec = base.clone();
        spec.topology.kind = kind;
        if let Some(t) = spec.traffic.as_mut() {
            t.duration = window;
        }
        spec.run.stop = Time::from_millis(20) + window + Time::from_millis(10);

        let topo = spec.build_topology();
        // Profile on the instrumented single-thread engine; the scenario's
        // RIP routing and traffic come along via the builder.
        let mut cfg = spec.run_config_with_kernel(&topo, KernelKind::Unison { threads: 1 });
        cfg.metrics = MetricsLevel::PerRound;
        cfg.telemetry = profile_telemetry();
        let sim = NetworkBuilder::from_scenario(&topo, &spec).build();
        let res = sim.run_with(&cfg).expect("profiled run");
        export_profile(&res.kernel);
        let profile = res.kernel.rounds_profile.as_deref().unwrap_or(&[]);
        let model = PerfModel::new(profile);
        let seq = model.sequential().total_ns;
        let uni = model.unison(8, SchedConfig::default()).total_ns;
        row(
            &[
                topo.name.clone(),
                res.kernel.lp_count.to_string(),
                secs(seq),
                secs(uni),
                format!("{:.1}x", seq / uni),
            ],
            &widths,
        );
    }
    println!("\n(paper: >10x over sequential DES with 8 threads incl. cache gains)");
}
