//! Table 1: lines of code changed when adapting sequential DES models to
//! classic PDES.
//!
//! In this reproduction the adaptation cost is measurable directly: using
//! the PDES baselines requires (a) a hand-written static partition function
//! per topology (`unison-topology/src/manual.rs`) and (b) baseline-specific
//! run configuration, while Unison needs a one-line kernel selection. This
//! harness counts those lines from the actual sources and prints them next
//! to the paper's numbers.

const MANUAL_SRC: &str = include_str!("../../../topology/src/manual.rs");

/// Counts the body lines of `pub fn <name>` in the manual-partition module.
fn fn_lines(name: &str) -> usize {
    let pat = format!("pub fn {name}");
    let start = MANUAL_SRC.find(&pat).unwrap_or_else(|| {
        panic!("function {name} not found in manual.rs");
    });
    let body = &MANUAL_SRC[start..];
    let mut depth = 0usize;
    let mut lines = 0usize;
    for line in body.lines() {
        lines += 1;
        depth += line.matches('{').count();
        let closes = line.matches('}').count();
        if closes >= depth && depth > 0 {
            break;
        }
        depth -= closes;
    }
    lines
}

fn main() {
    // Baseline-specific harness lines a user must additionally write per
    // model: choose the kernel + pass the manual assignment + gather
    // per-LP outputs (see crates/bench/src/bin/fig01.rs for the real code).
    const BASELINE_GLUE: usize = 9;
    // Lines deleted from the plain sequential configuration (kernel default
    // selection and single-process result handling).
    const BASELINE_DELETED: usize = 4;

    println!("Table 1: LOC change when adapting sequential DES models to PDES");
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "model", "ours added", "ours deleted", "paper added", "paper del", "Unison"
    );
    println!("{}", "-".repeat(80));
    let rows: [(&str, &str, usize, usize); 4] = [
        ("Fat-tree", "by_cluster", 36, 21),
        ("BCube", "by_cluster", 44, 16),
        ("Spine-leaf", "by_cluster_group", 40, 18),
        ("2D-torus", "by_id_range", 33, 20),
    ];
    for (model, partition_fn, paper_add, paper_del) in rows {
        let added = fn_lines(partition_fn) + BASELINE_GLUE;
        println!(
            "{:<12} {:>14} {:>14} {:>12} {:>12} {:>10}",
            model, added, BASELINE_DELETED, paper_add, paper_del, 0
        );
    }
    println!(
        "\n(\"Unison\" column: model-code changes needed to run the same topology on \
         the Unison kernel — zero; the kernel is selected by configuration only, \
         which is the user-transparency claim)"
    );
}
