//! Ablation: *real wall-clock* kernel comparison on this machine.
//!
//! Everything else in the harness uses the virtual-core replay for the
//! parallel algorithms; this binary runs the actual threaded kernels and
//! reports measured wall time. On a single-core host the interesting
//! result is that Unison can still beat the sequential kernel (fine-
//! grained LP batching improves cache locality, the paper's §6.3 story);
//! on a multi-core host the full parallel speedup becomes visible.

use unison_bench::harness::{export_profile, header, profile_telemetry, row, Scale};
use unison_core::{KernelKind, MetricsLevel, PartitionMode, RunConfig, SchedConfig, Time};
use unison_netsim::NetworkBuilder;
use unison_topology::{fat_tree, manual};
use unison_traffic::{SizeDist, TrafficConfig};

fn main() {
    let scale = Scale::from_args();
    let window = scale.pick(Time::from_millis(2), Time::from_millis(8));
    let topo = fat_tree(4);
    let traffic = TrafficConfig::random_uniform(0.3)
        .with_seed(77)
        .with_sizes(SizeDist::Grpc)
        .with_window(Time::ZERO, window);
    let pods = manual::by_cluster(&topo);

    let configs: Vec<(&str, RunConfig)> = vec![
        ("sequential", RunConfig::sequential()),
        ("unison(1)", RunConfig::unison(1)),
        ("unison(2)", RunConfig::unison(2)),
        ("unison(4)", RunConfig::unison(4)),
        ("barrier(4 LPs)", RunConfig::barrier(pods.clone())),
        ("nullmsg(4 LPs)", RunConfig::nullmsg(pods)),
        (
            "hybrid(2x2)",
            RunConfig {
                watchdog: Default::default(),
                kernel: KernelKind::Hybrid {
                    hosts: 2,
                    threads_per_host: 2,
                },
                fault: Default::default(),
                partition: PartitionMode::Auto,
                sched: SchedConfig::default(),
                metrics: MetricsLevel::Summary,
                telemetry: Default::default(),
                fel: Default::default(),
            },
        ),
    ];

    println!(
        "Real wall-clock kernel comparison ({} host CPUs visible)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let widths = [16, 12, 12, 11];
    header(&["kernel", "wall(s)", "events", "Mevents/s"], &widths);
    for (name, mut cfg) in configs {
        // Recording (--profile) perturbs the wall-clock numbers; without
        // the flag this stays the disabled sink and measures undisturbed.
        cfg.telemetry = profile_telemetry();
        // Median of three runs.
        let mut walls = Vec::new();
        let mut events = 0;
        for _ in 0..3 {
            let sim = NetworkBuilder::new(&topo)
                .traffic(&traffic)
                .stop_at(window + Time::from_millis(1))
                .build();
            let res = sim.run_with(&cfg).expect("run");
            export_profile(&res.kernel);
            walls.push(res.kernel.wall.as_secs_f64());
            events = res.kernel.events;
        }
        walls.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let wall = walls[1];
        row(
            &[
                name.to_string(),
                format!("{wall:.3}"),
                events.to_string(),
                format!("{:.2}", events as f64 / wall / 1e6),
            ],
            &widths,
        );
    }
}
