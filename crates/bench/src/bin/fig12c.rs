//! Figure 12c: slowdown factor α of the load-adaptive scheduler under
//! different estimation metrics, vs thread count (k-ary fat-tree).
//!
//! α = Σ actual round time / Σ idealistic round time (scheduler with exact
//! knowledge). Expected shape: `ByLastRoundTime` (the default) lowest,
//! `ByPendingEvents` close, `None` several percent worse, with the gap
//! widening as threads increase.

use unison_bench::harness::{fat_tree_scenario, header, row, Scale};
use unison_core::{DataRate, PartitionMode, PerfModel, SchedConfig, SchedMetric, Time};

fn main() {
    let scale = Scale::from_args();
    let scenario = fat_tree_scenario(scale, 0.0, DataRate::gbps(100), Time::from_micros(3));
    let auto = scenario.profile(PartitionMode::Auto);
    let model = PerfModel::new(&auto.profile);

    println!("Figure 12c: scheduler slowdown factor α vs #threads");
    let widths = [8, 12, 12, 10];
    header(&["#thread", "pending", "lastround", "none"], &widths);
    for threads in [4usize, 8, 12, 16] {
        let alpha = |metric| {
            model
                .unison_detailed(
                    threads,
                    SchedConfig {
                        metric,
                        period: None,
                        ..Default::default()
                    },
                )
                .slowdown
        };
        row(
            &[
                threads.to_string(),
                format!("{:.4}", alpha(SchedMetric::ByPendingEvents)),
                format!("{:.4}", alpha(SchedMetric::ByLastRoundTime)),
                format!("{:.4}", alpha(SchedMetric::None)),
            ],
            &widths,
        );
    }
    println!(
        "\n(paper: the default last-round-time metric ends ~2% above the ideal at 16 \
         threads and ~6% below no scheduling)"
    );
}
