//! Ablation: the hybrid distributed kernel (§5.2) vs flat Unison at equal
//! total thread count.
//!
//! The hybrid kernel balances load only *within* each simulated host; the
//! window all-reduce is global. This quantifies what that restriction
//! costs relative to flat Unison's global LPT — the trade the paper makes
//! to scale across machines.
//!
//! Expected shape: flat Unison ≤ hybrid everywhere; the gap widens with
//! host count (less balancing freedom) and with traffic skew.

use unison_bench::harness::{header, partition_info, row, secs, Scale, Scenario};
use unison_core::{PartitionMode, PerfModel, SchedConfig, Time};
use unison_topology::fat_tree_clusters;
use unison_traffic::TrafficConfig;

fn main() {
    let scale = Scale::from_args();
    let clusters = scale.pick(16, 32);
    let window = scale.pick(Time::from_millis(2), Time::from_millis(5));
    let total_threads = 16;

    println!("Ablation: hybrid (H hosts x T threads) vs flat Unison ({total_threads} threads)");
    let widths = [7, 12, 12, 12, 8];
    header(
        &["skew", "flat(s)", "hyb 2x8(s)", "hyb 4x4(s)", "penalty"],
        &widths,
    );
    for ratio in [0.0, 0.5, 1.0] {
        let topo = fat_tree_clusters(clusters, 4);
        let traffic = TrafficConfig::incast(0.3, ratio)
            .with_seed(21)
            .with_window(Time::ZERO, window);
        let scenario = Scenario::new(topo.clone(), traffic, window + Time::from_millis(1));
        let run = scenario.profile(PartitionMode::Auto);
        let model = PerfModel::new(&run.profile);
        let (partition, _) = partition_info(&topo, &PartitionMode::Auto);

        // Host grouping: contiguous LP ranges balanced by node count (the
        // hybrid kernel's own policy).
        let group_by = |hosts: usize| -> Vec<Vec<u32>> {
            let lps = partition.lp_count as usize;
            let per = lps.div_ceil(hosts);
            (0..hosts)
                .map(|h| ((h * per) as u32..((h + 1) * per).min(lps) as u32).collect())
                .filter(|g: &Vec<u32>| !g.is_empty())
                .collect()
        };

        let flat = model.unison(total_threads, SchedConfig::default());
        let h2 = model.hybrid(&group_by(2), total_threads / 2);
        let h4 = model.hybrid(&group_by(4), total_threads / 4);
        let worst = h2.total_ns.max(h4.total_ns);
        row(
            &[
                format!("{ratio:.1}"),
                secs(flat.total_ns),
                secs(h2.total_ns),
                secs(h4.total_ns),
                format!("{:.2}x", worst / flat.total_ns),
            ],
            &widths,
        );
    }
    println!(
        "\n(flat global balancing bounds the hybrid from below in principle; the \
         hybrid rows use exact per-round costs inside each host while flat Unison \
         replays the estimate-driven scheduler, so small inversions are the \
         estimate error, not a hybrid win. The penalty column uses the worse \
         grouping.)"
    );
}
