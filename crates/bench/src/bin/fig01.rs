//! Figure 1: total simulation time of sequential DES, barrier PDES,
//! null-message PDES and Unison on cluster fat-trees under pure incast
//! traffic, with #cores = #clusters.
//!
//! Paper scale: 48–144 clusters × 16 hosts, 100 Gbps, 0.1 s — days of
//! compute. Reproduction scale: 4–16 clusters × 4 hosts (…× 8 with
//! `--full`), a few simulated milliseconds; the per-round cost matrices are
//! measured for real and each algorithm's synchronization structure is
//! replayed over them (DESIGN.md §3.2).
//!
//! Expected shape: Unison ≫ barrier ≈ nullmsg > sequential, with ≥ several-
//! fold Unison-vs-PDES advantage growing with cluster count.

use unison_bench::harness::{header, row, secs, Scale, Scenario};
use unison_core::{PartitionMode, PerfModel, SchedConfig, Time};
use unison_topology::{fat_tree_clusters, manual};
use unison_traffic::TrafficConfig;

fn main() {
    let scale = Scale::from_args();
    let clusters = scale.pick(vec![8usize, 16, 24, 32], vec![16usize, 32, 48, 64, 96]);
    let hosts_per_cluster = scale.pick(4, 8);
    let window = scale.pick(Time::from_millis(2), Time::from_millis(5));

    println!(
        "Figure 1: incast traffic, cluster fat-trees ({hosts_per_cluster} hosts/cluster), \
         cores = clusters"
    );
    let widths = [9, 6, 12, 12, 12, 12, 10];
    header(
        &[
            "#cluster",
            "#lp",
            "seq(s)",
            "barrier(s)",
            "nullmsg(s)",
            "unison(s)",
            "uni-spdup",
        ],
        &widths,
    );
    for &c in &clusters {
        let topo = fat_tree_clusters(c, hosts_per_cluster);
        let traffic = TrafficConfig::incast(0.4, 1.0)
            .with_seed(42)
            .with_window(Time::ZERO, window);
        let scenario = Scenario::new(topo.clone(), traffic, window + Time::from_millis(2));

        // Baselines: the static symmetric partition (one LP per cluster).
        let base = scenario.profile(PartitionMode::Manual(manual::by_cluster(&topo)));
        let model_b = PerfModel::new(&base.profile);
        let seq = model_b.sequential();
        let bar = model_b.barrier();
        let nm = model_b.nullmsg(&base.neighbors);

        // Unison: automatic fine-grained partition, #cores = #clusters.
        let auto = scenario.profile(PartitionMode::Auto);
        let model_u = PerfModel::new(&auto.profile);
        let uni = model_u.unison(c, SchedConfig::default());

        let best_pdes = bar.total_ns.min(nm.total_ns);
        row(
            &[
                c.to_string(),
                auto.partition.lp_count.to_string(),
                secs(seq.total_ns),
                secs(bar.total_ns),
                secs(nm.total_ns),
                secs(uni.total_ns),
                format!("{:.1}x", best_pdes / uni.total_ns),
            ],
            &widths,
        );
    }
    println!(
        "\n(uni-spdup = best PDES baseline time / Unison time at equal core count; \
         paper reports ~10x at 48+ clusters)"
    );
}
