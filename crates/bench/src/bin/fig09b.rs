//! Figure 9b: Unison's per-round S/T under balanced traffic, next to the
//! barrier baseline's (Fig. 5b counterpart).
//!
//! Expected shape: Unison's per-round S/T stays near zero (paper: mostly
//! under 1%) while the barrier baseline fluctuates around 20%+.

use unison_bench::harness::{fat_tree_manual, fat_tree_scenario, Scale};
use unison_core::{DataRate, PartitionMode, PerfModel, SchedConfig, Time};
use unison_stats::Summary;

fn main() {
    let scale = Scale::from_args();
    let threads = scale.pick(4, 8);
    let scenario = fat_tree_scenario(scale, 0.0, DataRate::gbps(100), Time::from_micros(3));
    let auto = scenario.profile(PartitionMode::Auto);
    let uni = PerfModel::new(&auto.profile).unison(threads, SchedConfig::default());
    let base = scenario.profile(PartitionMode::Manual(fat_tree_manual(&scenario)));
    let bar = PerfModel::new(&base.profile).barrier();

    println!("Figure 9b: per-round S/T, Unison({threads}) vs barrier, balanced traffic");
    println!("round  S_U/T   S_B/T");
    let mut su = Summary::new();
    let mut sb = Summary::new();
    for r in 0..uni.s_ratio_per_round.len().min(1000) {
        let u = uni.s_ratio_per_round[r] as f64;
        let b = bar.s_ratio_per_round.get(r).copied().unwrap_or(0.0) as f64;
        su.add(u);
        sb.add(b);
        if r % 25 == 0 {
            println!("{r:>5}  {u:.3}   {b:.3}");
        }
    }
    println!(
        "\nmean: Unison {:.1}% vs barrier {:.1}%",
        su.mean() * 100.0,
        sb.mean() * 100.0
    );
    println!("(paper: Unison mostly under 1% per round)");
}
