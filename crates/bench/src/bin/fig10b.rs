//! Figure 10b: BCube — speedup over sequential DES under web-search and
//! gRPC traffic (plus incast), for the baselines at the BCube0 partition
//! and Unison at 8/16 threads.
//!
//! Expected shape: Unison highest under both traffic mixes; 16 threads
//! beat 8 (paper: ~10x and ~15x under gRPC).

use unison_bench::harness::{header, row, Scale, Scenario};
use unison_core::{DataRate, PartitionMode, PerfModel, SchedConfig, Time};
use unison_topology::{bcube, manual};
use unison_traffic::{SizeDist, TrafficConfig};

fn main() {
    let scale = Scale::from_args();
    let n = scale.pick(4, 8);
    let window = scale.pick(Time::from_millis(2), Time::from_millis(4));
    let topo = bcube(n, 2, DataRate::gbps(10), Time::from_micros(3));

    println!("Figure 10b: BCube(n={n}, 2 levels) speedup over sequential DES");
    let widths = [12, 9, 9, 11, 11];
    header(
        &["traffic", "barrier", "nullmsg", "unison(8)", "unison(16)"],
        &widths,
    );
    for (name, dist) in [
        ("web-search", SizeDist::WebSearch),
        ("gRPC", SizeDist::Grpc),
    ] {
        let traffic = TrafficConfig::incast(0.3, 0.1)
            .with_seed(3)
            .with_sizes(dist)
            .with_window(Time::ZERO, window);
        let scenario = Scenario::new(topo.clone(), traffic, window + Time::from_millis(1));
        let base = scenario.profile(PartitionMode::Manual(manual::by_cluster(&topo)));
        let model_b = PerfModel::new(&base.profile);
        let seq = model_b.sequential().total_ns;
        let auto = scenario.profile(PartitionMode::Auto);
        let model_u = PerfModel::new(&auto.profile);
        row(
            &[
                name.to_string(),
                format!("{:.1}x", seq / model_b.barrier().total_ns),
                format!("{:.1}x", seq / model_b.nullmsg(&base.neighbors).total_ns),
                format!(
                    "{:.1}x",
                    seq / model_u.unison(8, SchedConfig::default()).total_ns
                ),
                format!(
                    "{:.1}x",
                    seq / model_u.unison(16, SchedConfig::default()).total_ns
                ),
            ],
            &widths,
        );
    }
    println!("\n(paper: Unison ~10x at 8 cores, ~15x at 16 cores under gRPC)");
}
