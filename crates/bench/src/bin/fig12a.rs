//! Figure 12a: cache locality vs partition granularity — a 12×12 torus run
//! with ONE thread while the number of LPs sweeps from 1 to one-per-node
//! (the paper's manual-granularity experiment).
//!
//! Measured for real: wall-clock time and the node-switch locality proxy
//! (consecutive events touching different nodes — the quantity hardware
//! cache-miss counters track in the paper).
//!
//! Expected shape: node switches (and wall time) fall as LP count rises;
//! the paper reports ~1.5x faster at 144 LPs than at 1 LP.

use unison_bench::harness::{export_profile, header, profile_telemetry, row, Scale};
use unison_core::{KernelKind, MetricsLevel, PartitionMode, RunConfig, SchedConfig, Time};
use unison_netsim::NetworkBuilder;
use unison_topology::{manual, torus2d};
use unison_traffic::{SizeDist, TrafficConfig};

fn main() {
    let scale = Scale::from_args();
    let window = scale.pick(Time::from_millis(3), Time::from_millis(10));
    let topo = torus2d(
        12,
        12,
        unison_core::DataRate::gbps(10),
        Time::from_micros(30),
    );
    let traffic = TrafficConfig::random_uniform(0.3)
        .with_seed(13)
        .with_sizes(SizeDist::WebSearch)
        .with_window(Time::ZERO, window);

    println!("Figure 12a: 12x12 torus, 1 thread, granularity sweep (real measurements)");
    let widths = [6, 12, 14, 14];
    header(&["#lp", "wall(s)", "node-switches", "events"], &widths);
    for lps in [1u32, 4, 16, 48, 144] {
        let sim = NetworkBuilder::new(&topo)
            .traffic(&traffic)
            .stop_at(window + Time::from_millis(1))
            .build();
        let res = sim
            .run_with(&RunConfig {
                watchdog: Default::default(),
                kernel: KernelKind::Unison { threads: 1 },
                partition: PartitionMode::Manual(manual::by_id_range(&topo, lps)),
                sched: SchedConfig::default(),
                metrics: MetricsLevel::Summary,
                telemetry: profile_telemetry(),
                fel: Default::default(),
                fault: Default::default(),
            })
            .expect("run");
        export_profile(&res.kernel);
        row(
            &[
                lps.to_string(),
                format!("{:.3}", res.kernel.wall.as_secs_f64()),
                res.kernel.node_switches().to_string(),
                res.kernel.events.to_string(),
            ],
            &widths,
        );
    }
    println!(
        "\n(paper: cache misses and simulation time fall as granularity rises; \
         the node-switch proxy must fall monotonically here)"
    );
}
