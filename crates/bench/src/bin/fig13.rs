//! Figure 13: processing-time heat maps — per-LP P under the barrier
//! baseline vs per-thread P under Unison, summed over consecutive
//! 100-round buckets (k-ary fat-tree, skewed traffic).
//!
//! Expected shape: the barrier map is *striped* (the same LPs stay hot for
//! long stretches — temporal locality of network load, the basis of the
//! `ByLastRoundTime` metric) while the Unison map is *flat* (threads finish
//! in unison).

use unison_bench::harness::{fat_tree_manual, fat_tree_scenario, Scale};
use unison_core::{DataRate, PartitionMode, PerfModel, SchedConfig, Time};

/// Renders one bucket row as coarse intensity glyphs.
fn render(row: &[f64], max: f64) -> String {
    row.iter()
        .map(|&v| {
            let level = if max <= 0.0 { 0.0 } else { v / max };
            match (level * 5.0) as u32 {
                0 => ' ',
                1 => '.',
                2 => ':',
                3 => 'o',
                4 => 'O',
                _ => '#',
            }
        })
        .collect()
}

fn main() {
    let scale = Scale::from_args();
    let threads = scale.pick(4, 8);
    let scenario = fat_tree_scenario(scale, 0.6, DataRate::gbps(100), Time::from_micros(3));

    // Barrier view: per-pod LP costs.
    let base = scenario.profile(PartitionMode::Manual(fat_tree_manual(&scenario)));
    let model_b = PerfModel::new(&base.profile);
    let buckets_b = model_b.bucketed_costs(100);

    println!("Figure 13a: barrier — P per LP (columns) per 100-round bucket (rows)");
    let max_b = buckets_b
        .iter()
        .flat_map(|r| r.iter())
        .cloned()
        .fold(0.0f64, f64::max);
    for (i, b) in buckets_b.iter().take(40).enumerate() {
        println!("{i:>3} |{}|", render(b, max_b));
    }

    // Unison view: per-thread loads from the replayed LPT schedule.
    let auto = scenario.profile(PartitionMode::Auto);
    let profile = &auto.profile;
    let period = SchedConfig::default().effective_period(auto.partition.lp_count as usize);
    let mut order: Vec<u32> = (0..auto.partition.lp_count).collect();
    let mut prev: Vec<u64> = vec![0; auto.partition.lp_count as usize];
    let mut bucket = vec![0.0f64; threads];
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (r, rec) in profile.iter().enumerate() {
        if r > 0 && r % period as usize == 0 {
            order = unison_core::sched::order_by_estimate(&prev);
        }
        let mut loads = vec![0.0f64; threads];
        for &lp in &order {
            let (idx, _) = loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .expect("threads > 0");
            loads[idx] += rec.lp_cost_ns[lp as usize] as f64;
        }
        for t in 0..threads {
            bucket[t] += loads[t];
        }
        for (i, &c) in rec.lp_cost_ns.iter().enumerate() {
            prev[i] = c as u64;
        }
        if (r + 1) % 100 == 0 {
            rows.push(std::mem::replace(&mut bucket, vec![0.0; threads]));
        }
    }
    println!("\nFigure 13b: Unison — P per thread (columns) per 100-round bucket (rows)");
    let max_u = rows
        .iter()
        .flat_map(|r| r.iter())
        .cloned()
        .fold(0.0f64, f64::max);
    for (i, b) in rows.iter().take(40).enumerate() {
        println!("{i:>3} |{}|", render(b, max_u));
    }
    // Imbalance summary: coefficient of variation within buckets.
    let cv = |rows: &[Vec<f64>]| {
        let mut cv_sum = 0.0;
        for r in rows {
            let mean = r.iter().sum::<f64>() / r.len() as f64;
            if mean > 0.0 {
                let var = r.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / r.len() as f64;
                cv_sum += var.sqrt() / mean;
            }
        }
        cv_sum / rows.len().max(1) as f64
    };
    println!(
        "\nmean within-bucket imbalance (CV): barrier LPs = {:.2}, Unison threads = {:.2}",
        cv(&buckets_b),
        cv(&rows)
    );
    println!("(paper: the barrier map is striped/unbalanced; the Unison map is flat)");
}
