//! Figure 5b: per-round synchronization share S/T of the barrier baseline
//! under *balanced* traffic, first 1000 rounds.
//!
//! Expected shape: S/T fluctuates but stays high (~20%+ on average) even
//! though the macro traffic is balanced — Observation 2's transient
//! imbalance.

use unison_bench::harness::{fat_tree_manual, fat_tree_scenario, Scale};
use unison_core::{DataRate, PartitionMode, PerfModel, Time};
use unison_stats::Summary;

fn main() {
    let scale = Scale::from_args();
    let scenario = fat_tree_scenario(scale, 0.0, DataRate::gbps(100), Time::from_micros(3));
    let run = scenario.profile(PartitionMode::Manual(fat_tree_manual(&scenario)));
    let model = PerfModel::new(&run.profile);
    let bar = model.barrier();
    println!("Figure 5b: barrier per-round S/T under balanced traffic (first 1000 rounds)");
    println!("round  S_B/T");
    let mut summary = Summary::new();
    for (r, &s) in bar.s_ratio_per_round.iter().take(1000).enumerate() {
        summary.add(s as f64);
        if r % 25 == 0 {
            println!("{r:>5}  {:.3}", s);
        }
    }
    println!(
        "\nmean S/T over {} rounds: {:.1}% (min {:.1}%, max {:.1}%)",
        summary.count(),
        summary.mean() * 100.0,
        summary.min() * 100.0,
        summary.max() * 100.0
    );
    println!("(paper: mostly above 20% despite balanced macro traffic)");
}
