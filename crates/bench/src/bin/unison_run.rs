//! `unison-run`: execute one declarative scenario file (DESIGN.md §4.10).
//!
//! ```sh
//! cargo run --release -p unison-bench --bin unison-run -- scenarios/quickstart.toml
//! ```
//!
//! The scenario file carries the whole experiment — topology, traffic,
//! transport, queues, routing, kernel, partitioning, scheduling, faults —
//! so two invocations of the same file produce bit-identical final model
//! state; the digest printed at the end is the proof, and the golden
//! corpus test pins it for every committed file under `scenarios/`.
//!
//! Flags:
//! - `--check` — parse and validate only, no simulation (CI runs this over
//!   the whole corpus);
//! - `--threads <n>` — override the worker count of the thread-scalable
//!   kernels (unison, async_cons) without editing the file;
//! - `--profile <dir>` — record telemetry and export one Chrome-trace JSON
//!   per run into `<dir>`;
//! - `--json <path>` — additionally write a machine-readable report.

use std::process::ExitCode;

use unison_bench::args;
use unison_bench::harness::{export_profile, profile_telemetry};
use unison_core::KernelKind;
use unison_netsim::{world_digest, NetworkBuilder};
use unison_scenario::parse_scenario;

fn usage() -> ! {
    eprintln!(
        "usage: unison-run <scenario.toml> [--check] [--threads <n>] \
         [--profile <dir>] [--json <path>]"
    );
    std::process::exit(2)
}

/// The one positional operand: the scenario file path.
fn scenario_path() -> String {
    let value_flags = ["--threads", "--profile", "--json"];
    let mut path = None;
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        if value_flags.contains(&a.as_str()) {
            iter.next();
        } else if a == "--check" {
        } else if a.starts_with("--") {
            eprintln!("unison-run: unknown flag `{a}`");
            usage();
        } else if path.is_none() {
            path = Some(a);
        } else {
            eprintln!("unison-run: more than one scenario file given");
            usage();
        }
    }
    path.unwrap_or_else(|| usage())
}

/// Minimal JSON string escaping (names come from scenario files).
fn json_str(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn main() -> ExitCode {
    let path = scenario_path();
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("unison-run: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match parse_scenario(&src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("unison-run: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let topo = spec.build_topology();
    let mut cfg = spec.run_config(&topo);

    if args::flag("--check") {
        println!(
            "OK {path}: `{}` on {} ({} nodes, {} links, {} hosts), kernel {:?}, stop {}",
            spec.name,
            topo.name,
            topo.node_count(),
            topo.links.len(),
            topo.hosts().len(),
            cfg.kernel,
            spec.run.stop,
        );
        return ExitCode::SUCCESS;
    }

    if let Some(t) = args::value_of("--threads") {
        let threads: usize = match t.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("unison-run: --threads expects a positive integer, got `{t}`");
                return ExitCode::from(2);
            }
        };
        cfg.kernel = match cfg.kernel {
            KernelKind::Unison { .. } => KernelKind::Unison { threads },
            KernelKind::AsyncCons { .. } => KernelKind::AsyncCons { threads },
            other => {
                eprintln!(
                    "unison-run: --threads only applies to the unison/async_cons \
                     kernels; this scenario runs {other:?}"
                );
                return ExitCode::from(2);
            }
        };
    }
    cfg.telemetry = profile_telemetry();

    let sim = NetworkBuilder::from_scenario(&topo, &spec).build();
    let res = match sim.run_with(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("unison-run: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    export_profile(&res.kernel);
    let digest = world_digest(&res.world);

    let r = &res.kernel;
    println!("scenario: {} ({path})", spec.name);
    println!(
        "topology: {} ({} nodes, {} links)",
        topo.name,
        topo.node_count(),
        topo.links.len()
    );
    println!(
        "kernel:   {} — {} events, {} rounds, {} LPs, lookahead {}, wall {:?}",
        r.kernel, r.events, r.rounds, r.lp_count, r.lookahead, r.wall
    );
    println!("flows:    {}", res.flows.one_line());
    println!("digest:   {digest:016x}");

    if let Some(json_path) = args::path_of("--json") {
        let json = format!(
            "{{\n  \"schema\": \"unison-run/v1\",\n  \"scenario\": \"{}\",\n  \
             \"file\": \"{}\",\n  \"topology\": \"{}\",\n  \"kernel\": \"{}\",\n  \
             \"threads\": {},\n  \"events\": {},\n  \"rounds\": {},\n  \
             \"lp_count\": {},\n  \"wall_ns\": {},\n  \"end_time_ns\": {},\n  \
             \"completed_flows\": {},\n  \"digest\": \"{digest:016x}\"\n}}\n",
            json_str(&spec.name),
            json_str(&path),
            json_str(&topo.name),
            json_str(&r.kernel),
            r.threads,
            r.events,
            r.rounds,
            r.lp_count,
            r.wall.as_nanos(),
            r.end_time.as_nanos(),
            res.flows.completed_flows(),
        );
        if let Err(e) = std::fs::write(&json_path, &json) {
            eprintln!("unison-run: write {}: {e}", json_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("unison-run: wrote {}", json_path.display());
    }
    ExitCode::SUCCESS
}
