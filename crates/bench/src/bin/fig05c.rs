//! Figure 5c: aggregate S/T of the baselines vs link propagation delay
//! (10 Gbps fat-tree).
//!
//! Expected shape: S/T decreases as the delay grows — larger lookahead ⇒
//! larger windows ⇒ less synchronization per unit of work.

use unison_bench::harness::{fat_tree_manual, fat_tree_scenario, header, row, Scale};
use unison_core::{DataRate, PartitionMode, PerfModel, Time};

fn main() {
    let scale = Scale::from_args();
    println!("Figure 5c: baseline S/T vs link delay (10 Gbps fat-tree)");
    let widths = [12, 10, 10];
    header(&["delay", "S_B/T", "S_N/T"], &widths);
    for delay_us in [0.3f64, 3.0, 30.0, 300.0, 3000.0] {
        let delay = Time::from_nanos((delay_us * 1000.0) as u64);
        let scenario = fat_tree_scenario(scale, 0.0, DataRate::gbps(10), delay);
        let run = scenario.profile(PartitionMode::Manual(fat_tree_manual(&scenario)));
        let model = PerfModel::new(&run.profile);
        let bar = model.barrier();
        let nm = model.nullmsg(&run.neighbors);
        row(
            &[
                format!("{delay_us}us"),
                format!("{:.3}", bar.s_ratio()),
                format!("{:.3}", nm.s_ratio()),
            ],
            &widths,
        );
    }
    println!("\n(paper: S/T falls as delay — and thus the window — grows)");
}
