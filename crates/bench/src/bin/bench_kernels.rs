//! Kernel perf baseline: wall-clock and events/sec per kernel, thread
//! count, and FEL backend on the fat-tree incast workload, emitted as
//! machine-readable JSON.
//!
//! ```sh
//! cargo run --release -p unison-bench --bin bench_kernels -- \
//!     --bench-json BENCH_kernels.json [--full]
//! ```
//!
//! Without `--bench-json` the report prints to stdout. The committed
//! `BENCH_kernels.json` at the repository root is one quick-scale snapshot;
//! numbers are machine-dependent, so compare ratios (ladder vs. heap,
//! thread scaling), not absolute rates, across machines. The CI
//! `perf-smoke` job regenerates the file as a build artifact on every run.

use unison_bench::harness::{bench_json_path, fat_tree_scenario, Scale, Scenario};
use unison_core::{DataRate, FelImpl, KernelKind, PartitionMode, RunReport, Time};

/// One measured configuration.
struct Sample {
    kernel: &'static str,
    threads: u32,
    fel: FelImpl,
    report: RunReport,
}

/// Median-of-3 by wall-clock: reruns the configuration and keeps the
/// middle run, so one scheduling hiccup cannot skew the committed baseline.
fn measure(
    scenario: &Scenario,
    name: &'static str,
    kernel: KernelKind,
    threads: u32,
    fel: FelImpl,
) -> Sample {
    let mut runs: Vec<RunReport> = (0..3)
        .map(|_| {
            scenario
                .run_real_with_fel(kernel.clone(), PartitionMode::Auto, fel)
                .kernel
        })
        .collect();
    runs.sort_by_key(|r| r.wall);
    let report = runs.swap_remove(1);
    eprintln!(
        "bench_kernels: {name} t={threads} fel={} — {:.0} events/sec",
        fel.name(),
        report.events_per_sec()
    );
    Sample {
        kernel: name,
        threads,
        fel,
        report,
    }
}

/// Serializes one sample as a JSON object (hand-rolled: every field is a
/// number or a controlled identifier, so no escaping is needed).
fn sample_json(s: &Sample) -> String {
    let r = &s.report;
    format!(
        "    {{\n      \"kernel\": \"{}\",\n      \"threads\": {},\n      \
         \"fel\": \"{}\",\n      \"wall_ns\": {},\n      \"events\": {},\n      \
         \"events_per_sec\": {:.0},\n      \"rounds\": {},\n      \
         \"pool_hits\": {},\n      \"pool_misses\": {},\n      \
         \"pool_hit_rate\": {:.4}\n    }}",
        s.kernel,
        s.threads,
        s.fel.name(),
        r.wall.as_nanos(),
        r.events,
        r.events_per_sec(),
        r.rounds,
        r.engine.pool_hits,
        r.engine.pool_misses,
        r.engine.pool_hit_rate(),
    )
}

fn main() {
    let scale = Scale::from_args();
    let scenario = fat_tree_scenario(scale, 0.5, DataRate::gbps(100), Time::from_micros(3));

    let mut samples = Vec::new();
    for fel in [FelImpl::Ladder, FelImpl::BinaryHeap] {
        samples.push(measure(
            &scenario,
            "sequential",
            KernelKind::Sequential { compat_keys: true },
            1,
            fel,
        ));
    }
    for threads in [1u32, 2, 4] {
        for fel in [FelImpl::Ladder, FelImpl::BinaryHeap] {
            samples.push(measure(
                &scenario,
                "unison",
                KernelKind::Unison {
                    threads: threads as usize,
                },
                threads,
                fel,
            ));
        }
    }

    // Headline ratio backing the engine's perf claim (DESIGN.md §4.4):
    // ladder+pool vs. heap on the 2-thread configuration.
    let rate = |fel: FelImpl| {
        samples
            .iter()
            .find(|s| s.kernel == "unison" && s.threads == 2 && s.fel == fel)
            .map(|s| s.report.events_per_sec())
            .unwrap_or(f64::NAN)
    };
    let speedup = rate(FelImpl::Ladder) / rate(FelImpl::BinaryHeap);
    eprintln!("bench_kernels: ladder/heap speedup at 2 threads: {speedup:.3}x");

    let runs: Vec<String> = samples.iter().map(sample_json).collect();
    let json = format!(
        "{{\n  \"schema\": \"unison-bench/kernels-v1\",\n  \
         \"scale\": \"{}\",\n  \
         \"workload\": \"fat-tree k={} incast 0.5, 100 Gbps links, 3 us delay\",\n  \
         \"ladder_over_heap_2t\": {:.3},\n  \"runs\": [\n{}\n  ]\n}}\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
        scale.pick(4, 8),
        speedup,
        runs.join(",\n"),
    );

    match bench_json_path() {
        Some(path) => {
            // INVARIANT: the baseline file is the binary's whole purpose; an
            // unwritable path is an operator error worth aborting on.
            std::fs::write(&path, &json).expect("write --bench-json file");
            eprintln!("bench_kernels: wrote {}", path.display());
        }
        None => print!("{json}"),
    }
}
