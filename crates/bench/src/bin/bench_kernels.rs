//! Kernel perf baseline: wall-clock and events/sec per kernel, thread
//! count, FEL backend, partitioner, and scheduling policy on the fat-tree
//! incast workload, emitted as machine-readable JSON.
//!
//! ```sh
//! cargo run --release -p unison-bench --bin bench_kernels -- \
//!     --bench-json BENCH_kernels.json [--scale quick|full|large]
//! ```
//!
//! `--scale large` is the k=8 fat-tree tier (>= 10^7 events per run) that
//! backs the committed `async_over_unison_4t` and `unison_4t_over_1t`
//! headlines; `--full` is kept as an alias for `--scale full`.
//!
//! Without `--bench-json` the report prints to stdout. The committed
//! `BENCH_kernels.json` at the repository root is one large-scale snapshot
//! (the tier the headline acceptance ratios are defined on); numbers are
//! machine-dependent, so compare ratios (ladder vs. heap, steal-deque vs.
//! shared cursor, thread scaling), not absolute rates, across machines.
//! The CI `perf-smoke` job regenerates the file as a build artifact on
//! every run.
//!
//! Schema kernels-v5: each row carries `"repeat"` (0 for grid rows, n ≥ 1
//! for the dedicated interleaved headline pairs — v4 emitted those
//! indistinguishable from grid rows) and `"fused_rounds"` (how many rounds
//! the unison kernel ran barrier-free, DESIGN.md §4.9).
//!
//! With `--fault-profile` (requires the `fault-profile` cargo feature,
//! which pulls in `unison-core/fault-inject`) the report additionally
//! measures the resilience contract's cost (DESIGN.md §4.7): the same
//! workload run plainly, under the resilient driver without faults
//! (checkpoint-chain overhead), and under the driver with a mid-run
//! injected worker panic (rollback + recovery overhead). Built without
//! the feature, the `fault_profile` field is `null`.

use unison_bench::harness::{bench_json_path, fat_tree_scenario, Scale, Scenario};
use unison_core::{
    DataRate, FelImpl, KernelKind, PartitionMode, PartitionPipeline, RunReport, SchedConfig,
    SchedPolicyKind, Time,
};

/// One measured configuration.
struct Sample {
    kernel: &'static str,
    threads: u32,
    fel: FelImpl,
    /// Partitioner label (`auto` or a pipeline's stage chain).
    partitioner: &'static str,
    policy: SchedPolicyKind,
    /// 0 for grid rows (median-of-3, one row per configuration); n ≥ 1 for
    /// the dedicated interleaved headline pairs, which would otherwise be
    /// indistinguishable from the grid rows they duplicate (kernels-v5).
    repeat: u32,
    report: RunReport,
}

/// The two partitioners on the grid: the free-function reference and the
/// staged pipeline with refinement + placement.
fn partition_modes() -> [(&'static str, PartitionMode); 2] {
    [
        ("auto", PartitionMode::Auto),
        (
            "pipeline-refined",
            PartitionMode::Pipeline(PartitionPipeline::refined()),
        ),
    ]
}

/// Median-of-3 by wall-clock: reruns the configuration and keeps the
/// middle run, so one scheduling hiccup cannot skew the committed baseline.
#[allow(clippy::too_many_arguments)]
fn measure(
    scenario: &Scenario,
    name: &'static str,
    kernel: KernelKind,
    threads: u32,
    fel: FelImpl,
    partitioner: &'static str,
    partition: PartitionMode,
    policy: SchedPolicyKind,
) -> Sample {
    let sched = SchedConfig {
        policy,
        ..Default::default()
    };
    let mut runs: Vec<RunReport> = (0..3)
        .map(|_| {
            scenario
                .run_real_opts(kernel.clone(), partition.clone(), fel, sched)
                .kernel
        })
        .collect();
    runs.sort_by_key(|r| r.wall);
    let report = runs.swap_remove(1);
    eprintln!(
        "bench_kernels: {name} t={threads} fel={} part={partitioner} sched={} — {:.0} events/sec",
        fel.name(),
        policy.name(),
        report.events_per_sec()
    );
    Sample {
        kernel: name,
        threads,
        fel,
        partitioner,
        policy,
        repeat: 0,
        report,
    }
}

/// Serializes one sample as a JSON object (hand-rolled: every field is a
/// number or a controlled identifier, so no escaping is needed).
fn sample_json(s: &Sample) -> String {
    let r = &s.report;
    // Round-based kernels report rounds and zero grants/stalls; the async
    // kernel reports the reverse. `fused_rounds` counts the rounds the
    // unison kernel ran barrier-free (DESIGN.md §4.9); `repeat` tags the
    // dedicated headline pairs (kernels-v5).
    let (grants, stalls) = r
        .async_stats
        .as_ref()
        .map(|a| (a.grants, a.stalls))
        .unwrap_or((0, 0));
    format!(
        "    {{\n      \"kernel\": \"{}\",\n      \"threads\": {},\n      \
         \"fel\": \"{}\",\n      \"partitioner\": \"{}\",\n      \
         \"sched\": \"{}\",\n      \"repeat\": {},\n      \
         \"wall_ns\": {},\n      \"events\": {},\n      \
         \"events_per_sec\": {:.0},\n      \"rounds\": {},\n      \
         \"fused_rounds\": {},\n      \
         \"grants\": {},\n      \"stalls\": {},\n      \
         \"pool_hits\": {},\n      \"pool_misses\": {},\n      \
         \"pool_hit_rate\": {:.4},\n      \"steals\": {},\n      \
         \"affinity_hit_rate\": {:.4}\n    }}",
        s.kernel,
        s.threads,
        s.fel.name(),
        s.partitioner,
        s.policy.name(),
        s.repeat,
        r.wall.as_nanos(),
        r.events,
        r.events_per_sec(),
        r.rounds,
        r.fused_rounds,
        grants,
        stalls,
        r.engine.pool_hits,
        r.engine.pool_misses,
        r.engine.pool_hit_rate(),
        r.sched.steals,
        r.sched.affinity_hit_rate(),
    )
}

/// The `--fault-profile` section: wall-clock cost of the resilience
/// contract (DESIGN.md §4.7) on the 2-thread Unison configuration —
/// plain run vs. resilient driver without faults vs. resilient driver
/// recovering from an injected mid-run worker panic. The recovered
/// world's digest is asserted identical to the unfailed one.
#[cfg(feature = "fault-profile")]
fn fault_profile_json(scenario: &Scenario) -> Option<String> {
    use std::time::{Duration, Instant};

    use unison_core::{
        fault, CheckpointConfig, FaultPlan, MetricsLevel, RecoveryPolicy, RunConfig, RunPhase,
        Snapshot, SnapshotWriter, World,
    };
    use unison_netsim::{NetNode, NetworkBuilder};

    if !unison_bench::args::flag("--fault-profile") {
        return None;
    }
    let threads = 2usize;
    let build = || {
        let mut b = NetworkBuilder::new(&scenario.topo)
            .transport(scenario.transport)
            .traffic(&scenario.traffic)
            .stop_at(scenario.stop);
        if let Some(q) = scenario.queue {
            b = b.queue(q);
        }
        b.build().world
    };
    let cfg = RunConfig {
        kernel: KernelKind::Unison { threads },
        partition: PartitionMode::Auto,
        sched: SchedConfig::default(),
        metrics: MetricsLevel::Summary,
        telemetry: Default::default(),
        fel: FelImpl::default(),
        watchdog: Default::default(),
        fault: Default::default(),
    };
    let digest = |w: &World<NetNode>| {
        let mut wr = SnapshotWriter::new();
        for n in w.nodes() {
            n.save(&mut wr);
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in wr.into_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    };

    // Warmup (untimed): page-faults, allocator pools and branch state
    // settle, so the three timed runs compare like for like.
    unison_core::kernel::try_run(build(), &cfg).expect("warmup run");

    // Plain run: the no-resilience baseline (also tells us the round
    // count, so the injected panic lands mid-run).
    let t0 = Instant::now();
    let (_, rep_plain) = unison_core::kernel::try_run(build(), &cfg).expect("plain run");
    let plain_wall = t0.elapsed();

    let dir = std::env::temp_dir().join(format!("unison-faultprof-{}", std::process::id()));
    let policy = RecoveryPolicy::new(CheckpointConfig::new(
        Time(scenario.stop.as_nanos() / 4),
        dir.clone(),
    ))
    .with_backoff_base(Duration::from_millis(1));

    // Resilient driver, no faults: checkpoint-chain + driver overhead.
    let t0 = Instant::now();
    let (w_clean, _) = fault::run_resilient(build(), &cfg, &policy).expect("resilient run");
    let resilient_wall = t0.elapsed();

    // Resilient driver recovering from a worker panic halfway through.
    let mut faulted_cfg = cfg.clone();
    faulted_cfg.fault = FaultPlan::new().worker_panic(rep_plain.rounds / 2, RunPhase::Process, 0);
    let t0 = Instant::now();
    let (w_rec, rep_rec) =
        fault::run_resilient(build(), &faulted_cfg, &policy).expect("recovered run");
    let faulted_wall = t0.elapsed();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(
        digest(&w_clean),
        digest(&w_rec),
        "recovered run diverged from the unfailed run"
    );
    let log = rep_rec.recovery.expect("resilient runs always carry a log");
    assert!(log.rollback_count() > 0, "the injected panic never fired");
    let rounds_lost: u64 = log.rollbacks.iter().map(|r| r.rounds_lost).sum();
    eprintln!(
        "bench_kernels: fault profile — plain {:.1} ms, resilient {:.1} ms, recovered {:.1} ms \
         ({} rollback(s), {} rounds lost)",
        plain_wall.as_secs_f64() * 1e3,
        resilient_wall.as_secs_f64() * 1e3,
        faulted_wall.as_secs_f64() * 1e3,
        log.rollback_count(),
        rounds_lost,
    );
    Some(format!(
        "{{\n    \"threads\": {},\n    \"plain_wall_ns\": {},\n    \
         \"resilient_wall_ns\": {},\n    \"faulted_wall_ns\": {},\n    \
         \"rollbacks\": {},\n    \"rounds_lost\": {},\n    \
         \"recovery_wall_ns\": {},\n    \"checkpoint_overhead\": {:.3},\n    \
         \"recovery_overhead\": {:.3}\n  }}",
        threads,
        plain_wall.as_nanos(),
        resilient_wall.as_nanos(),
        faulted_wall.as_nanos(),
        log.rollback_count(),
        rounds_lost,
        log.total_recovery_wall.as_nanos(),
        resilient_wall.as_secs_f64() / plain_wall.as_secs_f64(),
        faulted_wall.as_secs_f64() / plain_wall.as_secs_f64(),
    ))
}

/// Built without the `fault-profile` feature: the section is always
/// `null`, and asking for it on the command line gets a pointer to the
/// feature instead of silence.
#[cfg(not(feature = "fault-profile"))]
fn fault_profile_json(_scenario: &Scenario) -> Option<String> {
    if unison_bench::args::flag("--fault-profile") {
        eprintln!(
            "bench_kernels: built without the `fault-profile` feature; \
             rebuild with --features fault-profile to measure recovery overhead"
        );
    }
    None
}

fn main() {
    let scale = Scale::from_args();
    let scenario = fat_tree_scenario(scale, 0.5, DataRate::gbps(100), Time::from_micros(3));

    let mut samples = Vec::new();
    for fel in [FelImpl::Ladder, FelImpl::BinaryHeap] {
        samples.push(measure(
            &scenario,
            "sequential",
            KernelKind::Sequential { compat_keys: true },
            1,
            fel,
            "auto",
            PartitionMode::Auto,
            SchedPolicyKind::LjfCursor,
        ));
    }
    // FEL A/B on the default partitioner/policy.
    for threads in [1u32, 2, 4] {
        for fel in [FelImpl::Ladder, FelImpl::BinaryHeap] {
            samples.push(measure(
                &scenario,
                "unison",
                KernelKind::Unison {
                    threads: threads as usize,
                },
                threads,
                fel,
                "auto",
                PartitionMode::Auto,
                SchedPolicyKind::LjfCursor,
            ));
        }
    }
    // The barrier-free asynchronous conservative kernel on the default
    // (ladder) FEL: its scheduling is static ownership, so only the
    // thread axis is swept.
    for threads in [1u32, 2, 4] {
        samples.push(measure(
            &scenario,
            "async_cons",
            KernelKind::AsyncCons {
                threads: threads as usize,
            },
            threads,
            FelImpl::Ladder,
            "auto",
            PartitionMode::Auto,
            SchedPolicyKind::LjfCursor,
        ));
    }
    // (partitioner, sched-policy) grid at the parallel thread counts, on
    // the default (ladder) FEL. The (auto, ljf-cursor) cell already exists
    // above; skip the duplicate.
    for threads in [2u32, 4] {
        for (pname, pmode) in partition_modes() {
            for policy in [SchedPolicyKind::LjfCursor, SchedPolicyKind::StealDeque] {
                if pname == "auto" && policy == SchedPolicyKind::LjfCursor {
                    continue;
                }
                samples.push(measure(
                    &scenario,
                    "unison",
                    KernelKind::Unison {
                        threads: threads as usize,
                    },
                    threads,
                    FelImpl::Ladder,
                    pname,
                    pmode.clone(),
                    policy,
                ));
            }
        }
    }

    // Headline ratios. Ladder+pool vs. heap backs the engine's perf claim
    // (DESIGN.md §4.4); steal-deque vs. shared cursor backs the scheduler
    // extension's "no regression" claim (DESIGN.md §4.5) — both on the
    // 2-thread configuration.
    let kernel_rate = |kernel: &str, threads: u32, fel: FelImpl, policy: SchedPolicyKind| {
        samples
            .iter()
            .find(|s| {
                s.kernel == kernel
                    && s.threads == threads
                    && s.fel == fel
                    && s.partitioner == "auto"
                    && s.policy == policy
            })
            .map(|s| s.report.events_per_sec())
            .unwrap_or(f64::NAN)
    };
    let ljf = SchedPolicyKind::LjfCursor;
    let rate = |fel: FelImpl, policy: SchedPolicyKind| kernel_rate("unison", 2, fel, policy);
    let speedup = rate(FelImpl::Ladder, ljf) / rate(FelImpl::BinaryHeap, ljf);
    let steal_over_ljf =
        rate(FelImpl::Ladder, SchedPolicyKind::StealDeque) / rate(FelImpl::Ladder, ljf);
    // Thread-scaling and async headlines: the grid rows above are measured
    // minutes apart, so their ratios soak up machine drift; the headlines
    // instead come from three dedicated interleaved pairs with alternating
    // within-pair order, medians per arm — the same discipline as the
    // perf-smoke tripwires that guard them on the large tier. Each
    // dedicated run is also emitted into `runs`, tagged `"repeat": n` so
    // it cannot be mistaken for a grid row (the kernels-v4 duplicate-row
    // bug).
    let mut headline_pair = |x_kernel: KernelKind,
                             x_name: &'static str,
                             x_threads: u32,
                             y_kernel: KernelKind,
                             y_name: &'static str,
                             y_threads: u32| {
        let mut run = |kernel: &KernelKind, name: &'static str, threads: u32, repeat: u32| {
            let report = scenario
                .run_real_with_fel(kernel.clone(), PartitionMode::Auto, FelImpl::Ladder)
                .kernel;
            let rate = report.events_per_sec();
            samples.push(Sample {
                kernel: name,
                threads,
                fel: FelImpl::Ladder,
                partitioner: "auto",
                policy: SchedPolicyKind::LjfCursor,
                repeat,
                report,
            });
            rate
        };
        let (mut x, mut y) = (Vec::new(), Vec::new());
        for pair in 0u32..3 {
            if pair % 2 == 0 {
                x.push(run(&x_kernel, x_name, x_threads, pair + 1));
                y.push(run(&y_kernel, y_name, y_threads, pair + 1));
            } else {
                y.push(run(&y_kernel, y_name, y_threads, pair + 1));
                x.push(run(&x_kernel, x_name, x_threads, pair + 1));
            }
        }
        x.sort_unstable_by(|a, b| a.total_cmp(b));
        y.sort_unstable_by(|a, b| a.total_cmp(b));
        x[1] / y[1]
    };
    // Barrier-free vs. round-based at the widest measured thread count.
    let async_over_unison_4t = headline_pair(
        KernelKind::AsyncCons { threads: 4 },
        "async_cons",
        4,
        KernelKind::Unison { threads: 4 },
        "unison",
        4,
    );
    // The round-based kernel's own thread scaling — the ratio round fusion
    // and the tree barrier exist to lift above 1.0 (ROADMAP item 1).
    let unison_4t_over_1t = headline_pair(
        KernelKind::Unison { threads: 4 },
        "unison",
        4,
        KernelKind::Unison { threads: 1 },
        "unison",
        1,
    );
    eprintln!("bench_kernels: ladder/heap speedup at 2 threads: {speedup:.3}x");
    eprintln!("bench_kernels: steal-deque/ljf-cursor at 2 threads: {steal_over_ljf:.3}x");
    eprintln!("bench_kernels: async_cons/unison at 4 threads: {async_over_unison_4t:.3}x");
    eprintln!("bench_kernels: unison 4t over 1t: {unison_4t_over_1t:.3}x");

    let fault_profile = fault_profile_json(&scenario).unwrap_or_else(|| "null".into());
    let runs: Vec<String> = samples.iter().map(sample_json).collect();
    let json = format!(
        "{{\n  \"schema\": \"unison-bench/kernels-v5\",\n  \
         \"scale\": \"{}\",\n  \
         \"workload\": \"fat-tree k={} incast 0.5, 100 Gbps links, 3 us delay\",\n  \
         \"ladder_over_heap_2t\": {:.3},\n  \"steal_over_ljf_2t\": {:.3},\n  \
         \"async_over_unison_4t\": {:.3},\n  \
         \"unison_4t_over_1t\": {:.3},\n  \
         \"fault_profile\": {},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        scale.name(),
        scale.pick(4, 8),
        speedup,
        steal_over_ljf,
        async_over_unison_4t,
        unison_4t_over_1t,
        fault_profile,
        runs.join(",\n"),
    );

    match bench_json_path() {
        Some(path) => {
            // INVARIANT: the baseline file is the binary's whole purpose; an
            // unwritable path is an operator error worth aborting on.
            std::fs::write(&path, &json).expect("write --bench-json file");
            eprintln!("bench_kernels: wrote {}", path.display());
        }
        None => print!("{json}"),
    }
}
