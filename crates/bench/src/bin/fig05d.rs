//! Figure 5d: aggregate S/T of the baselines vs link bandwidth at a fixed
//! offered traffic volume (30 µs delay fat-tree).
//!
//! Expected shape: S/T increases with bandwidth — more events per fixed
//! window, but the same synchronization boundary, concentrates transient
//! imbalance.

use unison_bench::harness::{header, row, Scale, Scenario};
use unison_core::{DataRate, PartitionMode, PerfModel, Time};
use unison_topology::{fat_tree, manual};
use unison_traffic::TrafficConfig;

fn main() {
    let scale = Scale::from_args();
    let k = scale.pick(4, 8);
    let window = scale.pick(Time::from_millis(2), Time::from_millis(5));
    println!("Figure 5d: baseline S/T vs link bandwidth (fixed traffic volume)");
    let widths = [10, 10, 10];
    header(&["bw(Gbps)", "S_B/T", "S_N/T"], &widths);
    for gbps in [2u64, 4, 6, 8, 10] {
        let topo = fat_tree(k)
            .with_rate(DataRate::gbps(gbps))
            .with_delay(Time::from_micros(30));
        // Fixed absolute volume: load scales inversely with bandwidth.
        let load = 0.3 * 10.0 / gbps as f64;
        let traffic = TrafficConfig::random_uniform(load)
            .with_seed(7)
            .with_window(Time::ZERO, window);
        let scenario = Scenario::new(topo.clone(), traffic, window + Time::from_millis(1));
        let run = scenario.profile(PartitionMode::Manual(manual::by_cluster(&topo)));
        let model = PerfModel::new(&run.profile);
        let bar = model.barrier();
        let nm = model.nullmsg(&run.neighbors);
        row(
            &[
                gbps.to_string(),
                format!("{:.3}", bar.s_ratio()),
                format!("{:.3}", nm.s_ratio()),
            ],
            &widths,
        );
    }
    println!("\n(paper: S/T rises with bandwidth at constant volume)");
}
