//! Figure 12b: partition schemes on the DCTCP dumbbell — automatic
//! fine-grained vs "avoid cutting the bottleneck" vs coarse two-halves.
//!
//! Real single-thread measurements (wall time, node switches) plus the
//! 4-core virtual replay of each scheme's makespan.
//!
//! Expected shape: the automatic fine-grained partition has the lowest
//! simulated time; the coarse scheme pays imbalance, the bottleneck-
//! preserving scheme pays interleaving.

use unison_bench::harness::{
    export_profile, header, partition_info, profile_telemetry, row, Scale, Scenario,
};
use unison_core::{DataRate, PartitionMode, PerfModel, SchedConfig, Time};
use unison_netsim::{QueueConfig, TransportKind};
use unison_topology::{dumbbell, manual};
use unison_traffic::{FlowSpec, TrafficConfig};

fn main() {
    let scale = Scale::from_args();
    let senders = scale.pick(8, 16);
    let topo = dumbbell(
        senders,
        senders,
        DataRate::gbps(1),
        DataRate::gbps(1),
        Time::from_micros(20),
    );
    let hosts = topo.hosts();
    let flows: Vec<FlowSpec> = (0..senders * 6)
        .map(|i| FlowSpec {
            src: hosts[i % senders],
            dst: hosts[senders + (i % senders)],
            bytes: 200_000,
            start: Time::from_micros(40 * i as u64),
        })
        .collect();
    let mut scenario = Scenario::new(
        topo.clone(),
        TrafficConfig::random_uniform(0.0), // flows injected explicitly
        Time::from_millis(60),
    );
    scenario.transport = TransportKind::Dctcp;
    scenario.queue = Some(QueueConfig::dctcp(1 << 20, 8_000));

    // "Avoid the bottleneck": fine-grained everywhere except the two
    // bottleneck switches share one LP.
    let (auto, _) = partition_info(&topo, &PartitionMode::Auto);
    let mut bottleneck = Vec::with_capacity(topo.node_count());
    for node in 0..topo.node_count() {
        let lp = auto.node_lp[node].0;
        bottleneck.push(if node == 1 { auto.node_lp[0].0 } else { lp });
    }
    // Re-densify LP ids.
    let mut remap = std::collections::BTreeMap::new();
    for &lp in &bottleneck {
        let next = remap.len() as u32;
        remap.entry(lp).or_insert(next);
    }
    let bottleneck: Vec<u32> = bottleneck.iter().map(|l| remap[l]).collect();

    println!("Figure 12b: DCTCP dumbbell, partition schemes (flows injected explicitly)");
    let widths = [12, 6, 14, 12, 14];
    header(
        &["scheme", "#lp", "node-switches", "wall(s)", "t_4core(s)"],
        &widths,
    );
    for (name, mode) in [
        ("auto", PartitionMode::Auto),
        ("bottleneck", PartitionMode::Manual(bottleneck)),
        (
            "coarse",
            PartitionMode::Manual(manual::dumbbell_halves(&topo)),
        ),
    ] {
        let mut s = scenario.clone();
        s.traffic = TrafficConfig::random_uniform(0.0);
        let sim = {
            let mut b = unison_netsim::NetworkBuilder::new(&s.topo)
                .transport(s.transport)
                .stop_at(s.stop)
                .flows(flows.clone());
            if let Some(q) = s.queue {
                b = b.queue(q);
            }
            b.build()
        };
        let res = sim
            .run_with(&unison_core::RunConfig {
                watchdog: Default::default(),
                kernel: unison_core::KernelKind::Unison { threads: 1 },
                partition: mode,
                sched: SchedConfig::default(),
                metrics: unison_core::MetricsLevel::PerRound,
                telemetry: profile_telemetry(),
                fel: Default::default(),
                fault: Default::default(),
            })
            .expect("run");
        export_profile(&res.kernel);
        let profile = res.kernel.rounds_profile.as_deref().unwrap_or(&[]);
        let t4 = PerfModel::new(profile).unison(4, SchedConfig::default());
        row(
            &[
                name.to_string(),
                res.kernel.lp_count.to_string(),
                res.kernel.node_switches().to_string(),
                format!("{:.3}", res.kernel.wall.as_secs_f64()),
                format!("{:.6}", t4.total_ns / 1e9),
            ],
            &widths,
        );
    }
    println!(
        "\n(paper: fine-grained partition wins; coarse pays imbalance, keeping the \
         bottleneck uncut pays interleaving)"
    );
}
