//! Figure 8a: total simulation time of the PDES baselines, sequential DES,
//! Unison (16 threads) and the data-driven surrogate (DeepQueueNet
//! stand-in, DESIGN.md §3.4) on fat-tree 16 / 64 / 128 with 100 Mbps,
//! 500 µs links.
//!
//! Expected shape: the surrogate's time is proportional to packets, so it
//! loses at small scale and becomes competitive with sequential DES at
//! large scale — while Unison beats everything with full fidelity.

use unison_bench::harness::{header, row, secs, Scale, Scenario};
use unison_bench::surrogate;
use unison_core::{DataRate, PartitionMode, PerfModel, SchedConfig, Time};
use unison_topology::{fat_tree_clusters, manual};
use unison_traffic::{SizeDist, TrafficConfig};

fn main() {
    let scale = Scale::from_args();
    let configs: Vec<(&str, usize, usize)> = vec![
        ("fat-tree 16", 4, 4),
        ("fat-tree 64", 8, 8),
        ("fat-tree 128", 16, 8),
    ];
    let window = scale.pick(Time::from_millis(40), Time::from_millis(200));
    let threads = 16;

    println!("Figure 8a: simulation time on DeepQueueNet-style fat-trees (100 Mbps, 500 us)");
    let widths = [13, 10, 12, 12, 12, 12, 12];
    header(
        &[
            "topology",
            "packets",
            "barrier(s)",
            "nullmsg(s)",
            "DQN*(s)",
            "seq(s)",
            "unison(s)",
        ],
        &widths,
    );
    for (name, clusters, hosts) in configs {
        let topo = fat_tree_clusters(clusters, hosts)
            .with_rate(DataRate::mbps(100))
            .with_delay(Time::from_micros(500));
        let traffic = TrafficConfig::random_uniform(0.5)
            .with_seed(11)
            .with_sizes(SizeDist::Grpc)
            .with_window(Time::ZERO, window);
        let host_rate = DataRate::mbps(100);
        let flows = traffic.generate(&topo, host_rate);
        let scenario = Scenario::new(topo.clone(), traffic, window + Time::from_millis(20));

        let base = scenario.profile(PartitionMode::Manual(manual::by_cluster(&topo)));
        let model_b = PerfModel::new(&base.profile);
        let auto = scenario.profile(PartitionMode::Auto);
        let model_u = PerfModel::new(&auto.profile);
        let dqn = surrogate::predict(&topo, &flows, window);

        row(
            &[
                name.to_string(),
                dqn.packets.to_string(),
                secs(model_b.barrier().total_ns),
                secs(model_b.nullmsg(&base.neighbors).total_ns),
                format!("{:.3}", dqn.inference_secs),
                secs(model_b.sequential().total_ns),
                secs(model_u.unison(threads, SchedConfig::default()).total_ns),
            ],
            &widths,
        );
    }
    println!(
        "\n(DQN* = calibrated surrogate, {} ns/packet; paper: PDES beats DQN at small \
         scale, Unison beats everything at every scale)",
        surrogate::INFERENCE_NS_PER_PACKET
    );
}
