//! Figure 8a: total simulation time of the PDES baselines, sequential DES,
//! Unison (16 threads) and the data-driven surrogate (DeepQueueNet
//! stand-in, DESIGN.md §3.4) on fat-tree 16 / 64 / 128 with 100 Mbps,
//! 500 µs links.
//!
//! The base row (fat-tree 16, quick window) is the committed
//! `scenarios/fig08a.toml`, digest-pinned by the golden corpus test; the
//! wider topologies and the full-scale window mutate the parsed spec.
//!
//! Expected shape: the surrogate's time is proportional to packets, so it
//! loses at small scale and becomes competitive with sequential DES at
//! large scale — while Unison beats everything with full fidelity.

use unison_bench::harness::{header, row, secs, Scale, Scenario};
use unison_bench::surrogate;
use unison_core::{DataRate, PartitionMode, PerfModel, SchedConfig, Time};
use unison_scenario::{parse_scenario, TopoKind};
use unison_topology::manual;

fn main() {
    let scale = Scale::from_args();
    let base = parse_scenario(include_str!("../../../../scenarios/fig08a.toml"))
        .expect("committed scenario parses");
    let configs: Vec<(&str, usize, usize)> = vec![
        ("fat-tree 16", 4, 4),
        ("fat-tree 64", 8, 8),
        ("fat-tree 128", 16, 8),
    ];
    let window = scale.pick(Time::from_millis(40), Time::from_millis(200));
    let threads = 16;

    println!("Figure 8a: simulation time on DeepQueueNet-style fat-trees (100 Mbps, 500 us)");
    let widths = [13, 10, 12, 12, 12, 12, 12];
    header(
        &[
            "topology",
            "packets",
            "barrier(s)",
            "nullmsg(s)",
            "DQN*(s)",
            "seq(s)",
            "unison(s)",
        ],
        &widths,
    );
    for (name, clusters, hosts) in configs {
        let mut spec = base.clone();
        spec.topology.kind = TopoKind::FatTreeClusters {
            clusters,
            hosts_per_cluster: hosts,
        };
        if let Some(t) = spec.traffic.as_mut() {
            t.duration = window;
        }
        spec.run.stop = window + Time::from_millis(20);

        let topo = spec.build_topology();
        let traffic = spec.traffic_config().expect("fig08a has [traffic]");
        let host_rate = spec.topology.rate.unwrap_or(DataRate::mbps(100));
        let flows = traffic.generate(&topo, host_rate);
        let scenario = Scenario::from_spec(&spec);

        let base_run = scenario.profile(PartitionMode::Manual(manual::by_cluster(&topo)));
        let model_b = PerfModel::new(&base_run.profile);
        let auto = scenario.profile(PartitionMode::Auto);
        let model_u = PerfModel::new(&auto.profile);
        let dqn = surrogate::predict(&topo, &flows, window);

        row(
            &[
                name.to_string(),
                dqn.packets.to_string(),
                secs(model_b.barrier().total_ns),
                secs(model_b.nullmsg(&base_run.neighbors).total_ns),
                format!("{:.3}", dqn.inference_secs),
                secs(model_b.sequential().total_ns),
                secs(model_u.unison(threads, SchedConfig::default()).total_ns),
            ],
            &widths,
        );
    }
    println!(
        "\n(DQN* = calibrated surrogate, {} ns/packet; paper: PDES beats DQN at small \
         scale, Unison beats everything at every scale)",
        surrogate::INFERENCE_NS_PER_PACKET
    );
}
