//! # unison-bench
//!
//! Shared harness for the per-figure/per-table benchmark binaries (see
//! `src/bin/`). The pattern, following DESIGN.md §3.2: a workload is
//! executed once per partition scheme on the instrumented single-thread
//! engine (recording the exact per-round, per-LP cost matrix), and the
//! virtual-core performance model replays each algorithm's synchronization
//! structure over that matrix. Single-thread quantities (absolute event
//! rate, locality) are measured for real.

pub mod args;
pub mod harness;
pub mod surrogate;

pub use harness::{partition_info, profile_run, Scale, Scenario};
