//! Data-driven simulator surrogate (stand-in for DeepQueueNet / MimicNet).
//!
//! The paper compares against GPU-based ML simulators. Per the substitution
//! rule (DESIGN.md §3.4), this module reproduces their two relevant
//! behaviors without GPUs or training:
//!
//! 1. **Runtime** proportional to the number of injected packets (the
//!    paper's observation about DeepQueueNet: "its simulation time is
//!    proportional to the number of packets"), with a per-packet inference
//!    cost calibrated to the published 2-GPU A100 throughput relative to a
//!    CPU event rate.
//! 2. **Accuracy at the stable point only**: flow metrics are predicted
//!    from an M/M/1-style queueing approximation that is good for balanced
//!    traffic but ignores transient incast dynamics, so its RTT/throughput
//!    error grows in skewed scenarios — Table 2's observed pattern.

use unison_core::{DataRate, Time};
use unison_netsim::MSS;
use unison_topology::{NodeKind, Topology};
use unison_traffic::FlowSpec;

/// Modeled per-packet DNN inference cost (both GPUs busy). Together with
/// [`INFERENCE_STARTUP_NS`], calibrated so that the surrogate's runtime
/// curve crosses sequential DES between the small and large fat-trees, as
/// in Fig. 8a.
pub const INFERENCE_NS_PER_PACKET: f64 = 2_500.0;

/// Fixed per-run cost of standing up the GPU inference pipeline (model
/// load, device-queue warm-up, batching latency floor).
pub const INFERENCE_STARTUP_NS: f64 = 20_000_000.0;

/// Predicted metrics for one flow.
#[derive(Clone, Copy, Debug)]
pub struct SurrogateFlow {
    /// Flow completion time.
    pub fct: Time,
    /// Predicted steady-state RTT.
    pub rtt: Time,
    /// Predicted goodput, bits/sec.
    pub throughput_bps: f64,
}

/// Aggregate prediction for a workload.
#[derive(Clone, Debug, Default)]
pub struct SurrogateReport {
    /// Mean FCT over flows, milliseconds.
    pub mean_fct_ms: f64,
    /// Mean RTT, milliseconds.
    pub mean_rtt_ms: f64,
    /// Mean per-flow goodput, Mbit/s.
    pub mean_throughput_mbps: f64,
    /// Modeled inference wall time for the whole workload, seconds.
    pub inference_secs: f64,
    /// Total packets "inferred".
    pub packets: u64,
}

/// Runs the surrogate over a workload.
///
/// The queueing abstraction: every flow crosses one access link (rate `r`)
/// and a shared fabric whose utilization is the offered load; per-hop
/// delay is the propagation delay plus an M/M/1 waiting term
/// `ρ/(1-ρ) * packet_service_time`. Incast concentration beyond the stable
/// point is *not* modeled (the surrogate's documented blind spot).
pub fn predict(topo: &Topology, flows: &[FlowSpec], window: Time) -> SurrogateReport {
    if flows.is_empty() {
        return SurrogateReport::default();
    }
    let hosts = topo.hosts();
    let host_rate = topo
        .links
        .iter()
        .find(|l| topo.nodes[l.a] == NodeKind::Host || topo.nodes[l.b] == NodeKind::Host)
        .map(|l| l.rate)
        .unwrap_or(DataRate::gbps(10));
    let mean_delay_ns = topo
        .links
        .iter()
        .map(|l| l.delay.as_nanos() as f64)
        .sum::<f64>()
        / topo.links.len().max(1) as f64;
    // Offered utilization of the fabric at the stable point.
    let total_bytes: f64 = flows.iter().map(|f| f.bytes as f64).sum();
    let capacity = host_rate.as_bps() as f64 * hosts.len() as f64 / 8.0;
    let duration = window.as_secs_f64().max(1e-9);
    let rho = (total_bytes / duration / capacity).min(0.95);

    // Per-hop queueing wait (M/M/1 residual): rho/(1-rho) * service time.
    let service_ns = host_rate.tx_time(MSS + 52).as_nanos() as f64;
    let wait_ns = rho / (1.0 - rho) * service_ns;
    // Typical inter-pod path in a three-tier fat-tree: 6 links.
    let hops = 6.0;
    let base_rtt_ns = 2.0 * hops * (mean_delay_ns + wait_ns + service_ns);

    // Ground truth only observes flows that complete inside the
    // measurement horizon; apply the same cut to the predictions.
    let horizon_ns = window.as_nanos() as f64;
    let mut fct_sum = 0.0;
    let mut tput_sum = 0.0;
    let mut observed = 0u64;
    let mut packets: u64 = 0;
    for f in flows {
        let pkts = (f.bytes as f64 / MSS as f64).ceil().max(1.0);
        packets += 2 * pkts as u64; // data + ack
                                    // M/G/1-PS slowdown: residual capacity shared processor-style.
        let fair_share = host_rate.as_bps() as f64 * (1.0 - rho).max(0.05);
        // Slow-start ramp: log2 of the window count adds RTTs.
        let ramp_rtts = (pkts / 10.0).log2().clamp(0.0, 10.0);
        let fct_ns = f.bytes as f64 * 8.0 / fair_share * 1e9 + (1.0 + ramp_rtts) * base_rtt_ns;
        if fct_ns <= horizon_ns {
            fct_sum += fct_ns;
            tput_sum += f.bytes as f64 * 8.0 / (fct_ns / 1e9);
            observed += 1;
        }
    }
    let n = observed.max(1) as f64;
    SurrogateReport {
        mean_fct_ms: fct_sum / n / 1e6,
        mean_rtt_ms: base_rtt_ns / 1e6,
        mean_throughput_mbps: tput_sum / n / 1e6,
        inference_secs: (INFERENCE_STARTUP_NS + packets as f64 * INFERENCE_NS_PER_PACKET) / 1e9,
        packets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unison_topology::fat_tree_clusters;

    fn flows(topo: &Topology, n: usize, bytes: u64) -> Vec<FlowSpec> {
        let hosts = topo.hosts();
        (0..n)
            .map(|i| FlowSpec {
                src: hosts[i % hosts.len()],
                dst: hosts[(i + 1) % hosts.len()],
                bytes,
                start: Time::from_micros(i as u64),
            })
            .collect()
    }

    #[test]
    fn inference_time_proportional_to_packets() {
        let topo = fat_tree_clusters(4, 4);
        let a = predict(&topo, &flows(&topo, 100, 14_480), Time::from_millis(100));
        let b = predict(&topo, &flows(&topo, 200, 14_480), Time::from_millis(100));
        let startup = INFERENCE_STARTUP_NS / 1e9;
        let ratio = (b.inference_secs - startup) / (a.inference_secs - startup);
        assert!(
            (ratio - 2.0).abs() < 0.01,
            "marginal cost per packet: {ratio}"
        );
        assert_eq!(a.packets, 2 * 100 * 10);
    }

    #[test]
    fn higher_load_predicts_higher_rtt() {
        let topo = fat_tree_clusters(4, 4);
        let light = predict(&topo, &flows(&topo, 10, 100_000), Time::from_millis(100));
        let heavy = predict(&topo, &flows(&topo, 500, 100_000), Time::from_millis(10));
        assert!(heavy.mean_rtt_ms > light.mean_rtt_ms);
        assert!(heavy.mean_throughput_mbps < light.mean_throughput_mbps);
    }

    #[test]
    fn empty_workload() {
        let topo = fat_tree_clusters(2, 4);
        let r = predict(&topo, &[], Time::from_millis(1));
        assert_eq!(r.packets, 0);
    }
}
