//! Shared experiment plumbing.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use unison_core::{
    fine_grained_partition, manual_partition, partition_below_bound, FelImpl, KernelKind,
    LinkGraph, MetricsLevel, NodeId, Partition, PartitionMode, Partitioner, RoundRecord, RunConfig,
    RunReport, SchedConfig, TelemetryConfig, Time,
};
use unison_netsim::{FlowReport, NetworkBuilder, QueueConfig, TransportKind};
use unison_topology::Topology;
use unison_traffic::TrafficConfig;

/// Experiment scale, selected by `--full` or `--scale <name>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale runs (default; shapes hold).
    Quick,
    /// Larger topologies / longer windows (minutes).
    Full,
    /// The ≥ 10⁷-event tier (fat-tree k = 8, shortened window): big enough
    /// that per-event costs dominate setup, small enough for a
    /// timeout-bounded CI job. Used by the `bench_kernels` large rows and
    /// the async-vs-unison perf-smoke tripwire.
    Large,
}

impl Scale {
    /// Parses the process arguments: `--scale quick|full|large`, with
    /// `--full` kept as shorthand for `--scale full` (see [`crate::args`]).
    pub fn from_args() -> Scale {
        crate::args::scale()
    }

    /// The JSON/report label.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
            Scale::Large => "large",
        }
    }

    /// Picks between a quick and a full-size value (the large tier uses
    /// the full-size topology; its window is set separately).
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full | Scale::Large => full,
        }
    }
}

/// Path given with `--bench-json <path>`, if any. When set, the
/// `bench_kernels` baseline binary writes its machine-readable report
/// (wall-clock, events/sec, FEL backend and pool statistics per kernel and
/// thread count) to this file; the committed `BENCH_kernels.json` at the
/// repository root is one such snapshot.
pub fn bench_json_path() -> Option<PathBuf> {
    crate::args::path_of("--bench-json")
}

/// Directory given with `--profile <dir>`, if any. When set, every kernel
/// run the harness makes records telemetry and exports one Chrome-trace
/// JSON file (`<kernel>-<seq>.json`, seq = per-process run counter) into
/// the directory. Open the files in Perfetto (ui.perfetto.dev) or
/// `chrome://tracing`.
pub fn profile_dir() -> Option<PathBuf> {
    crate::args::path_of("--profile")
}

/// Telemetry configuration for harness runs: enabled iff `--profile` was
/// given (the disabled default otherwise, so figures measure undisturbed).
pub fn profile_telemetry() -> TelemetryConfig {
    if profile_dir().is_some() {
        TelemetryConfig::enabled()
    } else {
        TelemetryConfig::default()
    }
}

/// Per-process export counter: successive runs in one figure binary get
/// distinct file names.
static PROFILE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Exports a run's telemetry as Chrome-trace JSON when `--profile` is
/// active (no-op otherwise). Prints the written path to stderr so figure
/// stdout stays parseable.
pub fn export_profile(report: &RunReport) {
    let Some(dir) = profile_dir() else { return };
    let Some(tel) = &report.telemetry else { return };
    let seq = PROFILE_SEQ.fetch_add(1, Ordering::Relaxed);
    let slug: String = report
        .kernel
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let path = dir.join(format!("{slug}-{seq:03}.json"));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("profile: create {} failed: {e}", dir.display());
        return;
    }
    match std::fs::write(&path, unison_telemetry::chrome_trace_json(tel)) {
        Ok(()) => eprintln!("profile: wrote {}", path.display()),
        Err(e) => eprintln!("profile: write {} failed: {e}", path.display()),
    }
}

/// A declarative workload for the profiling helpers.
#[derive(Clone)]
pub struct Scenario {
    /// Topology.
    pub topo: Topology,
    /// Traffic description.
    pub traffic: TrafficConfig,
    /// Transport flavor.
    pub transport: TransportKind,
    /// Queue discipline (`None` = builder default for the transport).
    pub queue: Option<QueueConfig>,
    /// Simulation stop time.
    pub stop: Time,
}

impl Scenario {
    /// A scenario with NewReno and default queues.
    pub fn new(topo: Topology, traffic: TrafficConfig, stop: Time) -> Self {
        Scenario {
            topo,
            traffic,
            transport: TransportKind::NewReno,
            queue: None,
            stop,
        }
    }

    /// Builds the harness workload from a parsed scenario file
    /// (DESIGN.md §4.10): the subset the profiling figures use — topology,
    /// generated traffic, transport kind, queue override and stop time.
    /// Explicit `[[flow]]`/`[[on_off]]` injections and per-field transport
    /// overrides are the full builder's territory
    /// (`NetworkBuilder::from_scenario`); the figures don't use them.
    pub fn from_spec(spec: &unison_scenario::ScenarioSpec) -> Self {
        Scenario {
            topo: spec.build_topology(),
            traffic: spec
                .traffic_config()
                .unwrap_or_else(|| TrafficConfig::random_uniform(0.0)),
            transport: match spec.transport.kind {
                unison_scenario::TransportKindSpec::NewReno => TransportKind::NewReno,
                unison_scenario::TransportKindSpec::Dctcp => TransportKind::Dctcp,
            },
            queue: spec
                .queue
                .as_ref()
                .map(unison_netsim::scenario::queue_config_of),
            stop: spec.run.stop,
        }
    }

    fn builder(&self) -> NetworkBuilder<'_> {
        let mut b = NetworkBuilder::new(&self.topo)
            .transport(self.transport)
            .traffic(&self.traffic)
            .stop_at(self.stop);
        if let Some(q) = self.queue {
            b = b.queue(q);
        }
        b
    }

    /// Runs on the instrumented single-thread engine under `partition`,
    /// returning the per-round profile for the virtual-core model.
    pub fn profile(&self, partition: PartitionMode) -> ProfiledRun {
        let sim = self.builder().build();
        let res = sim
            .run_with(&RunConfig {
                watchdog: Default::default(),
                kernel: KernelKind::Unison { threads: 1 },
                partition: partition.clone(),
                sched: SchedConfig::default(),
                metrics: MetricsLevel::PerRound,
                telemetry: profile_telemetry(),
                fel: Default::default(),
                fault: Default::default(),
            })
            // INVARIANT: bench models are closed and terminating; a crash
            // or stall here invalidates the measurement, so aborting with
            // the structured `SimError` text is the harness's error channel.
            .expect("profiled run");
        export_profile(&res.kernel);
        let (partition, neighbors) = partition_info(&self.topo, &partition);
        ProfiledRun {
            profile: res.kernel.rounds_profile.clone().unwrap_or_default(),
            kernel: res.kernel,
            flows: res.flows,
            partition,
            neighbors,
        }
    }

    /// Runs for real on the given kernel (wall-clock measurement).
    pub fn run_real(&self, kernel: KernelKind, partition: PartitionMode) -> RealRun {
        self.run_real_with_fel(kernel, partition, FelImpl::default())
    }

    /// [`Scenario::run_real`] with an explicit FEL backend — the A/B switch
    /// used by `bench_kernels` and the perf-smoke tripwires.
    pub fn run_real_with_fel(
        &self,
        kernel: KernelKind,
        partition: PartitionMode,
        fel: FelImpl,
    ) -> RealRun {
        self.run_real_opts(kernel, partition, fel, SchedConfig::default())
    }

    /// [`Scenario::run_real_with_fel`] with an explicit scheduling
    /// configuration — the A/B switch for the (partitioner, sched-policy)
    /// bench matrix and the work-stealing perf-smoke tripwire.
    pub fn run_real_opts(
        &self,
        kernel: KernelKind,
        partition: PartitionMode,
        fel: FelImpl,
        sched: SchedConfig,
    ) -> RealRun {
        let sim = self.builder().build();
        let res = sim
            .run_with(&RunConfig {
                watchdog: Default::default(),
                kernel,
                partition,
                sched,
                metrics: MetricsLevel::Summary,
                telemetry: profile_telemetry(),
                fel,
                fault: Default::default(),
            })
            // INVARIANT: bench models are closed and terminating; a crash
            // or stall here invalidates the measurement, so aborting with
            // the structured `SimError` text is the harness's error channel.
            .expect("real run");
        export_profile(&res.kernel);
        RealRun {
            kernel: res.kernel,
            flows: res.flows,
        }
    }
}

/// Profiled execution: cost matrix + statistics + partition metadata.
pub struct ProfiledRun {
    /// Per-round, per-LP cost/event matrix.
    pub profile: Vec<RoundRecord>,
    /// Kernel report of the instrumented run.
    pub kernel: RunReport,
    /// Flow statistics.
    pub flows: FlowReport,
    /// The partition that was used.
    pub partition: Partition,
    /// LP adjacency (for the null-message wavefront model).
    pub neighbors: Vec<Vec<u32>>,
}

/// A real (wall-clock) run.
pub struct RealRun {
    /// Kernel report.
    pub kernel: RunReport,
    /// Flow statistics.
    pub flows: FlowReport,
}

/// Builds the same partition a kernel run would use, plus the LP adjacency
/// list needed by the null-message model.
pub fn partition_info(topo: &Topology, mode: &PartitionMode) -> (Partition, Vec<Vec<u32>>) {
    let mut graph = LinkGraph::new(topo.node_count());
    for l in &topo.links {
        graph.add_link(NodeId(l.a as u32), NodeId(l.b as u32), l.delay);
    }
    let partition = match mode {
        PartitionMode::Auto => fine_grained_partition(&graph),
        PartitionMode::Bound(b) => partition_below_bound(&graph, *b),
        PartitionMode::Manual(a) => manual_partition(&graph, a),
        PartitionMode::SingleLp => unison_core::partition::single_lp_partition(&graph),
        PartitionMode::Pipeline(p) => p.partition(&graph),
    };
    let mut neighbors = vec![Vec::new(); partition.lp_count as usize];
    for (a, b, _) in partition.lp_channels(&graph) {
        neighbors[a.index()].push(b.0);
        neighbors[b.index()].push(a.0);
    }
    (partition, neighbors)
}

/// Convenience alias used by several figures: profile a scenario under both
/// the manual (baseline) and automatic (Unison) partitions.
pub fn profile_run(scenario: &Scenario, manual: Vec<u32>) -> (ProfiledRun, ProfiledRun) {
    let baseline = scenario.profile(PartitionMode::Manual(manual));
    let auto = scenario.profile(PartitionMode::Auto);
    (baseline, auto)
}

/// The paper's §3.2 profiling workload: a k-ary fat-tree (k = 4 quick,
/// k = 8 full and large) with the given link rate/delay and incast ratio,
/// simulated for a few milliseconds. The large tier trades window length
/// for the full topology so one run clears 10⁷ events without taking
/// minutes.
pub fn fat_tree_scenario(
    scale: Scale,
    incast_ratio: f64,
    rate: unison_core::DataRate,
    delay: Time,
) -> Scenario {
    let k = scale.pick(4, 8);
    let window = match scale {
        Scale::Quick => Time::from_millis(2),
        Scale::Full => Time::from_millis(5),
        Scale::Large => Time::from_millis(3),
    };
    let topo = unison_topology::fat_tree(k)
        .with_rate(rate)
        .with_delay(delay);
    let traffic = TrafficConfig::incast(0.3, incast_ratio)
        .with_seed(7)
        .with_window(Time::ZERO, window);
    Scenario::new(topo, traffic, window + Time::from_millis(1))
}

/// The manual pod partition for the current fat-tree scenario.
pub fn fat_tree_manual(scenario: &Scenario) -> Vec<u32> {
    unison_topology::manual::by_cluster(&scenario.topo)
}

/// Formats seconds with 3 significant decimals.
pub fn secs(ns: f64) -> String {
    format!("{:.3}", ns / 1e9)
}

/// Prints an aligned table row.
pub fn row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = *w))
        .collect();
    println!("{}", line.join("  "));
}

/// Prints a header row followed by a rule.
pub fn header(cells: &[&str], widths: &[usize]) {
    row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}
