//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds in fully offline environments, so the real
//! `proptest` crate cannot be fetched from a registry. This crate
//! re-implements the small API subset the workspace's property tests
//! use, with the same source-level surface:
//!
//! - [`Strategy`] with `prop_map`, implemented for integer/float ranges
//!   and 2/3/4-tuples of strategies
//! - [`any`] for primitive types
//! - [`collection::vec`]
//! - the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros
//! - [`ProptestConfig::with_cases`] via `#![proptest_config(..)]`
//!
//! Differences from the real crate: sampling is derived from a fixed
//! per-test seed (fully deterministic, no `PROPTEST_*` env handling) and
//! failing cases are **not shrunk** — the assertion message reports the
//! case index so a failure can be replayed by running the test again.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: a strategy is just a
    /// deterministic function of the RNG state.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u128) - (self.start as u128);
                    let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % width;
                    self.start + r as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let width = (end as u128) - (start as u128) + 1;
                    let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % width;
                    start + r as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let u = rng.next_f64();
            let v = self.start + u * (self.end - self.start);
            // Guard against rounding up to the (exclusive) end point.
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+ ))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Types with a canonical "whole domain" strategy, used by [`crate::any`].
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> u16 {
            rng.next_u64() as u16
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only; property tests on simulators have no use
            // for NaN/inf inputs from `any`.
            rng.next_f64() * 2e12 - 1e12
        }
    }

    /// Strategy returned by [`crate::any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// A strategy covering the whole domain of `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// SplitMix64-based RNG: small state, excellent dispersion, and fully
    /// deterministic for a given `(test name, case index)` pair.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Seed derived from the fully qualified test name and case index
        /// so every test gets an independent, stable stream.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            h ^= case as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
            TestRng::new(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Assert a condition inside a property test. Plain `assert!` semantics:
/// this mini-proptest does not shrink, so the panic carries the original
/// condition text (the per-test RNG stream is deterministic, making every
/// failure replayable by re-running the test).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Define property tests. Supports the standard forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     /// Doc comment.
///     #[test]
///     fn my_prop(x in 0u64..100, v in proptest::collection::vec(any::<u64>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[allow(unused_variables)]
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1_000 {
            let x = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&x));
            let y = (1u64..u64::MAX).sample(&mut rng);
            assert!(y >= 1);
            let f = (-1.5f64..2.5).sample(&mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let sample = |case| {
            let mut rng = TestRng::for_case("det", case);
            crate::collection::vec((0u64..1_000, any::<bool>()), 0..50).sample(&mut rng)
        };
        assert_eq!(sample(3), sample(3));
        assert_ne!(sample(3), sample(4));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// The macro itself compiles and runs with config + metas.
        #[test]
        fn macro_roundtrip(x in 0u32..8, pair in (0u64..10, 0f64..1.0)) {
            prop_assert!(x < 8);
            prop_assert!(pair.1 >= 0.0 && pair.1 < 1.0);
            prop_assert_eq!(pair.0, pair.0);
        }
    }
}
