//! Deterministic worker→core pinning for the round-based kernels.
//!
//! Scheduling placement is the third axis of the per-round overhead work
//! (DESIGN.md §4.9): once the barrier path is cache-padded, the remaining
//! variance comes from the OS migrating workers across cores between
//! rounds, which cold-starts the per-worker working set (claim words,
//! steal deques, the LP slots a worker keeps re-claiming under affinity
//! scheduling). [`PinPolicy::Compact`] pins worker `w` to core
//! `w % cores` — a pure placement hint with **no effect on simulation
//! results**: digests are a function of event keys only, and pinning
//! never reorders event execution (the determinism argument is the same
//! as for thread count: results are identical for any worker placement).
//!
//! Pinning is best-effort: on platforms without an implementation (or
//! when the syscall fails, e.g. under a restricted cpuset) the worker
//! simply runs unpinned. Default is [`PinPolicy::Off`].

/// Worker→core placement policy (`RunConfig::with_pinning`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PinPolicy {
    /// No pinning; the OS places workers freely (the default).
    #[default]
    Off,
    /// Pin worker `w` to core `w % available_cores`: workers of the same
    /// kernel pack onto distinct cores in worker order, so barrier
    /// neighbors (consecutive worker ids share a [`crate::sync::TreeBarrier`]
    /// leaf) land on nearby cores.
    Compact,
}

impl PinPolicy {
    /// The core the policy assigns to `worker` out of `cores`, or `None`
    /// when the policy does not pin.
    pub fn core_for(&self, worker: usize, cores: usize) -> Option<usize> {
        match self {
            PinPolicy::Off => None,
            PinPolicy::Compact => {
                if cores == 0 {
                    None
                } else {
                    Some(worker % cores)
                }
            }
        }
    }

    /// Applies the policy to the calling thread (worker id `worker`).
    /// Returns whether a pin was actually installed — `false` for
    /// [`PinPolicy::Off`], unsupported platforms, or a refused syscall.
    pub fn apply(&self, worker: usize) -> bool {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        match self.core_for(worker, cores) {
            Some(core) => pin_current_thread(core),
            None => false,
        }
    }
}

/// Pins the calling thread to `cpu`. Best-effort: returns `false` when the
/// platform has no implementation or the kernel refuses the mask.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn pin_current_thread(cpu: usize) -> bool {
    // Raw `sched_setaffinity(0, len, mask)` — the workspace deliberately
    // has no libc dependency, and the syscall is stable ABI.
    const SYS_SCHED_SETAFFINITY: usize = 203;
    const BITS: usize = usize::BITS as usize;
    let mut mask = [0usize; 16]; // up to 1024 CPUs
    if cpu >= mask.len() * BITS {
        return false;
    }
    mask[cpu / BITS] = 1usize << (cpu % BITS);
    let ret: isize;
    // SAFETY: `sched_setaffinity` reads `len` bytes from the mask pointer
    // and touches no other memory; the mask array outlives the call, pid 0
    // means the calling thread, and the asm clobbers only the registers the
    // Linux x86_64 syscall ABI documents (rax, rcx, r11).
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_SCHED_SETAFFINITY as isize => ret,
            in("rdi") 0usize,
            in("rsi") core::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, preserves_flags)
        );
    }
    ret == 0
}

/// Pins the calling thread to `cpu`. No-op stub on platforms without an
/// implementation (always returns `false`).
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn pin_current_thread(_cpu: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_never_assigns_a_core() {
        assert_eq!(PinPolicy::Off.core_for(0, 8), None);
        assert_eq!(PinPolicy::Off.core_for(5, 8), None);
        assert!(!PinPolicy::Off.apply(0));
    }

    #[test]
    fn compact_wraps_worker_over_cores() {
        let p = PinPolicy::Compact;
        assert_eq!(p.core_for(0, 4), Some(0));
        assert_eq!(p.core_for(3, 4), Some(3));
        assert_eq!(p.core_for(4, 4), Some(0));
        assert_eq!(p.core_for(9, 4), Some(1));
        assert_eq!(p.core_for(0, 0), None);
    }

    #[test]
    fn apply_compact_is_best_effort() {
        // Must not panic anywhere; on linux/x86_64 pinning to core 0 of
        // the calling thread should generally succeed.
        let _ = PinPolicy::Compact.apply(0);
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn out_of_range_cpu_is_refused() {
        assert!(!pin_current_thread(1 << 20));
    }
}
