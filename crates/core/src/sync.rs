//! Thread synchronization primitives for the phase-driven kernels.
//!
//! The Unison kernel separates the four phases of a round with barriers
//! implemented using atomic operations (§5.1). This sense-reversing barrier
//! spins briefly and then yields, which behaves well both on dedicated cores
//! (short waits stay in user space) and on oversubscribed machines (yielding
//! lets the other workers run).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A reusable sense-reversing barrier over atomics.
pub struct SpinBarrier {
    threads: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SpinBarrier {
    /// Creates a barrier for `threads` participants.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0);
        SpinBarrier {
            threads,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }

    /// Blocks until all participants have called `wait`. Returns `true` for
    /// exactly one participant per generation (the last to arrive).
    pub fn wait(&self) -> bool {
        let local_sense = !self.sense.load(Ordering::Relaxed);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.threads {
            self.count.store(0, Ordering::Relaxed);
            // Release: publishes everything written before the barrier to
            // threads that observe the flipped sense.
            self.sense.store(local_sense, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != local_sense {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_thread_barrier_is_noop() {
        let b = SpinBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    fn orders_phases_across_threads() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for round in 0..ROUNDS {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // Every thread must observe all increments of this
                        // round before anyone proceeds.
                        let seen = counter.load(Ordering::Relaxed);
                        assert!(seen >= ((round + 1) * THREADS) as u64);
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), (THREADS * ROUNDS) as u64);
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        const THREADS: usize = 3;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let leaders = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::Relaxed), 100);
    }
}
