//! Thread synchronization primitives for the phase-driven kernels.
//!
//! The Unison kernel separates the four phases of a round with barriers
//! implemented using atomic operations (§5.1). This sense-reversing barrier
//! spins briefly and then yields, which behaves well both on dedicated cores
//! (short waits stay in user space) and on oversubscribed machines (yielding
//! lets the other workers run).
//!
//! All atomics go through [`crate::sync_shim`], so under
//! `RUSTFLAGS="--cfg loom"` the barrier runs on the in-repo loom model
//! checker's instrumented types; `crates/core/tests/loom_models.rs`
//! exhaustively verifies generation reuse, leader uniqueness and the
//! happens-before edge the barrier promises.

use crate::sync_shim::{spin_loop, yield_now, AtomicBool, AtomicUsize, Ordering};

/// How many failed spins of [`SpinBarrier::wait`] stay in user space
/// (`spin_loop` hints) before each subsequent retry yields the CPU with
/// `std::thread::yield_now`.
///
/// The default favours dedicated cores: phase hand-offs in the Unison
/// kernel are typically shorter than a scheduler quantum, so a short
/// user-space spin wins. On heavily oversubscribed machines construct the
/// barrier with [`SpinBarrier::with_spin_limit`] and a lower value (0 =
/// always yield).
pub const SPIN_YIELD_THRESHOLD: u32 = 64;

/// A reusable sense-reversing barrier over atomics.
///
/// # Memory ordering
///
/// `wait` is a full synchronization point: every write sequenced before a
/// participant's `wait` happens-before every read sequenced after *any*
/// participant's matching `wait` returns. The edge is established by the
/// arrival `fetch_add(AcqRel)` chain into the leader plus the leader's
/// `Release` sense flip, which each waiter observes with an `Acquire` load.
///
/// ## Why the `Relaxed` count reset is sound
///
/// The leader resets `count` with `store(0, Relaxed)` *before* flipping the
/// sense with `Release`. A waiter of the **same** generation never touches
/// `count` again, so only a *re-arriving* participant of the next
/// generation could observe the reset out of order — but to re-arrive it
/// must first have observed the flipped sense with `Acquire`, and the reset
/// is sequenced before the `Release` flip on the leader. The
/// Acquire/Release pair therefore orders `reset → flip → observe flip →
/// next fetch_add`, making a stale (pre-reset) `count` unobservable.
/// `Relaxed` is sufficient; the loom model `barrier_generation_reuse`
/// machine-checks this argument (a `debug_assert` in `wait` would trip if a
/// stale count ever doubled-up arrivals).
/// ## Poisoning
///
/// [`SpinBarrier::poison`] marks the barrier permanently broken. Every
/// participant currently spinning in `wait` — and every later caller —
/// returns immediately (with `false`) instead of waiting for stragglers.
/// This is the drain path used by the kernels' panic containment and the
/// round-progress watchdog: when one worker dies, the survivors must fall
/// out of the round loop instead of spinning on a generation that can never
/// complete. A poisoned barrier never recovers; callers are expected to
/// check [`SpinBarrier::is_poisoned`] after each `wait` and stop
/// participating. Because a participant calls `wait` at most once more
/// after observing poison, the per-generation arrival count stays bounded
/// by `threads` and the stale-count `debug_assert` still holds.
pub struct SpinBarrier {
    threads: usize,
    count: AtomicUsize,
    sense: AtomicBool,
    poisoned: AtomicBool,
    spin_limit: u32,
}

impl SpinBarrier {
    /// Creates a barrier for `threads` participants with the default
    /// [`SPIN_YIELD_THRESHOLD`].
    pub fn new(threads: usize) -> Self {
        Self::with_spin_limit(threads, SPIN_YIELD_THRESHOLD)
    }

    /// Creates a barrier that starts yielding after `spin_limit` failed
    /// spins (0 = yield immediately on every failed check).
    pub fn with_spin_limit(threads: usize, spin_limit: u32) -> Self {
        assert!(threads > 0);
        SpinBarrier {
            threads,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            spin_limit,
        }
    }

    /// Marks the barrier permanently broken, releasing every current and
    /// future waiter (their `wait` returns `false`). Idempotent.
    pub fn poison(&self) {
        // Release: a waiter that observes the poison with Acquire also
        // observes everything the poisoner wrote before it (e.g. the
        // failure diagnostics recorded by a panicking worker).
        self.poisoned.store(true, Ordering::Release);
    }

    /// Whether [`SpinBarrier::poison`] has been called.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// [`SpinBarrier::wait`] with the blocked wall-clock time added to
    /// `s_ns` — the P/S/M `S` accumulator and the telemetry `barrier-wait`
    /// spans both feed off this one measurement. The clock reads are pure
    /// observation: they never feed back into simulation state.
    pub fn wait_timed(&self, s_ns: &mut u64) -> bool {
        // TELEMETRY: wall-clock measurement of synchronization waits.
        let t0 = std::time::Instant::now();
        let led = self.wait();
        // TELEMETRY: wall-clock measurement of synchronization waits.
        *s_ns += t0.elapsed().as_nanos() as u64;
        led
    }

    /// Blocks until all participants have called `wait`. Returns `true` for
    /// exactly one participant per generation (the last to arrive), or
    /// `false` immediately when the barrier is (or becomes) poisoned.
    pub fn wait(&self) -> bool {
        // Checked before the arrival fetch_add so a drained participant
        // never contributes a stale count to a generation that will not
        // complete.
        if self.is_poisoned() {
            return false;
        }
        let local_sense = !self.sense.load(Ordering::Relaxed);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        // A stale (unreset) count from a previous generation would surface
        // here; see the ordering proof on the type.
        debug_assert!(
            arrived <= self.threads,
            "more arrivals than participants: stale barrier count"
        );
        if arrived == self.threads {
            // Relaxed is enough: ordered before the Release flip below, and
            // next-generation arrivals are ordered after their Acquire
            // observation of that flip (see type-level docs).
            self.count.store(0, Ordering::Relaxed);
            // Release: publishes everything written before the barrier to
            // threads that observe the flipped sense.
            self.sense.store(local_sense, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != local_sense {
                if self.is_poisoned() {
                    return false;
                }
                if spins < self.spin_limit {
                    spins += 1;
                    spin_loop();
                } else {
                    yield_now();
                }
            }
            false
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_thread_barrier_is_noop() {
        let b = SpinBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    fn orders_phases_across_threads() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for round in 0..ROUNDS {
                        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        barrier.wait();
                        // Every thread must observe all increments of this
                        // round before anyone proceeds.
                        let seen = counter.load(std::sync::atomic::Ordering::Relaxed);
                        assert!(seen >= ((round + 1) * THREADS) as u64);
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            counter.load(std::sync::atomic::Ordering::Relaxed),
            (THREADS * ROUNDS) as u64
        );
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        const THREADS: usize = 3;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let leaders = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        if barrier.wait() {
                            leaders.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(std::sync::atomic::Ordering::Relaxed), 100);
    }

    #[test]
    fn wait_timed_accumulates_and_preserves_leadership() {
        let b = SpinBarrier::new(1);
        let mut s = 0u64;
        // Single participant: every wait leads instantly; the accumulator
        // only ever grows.
        assert!(b.wait_timed(&mut s));
        let after_first = s;
        assert!(b.wait_timed(&mut s));
        assert!(s >= after_first);
    }

    #[test]
    fn poison_releases_current_and_future_waiters() {
        let barrier = Arc::new(SpinBarrier::new(2));
        let waiter = {
            let barrier = Arc::clone(&barrier);
            // Only 1 of 2 participants ever arrives: without poison this
            // thread would spin forever.
            std::thread::spawn(move || barrier.wait())
        };
        // Give the waiter a chance to enter the spin loop, then poison.
        std::thread::yield_now();
        barrier.poison();
        assert!(!waiter.join().unwrap(), "poisoned wait must not lead");
        assert!(barrier.is_poisoned());
        // Later arrivals drain immediately as well.
        assert!(!barrier.wait());
        assert!(!barrier.wait());
    }

    #[test]
    fn poison_is_idempotent_and_sticky() {
        let b = SpinBarrier::new(3);
        b.poison();
        b.poison();
        assert!(b.is_poisoned());
        assert!(!b.wait());
    }

    #[test]
    fn zero_spin_limit_always_yields_and_still_works() {
        const THREADS: usize = 2;
        let barrier = Arc::new(SpinBarrier::with_spin_limit(THREADS, 0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut leads = 0u32;
                    for _ in 0..50 {
                        if barrier.wait() {
                            leads += 1;
                        }
                    }
                    leads
                })
            })
            .collect();
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 50);
    }
}
