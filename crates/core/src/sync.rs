//! Thread synchronization primitives for the phase-driven kernels.
//!
//! The Unison kernel separates the four phases of a round with barriers
//! implemented using atomic operations (§5.1). This sense-reversing barrier
//! spins briefly and then yields, which behaves well both on dedicated cores
//! (short waits stay in user space) and on oversubscribed machines (yielding
//! lets the other workers run).
//!
//! All atomics go through [`crate::sync_shim`], so under
//! `RUSTFLAGS="--cfg loom"` the barrier runs on the in-repo loom model
//! checker's instrumented types; `crates/core/tests/loom_models.rs`
//! exhaustively verifies generation reuse, leader uniqueness and the
//! happens-before edge the barrier promises.

use crate::sync_shim::{
    spin_loop, yield_now, AtomicBool, AtomicU64, AtomicUsize, CachePadded, Ordering,
};

/// How many failed spins of [`SpinBarrier::wait`] stay in user space
/// (`spin_loop` hints) before each subsequent retry yields the CPU with
/// `std::thread::yield_now`.
///
/// The default favours dedicated cores: phase hand-offs in the Unison
/// kernel are typically shorter than a scheduler quantum, so a short
/// user-space spin wins. On heavily oversubscribed machines construct the
/// barrier with [`SpinBarrier::with_spin_limit`] and a lower value (0 =
/// always yield).
pub const SPIN_YIELD_THRESHOLD: u32 = 64;

/// A reusable sense-reversing barrier over atomics.
///
/// # Memory ordering
///
/// `wait` is a full synchronization point: every write sequenced before a
/// participant's `wait` happens-before every read sequenced after *any*
/// participant's matching `wait` returns. The edge is established by the
/// arrival `fetch_add(AcqRel)` chain into the leader plus the leader's
/// `Release` sense flip, which each waiter observes with an `Acquire` load.
///
/// ## Why the `Relaxed` count reset is sound
///
/// The leader resets `count` with `store(0, Relaxed)` *before* flipping the
/// sense with `Release`. A waiter of the **same** generation never touches
/// `count` again, so only a *re-arriving* participant of the next
/// generation could observe the reset out of order — but to re-arrive it
/// must first have observed the flipped sense with `Acquire`, and the reset
/// is sequenced before the `Release` flip on the leader. The
/// Acquire/Release pair therefore orders `reset → flip → observe flip →
/// next fetch_add`, making a stale (pre-reset) `count` unobservable.
/// `Relaxed` is sufficient; the loom model `barrier_generation_reuse`
/// machine-checks this argument (a `debug_assert` in `wait` would trip if a
/// stale count ever doubled-up arrivals).
/// ## Poisoning
///
/// [`SpinBarrier::poison`] marks the barrier permanently broken. Every
/// participant currently spinning in `wait` — and every later caller —
/// returns immediately (with `false`) instead of waiting for stragglers.
/// This is the drain path used by the kernels' panic containment and the
/// round-progress watchdog: when one worker dies, the survivors must fall
/// out of the round loop instead of spinning on a generation that can never
/// complete. A poisoned barrier never recovers; callers are expected to
/// check [`SpinBarrier::is_poisoned`] after each `wait` and stop
/// participating. Because a participant calls `wait` at most once more
/// after observing poison, the per-generation arrival count stays bounded
/// by `threads` and the stale-count `debug_assert` still holds.
pub struct SpinBarrier {
    threads: usize,
    // PADDING: the flat barrier is all-to-all by design — every waiter
    // spins on these same words, so there is no neighbour to false-share
    // with. The padded, scalable alternative is [`TreeBarrier`].
    count: AtomicUsize,
    sense: AtomicBool,    // PADDING: deliberately shared line; see `count`.
    poisoned: AtomicBool, // PADDING: deliberately shared line; see `count`.
    spin_limit: u32,
}

impl SpinBarrier {
    /// Creates a barrier for `threads` participants with the default
    /// [`SPIN_YIELD_THRESHOLD`].
    pub fn new(threads: usize) -> Self {
        Self::with_spin_limit(threads, SPIN_YIELD_THRESHOLD)
    }

    /// Creates a barrier that starts yielding after `spin_limit` failed
    /// spins (0 = yield immediately on every failed check).
    pub fn with_spin_limit(threads: usize, spin_limit: u32) -> Self {
        assert!(threads > 0);
        SpinBarrier {
            threads,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            spin_limit,
        }
    }

    /// Marks the barrier permanently broken, releasing every current and
    /// future waiter (their `wait` returns `false`). Idempotent.
    pub fn poison(&self) {
        // Release: a waiter that observes the poison with Acquire also
        // observes everything the poisoner wrote before it (e.g. the
        // failure diagnostics recorded by a panicking worker).
        self.poisoned.store(true, Ordering::Release);
    }

    /// Whether [`SpinBarrier::poison`] has been called.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// [`SpinBarrier::wait`] with the blocked wall-clock time added to
    /// `s_ns` — the P/S/M `S` accumulator and the telemetry `barrier-wait`
    /// spans both feed off this one measurement. The clock reads are pure
    /// observation: they never feed back into simulation state.
    pub fn wait_timed(&self, s_ns: &mut u64) -> bool {
        // TELEMETRY: wall-clock measurement of synchronization waits.
        let t0 = std::time::Instant::now();
        let led = self.wait();
        // TELEMETRY: wall-clock measurement of synchronization waits.
        *s_ns += t0.elapsed().as_nanos() as u64;
        led
    }

    /// Blocks until all participants have called `wait`. Returns `true` for
    /// exactly one participant per generation (the last to arrive), or
    /// `false` immediately when the barrier is (or becomes) poisoned.
    pub fn wait(&self) -> bool {
        // Checked before the arrival fetch_add so a drained participant
        // never contributes a stale count to a generation that will not
        // complete.
        if self.is_poisoned() {
            return false;
        }
        let local_sense = !self.sense.load(Ordering::Relaxed);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        // A stale (unreset) count from a previous generation would surface
        // here; see the ordering proof on the type.
        debug_assert!(
            arrived <= self.threads,
            "more arrivals than participants: stale barrier count"
        );
        if arrived == self.threads {
            // Relaxed is enough: ordered before the Release flip below, and
            // next-generation arrivals are ordered after their Acquire
            // observation of that flip (see type-level docs).
            self.count.store(0, Ordering::Relaxed);
            // Release: publishes everything written before the barrier to
            // threads that observe the flipped sense.
            self.sense.store(local_sense, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != local_sense {
                if self.is_poisoned() {
                    return false;
                }
                if spins < self.spin_limit {
                    spins += 1;
                    spin_loop();
                } else {
                    yield_now();
                }
            }
            false
        }
    }
}

/// Fan-in of the [`TreeBarrier`] arrival tree: each node combines at most
/// this many children (participants at a leaf, winners at inner nodes).
///
/// Four keeps the tree flat for the worker counts the Unison kernel
/// actually runs (≤ 4 workers collapse to a single root node; 16 workers
/// need two levels) while still splitting the arrival cache line once the
/// flat counter would become a global hot word.
pub const TREE_FAN_IN: usize = 4;

/// One combining node of the arrival tree. Each node owns its own cache
/// line (the whole node is stored `CachePadded`), so arrivals at different
/// leaves never contend on a shared word — the flat [`SpinBarrier`]'s
/// `count` is exactly such a global hot word.
struct TreeNode {
    /// Arrivals of the current generation (participants at a leaf, child
    /// winners at an inner node). Reset to 0 by the node's winner *before*
    /// it climbs; see the ordering proof on [`TreeBarrier`].
    arrivals: AtomicUsize, // PADDING: the whole node is `CachePadded` in `nodes`.
    /// Release wave: the root winner stores the completed generation into
    /// every node (root first, leaves last) with `Release`; waiters spin
    /// with `Acquire` until their node's value reaches their generation.
    release_gen: AtomicU64, // PADDING: the whole node is `CachePadded` in `nodes`.
    /// How many arrivals complete this node.
    expected: usize,
    /// Parent node index; `usize::MAX` at the root.
    parent: usize,
}

/// A hierarchical sense-free tree barrier: cache-padded arrival nodes with
/// fan-in [`TREE_FAN_IN`], release broadcast down from the root.
///
/// Drop-in replacement for [`SpinBarrier`] in the round-based kernels,
/// with the same poison semantics and `wait_timed` telemetry hook. The
/// only API difference: each participant holds a [`TreeWaiter`] handle
/// (its leaf assignment plus a local generation counter), obtained once
/// from [`TreeBarrier::waiter`].
///
/// # Memory ordering
///
/// Arrivals `fetch_add(AcqRel)` chain up the tree: a node's winner (the
/// arrival that completes it) climbs and arrives at the parent, so the
/// root's final arrival happens-after every participant's leaf arrival.
/// The root winner then walks the nodes top-down storing the completed
/// generation into `release_gen` with `Release`; a waiter's `Acquire`
/// spin on its own node therefore observes everything every participant
/// wrote before the barrier.
///
/// ## Why a generation counter instead of a sense bit
///
/// Unlike the flat barrier, releases overlap the next generation's
/// arrivals: a participant released at its leaf can win the leaf's next
/// generation and climb to an inner node *before* the root winner's
/// release wave has reached that inner node. A boolean sense read from
/// the node would then be one generation stale — and generation `g-1`'s
/// sense equals generation `g+1`'s, so the early climber would sail
/// through a wait it must block on. A monotone `u64` generation is immune:
/// the climber waits for `release_gen >= g+1`, and a stale `g-1` (or the
/// in-flight `g`) value keeps it spinning.
///
/// ## Why the `Relaxed` arrival reset is sound
///
/// A node's winner resets `arrivals` with `store(0, Relaxed)` *before*
/// its `fetch_add` on the parent. The next generation's first arrival at
/// that node is sequenced after that participant's `Acquire` observation
/// of some node's `release_gen`, which reads the root winner's `Release`
/// store, which happens-after the winner's parent `fetch_add` via the
/// `AcqRel` arrival chain — so the reset is visible before any
/// re-arrival, and a stale count can never double-count (the same
/// `debug_assert` as the flat barrier guards this). The loom model
/// `tree_barrier_release_publication` machine-checks both arguments.
///
/// ## Poisoning
///
/// Identical contract to [`SpinBarrier::poison`]: every current and
/// future waiter drains immediately (returning `false`), the barrier
/// never recovers, and the Release-poison / Acquire-observe pair
/// publishes the poisoner's diagnostics. The tree-path extension of the
/// `barrier_poison_releases_waiters` loom model covers waiters parked at
/// both leaf and inner nodes.
pub struct TreeBarrier {
    threads: usize,
    /// Combining fan-in ([`TREE_FAN_IN`] in production; loom models shrink
    /// it to force multi-level trees with few threads).
    fan_in: usize,
    /// All tree nodes, leaves first (node 0..leaves), then each level up,
    /// root last. Each node on its own cache line.
    nodes: Vec<CachePadded<TreeNode>>,
    poisoned: CachePadded<AtomicBool>,
    spin_limit: u32,
}

/// A participant's handle on a [`TreeBarrier`]: its leaf node and its
/// local generation counter. One per participant; not shareable.
pub struct TreeWaiter {
    leaf: usize,
    gen: u64,
}

impl TreeBarrier {
    /// Creates a tree barrier for `threads` participants with the default
    /// [`SPIN_YIELD_THRESHOLD`].
    pub fn new(threads: usize) -> Self {
        Self::with_spin_limit(threads, SPIN_YIELD_THRESHOLD)
    }

    /// Creates a tree barrier that starts yielding after `spin_limit`
    /// failed spins (0 = yield immediately on every failed check).
    pub fn with_spin_limit(threads: usize, spin_limit: u32) -> Self {
        Self::with_shape(threads, TREE_FAN_IN, spin_limit)
    }

    /// Creates a tree barrier with an explicit fan-in. Only tests and loom
    /// models should need this: a small fan-in forces a multi-level tree
    /// with few participants, which is what the model checker has to
    /// explore (production code always uses [`TREE_FAN_IN`]).
    #[doc(hidden)]
    pub fn with_shape(threads: usize, fan_in: usize, spin_limit: u32) -> Self {
        assert!(threads > 0);
        assert!(fan_in > 1);
        let mut nodes: Vec<CachePadded<TreeNode>> = Vec::new();
        if threads > 1 {
            // Build level by level: `width` participants arrive at
            // `ceil(width / fan_in)` nodes; their winners form the next
            // level, until a single root remains.
            let mut level_start = 0;
            let mut width = threads;
            loop {
                let level_nodes = width.div_ceil(fan_in);
                for i in 0..level_nodes {
                    let expected = fan_in.min(width - i * fan_in);
                    nodes.push(CachePadded::new(TreeNode {
                        arrivals: AtomicUsize::new(0),
                        release_gen: AtomicU64::new(0),
                        expected,
                        parent: usize::MAX, // patched below
                    }));
                }
                // Patch this level's parents once the next level exists.
                if level_nodes == 1 {
                    break;
                }
                let next_start = level_start + level_nodes;
                for i in 0..level_nodes {
                    nodes[level_start + i].parent = next_start + i / fan_in;
                }
                level_start = next_start;
                width = level_nodes;
            }
        }
        TreeBarrier {
            threads,
            fan_in,
            nodes,
            poisoned: CachePadded::new(AtomicBool::new(false)),
            spin_limit,
        }
    }

    /// The handle for participant `id` (0-based, `< threads`). Each
    /// participant must use its own handle for every `wait`.
    pub fn waiter(&self, id: usize) -> TreeWaiter {
        assert!(id < self.threads);
        TreeWaiter {
            leaf: id / self.fan_in,
            gen: 0,
        }
    }

    /// Marks the barrier permanently broken, releasing every current and
    /// future waiter (their `wait` returns `false`). Idempotent.
    pub fn poison(&self) {
        // Release: a waiter that observes the poison with Acquire also
        // observes everything the poisoner wrote before it (failure
        // diagnostics — same contract as `SpinBarrier::poison`).
        self.poisoned.store(true, Ordering::Release);
    }

    /// Whether [`TreeBarrier::poison`] has been called.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// [`TreeBarrier::wait`] with the blocked wall-clock time added to
    /// `s_ns` (the P/S/M `S` accumulator and `barrier-wait` telemetry
    /// spans feed off this one measurement).
    pub fn wait_timed(&self, waiter: &mut TreeWaiter, s_ns: &mut u64) -> bool {
        // TELEMETRY: wall-clock measurement of synchronization waits.
        let t0 = std::time::Instant::now();
        let led = self.wait(waiter);
        // TELEMETRY: wall-clock measurement of synchronization waits.
        *s_ns += t0.elapsed().as_nanos() as u64;
        led
    }

    /// Blocks until all participants have called `wait`. Returns `true`
    /// for exactly one participant per generation (the root winner), or
    /// `false` immediately when the barrier is (or becomes) poisoned.
    pub fn wait(&self, waiter: &mut TreeWaiter) -> bool {
        if self.is_poisoned() {
            return false;
        }
        let gen = waiter.gen + 1;
        if self.threads == 1 {
            waiter.gen = gen;
            return true;
        }
        let mut at = waiter.leaf;
        loop {
            let node = &self.nodes[at];
            let arrived = node.arrivals.fetch_add(1, Ordering::AcqRel) + 1;
            // A stale (unreset) count from a previous generation would
            // surface here; see the ordering proof on the type.
            debug_assert!(
                arrived <= node.expected,
                "more arrivals than expected at tree node: stale arrival count"
            );
            if arrived < node.expected {
                // Not this node's winner: park here until the release wave
                // publishes our generation (or the barrier is poisoned).
                let mut spins = 0u32;
                while node.release_gen.load(Ordering::Acquire) < gen {
                    if self.is_poisoned() {
                        return false;
                    }
                    if spins < self.spin_limit {
                        spins += 1;
                        spin_loop();
                    } else {
                        yield_now();
                    }
                }
                waiter.gen = gen;
                return false;
            }
            // Winner: reset for the next generation *before* climbing (the
            // `AcqRel` chain up plus the release wave orders this reset
            // before any re-arrival; see the type-level proof).
            node.arrivals.store(0, Ordering::Relaxed);
            if node.parent == usize::MAX {
                // Root winner: broadcast the release wave down (root
                // first, leaves last — any order is correct, waiters only
                // watch their own node).
                waiter.gen = gen;
                for n in self.nodes.iter().rev() {
                    n.release_gen.store(gen, Ordering::Release);
                }
                return true;
            }
            at = node.parent;
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_thread_barrier_is_noop() {
        let b = SpinBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    fn orders_phases_across_threads() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for round in 0..ROUNDS {
                        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        barrier.wait();
                        // Every thread must observe all increments of this
                        // round before anyone proceeds.
                        let seen = counter.load(std::sync::atomic::Ordering::Relaxed);
                        assert!(seen >= ((round + 1) * THREADS) as u64);
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            counter.load(std::sync::atomic::Ordering::Relaxed),
            (THREADS * ROUNDS) as u64
        );
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        const THREADS: usize = 3;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let leaders = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        if barrier.wait() {
                            leaders.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(std::sync::atomic::Ordering::Relaxed), 100);
    }

    #[test]
    fn wait_timed_accumulates_and_preserves_leadership() {
        let b = SpinBarrier::new(1);
        let mut s = 0u64;
        // Single participant: every wait leads instantly; the accumulator
        // only ever grows.
        assert!(b.wait_timed(&mut s));
        let after_first = s;
        assert!(b.wait_timed(&mut s));
        assert!(s >= after_first);
    }

    #[test]
    fn poison_releases_current_and_future_waiters() {
        let barrier = Arc::new(SpinBarrier::new(2));
        let waiter = {
            let barrier = Arc::clone(&barrier);
            // Only 1 of 2 participants ever arrives: without poison this
            // thread would spin forever.
            std::thread::spawn(move || barrier.wait())
        };
        // Give the waiter a chance to enter the spin loop, then poison.
        std::thread::yield_now();
        barrier.poison();
        assert!(!waiter.join().unwrap(), "poisoned wait must not lead");
        assert!(barrier.is_poisoned());
        // Later arrivals drain immediately as well.
        assert!(!barrier.wait());
        assert!(!barrier.wait());
    }

    #[test]
    fn poison_is_idempotent_and_sticky() {
        let b = SpinBarrier::new(3);
        b.poison();
        b.poison();
        assert!(b.is_poisoned());
        assert!(!b.wait());
    }

    #[test]
    fn tree_single_thread_barrier_is_noop() {
        let b = TreeBarrier::new(1);
        let mut w = b.waiter(0);
        assert!(b.wait(&mut w));
        assert!(b.wait(&mut w));
    }

    #[test]
    fn tree_shape_matches_fan_in() {
        // <= FAN_IN participants collapse to a single root node.
        let b = TreeBarrier::new(4);
        assert_eq!(b.nodes.len(), 1);
        assert_eq!(b.nodes[0].expected, 4);
        // 5 participants: two leaves (4 + 1) plus a root combining both.
        let b = TreeBarrier::new(5);
        assert_eq!(b.nodes.len(), 3);
        assert_eq!(b.nodes[0].expected, 4);
        assert_eq!(b.nodes[1].expected, 1);
        assert_eq!(b.nodes[2].expected, 2);
        assert_eq!(b.nodes[0].parent, 2);
        assert_eq!(b.nodes[1].parent, 2);
        assert_eq!(b.nodes[2].parent, usize::MAX);
        // 17 participants: 5 leaves -> 2 inner -> root.
        let b = TreeBarrier::new(17);
        assert_eq!(b.nodes.len(), 8);
    }

    #[test]
    fn tree_orders_phases_across_threads() {
        // 6 participants forces a two-level tree (2 leaves + root).
        const THREADS: usize = 6;
        const ROUNDS: usize = 200;
        let barrier = Arc::new(TreeBarrier::new(THREADS));
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|w| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let mut waiter = barrier.waiter(w);
                    for round in 0..ROUNDS {
                        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        barrier.wait(&mut waiter);
                        // Every thread must observe all increments of this
                        // round before anyone proceeds.
                        let seen = counter.load(std::sync::atomic::Ordering::Relaxed);
                        assert!(seen >= ((round + 1) * THREADS) as u64);
                        barrier.wait(&mut waiter);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            counter.load(std::sync::atomic::Ordering::Relaxed),
            (THREADS * ROUNDS) as u64
        );
    }

    #[test]
    fn tree_exactly_one_leader_per_generation() {
        const THREADS: usize = 5;
        let barrier = Arc::new(TreeBarrier::new(THREADS));
        let leaders = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|w| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    let mut waiter = barrier.waiter(w);
                    for _ in 0..100 {
                        if barrier.wait(&mut waiter) {
                            leaders.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(std::sync::atomic::Ordering::Relaxed), 100);
    }

    #[test]
    fn tree_poison_releases_current_and_future_waiters() {
        let barrier = Arc::new(TreeBarrier::new(2));
        let waiter = {
            let barrier = Arc::clone(&barrier);
            // Only 1 of 2 participants ever arrives: without poison this
            // thread would spin forever at its leaf.
            std::thread::spawn(move || {
                let mut w = barrier.waiter(0);
                barrier.wait(&mut w)
            })
        };
        std::thread::yield_now();
        barrier.poison();
        assert!(!waiter.join().unwrap(), "poisoned wait must not lead");
        assert!(barrier.is_poisoned());
        let mut w1 = barrier.waiter(1);
        assert!(!barrier.wait(&mut w1));
        assert!(!barrier.wait(&mut w1));
    }

    #[test]
    fn tree_wait_timed_accumulates_and_preserves_leadership() {
        let b = TreeBarrier::new(1);
        let mut w = b.waiter(0);
        let mut s = 0u64;
        assert!(b.wait_timed(&mut w, &mut s));
        let after_first = s;
        assert!(b.wait_timed(&mut w, &mut s));
        assert!(s >= after_first);
    }

    #[test]
    fn zero_spin_limit_always_yields_and_still_works() {
        const THREADS: usize = 2;
        let barrier = Arc::new(SpinBarrier::with_spin_limit(THREADS, 0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut leads = 0u32;
                    for _ in 0..50 {
                        if barrier.wait() {
                            leads += 1;
                        }
                    }
                    leads
                })
            })
            .collect();
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 50);
    }
}
