//! Run metrics: the P/S/M decomposition and per-round load profiles.
//!
//! Following §3.2 of the paper, the running time of an LP (or thread) is
//! decomposed into *processing* time `P` (executing events), *synchronization*
//! time `S` (waiting for other LPs/threads at window boundaries), and
//! *messaging* time `M` (receiving cross-LP events). Kernels record these
//! per thread; with [`MetricsLevel::PerRound`] they additionally record each
//! LP's processing cost per round, the input to the virtual-core performance
//! model (`perfmodel`).

use std::time::Duration;

use crate::time::Time;

/// How much instrumentation a run records.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MetricsLevel {
    /// No per-round data; only totals.
    #[default]
    Summary,
    /// Totals plus a per-round, per-LP cost/event profile (needed by the
    /// virtual-core replay and Figs. 5b, 9b, 13).
    PerRound,
}

/// P/S/M accumulators for one thread (or one LP in LP-pinned kernels).
#[derive(Clone, Copy, Debug, Default)]
pub struct Psm {
    /// Nanoseconds spent processing events (phases 1–2).
    pub p_ns: u64,
    /// Nanoseconds spent waiting at synchronization points.
    pub s_ns: u64,
    /// Nanoseconds spent receiving events / updating the window (phases 3–4).
    pub m_ns: u64,
}

impl Psm {
    /// Total accounted time.
    pub fn total_ns(&self) -> u64 {
        self.p_ns + self.s_ns + self.m_ns
    }

    /// Fraction of total time spent synchronizing (0 when idle).
    pub fn s_ratio(&self) -> f64 {
        let t = self.total_ns();
        if t == 0 {
            0.0
        } else {
            self.s_ns as f64 / t as f64
        }
    }
}

/// One round's load profile across LPs.
#[derive(Clone, Debug)]
pub struct RoundRecord {
    /// Window start (virtual time).
    pub window_start: Time,
    /// Window end (the LBTS of this round).
    pub window_end: Time,
    /// Measured (or modeled) processing cost per LP, nanoseconds.
    pub lp_cost_ns: Vec<f32>,
    /// Events processed per LP.
    pub lp_events: Vec<u32>,
    /// Events received from mailboxes per LP.
    pub lp_recv: Vec<u32>,
}

impl RoundRecord {
    /// Sum of per-LP costs (the sequential cost of this round).
    pub fn total_cost_ns(&self) -> f64 {
        self.lp_cost_ns.iter().map(|&c| c as f64).sum()
    }

    /// Maximum per-LP cost (the barrier-kernel critical path).
    pub fn max_cost_ns(&self) -> f64 {
        self.lp_cost_ns.iter().fold(0.0f64, |m, &c| m.max(c as f64))
    }
}

/// Per-LP totals over a run.
#[derive(Clone, Debug, Default)]
pub struct LpTotals {
    /// Events processed per LP.
    pub events: Vec<u64>,
    /// Cumulative processing cost per LP, nanoseconds.
    pub cost_ns: Vec<u64>,
    /// Locality proxy: consecutive-event node switches per LP.
    pub node_switches: Vec<u64>,
}

/// The result of one kernel run.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Kernel that produced the run (for display).
    pub kernel: String,
    /// Real wall-clock duration of the run.
    pub wall: Duration,
    /// Total events executed (node events; global events counted separately).
    pub events: u64,
    /// Global events executed.
    pub global_events: u64,
    /// Synchronization rounds executed (1 for the sequential kernel).
    pub rounds: u64,
    /// Number of LPs.
    pub lp_count: u32,
    /// Number of worker threads used.
    pub threads: u32,
    /// Partition lookahead.
    pub lookahead: Time,
    /// Virtual time reached when the run ended.
    pub end_time: Time,
    /// P/S/M per thread (index = thread id) — or per LP for LP-pinned
    /// kernels (barrier, null message), matching the paper's methodology.
    pub psm: Vec<Psm>,
    /// Per-LP totals.
    pub lp_totals: LpTotals,
    /// Per-round profile, when requested.
    pub rounds_profile: Option<Vec<RoundRecord>>,
}

impl RunReport {
    /// Events per wall-clock second (the headline throughput number).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.events as f64 / secs
        }
    }

    /// Aggregate P/S/M over all threads.
    pub fn psm_total(&self) -> Psm {
        let mut total = Psm::default();
        for p in &self.psm {
            total.p_ns += p.p_ns;
            total.s_ns += p.s_ns;
            total.m_ns += p.m_ns;
        }
        total
    }

    /// Total node switches (locality proxy) over all LPs.
    pub fn node_switches(&self) -> u64 {
        self.lp_totals.node_switches.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psm_ratios() {
        let psm = Psm {
            p_ns: 70,
            s_ns: 20,
            m_ns: 10,
        };
        assert_eq!(psm.total_ns(), 100);
        assert!((psm.s_ratio() - 0.2).abs() < 1e-12);
        assert_eq!(Psm::default().s_ratio(), 0.0);
    }

    #[test]
    fn round_record_aggregates() {
        let r = RoundRecord {
            window_start: Time(0),
            window_end: Time(10),
            lp_cost_ns: vec![1.0, 5.0, 2.0],
            lp_events: vec![1, 5, 2],
            lp_recv: vec![0, 0, 0],
        };
        assert_eq!(r.total_cost_ns(), 8.0);
        assert_eq!(r.max_cost_ns(), 5.0);
    }

    #[test]
    fn report_totals() {
        let mut rep = RunReport::default();
        rep.psm.push(Psm {
            p_ns: 5,
            s_ns: 1,
            m_ns: 0,
        });
        rep.psm.push(Psm {
            p_ns: 3,
            s_ns: 2,
            m_ns: 1,
        });
        let total = rep.psm_total();
        assert_eq!(total.p_ns, 8);
        assert_eq!(total.s_ns, 3);
        assert_eq!(total.m_ns, 1);
    }
}
