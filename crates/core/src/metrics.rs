//! Run metrics: the P/S/M decomposition and per-round load profiles.
//!
//! Following §3.2 of the paper, the running time of an LP (or thread) is
//! decomposed into *processing* time `P` (executing events), *synchronization*
//! time `S` (waiting for other LPs/threads at window boundaries), and
//! *messaging* time `M` (receiving cross-LP events). Kernels record these
//! per thread; with [`MetricsLevel::PerRound`] they additionally record each
//! LP's processing cost per round, the input to the virtual-core performance
//! model (`perfmodel`).

use std::time::Duration;

use crate::fel::FelImpl;
use crate::telemetry::RunTelemetry;
use crate::time::Time;

/// How much instrumentation a run records.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MetricsLevel {
    /// No per-round data; only totals.
    #[default]
    Summary,
    /// Totals plus a per-round, per-LP cost/event profile (needed by the
    /// virtual-core replay and Figs. 5b, 9b, 13).
    PerRound,
}

/// P/S/M accumulators for one thread (or one LP in LP-pinned kernels).
#[derive(Clone, Copy, Debug, Default)]
pub struct Psm {
    /// Nanoseconds spent processing events (phases 1–2).
    pub p_ns: u64,
    /// Nanoseconds spent waiting at synchronization points.
    pub s_ns: u64,
    /// Nanoseconds spent receiving events / updating the window (phases 3–4).
    pub m_ns: u64,
}

impl Psm {
    /// Total accounted time.
    pub fn total_ns(&self) -> u64 {
        self.p_ns + self.s_ns + self.m_ns
    }

    /// Fraction of total time spent synchronizing (0 when idle).
    pub fn s_ratio(&self) -> f64 {
        let t = self.total_ns();
        if t == 0 {
            0.0
        } else {
            self.s_ns as f64 / t as f64
        }
    }
}

/// One round's load profile across LPs.
#[derive(Clone, Debug)]
pub struct RoundRecord {
    /// Window start (virtual time).
    pub window_start: Time,
    /// Window end (the LBTS of this round).
    pub window_end: Time,
    /// Whether the round was *fused*: executed end-to-end on the main
    /// thread with no barrier crossing (unison kernel round fusion,
    /// DESIGN.md §4.9). Always `false` for kernels without fusion.
    pub fused: bool,
    /// Measured (or modeled) processing cost per LP, nanoseconds.
    pub lp_cost_ns: Vec<f32>,
    /// Events processed per LP.
    pub lp_events: Vec<u32>,
    /// Events received from mailboxes per LP.
    pub lp_recv: Vec<u32>,
}

impl RoundRecord {
    /// Sum of per-LP costs (the sequential cost of this round).
    pub fn total_cost_ns(&self) -> f64 {
        self.lp_cost_ns.iter().map(|&c| c as f64).sum()
    }

    /// Maximum per-LP cost (the barrier-kernel critical path).
    pub fn max_cost_ns(&self) -> f64 {
        self.lp_cost_ns.iter().fold(0.0f64, |m, &c| m.max(c as f64))
    }

    /// Load imbalance of this round: max per-LP cost over mean per-LP cost
    /// (≥ 1). `1.0` means a perfectly balanced round; it is also returned
    /// for degenerate rounds (no LPs, or an all-idle round with zero total
    /// cost), which carry no imbalance information.
    pub fn imbalance(&self) -> f64 {
        let n = self.lp_cost_ns.len();
        let total = self.total_cost_ns();
        if n == 0 || total == 0.0 {
            return 1.0;
        }
        self.max_cost_ns() * n as f64 / total
    }

    /// Total idle time a one-thread-per-LP barrier synchronization would
    /// induce this round: `Σ_i (max_cost − cost_i)`, nanoseconds. This is
    /// the slack the Unison scheduler reclaims by packing LPs onto fewer
    /// threads (§3.2's S component, per round).
    pub fn barrier_slack_ns(&self) -> f64 {
        let n = self.lp_cost_ns.len() as f64;
        n * self.max_cost_ns() - self.total_cost_ns()
    }
}

/// Per-LP totals over a run.
#[derive(Clone, Debug, Default)]
pub struct LpTotals {
    /// Events processed per LP.
    pub events: Vec<u64>,
    /// Cumulative processing cost per LP, nanoseconds.
    pub cost_ns: Vec<u64>,
    /// Locality proxy: consecutive-event node switches per LP.
    pub node_switches: Vec<u64>,
}

/// Event-engine configuration and memory behaviour of a run (DESIGN.md
/// §4.4): which FEL implementation executed it and how well the mailbox
/// node pool absorbed cross-LP traffic.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// FEL implementation the run was configured with.
    pub fel_impl: FelImpl,
    /// Cross-LP sends that reused a pooled mailbox node.
    pub pool_hits: u64,
    /// Cross-LP sends that had to allocate a fresh node.
    pub pool_misses: u64,
}

impl EngineStats {
    /// Fraction of cross-LP sends served from the node pool (0 when there
    /// was no cross-LP traffic). Steady-state parallel runs should sit well
    /// above 0.9 — the perf-smoke tripwire asserts it.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }
}

/// Claim-policy behaviour of a run (DESIGN.md §4.5): which [`crate::SchedPolicy`]
/// distributed LPs over workers and how its claims broke down. All zeros
/// (with an empty policy name) for kernels without a claim loop.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedStats {
    /// Claim-policy name ([`crate::SchedPolicyKind::name`]); empty for
    /// kernels without a claim loop.
    pub policy: &'static str,
    /// LP executions claimed over the run (one per non-idle LP per round).
    pub claims: u64,
    /// Claims served by stealing from another worker's deque (always 0
    /// under the shared-cursor policy, which has no worker-local state).
    pub steals: u64,
    /// Claims served from the claiming worker's own deque.
    pub affinity_hits: u64,
}

impl SchedStats {
    /// Fraction of claims served from the claiming worker's own deque
    /// (0 when the policy tracked no claims — e.g. the shared cursor).
    pub fn affinity_hit_rate(&self) -> f64 {
        let attributed = self.affinity_hits + self.steals;
        if attributed == 0 {
            0.0
        } else {
            self.affinity_hits as f64 / attributed as f64
        }
    }
}

/// The result of one kernel run.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Kernel that produced the run (for display).
    pub kernel: String,
    /// Real wall-clock duration of the run.
    pub wall: Duration,
    /// Total events executed (node events; global events counted separately).
    pub events: u64,
    /// Global events executed.
    pub global_events: u64,
    /// Synchronization rounds executed by the round-based kernels (1 for
    /// the sequential kernel). The asynchronous conservative kernel has no
    /// rounds and reports 0 here; its progress counters (grants, stalls,
    /// gates, per-worker stall wait) live in [`RunReport::async_stats`].
    pub rounds: u64,
    /// Rounds that *fused* — ran every phase on the main thread without a
    /// barrier crossing (unison round fusion, DESIGN.md §4.9). Always
    /// `<= rounds`; 0 for kernels without fusion or with fusion disabled.
    pub fused_rounds: u64,
    /// Number of LPs.
    pub lp_count: u32,
    /// Number of worker threads used.
    pub threads: u32,
    /// Partition lookahead.
    pub lookahead: Time,
    /// Virtual time reached when the run ended.
    pub end_time: Time,
    /// P/S/M per thread (index = thread id) — or per LP for LP-pinned
    /// kernels (barrier, null message), matching the paper's methodology.
    /// [`RunReport::psm_is_per_lp`] says which indexing applies.
    pub psm: Vec<Psm>,
    /// `true` when [`RunReport::psm`] is indexed by LP (the LP-pinned
    /// barrier and null-message kernels); `false` when it is indexed by
    /// worker thread (sequential, Unison, hybrid).
    pub psm_per_lp: bool,
    /// Per-LP totals.
    pub lp_totals: LpTotals,
    /// Event-engine configuration and node-pool behaviour.
    pub engine: EngineStats,
    /// Claim-policy behaviour (steals, affinity hits; DESIGN.md §4.5).
    pub sched: SchedStats,
    /// Per-round profile, when requested.
    pub rounds_profile: Option<Vec<RoundRecord>>,
    /// Phase/LP span timelines and the scheduler-decision log, when the run
    /// was configured with `TelemetryConfig::enabled` (and the `telemetry`
    /// cargo feature is on). `None` otherwise.
    pub telemetry: Option<RunTelemetry>,
    /// Rollback/retry history, when the run went through
    /// [`fault::run_resilient`](crate::fault::run_resilient). `None` for
    /// plain [`kernel::try_run`](crate::kernel::try_run) runs; `Some` with
    /// an empty record list for a resilient run that never had to recover.
    pub recovery: Option<crate::fault::RecoveryLog>,
    /// Progress counters of the asynchronous conservative kernel, which
    /// replaces `rounds` with grant/stall accounting. `None` for every
    /// other kernel.
    pub async_stats: Option<AsyncStats>,
}

/// Progress counters of the barrier-free asynchronous conservative kernel
/// (DESIGN.md §4.8). These replace the `rounds` notion: the kernel has no
/// global synchronization rounds, only channel-clock grants, stall waits
/// and gate rendezvous for global events.
#[derive(Clone, Debug, Default)]
pub struct AsyncStats {
    /// Time-advance grants published (out-channel promise rises — the lazy
    /// null messages actually sent).
    pub grants: u64,
    /// Times a worker found no runnable work and parked on its waker.
    pub stalls: u64,
    /// Quiesced virtual-time fronts reached (global-event windows run by
    /// the control thread).
    pub gates: u64,
    /// Wall nanoseconds each worker spent parked in stall waits (indexed
    /// by worker; gate-rendezvous waits are counted in `Psm::s_ns`, not
    /// here).
    pub stall_wait_ns: Vec<u64>,
}

impl RunReport {
    /// Events per wall-clock second (the headline throughput number).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.events as f64 / secs
        }
    }

    /// Aggregate P/S/M over all threads.
    pub fn psm_total(&self) -> Psm {
        let mut total = Psm::default();
        for p in &self.psm {
            total.p_ns += p.p_ns;
            total.s_ns += p.s_ns;
            total.m_ns += p.m_ns;
        }
        total
    }

    /// Total node switches (locality proxy) over all LPs.
    pub fn node_switches(&self) -> u64 {
        self.lp_totals.node_switches.iter().sum()
    }

    /// Whether [`RunReport::psm`] entries are per-LP (barrier and
    /// null-message kernels pin one thread to each LP, so thread and LP
    /// coincide) rather than per worker thread (sequential, Unison,
    /// hybrid — a worker executes many LPs per round).
    pub fn psm_is_per_lp(&self) -> bool {
        self.psm_per_lp
    }

    /// Total claims served by work stealing ([`SchedStats::steals`]).
    pub fn steal_count(&self) -> u64 {
        self.sched.steals
    }

    /// Fraction of claims served from the claiming worker's own deque
    /// ([`SchedStats::affinity_hit_rate`]).
    pub fn affinity_hit_rate(&self) -> f64 {
        self.sched.affinity_hit_rate()
    }

    /// Mean per-round load imbalance (max/mean LP cost, ≥ 1).
    ///
    /// With a per-round profile ([`MetricsLevel::PerRound`]), this is the
    /// mean of [`RoundRecord::imbalance`] over rounds that did work.
    /// Without one, it falls back to the whole-run event totals per LP — a
    /// coarser proxy (temporal imbalance within the run averages out).
    /// Returns `1.0` when there is no usable signal at all.
    pub fn imbalance(&self) -> f64 {
        if let Some(profile) = &self.rounds_profile {
            let mut sum = 0.0;
            let mut n = 0u64;
            for rec in profile {
                if rec.total_cost_ns() > 0.0 {
                    sum += rec.imbalance();
                    n += 1;
                }
            }
            if n > 0 {
                return sum / n as f64;
            }
        }
        let total: u64 = self.lp_totals.events.iter().sum();
        let max = self.lp_totals.events.iter().copied().max().unwrap_or(0);
        let n = self.lp_totals.events.len();
        if n == 0 || total == 0 {
            return 1.0;
        }
        max as f64 * n as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psm_ratios() {
        let psm = Psm {
            p_ns: 70,
            s_ns: 20,
            m_ns: 10,
        };
        assert_eq!(psm.total_ns(), 100);
        assert!((psm.s_ratio() - 0.2).abs() < 1e-12);
        assert_eq!(Psm::default().s_ratio(), 0.0);
    }

    #[test]
    fn round_record_aggregates() {
        let r = RoundRecord {
            window_start: Time(0),
            window_end: Time(10),
            fused: false,
            lp_cost_ns: vec![1.0, 5.0, 2.0],
            lp_events: vec![1, 5, 2],
            lp_recv: vec![0, 0, 0],
        };
        assert_eq!(r.total_cost_ns(), 8.0);
        assert_eq!(r.max_cost_ns(), 5.0);
    }

    #[test]
    fn report_totals() {
        let mut rep = RunReport::default();
        rep.psm.push(Psm {
            p_ns: 5,
            s_ns: 1,
            m_ns: 0,
        });
        rep.psm.push(Psm {
            p_ns: 3,
            s_ns: 2,
            m_ns: 1,
        });
        let total = rep.psm_total();
        assert_eq!(total.p_ns, 8);
        assert_eq!(total.s_ns, 3);
        assert_eq!(total.m_ns, 1);
    }

    fn rec(costs: &[f32]) -> RoundRecord {
        RoundRecord {
            window_start: Time(0),
            window_end: Time(10),
            fused: false,
            lp_cost_ns: costs.to_vec(),
            lp_events: vec![0; costs.len()],
            lp_recv: vec![0; costs.len()],
        }
    }

    #[test]
    fn round_imbalance_is_max_over_mean() {
        // max 6, mean 3 → 2.0.
        assert_eq!(rec(&[6.0, 3.0, 0.0]).imbalance(), 2.0);
        // Perfectly balanced round.
        assert_eq!(rec(&[4.0, 4.0]).imbalance(), 1.0);
        // Degenerate rounds carry no signal.
        assert_eq!(rec(&[]).imbalance(), 1.0);
        assert_eq!(rec(&[0.0, 0.0]).imbalance(), 1.0);
    }

    #[test]
    fn barrier_slack_is_total_idle_under_lp_pinning() {
        // max 6: slack = (6-6) + (6-3) + (6-0) = 9.
        assert_eq!(rec(&[6.0, 3.0, 0.0]).barrier_slack_ns(), 9.0);
        // A balanced round has no slack.
        assert_eq!(rec(&[4.0, 4.0]).barrier_slack_ns(), 0.0);
        assert_eq!(rec(&[]).barrier_slack_ns(), 0.0);
    }

    #[test]
    fn report_imbalance_prefers_profile_and_falls_back_to_totals() {
        let mut rep = RunReport::default();
        // No signal at all.
        assert_eq!(rep.imbalance(), 1.0);
        // Totals fallback: events 9,3,0 → max 9, mean 4 → 2.25.
        rep.lp_totals.events = vec![9, 3, 0];
        assert!((rep.imbalance() - 2.25).abs() < 1e-12);
        // Profile takes precedence: rounds with imbalance 2.0 and 1.0
        // (all-idle rounds are skipped).
        rep.rounds_profile = Some(vec![rec(&[6.0, 3.0, 0.0]), rec(&[4.0, 4.0]), rec(&[0.0])]);
        assert!((rep.imbalance() - 1.5).abs() < 1e-12);
        // An all-idle profile falls back to totals.
        rep.rounds_profile = Some(vec![rec(&[0.0, 0.0])]);
        assert!((rep.imbalance() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn sched_stats_hit_rate() {
        let s = SchedStats {
            policy: "steal-deque",
            claims: 10,
            steals: 3,
            affinity_hits: 7,
        };
        assert!((s.affinity_hit_rate() - 0.7).abs() < 1e-12);
        assert_eq!(SchedStats::default().affinity_hit_rate(), 0.0);
        let rep = RunReport {
            sched: s,
            ..Default::default()
        };
        assert_eq!(rep.steal_count(), 3);
        assert!((rep.affinity_hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn psm_per_lp_accessor_reflects_field() {
        let mut rep = RunReport::default();
        assert!(!rep.psm_is_per_lp());
        rep.psm_per_lp = true;
        assert!(rep.psm_is_per_lp());
    }
}
