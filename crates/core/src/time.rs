//! Virtual simulation time.
//!
//! Simulated time is a 64-bit count of nanoseconds. A `u64` nanosecond clock
//! wraps after ~584 simulated years, far beyond any network simulation
//! horizon, so saturating arithmetic is used only where an overflow could be
//! provoked by user input (e.g. scheduling at [`Time::MAX`]).

use core::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since the simulation epoch.
///
/// `Time` is also used for durations (the type is a plain instant/duration
/// scalar, like ns-3's `Time`).
///
/// # Examples
///
/// ```
/// use unison_core::Time;
///
/// let t = Time::from_micros(3);
/// assert_eq!(t + Time::from_nanos(500), Time::from_nanos(3_500));
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The simulation epoch (t = 0).
    pub const ZERO: Time = Time(0);
    /// The largest representable time; used as "never" / +infinity.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// Creates a time from a floating-point number of seconds.
    ///
    /// Negative inputs clamp to [`Time::ZERO`]; values beyond the `u64`
    /// nanosecond range clamp to [`Time::MAX`].
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return Time::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            Time::MAX
        } else {
            Time(ns as u64)
        }
    }

    /// Returns the time as nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time as microseconds (integer division).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the time as milliseconds (integer division).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the time as floating-point seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition; `Time::MAX` is treated as +infinity.
    #[inline]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Returns `min(self, other)`.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns `max(self, other)`.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            return write!(f, "+inf");
        }
        if self.0 >= 1_000_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(
                f,
                "{}.{:03}s",
                self.0 / 1_000_000_000,
                (self.0 / 1_000_000) % 1_000
            )
        } else if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000) {
            write!(
                f,
                "{}.{:03}ms",
                self.0 / 1_000_000,
                (self.0 / 1_000) % 1_000
            )
        } else if self.0 >= 1_000 {
            write!(f, "{}.{:03}us", self.0 / 1_000, self.0 % 1_000)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Transmission rate in bits per second.
///
/// # Examples
///
/// ```
/// use unison_core::{DataRate, Time};
///
/// let r = DataRate::gbps(10);
/// // A 1250-byte packet at 10 Gbps takes 1 microsecond to serialize.
/// assert_eq!(r.tx_time(1250), Time::from_micros(1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DataRate(pub u64);

impl DataRate {
    /// Creates a rate from bits per second.
    #[inline]
    pub const fn bps(bits_per_sec: u64) -> Self {
        DataRate(bits_per_sec)
    }

    /// Creates a rate from megabits per second.
    #[inline]
    pub const fn mbps(mb: u64) -> Self {
        DataRate(mb * 1_000_000)
    }

    /// Creates a rate from gigabits per second.
    #[inline]
    pub const fn gbps(gb: u64) -> Self {
        DataRate(gb * 1_000_000_000)
    }

    /// Returns the rate in bits per second.
    #[inline]
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Serialization delay for `bytes` at this rate, rounded up to whole
    /// nanoseconds.
    ///
    /// A zero rate yields [`Time::MAX`] ("never completes"), which models a
    /// disconnected or administratively-down link.
    #[inline]
    pub fn tx_time(self, bytes: u32) -> Time {
        if self.0 == 0 {
            return Time::MAX;
        }
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(self.0 as u128);
        Time(ns.min(u64::MAX as u128) as u64)
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 && self.0.is_multiple_of(1_000_000_000) {
            write!(f, "{}Gbps", self.0 / 1_000_000_000)
        } else if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(f, "{}Mbps", self.0 / 1_000_000)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_secs(1), Time::from_millis(1_000));
        assert_eq!(Time::from_millis(1), Time::from_micros(1_000));
        assert_eq!(Time::from_micros(1), Time::from_nanos(1_000));
    }

    #[test]
    fn float_roundtrip() {
        let t = Time::from_secs_f64(0.1);
        assert_eq!(t, Time::from_millis(100));
        assert!((t.as_secs_f64() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn float_clamps() {
        assert_eq!(Time::from_secs_f64(-1.0), Time::ZERO);
        assert_eq!(Time::from_secs_f64(1e30), Time::MAX);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Time::MAX.saturating_add(Time(1)), Time::MAX);
        assert_eq!(Time(3).saturating_sub(Time(5)), Time::ZERO);
    }

    #[test]
    fn min_max() {
        assert_eq!(Time(3).min(Time(5)), Time(3));
        assert_eq!(Time(3).max(Time(5)), Time(5));
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 3 bps = 8/3 s = 2.666..e9 ns, rounds up.
        assert_eq!(DataRate::bps(3).tx_time(1), Time(2_666_666_667));
        assert_eq!(DataRate::gbps(100).tx_time(1500), Time(120));
    }

    #[test]
    fn tx_time_zero_rate_is_never() {
        assert_eq!(DataRate::bps(0).tx_time(1500), Time::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Time::from_secs(2).to_string(), "2.000s");
        assert_eq!(Time::from_micros(3).to_string(), "3.000us");
        assert_eq!(Time(42).to_string(), "42ns");
        assert_eq!(Time::MAX.to_string(), "+inf");
        assert_eq!(DataRate::gbps(10).to_string(), "10Gbps");
        assert_eq!(DataRate::mbps(100).to_string(), "100Mbps");
    }
}
