//! Shim over the concurrency primitives used by the kernels.
//!
//! Everything in the crate that touches atomics, spinning or yielding goes
//! through this module instead of `std` directly. In a normal build the
//! re-exports resolve to the `std` types with zero overhead. Under
//! `RUSTFLAGS="--cfg loom"` they resolve to the in-repo `loom` model
//! checker's instrumented equivalents, so `crates/core/tests/loom_models.rs`
//! can exhaustively explore thread interleavings of [`crate::sync::SpinBarrier`],
//! the work cursor and the mailbox queue under the C11 memory model
//! approximation (sequentially consistent values + vector-clock
//! happens-before tracking).
//!
//! The module also provides [`CachePadded`], a dependency-free replacement
//! for `crossbeam_utils::CachePadded` (the real crate is unavailable in
//! offline builds).

#[cfg(not(loom))]
pub use std::hint::spin_loop;
#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
#[cfg(not(loom))]
pub use std::thread::yield_now;

#[cfg(loom)]
pub use loom::hint::spin_loop;
#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
#[cfg(loom)]
pub use loom::thread::yield_now;

/// Pads and aligns a value to 128 bytes so that neighbouring values in a
/// `Vec` never share a cache line (128 covers the adjacent-line prefetcher
/// pairing on x86-64 and the 128-byte lines on apple-silicon).
///
/// Drop-in for the subset of `crossbeam_utils::CachePadded` this workspace
/// uses: `new`, `into_inner`, `Deref`/`DerefMut`.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Returns the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> core::ops::Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> core::ops::DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    #[inline]
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let c = CachePadded::new(42u64);
        assert_eq!(core::mem::align_of_val(&c), 128);
        assert!(core::mem::size_of_val(&c) >= 128);
        assert_eq!(*c, 42);
        let mut c = c;
        *c += 1;
        assert_eq!(c.into_inner(), 43);
    }
}
