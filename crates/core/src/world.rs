//! The simulation world and the model interface.
//!
//! A *model* (e.g. the network stack in `unison-netsim`) implements
//! [`SimNode`] for its node type and describes the topology to the kernel
//! through a [`WorldBuilder`]: nodes, stateless links (with delays, for
//! partitioning and lookahead), initial events and global events. The kernel
//! choice is entirely orthogonal — the same [`World`] runs unmodified on the
//! sequential kernel, the PDES baselines, or Unison. This is the paper's
//! *user transparency*: zero model changes to go parallel.

use crate::event::{Event, EventKey, LpId, NodeId};
use crate::global::GlobalFn;
use crate::graph::LinkGraph;
use crate::time::Time;

/// A simulated node: the unit of state exclusively owned by one LP.
///
/// Handlers receive events addressed to this node and react by mutating
/// their own state and scheduling further events through the [`SimCtx`].
/// All interaction between nodes goes through events — handlers never touch
/// other nodes directly — which is what makes the partitioned execution
/// sound.
pub trait SimNode: Send + Sized + 'static {
    /// The message type carried by events.
    type Payload: Send + 'static;

    /// Handles one event addressed to this node at virtual time `ctx.now()`.
    fn handle(&mut self, payload: Self::Payload, ctx: &mut dyn SimCtx<Self>);
}

/// Scheduling interface handed to [`SimNode::handle`].
///
/// The same interface is implemented by every kernel; models cannot tell
/// whether they run sequentially or in parallel.
pub trait SimCtx<N: SimNode> {
    /// Current virtual time.
    fn now(&self) -> Time;

    /// The node whose handler is currently executing.
    fn self_node(&self) -> NodeId;

    /// Schedules `payload` for `target` at `now() + delay`.
    ///
    /// When `target` lives in another LP, `delay` must be at least the
    /// partition lookahead (guaranteed by construction for packet events,
    /// whose delay includes the cut link's propagation delay); this is
    /// checked with a debug assertion.
    fn schedule(&mut self, delay: Time, target: NodeId, payload: N::Payload);

    /// Schedules a *global event*: a function that may inspect and mutate
    /// the entire world (topology changes, global statistics, progress
    /// reporting). Runs on the public LP at `now() + delay`.
    fn schedule_global(&mut self, delay: Time, f: GlobalFn<N>);

    /// Requests the simulation to stop at the end of the current window.
    fn request_stop(&mut self);
}

/// Convenience extension methods for [`SimCtx`] users.
pub trait SimCtxExt<N: SimNode>: SimCtx<N> {
    /// Schedules an event for the executing node itself.
    fn schedule_self(&mut self, delay: Time, payload: N::Payload) {
        let me = self.self_node();
        self.schedule(delay, me, payload);
    }
}

impl<N: SimNode, C: SimCtx<N> + ?Sized> SimCtxExt<N> for C {}

/// A pre-run global event (scheduled from the builder).
pub(crate) struct InitGlobal<N: SimNode> {
    pub ts: Time,
    pub f: GlobalFn<N>,
}

/// The complete description of one simulation run: nodes, links, initial
/// events and the stop time. Built by [`WorldBuilder`], consumed by a
/// kernel, and returned (with final node state) when the run completes.
pub struct World<N: SimNode> {
    pub(crate) nodes: Vec<N>,
    pub(crate) graph: LinkGraph,
    pub(crate) init_events: Vec<Event<N::Payload>>,
    pub(crate) init_globals: Vec<InitGlobal<N>>,
    pub(crate) stop_at: Option<Time>,
    /// Per-LP sequence counters restored from a checkpoint (`None` for a
    /// fresh world). Applied by the kernel's LP build when the partition's
    /// LP count matches.
    pub(crate) restored_lp_seqs: Option<Vec<u64>>,
    /// Starting value of the kernel's external sequence counter (non-zero
    /// only for worlds restored from a checkpoint).
    pub(crate) restored_ext_seq: u64,
}

impl<N: SimNode> World<N> {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node (e.g. to read statistics after a run).
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node (only meaningful before or after a run).
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// The stateless link graph (used for partitioning and lookahead).
    pub fn graph(&self) -> &LinkGraph {
        &self.graph
    }

    /// The configured stop time, if any.
    pub fn stop_at(&self) -> Option<Time> {
        self.stop_at
    }

    /// Appends a global event to a built world (harnesses inject topology
    /// changes this way after `NetworkBuilder`-style builders finish).
    pub fn add_global_event(&mut self, ts: Time, f: GlobalFn<N>) {
        self.init_globals.push(InitGlobal { ts, f });
    }

    /// Assembles a world from checkpoint state: `init_events` carry their
    /// original tie-break keys, and the saved sequence counters resume where
    /// the checkpointed run left off.
    pub(crate) fn restored(
        nodes: Vec<N>,
        graph: LinkGraph,
        init_events: Vec<Event<N::Payload>>,
        stop_at: Option<Time>,
        lp_seqs: Vec<u64>,
        ext_seq: u64,
    ) -> Self {
        World {
            nodes,
            graph,
            init_events,
            init_globals: Vec::new(),
            stop_at,
            restored_lp_seqs: Some(lp_seqs),
            restored_ext_seq: ext_seq,
        }
    }
}

/// Builder for a [`World`].
///
/// # Examples
///
/// ```
/// use unison_core::{NodeId, SimCtx, SimNode, Time, WorldBuilder};
///
/// struct Counter {
///     hits: u64,
/// }
///
/// impl SimNode for Counter {
///     type Payload = ();
///     fn handle(&mut self, _p: (), _ctx: &mut dyn SimCtx<Self>) {
///         self.hits += 1;
///     }
/// }
///
/// let mut b = WorldBuilder::new();
/// let n0 = b.add_node(Counter { hits: 0 });
/// b.schedule(Time::from_micros(1), n0, ());
/// let world = b.stop_at(Time::from_millis(1)).build();
/// assert_eq!(world.node_count(), 1);
/// ```
pub struct WorldBuilder<N: SimNode> {
    nodes: Vec<N>,
    graph: LinkGraph,
    init_events: Vec<Event<N::Payload>>,
    init_globals: Vec<InitGlobal<N>>,
    stop_at: Option<Time>,
    ext_seq: u64,
}

impl<N: SimNode> Default for WorldBuilder<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N: SimNode> WorldBuilder<N> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        WorldBuilder {
            nodes: Vec::new(),
            graph: LinkGraph::new(0),
            init_events: Vec::new(),
            init_globals: Vec::new(),
            stop_at: None,
            ext_seq: 0,
        }
    }

    /// Adds a node and returns its id (dense, insertion order).
    pub fn add_node(&mut self, node: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.graph.ensure_nodes(self.nodes.len());
        id
    }

    /// Adds a node built from its future id (for nodes that store their id).
    pub fn add_node_with(&mut self, f: impl FnOnce(NodeId) -> N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(f(id));
        self.graph.ensure_nodes(self.nodes.len());
        id
    }

    /// Declares a stateless link between `a` and `b` with propagation
    /// `delay`, returning its stable link id. The kernel uses links only for
    /// partitioning and lookahead; the model is responsible for actually
    /// moving packets (with at least this delay across the link).
    pub fn add_link(&mut self, a: NodeId, b: NodeId, delay: Time) -> usize {
        self.graph.add_link(a, b, delay)
    }

    /// Schedules an initial event at absolute time `ts`.
    pub fn schedule(&mut self, ts: Time, target: NodeId, payload: N::Payload) {
        let key = EventKey::external(ts, self.ext_seq);
        self.ext_seq += 1;
        self.init_events.push(Event {
            key,
            node: target,
            payload,
        });
    }

    /// Schedules an initial global event at absolute time `ts`.
    pub fn schedule_global(&mut self, ts: Time, f: GlobalFn<N>) {
        self.init_globals.push(InitGlobal { ts, f });
    }

    /// Sets the stop time. Events with timestamps `>= ts` are not executed.
    pub fn stop_at(&mut self, ts: Time) -> &mut Self {
        self.stop_at = Some(ts);
        self
    }

    /// Finalizes the world.
    pub fn build(&mut self) -> World<N> {
        World {
            nodes: std::mem::take(&mut self.nodes),
            graph: std::mem::take(&mut self.graph),
            init_events: std::mem::take(&mut self.init_events),
            init_globals: std::mem::take(&mut self.init_globals),
            stop_at: self.stop_at,
            restored_lp_seqs: None,
            restored_ext_seq: 0,
        }
    }
}

/// Identifier kept by [`LpId`] bookkeeping: maps every node to its LP and
/// local slot. Computed once per run from the partition.
#[derive(Clone, Debug)]
pub struct NodeDirectory {
    /// `(lp, local index)` per node.
    pub slot: Vec<(LpId, u32)>,
}

impl NodeDirectory {
    /// Builds the directory from a partition's `lp_nodes` lists.
    pub fn from_lp_nodes(node_count: usize, lp_nodes: &[Vec<NodeId>]) -> Self {
        let mut slot = vec![(LpId(u32::MAX), 0u32); node_count];
        for (lp, nodes) in lp_nodes.iter().enumerate() {
            for (local, node) in nodes.iter().enumerate() {
                slot[node.index()] = (LpId(lp as u32), local as u32);
            }
        }
        debug_assert!(slot.iter().all(|(lp, _)| *lp != LpId(u32::MAX)));
        NodeDirectory { slot }
    }

    /// LP owning `node`.
    #[inline]
    pub fn lp_of(&self, node: NodeId) -> LpId {
        self.slot[node.index()].0
    }

    /// `(lp, local index)` of `node`.
    #[inline]
    pub fn locate(&self, node: NodeId) -> (LpId, u32) {
        self.slot[node.index()]
    }
}
