//! The link graph used for partitioning and lookahead computation.
//!
//! The kernel does not model links itself (that is the model's job); it only
//! needs to know which nodes are joined by *stateless* links and with what
//! propagation delay, because:
//!
//! - the fine-grained partitioner (Algorithm 1) merges nodes joined by
//!   low-delay links and cuts the rest;
//! - the lookahead — the synchronization window size — is the minimum delay
//!   among cut links;
//! - topology changes (add/remove/retime a link) must trigger a lookahead
//!   recomputation (§4.2).

use crate::event::NodeId;
use crate::time::Time;

/// An undirected stateless link between two nodes with a propagation delay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkSpec {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Propagation delay.
    pub delay: Time,
}

/// The set of stateless links of the simulated topology.
///
/// Removed links keep their slot (tombstoned) so that link ids held by the
/// model remain stable across topology changes.
#[derive(Clone, Debug, Default)]
pub struct LinkGraph {
    node_count: usize,
    links: Vec<LinkSpec>,
    alive: Vec<bool>,
}

impl LinkGraph {
    /// Creates a graph over `node_count` nodes with no links.
    pub fn new(node_count: usize) -> Self {
        LinkGraph {
            node_count,
            links: Vec::new(),
            alive: Vec::new(),
        }
    }

    /// Number of nodes this graph spans.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Grows the node space (nodes may be added before the run starts).
    pub fn ensure_nodes(&mut self, node_count: usize) {
        self.node_count = self.node_count.max(node_count);
    }

    /// Adds a link and returns its stable index.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, delay: Time) -> usize {
        assert!(
            a.index() < self.node_count && b.index() < self.node_count,
            "link endpoint out of range"
        );
        self.links.push(LinkSpec { a, b, delay });
        self.alive.push(true);
        self.links.len() - 1
    }

    /// Removes a link (tombstones its slot). Returns `false` when the link
    /// was already removed.
    pub fn remove_link(&mut self, idx: usize) -> bool {
        if idx < self.alive.len() && self.alive[idx] {
            self.alive[idx] = false;
            true
        } else {
            false
        }
    }

    /// Restores a previously removed link.
    pub fn restore_link(&mut self, idx: usize) -> bool {
        if idx < self.alive.len() && !self.alive[idx] {
            self.alive[idx] = true;
            true
        } else {
            false
        }
    }

    /// Changes the delay of a live or tombstoned link.
    pub fn set_delay(&mut self, idx: usize, delay: Time) {
        self.links[idx].delay = delay;
    }

    /// Returns the spec of a link slot (whether alive or not).
    pub fn link(&self, idx: usize) -> LinkSpec {
        self.links[idx]
    }

    /// Whether a link slot is currently alive.
    pub fn is_alive(&self, idx: usize) -> bool {
        self.alive[idx]
    }

    /// Total number of link slots, including tombstoned ones. Checkpointing
    /// saves every slot so that stable link ids survive a restore.
    pub fn slot_count(&self) -> usize {
        self.links.len()
    }

    /// Iterates over live links as `(index, spec)`.
    pub fn live_links(&self) -> impl Iterator<Item = (usize, LinkSpec)> + '_ {
        self.links
            .iter()
            .enumerate()
            .filter(|(i, _)| self.alive[*i])
            .map(|(i, l)| (i, *l))
    }

    /// Number of live links.
    pub fn live_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Adjacency lists over live links: for each node, `(neighbor, delay)`.
    pub fn adjacency(&self) -> Vec<Vec<(NodeId, Time)>> {
        let mut adj = vec![Vec::new(); self.node_count];
        for (_, l) in self.live_links() {
            adj[l.a.index()].push((l.b, l.delay));
            adj[l.b.index()].push((l.a, l.delay));
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn add_and_iterate() {
        let mut g = LinkGraph::new(3);
        g.add_link(n(0), n(1), Time(5));
        g.add_link(n(1), n(2), Time(7));
        assert_eq!(g.live_count(), 2);
        let delays: Vec<u64> = g.live_links().map(|(_, l)| l.delay.0).collect();
        assert_eq!(delays, vec![5, 7]);
    }

    #[test]
    fn remove_and_restore() {
        let mut g = LinkGraph::new(2);
        let idx = g.add_link(n(0), n(1), Time(3));
        assert!(g.remove_link(idx));
        assert!(!g.remove_link(idx));
        assert_eq!(g.live_count(), 0);
        assert!(g.restore_link(idx));
        assert_eq!(g.live_count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_panics() {
        let mut g = LinkGraph::new(1);
        g.add_link(n(0), n(1), Time(1));
    }

    #[test]
    fn adjacency_lists() {
        let mut g = LinkGraph::new(3);
        g.add_link(n(0), n(1), Time(1));
        g.add_link(n(0), n(2), Time(2));
        let adj = g.adjacency();
        assert_eq!(adj[0].len(), 2);
        assert_eq!(adj[1], vec![(n(0), Time(1))]);
    }
}
