//! Deterministic pseudo-random number generation.
//!
//! The kernel and all workload generators use this self-contained
//! xoshiro256** generator (seeded through SplitMix64) instead of an external
//! RNG so that simulation results are bit-reproducible across library
//! versions and platforms — a prerequisite for the determinism claims
//! reproduced from the paper (Fig. 11).

/// A deterministic xoshiro256** pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use unison_core::rng::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Returns the raw 256-bit generator state (for checkpointing).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a previously captured [`Rng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        Rng { s }
    }

    /// Derives an independent child generator; used to give each node or
    /// flow its own stream without cross-correlation.
    pub fn fork(&mut self, salt: u64) -> Rng {
        let mut seed = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
        ];
        Rng { s }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniformly distributed mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below(0) is meaningless");
        // Lemire's multiply-shift rejection method: unbiased.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Samples an exponential distribution with the given mean.
    #[inline]
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        // Clamp the uniform away from 0 so ln() is finite.
        let u = self.next_f64().max(1e-18);
        -mean * u.ln()
    }

    /// Returns `true` with probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(11);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng::new(5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1_000 {
            let x = r.next_range(10, 12);
            assert!((10..=12).contains(&x));
            seen_lo |= x == 10;
            seen_hi |= x == 12;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = Rng::new(9);
        let n = 100_000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| r.next_exp(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < 0.1 * mean, "observed {observed}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(21);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniformity_rough_chi_square() {
        let mut r = Rng::new(17);
        let mut buckets = [0u32; 16];
        let n = 160_000;
        for _ in 0..n {
            buckets[r.next_below(16) as usize] += 1;
        }
        let expect = (n / 16) as f64;
        let chi2: f64 = buckets
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        // 15 dof, p=0.001 critical value ~37.7.
        assert!(chi2 < 37.7, "chi2 {chi2}");
    }
}
