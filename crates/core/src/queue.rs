//! A lock-free multi-producer single-consumer queue with node recycling.
//!
//! Replaces `crossbeam::queue::SegQueue` for the kernels' inboxes (the real
//! crate is unavailable in offline builds) and is deliberately simpler: an
//! atomic exchange ("Treiber") stack that producers push onto with a CAS
//! loop, which the consumer detaches wholesale and reverses, restoring
//! per-producer FIFO order.
//!
//! This matches how every kernel consumes its inboxes — a full drain between
//! synchronization points — and has the memory-ordering contract the
//! mailboxes document: `push` is a `Release` operation and the consumer's
//! detach is an `Acquire` operation, so everything written before a `push`
//! happens-before the closure invocation in [`MpscQueue::drain`] that
//! receives the value. The `crates/core/tests/loom_models.rs` model
//! `mailbox_handoff_happens_before` machine-checks that edge.
//!
//! Ordering across *different* producers is the physical CAS arrival order,
//! exactly like `SegQueue`: callers that need determinism (the Unison
//! mailboxes) keep one queue per (source, destination) pair; callers that
//! are documented-nondeterministic (the barrier / null-message baselines)
//! share one inbox per destination.
//!
//! # Node pool
//!
//! Steady-state cross-LP traffic is the hot path of every parallel round, so
//! the queue optionally recycles its nodes instead of round-tripping each
//! one through the global allocator: [`MpscQueue::drain_recycle`] and
//! [`MpscQueue::drain_into`] retire drained nodes onto an internal freelist,
//! and [`MpscQueue::push_pooled`] reuses them. The freelist hand-out
//! protocol is ABA-free by construction — a taker detaches the *entire*
//! list with one `swap`, keeps the head node, and splices the remainder
//! back — so a node can never be handed to two producers, and the worst
//! outcome of (disallowed, but memory-safe) concurrent misuse is a
//! transiently longer freelist, never a double-claim. The loom model
//! `mailbox_pool_no_aba` machine-checks the race between a recycling drain
//! and a pooled push; DESIGN.md §4.4 states the ownership rules.

use core::marker::PhantomData;
use core::mem::MaybeUninit;
use core::ptr;

use crate::sync_shim::{AtomicUsize, Ordering};

/// One linked node. Heap ownership transfers producer → queue → consumer
/// (and, on the recycling paths, back to the queue's freelist).
///
/// `value` is a `MaybeUninit` because freelist nodes have had their payload
/// moved out by a drain: a node is *initialized* exactly while it is
/// reachable from `head`, and *uninitialized* while reachable from `free`.
struct Node<T> {
    value: MaybeUninit<T>,
    next: *mut Node<T>,
}

/// Lock-free MPSC queue (see module docs).
pub struct MpscQueue<T> {
    /// Top of the exchange stack as a `*mut Node<T>` address (0 = empty).
    head: AtomicUsize,
    /// Freelist of spare nodes (payload uninitialized), same encoding.
    free: AtomicUsize,
    /// How many [`MpscQueue::push_pooled`] calls reused a freelist node.
    pool_hits: AtomicUsize,
    /// How many [`MpscQueue::push_pooled`] calls fell back to the allocator.
    pool_misses: AtomicUsize,
    _marker: PhantomData<Box<Node<T>>>,
}

// SAFETY: values of `T` are moved through the queue between threads, which
// requires `T: Send`; the queue itself holds no thread-affine state and all
// shared mutation goes through `head`/`free` with Release/Acquire ordering.
unsafe impl<T: Send> Send for MpscQueue<T> {}
// SAFETY: as above — concurrent `push` calls synchronize on the CAS, the
// consumer takes whole chains with an Acquire swap before touching nodes,
// and freelist nodes are handed out exclusively (whole-list swap).
unsafe impl<T: Send> Sync for MpscQueue<T> {}

impl<T> Default for MpscQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MpscQueue<T> {
    /// Creates an empty queue with an empty node pool.
    pub fn new() -> Self {
        MpscQueue {
            head: AtomicUsize::new(0),
            free: AtomicUsize::new(0),
            pool_hits: AtomicUsize::new(0),
            pool_misses: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Appends `value` in a freshly allocated node. Callable from any
    /// thread; lock-free (a CAS loop that only retries when another
    /// producer won the race).
    pub fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            value: MaybeUninit::new(value),
            next: ptr::null_mut(),
        }));
        self.publish(node);
    }

    /// Appends `value`, reusing a recycled node when the pool has one.
    ///
    /// Same ordering contract as [`MpscQueue::push`]. The pool refills via
    /// [`MpscQueue::drain_recycle`] / [`MpscQueue::drain_into`], so a
    /// producer that pushes at most as much as the consumer drained last
    /// round allocates nothing in steady state. Hit/miss counts are
    /// reported by [`MpscQueue::pool_stats`].
    pub fn push_pooled(&self, value: T) {
        let node = self.take_free();
        let node = if node.is_null() {
            self.pool_misses.fetch_add(1, Ordering::Relaxed);
            Box::into_raw(Box::new(Node {
                value: MaybeUninit::new(value),
                next: ptr::null_mut(),
            }))
        } else {
            self.pool_hits.fetch_add(1, Ordering::Relaxed);
            // SAFETY: `take_free` hands out each freelist node to exactly
            // one caller (whole-list swap — see its SAFETY comment), so we
            // own `node` exclusively. Its payload is uninitialized (moved
            // out when the node was retired), so overwriting the
            // `MaybeUninit` drops nothing.
            unsafe {
                (*node).value = MaybeUninit::new(value);
                (*node).next = ptr::null_mut();
            }
            node
        };
        self.publish(node);
    }

    /// Links an exclusively-owned, initialized node into the stack.
    fn publish(&self, node: *mut Node<T>) {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is owned exclusively by this thread (fresh from
            // `Box::into_raw` or handed out by `take_free`) and has not been
            // published yet.
            unsafe { (*node).next = head as *mut Node<T> };
            // Release on success: publishes the node's contents (and
            // everything sequenced before this push) to the consumer's
            // Acquire detach.
            match self.head.compare_exchange(
                head,
                node as usize,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// Takes one node off the freelist, or null when it is empty.
    ///
    /// ABA-free by construction: the *entire* freelist is detached with one
    /// `swap`, the head node is kept, and the remainder is spliced back. Two
    /// concurrent takers therefore see disjoint chains — a node can never be
    /// handed out twice, which is what makes [`MpscQueue::push_pooled`] a
    /// safe fn even under (disallowed) concurrent misuse.
    fn take_free(&self) -> *mut Node<T> {
        // Acquire: pairs with the Release in `recycle` / `restore_free`, so
        // the retiring thread's payload move-out happens-before our reuse.
        let chain = self.free.swap(0, Ordering::Acquire) as *mut Node<T>;
        if chain.is_null() {
            return chain;
        }
        // SAFETY: the swap transferred exclusive ownership of the whole
        // chain to this thread; reading the head's link is ours to do.
        let rest = unsafe { (*chain).next };
        if !rest.is_null() {
            self.restore_free(rest);
        }
        chain
    }

    /// Splices an exclusively-owned chain back onto the freelist.
    fn restore_free(&self, rest: *mut Node<T>) {
        // Fast path: nothing was recycled since the swap (always true under
        // the kernels' one-producer-per-phase discipline).
        if self
            .free
            .compare_exchange(0, rest as usize, Ordering::Release, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        // A concurrent recycle landed meanwhile: find our chain's tail and
        // push the whole chain, preserving both (nothing leaks).
        let mut tail = rest;
        // SAFETY: we own the `rest` chain exclusively (detached by our
        // `swap` in `take_free`), so walking and relinking it is safe.
        unsafe {
            while !(*tail).next.is_null() {
                tail = (*tail).next;
            }
        }
        let mut head = self.free.load(Ordering::Relaxed);
        loop {
            // SAFETY: as above — `tail` is inside our exclusively-owned
            // chain until the CAS below publishes it.
            unsafe { (*tail).next = head as *mut Node<T> };
            match self.free.compare_exchange(
                head,
                rest as usize,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// Retires an exclusively-owned node (payload already moved out) onto
    /// the freelist.
    fn recycle(&self, node: *mut Node<T>) {
        let mut head = self.free.load(Ordering::Relaxed);
        loop {
            // SAFETY: the caller (a drain) owns `node` exclusively until the
            // CAS below publishes it to the freelist.
            unsafe { (*node).next = head as *mut Node<T> };
            // Release: pairs with the Acquire swap in `take_free`, ordering
            // the payload move-out before any reuse of the slot.
            match self.free.compare_exchange(
                head,
                node as usize,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// Detaches everything pushed so far and reverses the chain in one local
    /// pass, returning the FIFO-ordered head (the reversal cursor never
    /// re-reads `self.head`).
    fn detach_fifo(&self) -> *mut Node<T> {
        // Acquire: pairs with the Release CAS in `publish`.
        let mut cur = self.head.swap(0, Ordering::Acquire) as *mut Node<T>;
        // The stack holds newest-first; reverse in place to recover FIFO.
        let mut prev: *mut Node<T> = ptr::null_mut();
        while !cur.is_null() {
            // SAFETY: the swap above transferred exclusive ownership of the
            // whole chain to this thread; `cur` walks only that chain.
            let next = unsafe { (*cur).next };
            // SAFETY: as above — exclusive ownership of `cur`.
            unsafe { (*cur).next = prev };
            prev = cur;
            cur = next;
        }
        prev
    }

    /// Detaches everything pushed so far and invokes `f` on each value in
    /// per-producer FIFO order, freeing the nodes.
    ///
    /// Single consumer: concurrent `drain` calls would each take a disjoint
    /// chain (still safe), but the kernels' discipline is one consumer per
    /// queue between synchronization points.
    pub fn drain(&self, mut f: impl FnMut(T)) {
        let mut cur = self.detach_fifo();
        while !cur.is_null() {
            // SAFETY: each node was allocated by `Box::new` in a push and is
            // visited exactly once, so re-boxing reclaims it exactly once.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next;
            // SAFETY: nodes reachable from `head` are initialized (module
            // invariant), and the box is dropped right after the move-out.
            f(unsafe { node.value.assume_init() });
        }
    }

    /// Like [`MpscQueue::drain`], but retires the nodes onto the freelist
    /// for [`MpscQueue::push_pooled`] to reuse instead of freeing them.
    pub fn drain_recycle(&self, mut f: impl FnMut(T)) {
        let mut cur = self.detach_fifo();
        while !cur.is_null() {
            // SAFETY: exclusive ownership of the detached chain; the value
            // is moved out exactly once, leaving the slot uninitialized —
            // which is the freelist invariant `recycle` requires.
            let (value, next) = unsafe { ((*cur).value.assume_init_read(), (*cur).next) };
            self.recycle(cur);
            cur = next;
            f(value);
        }
    }

    /// Batched drain: detaches everything pushed so far, appends the values
    /// to `out` in per-producer FIFO order, retires the nodes onto the
    /// freelist, and returns how many values were appended.
    ///
    /// This is the cheapest consumption path — a single pointer walk (the
    /// newest-first chain goes straight into `out`, then the appended slice
    /// is reversed in cache-friendly contiguous memory rather than by a
    /// second chain walk) and no per-value closure dispatch. It feeds
    /// `Mailboxes::drain_batch` / `Fel::extend` in the kernels' receive
    /// phase.
    pub fn drain_into(&self, out: &mut Vec<T>) -> usize {
        let start = out.len();
        // Acquire: pairs with the Release CAS in `publish`.
        let mut cur = self.head.swap(0, Ordering::Acquire) as *mut Node<T>;
        while !cur.is_null() {
            // SAFETY: the swap transferred exclusive ownership of the whole
            // chain; each value is moved out exactly once (slot becomes
            // uninitialized, satisfying the freelist invariant) and each
            // node is retired exactly once.
            let (value, next) = unsafe { ((*cur).value.assume_init_read(), (*cur).next) };
            self.recycle(cur);
            cur = next;
            out.push(value);
        }
        // Chain order is newest-first; restore per-producer FIFO.
        out[start..].reverse();
        out.len() - start
    }

    /// Whether the queue was empty at the time of the check. Racy by nature
    /// (a producer can push immediately after); callers use it only as a
    /// wake-up hint under an external lock.
    pub fn is_empty(&self) -> bool {
        // Acquire so a true "non-empty" answer also makes the observed
        // node's payload visible if the caller goes on to drain.
        self.head.load(Ordering::Acquire) == 0
    }

    /// Number of values pending at the time of the check, without detaching
    /// them. Racy the same way [`MpscQueue::is_empty`] is — a lower bound
    /// while producers are active, exact between synchronization points.
    /// O(pending); used for pre-sizing receive buffers, not in loops.
    pub fn len_hint(&self) -> usize {
        // Acquire: makes the observed chain's links visible.
        let mut cur = self.head.load(Ordering::Acquire) as *mut Node<T>;
        let mut n = 0;
        while !cur.is_null() {
            // SAFETY: published nodes are immutable until the (single)
            // consumer detaches them, and we are that consumer — a
            // concurrent producer only prepends *before* the head we
            // loaded, never mutating the chain we walk.
            cur = unsafe { (*cur).next };
            n += 1;
        }
        n
    }

    /// `(hits, misses)` of [`MpscQueue::push_pooled`] since construction.
    pub fn pool_stats(&self) -> (usize, usize) {
        (
            self.pool_hits.load(Ordering::Relaxed),
            self.pool_misses.load(Ordering::Relaxed),
        )
    }
}

impl<T> Drop for MpscQueue<T> {
    fn drop(&mut self) {
        self.drain(drop);
        // Free the spare nodes. Their payloads are uninitialized, so only
        // the boxes are reclaimed — no `T` is dropped here.
        let mut cur = self.free.swap(0, Ordering::Acquire) as *mut Node<T>;
        while !cur.is_null() {
            // SAFETY: `&mut self` means no other thread can touch the
            // freelist; each spare node is re-boxed exactly once.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next;
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn drain_preserves_fifo_per_producer() {
        let q: MpscQueue<u32> = MpscQueue::new();
        assert!(q.is_empty());
        for i in 0..100 {
            q.push(i);
        }
        assert!(!q.is_empty());
        let mut got = Vec::new();
        q.drain(|v| got.push(v));
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn drain_on_empty_is_noop() {
        let q: MpscQueue<String> = MpscQueue::new();
        let mut n = 0;
        q.drain(|_| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn drain_into_preserves_fifo_and_appends() {
        let q: MpscQueue<u32> = MpscQueue::new();
        for i in 0..50 {
            q.push(i);
        }
        let mut out = vec![999];
        assert_eq!(q.drain_into(&mut out), 50);
        assert_eq!(out[0], 999, "drain_into must append, not overwrite");
        assert_eq!(out[1..], (0..50).collect::<Vec<_>>()[..]);
        assert_eq!(q.drain_into(&mut out), 0);
    }

    #[test]
    fn pooled_push_reuses_drained_nodes() {
        let q: MpscQueue<String> = MpscQueue::new();
        for i in 0..10 {
            q.push_pooled(format!("a{i}"));
        }
        assert_eq!(q.pool_stats(), (0, 10), "cold pool: all misses");
        q.drain_recycle(drop);
        for i in 0..10 {
            q.push_pooled(format!("b{i}"));
        }
        assert_eq!(q.pool_stats(), (10, 10), "warm pool: all hits");
        let mut got = Vec::new();
        q.drain_recycle(|v| got.push(v));
        assert_eq!(got, (0..10).map(|i| format!("b{i}")).collect::<Vec<_>>());
    }

    #[test]
    fn drain_into_recycles_nodes() {
        let q: MpscQueue<u64> = MpscQueue::new();
        for round in 0..5u64 {
            for i in 0..20 {
                q.push_pooled(round * 100 + i);
            }
            let mut out = Vec::new();
            assert_eq!(q.drain_into(&mut out), 20);
            assert_eq!(out, (round * 100..round * 100 + 20).collect::<Vec<_>>());
        }
        let (hits, misses) = q.pool_stats();
        assert_eq!(misses, 20, "only the first round allocates");
        assert_eq!(hits, 80);
    }

    #[test]
    fn len_hint_counts_pending() {
        let q: MpscQueue<u8> = MpscQueue::new();
        assert_eq!(q.len_hint(), 0);
        for _ in 0..7 {
            q.push(1);
        }
        assert_eq!(q.len_hint(), 7);
        q.drain(drop);
        assert_eq!(q.len_hint(), 0);
    }

    #[test]
    fn drop_reclaims_pending_nodes() {
        // Detected by sanitizers / Miri if nodes leaked or double-freed.
        let q: MpscQueue<Vec<u8>> = MpscQueue::new();
        for i in 0..10 {
            q.push(vec![i; 100]);
        }
        drop(q);
    }

    #[test]
    fn drop_reclaims_freelist_nodes() {
        // The freelist's nodes have moved-out payloads; Drop must free the
        // boxes without dropping values (Miri catches both leak and double
        // free).
        let q: MpscQueue<Vec<u8>> = MpscQueue::new();
        for i in 0..10 {
            q.push_pooled(vec![i; 100]);
        }
        q.drain_recycle(drop);
        for i in 0..4 {
            q.push_pooled(vec![i; 100]); // leave some pool nodes in use
        }
        drop(q);
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        const PRODUCERS: u64 = 4;
        const PER: u64 = 1_000;
        let q = Arc::new(MpscQueue::<u64>::new());
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        q.push(p * PER + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        q.drain(|v| got.push(v));
        assert_eq!(got.len(), (PRODUCERS * PER) as usize);
        // Per-producer FIFO: each producer's values appear in order.
        for p in 0..PRODUCERS {
            let seq: Vec<u64> = got.iter().copied().filter(|v| v / PER == p).collect();
            assert_eq!(seq, (p * PER..(p + 1) * PER).collect::<Vec<_>>());
        }
    }

    #[test]
    fn concurrent_pooled_producers_lose_nothing() {
        // Warm the pool, then race pooled pushes: values survive, pool
        // hand-out never double-claims (each value appears exactly once).
        const PRODUCERS: u64 = 4;
        const PER: u64 = 500;
        let q = Arc::new(MpscQueue::<u64>::new());
        for i in 0..100 {
            q.push_pooled(i);
        }
        q.drain_recycle(drop);
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        q.push_pooled(1_000_000 + p * PER + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        q.drain_recycle(|v| got.push(v));
        got.sort_unstable();
        let want: Vec<u64> = (0..PRODUCERS * PER).map(|i| 1_000_000 + i).collect();
        assert_eq!(
            got, want,
            "no value lost or duplicated under racing pooled pushes"
        );
    }
}
