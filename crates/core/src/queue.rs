//! A lock-free multi-producer single-consumer queue.
//!
//! Replaces `crossbeam::queue::SegQueue` for the kernels' inboxes (the real
//! crate is unavailable in offline builds) and is deliberately simpler: an
//! atomic exchange ("Treiber") stack that producers push onto with a CAS
//! loop, which the consumer detaches wholesale and reverses, restoring
//! per-producer FIFO order.
//!
//! This matches how every kernel consumes its inboxes — a full drain between
//! synchronization points — and has the memory-ordering contract the
//! mailboxes document: `push` is a `Release` operation and the consumer's
//! detach is an `Acquire` operation, so everything written before a `push`
//! happens-before the closure invocation in [`MpscQueue::drain`] that
//! receives the value. The `crates/core/tests/loom_models.rs` model
//! `mailbox_handoff_happens_before` machine-checks that edge.
//!
//! Ordering across *different* producers is the physical CAS arrival order,
//! exactly like `SegQueue`: callers that need determinism (the Unison
//! mailboxes) keep one queue per (source, destination) pair; callers that
//! are documented-nondeterministic (the barrier / null-message baselines)
//! share one inbox per destination.

use core::marker::PhantomData;
use core::ptr;

use crate::sync_shim::{AtomicUsize, Ordering};

/// One linked node. Heap ownership transfers producer → queue → consumer.
struct Node<T> {
    value: T,
    next: *mut Node<T>,
}

/// Lock-free MPSC queue (see module docs).
pub struct MpscQueue<T> {
    /// Top of the exchange stack as a `*mut Node<T>` address (0 = empty).
    head: AtomicUsize,
    _marker: PhantomData<Box<Node<T>>>,
}

// SAFETY: values of `T` are moved through the queue between threads, which
// requires `T: Send`; the queue itself holds no thread-affine state and all
// shared mutation goes through `head` with Release/Acquire ordering.
unsafe impl<T: Send> Send for MpscQueue<T> {}
// SAFETY: as above — concurrent `push` calls synchronize on the CAS, and the
// consumer takes whole chains with an Acquire swap before touching nodes.
unsafe impl<T: Send> Sync for MpscQueue<T> {}

impl<T> Default for MpscQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MpscQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        MpscQueue {
            head: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Appends `value`. Callable from any thread; lock-free (a CAS loop that
    /// only retries when another producer won the race).
    pub fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            value,
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` came from `Box::into_raw` above and has not
            // been published yet, so this thread still owns it exclusively.
            unsafe { (*node).next = head as *mut Node<T> };
            // Release on success: publishes the node's contents (and
            // everything sequenced before this `push`) to the consumer's
            // Acquire detach.
            match self.head.compare_exchange(
                head,
                node as usize,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// Detaches everything pushed so far and invokes `f` on each value in
    /// per-producer FIFO order.
    ///
    /// Single consumer: concurrent `drain` calls would each take a disjoint
    /// chain (still safe), but the kernels' discipline is one consumer per
    /// queue between synchronization points.
    pub fn drain(&self, mut f: impl FnMut(T)) {
        // Acquire: pairs with the Release CAS in `push`.
        let mut cur = self.head.swap(0, Ordering::Acquire) as *mut Node<T>;
        // The stack holds newest-first; reverse in place to recover FIFO.
        let mut prev: *mut Node<T> = ptr::null_mut();
        while !cur.is_null() {
            // SAFETY: the swap above transferred exclusive ownership of the
            // whole chain to this thread; `cur` walks only that chain.
            let next = unsafe { (*cur).next };
            // SAFETY: as above — exclusive ownership of `cur`.
            unsafe { (*cur).next = prev };
            prev = cur;
            cur = next;
        }
        let mut cur = prev;
        while !cur.is_null() {
            // SAFETY: each node was allocated by `Box::new` in `push` and is
            // visited exactly once, so re-boxing reclaims it exactly once.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next;
            f(node.value);
        }
    }

    /// Whether the queue was empty at the time of the check. Racy by nature
    /// (a producer can push immediately after); callers use it only as a
    /// wake-up hint under an external lock.
    pub fn is_empty(&self) -> bool {
        // Acquire so a true "non-empty" answer also makes the observed
        // node's payload visible if the caller goes on to drain.
        self.head.load(Ordering::Acquire) == 0
    }
}

impl<T> Drop for MpscQueue<T> {
    fn drop(&mut self) {
        self.drain(drop);
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn drain_preserves_fifo_per_producer() {
        let q: MpscQueue<u32> = MpscQueue::new();
        assert!(q.is_empty());
        for i in 0..100 {
            q.push(i);
        }
        assert!(!q.is_empty());
        let mut got = Vec::new();
        q.drain(|v| got.push(v));
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn drain_on_empty_is_noop() {
        let q: MpscQueue<String> = MpscQueue::new();
        let mut n = 0;
        q.drain(|_| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn drop_reclaims_pending_nodes() {
        // Detected by sanitizers / Miri if nodes leaked or double-freed.
        let q: MpscQueue<Vec<u8>> = MpscQueue::new();
        for i in 0..10 {
            q.push(vec![i; 100]);
        }
        drop(q);
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        const PRODUCERS: u64 = 4;
        const PER: u64 = 1_000;
        let q = Arc::new(MpscQueue::<u64>::new());
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        q.push(p * PER + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        q.drain(|v| got.push(v));
        assert_eq!(got.len(), (PRODUCERS * PER) as usize);
        // Per-producer FIFO: each producer's values appear in order.
        for p in 0..PRODUCERS {
            let seq: Vec<u64> = got.iter().copied().filter(|v| v / PER == p).collect();
            assert_eq!(seq, (p * PER..(p + 1) * PER).collect::<Vec<_>>());
        }
    }
}
