//! Logical-process state and the shared LP slot table.
//!
//! Each LP exclusively owns a set of nodes and a future event list. During
//! the parallel phases of a round, worker threads claim LPs through an
//! atomic cursor (each LP is claimed by exactly one thread per phase), so
//! mutable access to the slots is race-free even though the container is
//! shared. [`LpSlots`] encapsulates that pattern behind a small unsafe
//! surface with the claim discipline documented at every call site.

use std::cell::UnsafeCell;

use crate::sync_shim::CachePadded;

use crate::event::{Event, LpId};
use crate::fel::Fel;
use crate::global::GlobalFn;
use crate::time::Time;
use crate::world::{NodeDirectory, SimNode};

/// A global event scheduled by a node mid-round, waiting to be merged into
/// the public LP by the main thread.
pub struct PendingGlobal<N: SimNode> {
    /// Absolute execution time.
    pub ts: Time,
    /// Virtual time at which it was scheduled (tie-break data).
    pub sender_ts: Time,
    /// The event body.
    pub f: GlobalFn<N>,
}

/// The state exclusively owned by one logical process.
pub struct LpState<N: SimNode> {
    /// This LP's id.
    pub id: LpId,
    /// Nodes owned by this LP, in ascending node-id order.
    pub nodes: Vec<N>,
    /// This LP's future event list.
    pub fel: Fel<N::Payload>,
    /// Monotone per-LP sequence counter for tie-break keys.
    pub seq: u64,
    /// Cross-LP events without a pre-allocated mailbox (routed by the main
    /// thread between phases).
    pub outflow: Vec<Event<N::Payload>>,
    /// Global events scheduled by this LP's nodes during the current round.
    pub pending_globals: Vec<PendingGlobal<N>>,
    /// Cached timestamp of the next local event (refreshed in the receive
    /// phase; input to the window computation).
    pub next_ts: Time,
    /// Measured processing cost of the last executed round, in nanoseconds
    /// (the default `ByLastRoundTime` scheduling metric).
    pub last_cost_ns: u64,
    /// Number of events pending in the next window (the `ByPendingEvents`
    /// scheduling metric, refreshed when that metric is active).
    pub pending_events: u64,
    /// Events processed by this LP in the current round (metrics).
    pub round_events: u64,
    /// Events received from mailboxes in the current round (metrics).
    pub round_recv: u64,
    /// Total events processed by this LP over the whole run.
    pub total_events: u64,
    /// Locality proxy: number of consecutive processed events whose target
    /// node differs from the previous event's node (the quantity the paper's
    /// fine-grained partition reduces; stands in for cache-miss counters).
    pub node_switches: u64,
    /// Node id handled by the most recent event (for `node_switches`).
    pub last_node: u32,
}

impl<N: SimNode> LpState<N> {
    /// Creates an empty LP with the default FEL implementation.
    pub fn new(id: LpId) -> Self {
        Self::with_fel(id, crate::fel::FelImpl::default())
    }

    /// Creates an empty LP whose FEL is backed by `fel_impl`
    /// (`RunConfig::fel`).
    pub fn with_fel(id: LpId, fel_impl: crate::fel::FelImpl) -> Self {
        LpState {
            id,
            nodes: Vec::new(),
            fel: Fel::with_impl(fel_impl),
            seq: 0,
            outflow: Vec::new(),
            pending_globals: Vec::new(),
            next_ts: Time::MAX,
            last_cost_ns: 0,
            pending_events: 0,
            round_events: 0,
            round_recv: 0,
            total_events: 0,
            node_switches: 0,
            last_node: u32::MAX,
        }
    }

    /// Refreshes the cached next-event timestamp.
    #[inline]
    pub fn refresh_next_ts(&mut self) {
        self.next_ts = self.fel.next_ts();
    }
}

/// A shared table of LP slots with phase-disciplined mutable access.
///
/// # Access discipline
///
/// During a parallel phase, each slot index is claimed by exactly one worker
/// (via an atomic cursor over a permutation of indices), giving that worker
/// exclusive access. Between phases — separated by barriers that establish
/// happens-before — only the main thread touches slots. All mutable access
/// funnels through [`LpSlots::get_mut`], whose safety contract states this
/// invariant.
///
/// # Claim auditing (`claim-audit` feature, on by default)
///
/// Each slot carries an owner tag `(generation << 8) | owner_id` in a
/// parallel atomic array. `get_mut` stamps the tag with the calling thread's
/// owner id and the current phase generation and panics deterministically if
/// a *different* thread already claimed the slot in the *same* generation —
/// the double claim that would make the `unsafe` contract a lie. Kernels
/// bump the generation with [`LpSlots::begin_phase`] at every phase
/// boundary (from inside the main-exclusive window, so the bump itself
/// cannot race with claims). The tags are diagnostic metadata, not part of
/// the synchronization protocol: they use plain `std` atomics with
/// `Relaxed` ordering and never establish happens-before edges, so enabling
/// the audit cannot mask a real race, and simulation results are
/// bit-identical with the feature on or off.
pub struct LpSlots<N: SimNode> {
    slots: Vec<CachePadded<UnsafeCell<LpState<N>>>>,
    directory: NodeDirectory,
    // Padded: with the audit on, every claimant swaps its LP's owner
    // word each phase — unpadded they'd false-share across workers.
    #[cfg(feature = "claim-audit")]
    owners: Vec<CachePadded<std::sync::atomic::AtomicU32>>,
    #[cfg(feature = "claim-audit")]
    phase: std::sync::atomic::AtomicU32,
}

/// Per-thread auditor identity: 0 is "free", claimants get 1..=255.
/// Ids recycle modulo 255, so with >255 live threads two threads could
/// share an id and a double claim between them would go unreported — an
/// accepted diagnostic limitation (the kernels spawn at most one thread
/// per core).
#[cfg(feature = "claim-audit")]
fn claim_owner_id() -> u32 {
    use std::sync::atomic::{AtomicU32, Ordering};
    static NEXT: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static OWNER: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    }
    OWNER.with(|o| {
        let mut id = o.get();
        if id == 0 {
            id = NEXT.fetch_add(1, Ordering::Relaxed) % 255 + 1;
            o.set(id);
        }
        id
    })
}

// SAFETY: `LpSlots` hands out `&mut LpState` only through `get_mut`, whose
// contract requires callers to hold an exclusive claim on that index (atomic
// cursor during parallel phases, main-thread exclusivity between barriers).
// `LpState<N>: Send` because `N: Send` and payloads are `Send`.
unsafe impl<N: SimNode> Sync for LpSlots<N> {}

impl<N: SimNode> LpSlots<N> {
    /// Wraps LP states into a shared slot table.
    pub fn new(lps: Vec<LpState<N>>, directory: NodeDirectory) -> Self {
        #[cfg(feature = "claim-audit")]
        let owners = (0..lps.len())
            .map(|_| CachePadded::new(std::sync::atomic::AtomicU32::new(0)))
            .collect();
        LpSlots {
            slots: lps
                .into_iter()
                .map(|lp| CachePadded::new(UnsafeCell::new(lp)))
                .collect(),
            directory,
            #[cfg(feature = "claim-audit")]
            owners,
            #[cfg(feature = "claim-audit")]
            phase: std::sync::atomic::AtomicU32::new(0),
        }
    }

    /// Advances the claim-audit phase generation. Call from a context that
    /// is exclusive with respect to all claimants (the main thread between
    /// barriers); claims stamped with an older generation are thereby
    /// released. No-op with the `claim-audit` feature disabled.
    #[inline]
    pub fn begin_phase(&self) {
        #[cfg(feature = "claim-audit")]
        self.phase
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Stamps the claim tag for `idx` and panics on a double claim.
    #[cfg(feature = "claim-audit")]
    fn audit_claim(&self, idx: usize) {
        use std::sync::atomic::Ordering;
        // 24 bits of generation: wraps after ~16.7M phase boundaries, at
        // which point a slot untouched for exactly 2^24 generations could
        // alias — an accepted diagnostic limitation.
        let generation = self.phase.load(Ordering::Relaxed) & 0x00FF_FFFF;
        let me = claim_owner_id();
        let prev = self.owners[idx].swap((generation << 8) | me, Ordering::Relaxed);
        let (prev_gen, prev_owner) = (prev >> 8, prev & 0xFF);
        if prev_owner != 0 && prev_owner != me && prev_gen == generation {
            panic!(
                "claim-audit: double claim of LP slot {idx} in phase \
                 generation {generation}: owner {prev_owner} already holds \
                 the claim and owner {me} claimed it again (two threads \
                 raced on one slot, or a phase boundary is missing a \
                 begin_phase call)"
            );
        }
    }

    /// Number of LPs.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The node → (LP, local slot) directory.
    #[inline]
    pub fn directory(&self) -> &NodeDirectory {
        &self.directory
    }

    /// Returns exclusive access to one LP slot.
    ///
    /// # Safety
    ///
    /// The caller must hold an exclusive claim on `idx`: either it popped
    /// `idx` from the phase's atomic work cursor (each index is handed out
    /// at most once per phase and phases are separated by barriers), or it
    /// is the main thread executing between barriers while all workers wait.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, idx: usize) -> &mut LpState<N> {
        #[cfg(feature = "claim-audit")]
        self.audit_claim(idx);
        // SAFETY: forwarded to the caller — the function's contract requires
        // an exclusive claim on `idx`, making this the only live reference.
        unsafe { &mut *self.slots[idx].get() }
    }

    /// Consumes the table, returning the LP states (after all threads have
    /// been joined).
    pub fn into_inner(self) -> (Vec<LpState<N>>, NodeDirectory) {
        let lps = self
            .slots
            .into_iter()
            .map(|c| CachePadded::into_inner(c).into_inner())
            .collect();
        (lps, self.directory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NodeId;
    use crate::world::{SimCtx, SimNode};

    struct Nop;
    impl SimNode for Nop {
        type Payload = ();
        fn handle(&mut self, _p: (), _ctx: &mut dyn SimCtx<Self>) {}
    }

    #[test]
    fn slots_roundtrip() {
        let mut lp0 = LpState::<Nop>::new(LpId(0));
        lp0.nodes.push(Nop);
        let lp1 = LpState::<Nop>::new(LpId(1));
        let dir = NodeDirectory::from_lp_nodes(1, &[vec![NodeId(0)], vec![]]);
        let slots = LpSlots::new(vec![lp0, lp1], dir);
        assert_eq!(slots.len(), 2);
        // SAFETY: single-threaded test; trivially exclusive.
        unsafe {
            slots.get_mut(0).seq = 42;
        }
        let (lps, dir) = slots.into_inner();
        assert_eq!(lps[0].seq, 42);
        assert_eq!(dir.lp_of(NodeId(0)), LpId(0));
    }
}
