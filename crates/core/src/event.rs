//! Events and the deterministic tie-breaking key.
//!
//! A discrete event carries *when* (timestamp), *where* (node) and *what*
//! (model-defined payload). Ordering uses the paper's §5.2 tie-breaking rule
//! so that simultaneous events have a total, reproducible order regardless
//! of how many threads executed the run:
//!
//! 1. smaller timestamp first;
//! 2. then smaller *sender timestamp* (the virtual time at which the event
//!    was scheduled);
//! 3. then smaller sender LP id;
//! 4. then smaller per-LP sequence number.
//!
//! Because sequence numbers are unique per sender LP, the order is total.

use crate::time::Time;

/// Identifier of a simulated node (host or switch). Dense, assigned by the
/// [`WorldBuilder`](crate::world::WorldBuilder) in insertion order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a logical process produced by the partitioner.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LpId(pub u32);

impl LpId {
    /// Sentinel LP id used for events scheduled before the simulation starts
    /// (from the world builder) and for the public LP.
    pub const EXTERNAL: LpId = LpId(u32::MAX);

    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The deterministic total-order key of an event (§5.2 tie-breaking rule).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventKey {
    /// Execution timestamp.
    pub ts: Time,
    /// Virtual time at which the sender scheduled this event.
    pub sender_ts: Time,
    /// LP that scheduled this event.
    pub sender_lp: LpId,
    /// Sequence number, unique and monotonically increasing per sender LP.
    pub seq: u64,
}

impl EventKey {
    /// Key for an event injected before the simulation starts. `seq` must be
    /// unique among all externally injected events.
    pub fn external(ts: Time, seq: u64) -> Self {
        EventKey {
            ts,
            sender_ts: Time::ZERO,
            sender_lp: LpId::EXTERNAL,
            seq,
        }
    }
}

/// A discrete event bound for `node`, carrying a model-defined payload.
#[derive(Debug)]
pub struct Event<P> {
    /// Total-order key (timestamp + tie-break fields).
    pub key: EventKey,
    /// Destination node whose handler will consume the payload.
    pub node: NodeId,
    /// Model-defined message.
    pub payload: P,
}

impl<P> Event<P> {
    /// Execution timestamp shorthand.
    #[inline]
    pub fn ts(&self) -> Time {
        self.key.ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_orders_by_ts_first() {
        let a = EventKey {
            ts: Time(1),
            sender_ts: Time(99),
            sender_lp: LpId(9),
            seq: 99,
        };
        let b = EventKey {
            ts: Time(2),
            sender_ts: Time(0),
            sender_lp: LpId(0),
            seq: 0,
        };
        assert!(a < b);
    }

    #[test]
    fn tie_break_sender_ts_then_lp_then_seq() {
        let base = EventKey {
            ts: Time(5),
            sender_ts: Time(3),
            sender_lp: LpId(2),
            seq: 7,
        };
        let later_sender_ts = EventKey {
            sender_ts: Time(4),
            ..base
        };
        let later_lp = EventKey {
            sender_lp: LpId(3),
            ..base
        };
        let later_seq = EventKey { seq: 8, ..base };
        assert!(base < later_sender_ts);
        assert!(base < later_lp);
        assert!(base < later_seq);
    }

    #[test]
    fn external_key_sorts_after_lp_keys_at_same_instant() {
        // EXTERNAL is u32::MAX, so among identical (ts, sender_ts) the
        // externally injected event sorts last — stable and documented.
        let lp = EventKey {
            ts: Time(5),
            sender_ts: Time::ZERO,
            sender_lp: LpId(0),
            seq: 0,
        };
        let ext = EventKey::external(Time(5), 0);
        assert!(lp < ext);
    }
}
