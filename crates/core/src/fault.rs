//! Deterministic fault injection and the self-healing resilient driver
//! (DESIGN.md §4.7).
//!
//! PR 2 made worker failures *containable* (`try_run` returns a structured
//! [`SimError`] instead of hanging or aborting the process); this module
//! makes them *survivable* and — equally important — *testable*:
//!
//! - [`FaultPlan`] describes runtime faults at exact, reproducible points
//!   in the kernel's deterministic round/phase structure: a worker panic at
//!   round R in phase P, a mailbox-delivery stall, a barrier-arrival delay,
//!   a checkpoint-write failure, a simulated allocation failure in the FEL
//!   layer. Because the trigger coordinates (round, phase, worker, virtual
//!   time) are part of the deterministic execution structure, the same plan
//!   fires identically at 1, 2, or 4 threads.
//! - [`run_resilient`] wraps [`kernel::try_run`]: it pins the partition,
//!   writes an initial (t = 0) checkpoint, installs the periodic checkpoint
//!   chain, and on any *contained* failure rolls back to the newest usable
//!   checkpoint (skipping corrupt files), optionally degrades the thread
//!   pool, sleeps an exponential backoff, and retries — recording every
//!   rollback in a [`RecoveryLog`] surfaced via
//!   [`RunReport::recovery`](crate::metrics::RunReport::recovery).
//!
//! Checkpoints are bit-deterministic (DESIGN.md §4.2) and thread-count
//! invariance is a core kernel property, so a recovered run — even one that
//! finished on fewer workers than it started with — produces a final world
//! digest bit-identical to the run that never failed. The fault matrix
//! (`crates/core/tests/fault_matrix.rs`) pins exactly that.
//!
//! The injection call sites in the kernels compile to nothing unless the
//! `fault-inject` cargo feature is on (enforced by xtask lint rule
//! `fault-gate`); the plan type and the resilient driver are always
//! available, so production code can call [`run_resilient`] without
//! carrying any hook code in its hot paths.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
// Instant is waived for this file by xtask lint (recovery wall-cost
// accounting happens between attempts, never on a simulation hot path).
use std::time::Instant;

use crate::checkpoint::{self, CheckpointConfig, Snapshot, SnapshotError};
use crate::error::{RunPhase, SimError};
use crate::kernel::{self, KernelKind, PartitionMode, RunConfig};
use crate::metrics::RunReport;
use crate::time::Time;
use crate::world::{SimNode, World};

// ---------------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------------

/// One injectable fault, addressed by deterministic run coordinates.
///
/// "Round" is the kernel's synchronization round for the round-based
/// kernels (Unison, hybrid, barrier, null-message; the first round is 1)
/// and the 1-based node-event index for the sequential kernel, which has no
/// rounds. "Worker" is the kernel's worker index; worker 0 always exists
/// (it is the main thread in the Unison and hybrid kernels), so plans
/// keyed to worker 0 are valid at every thread count.
#[derive(Clone, Debug)]
pub enum FaultKind {
    /// Panic on `worker` at the start of `phase` in `round` — the fault the
    /// containment layer turns into [`SimError::WorkerPanic`].
    WorkerPanic {
        /// Synchronization round (sequential: node-event index), 1-based.
        round: u64,
        /// Phase within the round the panic fires in.
        phase: RunPhase,
        /// Worker index the panic fires on.
        worker: usize,
    },
    /// Suspend `worker` for `millis` of wall time at the start of its
    /// receive (mailbox-drain) phase in `round` — long enough, under a
    /// tight [`WatchdogConfig`](crate::kernel::WatchdogConfig), to trip the
    /// round-progress watchdog into [`SimError::Stalled`].
    MailboxStall {
        /// Synchronization round, 1-based.
        round: u64,
        /// Worker index to suspend.
        worker: usize,
        /// Wall-clock suspension in milliseconds.
        millis: u64,
    },
    /// Suspend `worker` for `millis` just before its end-of-round barrier
    /// arrival in `round` (a late-arrival fault: every other worker spins).
    BarrierDelay {
        /// Synchronization round, 1-based.
        round: u64,
        /// Worker index to delay.
        worker: usize,
        /// Wall-clock delay in milliseconds.
        millis: u64,
    },
    /// Fail the first checkpoint write whose virtual time is `>= at` with a
    /// simulated I/O error. The checkpoint chain treats a failed write as a
    /// contained panic (`RunPhase::Global`), so this exercises the
    /// "safety net itself failed" recovery path.
    CheckpointFail {
        /// Earliest virtual time at which a checkpoint write fails.
        at: Time,
    },
    /// Simulated out-of-memory: the next FEL insertion on `worker` after
    /// the start of `round`'s process phase panics, as a failing
    /// allocation in the event-engine layer would. The arm persists until
    /// that insertion happens (which LPs a worker claims in any one round
    /// is workload-dependent); a worker that never inserts again leaves
    /// the fault unfired.
    AllocFail {
        /// Synchronization round, 1-based.
        round: u64,
        /// Worker index whose next FEL push fails.
        worker: usize,
    },
}

/// A [`FaultKind`] plus its fire-once latch.
///
/// The latch is shared across clones of the plan (and therefore across
/// [`run_resilient`] retry attempts): each fault fires exactly once per
/// plan lifetime, so a recovered run does not re-hit the same fault on
/// replay — the semantics of a transient fault.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// What to inject and where.
    pub kind: FaultKind,
    armed: Arc<AtomicBool>,
}

impl FaultSpec {
    fn new(kind: FaultKind) -> Self {
        FaultSpec {
            kind,
            armed: Arc::new(AtomicBool::new(true)),
        }
    }

    /// Consumes the latch; `true` exactly once per plan lifetime.
    #[cfg(feature = "fault-inject")]
    fn take(&self) -> bool {
        self.armed.swap(false, Ordering::Relaxed)
    }

    /// Whether this fault has not fired yet.
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }
}

/// A deterministic fault-injection plan, attached to a run via
/// [`RunConfig::with_faults`](crate::kernel::RunConfig::with_faults).
///
/// The default (empty) plan injects nothing. With the `fault-inject` cargo
/// feature off, plans are inert: the kernel call sites that would consult
/// them are compiled out.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a [`FaultKind::WorkerPanic`].
    pub fn worker_panic(mut self, round: u64, phase: RunPhase, worker: usize) -> Self {
        self.specs.push(FaultSpec::new(FaultKind::WorkerPanic {
            round,
            phase,
            worker,
        }));
        self
    }

    /// Adds a [`FaultKind::MailboxStall`].
    pub fn mailbox_stall(mut self, round: u64, worker: usize, millis: u64) -> Self {
        self.specs.push(FaultSpec::new(FaultKind::MailboxStall {
            round,
            worker,
            millis,
        }));
        self
    }

    /// Adds a [`FaultKind::BarrierDelay`].
    pub fn barrier_delay(mut self, round: u64, worker: usize, millis: u64) -> Self {
        self.specs.push(FaultSpec::new(FaultKind::BarrierDelay {
            round,
            worker,
            millis,
        }));
        self
    }

    /// Adds a [`FaultKind::CheckpointFail`].
    pub fn checkpoint_fail(mut self, at: Time) -> Self {
        self.specs
            .push(FaultSpec::new(FaultKind::CheckpointFail { at }));
        self
    }

    /// Adds a [`FaultKind::AllocFail`].
    pub fn alloc_fail(mut self, round: u64, worker: usize) -> Self {
        self.specs
            .push(FaultSpec::new(FaultKind::AllocFail { round, worker }));
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The planned faults, in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }
}

// ---------------------------------------------------------------------------
// Injection hooks (compiled only under the `fault-inject` feature)
// ---------------------------------------------------------------------------

#[cfg(feature = "fault-inject")]
thread_local! {
    /// Armed by `fire_phase` when an `AllocFail` matches the current
    /// worker's process phase; consumed by that thread's next `Fel::push`
    /// via [`alloc_check`], however many rounds later that happens (which
    /// LPs a worker claims in any one round is workload-dependent).
    /// Thread-local (not a process global) so concurrently running
    /// simulations — e.g. parallel tests — never see each other's
    /// injected failures.
    static ALLOC_ARMED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Simulated allocation-failure point, called from `Fel::push` (gated).
/// Panics exactly once after an [`FaultKind::AllocFail`] armed this thread.
#[cfg(feature = "fault-inject")]
pub(crate) fn alloc_check() {
    ALLOC_ARMED.with(|c| {
        if c.replace(false) {
            panic!("injected fault: allocation failure in FEL push");
        }
    });
}

#[cfg(feature = "fault-inject")]
impl FaultPlan {
    /// Phase-entry hook: fires matching [`FaultKind::WorkerPanic`] faults
    /// and arms matching [`FaultKind::AllocFail`] faults (process phase
    /// only). Called by the kernels at the start of each phase.
    pub(crate) fn fire_phase(&self, round: u64, phase: RunPhase, worker: usize) {
        for s in &self.specs {
            match s.kind {
                FaultKind::WorkerPanic {
                    round: r,
                    phase: p,
                    worker: w,
                } if r == round && p == phase && w == worker && s.take() => {
                    panic!(
                        "injected fault: worker {worker} panic in round {round} \
                         ({phase} phase)"
                    );
                }
                FaultKind::AllocFail {
                    round: r,
                    worker: w,
                } if phase == RunPhase::Process && r == round && w == worker && s.take() => {
                    ALLOC_ARMED.with(|c| c.set(true));
                }
                _ => {}
            }
        }
    }

    /// Receive-phase hook: suspends the calling worker when a
    /// [`FaultKind::MailboxStall`] matches.
    pub(crate) fn fire_stall(&self, round: u64, worker: usize) {
        for s in &self.specs {
            if let FaultKind::MailboxStall {
                round: r,
                worker: w,
                millis,
            } = s.kind
            {
                if r == round && w == worker && s.take() {
                    std::thread::sleep(Duration::from_millis(millis));
                }
            }
        }
    }

    /// Pre-barrier hook: suspends the calling worker just before its
    /// end-of-round barrier arrival when a [`FaultKind::BarrierDelay`]
    /// matches.
    pub(crate) fn fire_barrier_delay(&self, round: u64, worker: usize) {
        for s in &self.specs {
            if let FaultKind::BarrierDelay {
                round: r,
                worker: w,
                millis,
            } = s.kind
            {
                if r == round && w == worker && s.take() {
                    std::thread::sleep(Duration::from_millis(millis));
                }
            }
        }
    }

    /// Checkpoint-write hook: `true` (fail this write) for the first write
    /// whose virtual time reaches a planned [`FaultKind::CheckpointFail`].
    pub(crate) fn fire_ckpt_fail(&self, now: Time) -> bool {
        for s in &self.specs {
            if let FaultKind::CheckpointFail { at } = s.kind {
                if now >= at && s.take() {
                    return true;
                }
            }
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Recovery policy and log
// ---------------------------------------------------------------------------

/// How [`run_resilient`] reacts to a contained failure.
#[derive(Clone, Debug)]
pub struct RecoveryPolicy {
    /// Where and how often checkpoints are written. The directory is
    /// created if missing; an initial (t = 0) image is always written so a
    /// failure before the first periodic checkpoint can still roll back.
    pub checkpoints: CheckpointConfig,
    /// Retry budget: total rollbacks allowed before the failure is
    /// returned to the caller (default 3).
    pub max_retries: u32,
    /// Base of the exponential retry backoff: attempt *n* sleeps
    /// `backoff_base * 2^n` before resuming (default 10 ms).
    pub backoff_base: Duration,
    /// Rebuild the pool *degraded* on retry: each rollback halves the
    /// worker count (Unison) or the per-host worker count (hybrid), never
    /// below 1 — the "failed worker stays dead" model. Thread count does
    /// not affect results, so degraded replays stay digest-identical
    /// (default off).
    pub degrade: bool,
}

impl RecoveryPolicy {
    /// A policy with the default retry budget (3), backoff base (10 ms)
    /// and no degradation.
    pub fn new(checkpoints: CheckpointConfig) -> Self {
        RecoveryPolicy {
            checkpoints,
            max_retries: 3,
            backoff_base: Duration::from_millis(10),
            degrade: false,
        }
    }

    /// Sets the retry budget.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Sets the exponential-backoff base.
    pub fn with_backoff_base(mut self, d: Duration) -> Self {
        self.backoff_base = d;
        self
    }

    /// Enables worker-pool degradation on retry.
    pub fn with_degrade(mut self, on: bool) -> Self {
        self.degrade = on;
        self
    }
}

/// One rollback performed by [`run_resilient`].
#[derive(Clone, Debug)]
pub struct RollbackRecord {
    /// Display form of the contained [`SimError`] that forced the rollback.
    pub fault: String,
    /// Synchronization round the failed attempt died in (the watchdog
    /// reports the last round that made progress).
    pub round: u64,
    /// Phase the failure happened in ([`RunPhase::Control`] for stalls).
    pub phase: RunPhase,
    /// Virtual time of the checkpoint the run rolled back to.
    pub rolled_back_to: Time,
    /// Rounds executed by the aborted attempt — an upper bound on the
    /// discarded work (checkpoints the attempt wrote before dying are
    /// reused, but the round ↔ checkpoint mapping is not recorded).
    pub rounds_lost: u64,
    /// Wall time spent on the aborted attempt plus the rollback itself
    /// (checkpoint scan + decode), excluding the backoff sleep.
    pub wall_cost: Duration,
    /// Corrupt checkpoint files skipped while scanning for a usable one.
    pub skipped_corrupt: u32,
    /// Worker count the pool was rebuilt with, when the policy degraded it
    /// (`None` when the count was unchanged).
    pub degraded_threads: Option<u32>,
    /// Backoff slept before this retry.
    pub backoff: Duration,
}

/// Rollback history of a resilient run, surfaced as
/// [`RunReport::recovery`](crate::metrics::RunReport::recovery).
#[derive(Clone, Debug, Default)]
pub struct RecoveryLog {
    /// Every rollback, in order.
    pub rollbacks: Vec<RollbackRecord>,
    /// Total wall time lost to failures: aborted attempts, rollbacks and
    /// backoff sleeps.
    pub total_recovery_wall: Duration,
}

impl RecoveryLog {
    /// Number of rollbacks performed.
    pub fn rollback_count(&self) -> usize {
        self.rollbacks.len()
    }
}

// ---------------------------------------------------------------------------
// The resilient driver
// ---------------------------------------------------------------------------

/// Runs a world with automatic rollback-and-retry on contained failures.
///
/// The driver:
///
/// 1. pins the partition (LP identity is part of the deterministic
///    tie-break keys, so every attempt must use the same assignment);
/// 2. writes an initial checkpoint at t = 0 and — for the Unison and
///    hybrid kernels, the ones that execute global events — installs the
///    periodic checkpoint chain of `policy.checkpoints`;
/// 3. runs [`kernel::try_run`]; on [`SimError::WorkerPanic`] or
///    [`SimError::Stalled`] it rolls back to the newest *usable* checkpoint
///    (corrupt files are skipped, older ones tried), optionally degrades
///    the worker pool, sleeps an exponential backoff and retries, up to
///    `policy.max_retries` rollbacks.
///
/// On success the returned report carries `Some(RecoveryLog)` — empty if no
/// failure happened. Configuration errors, checkpoint I/O errors and
/// exhausted retry budgets are returned as the original [`SimError`].
///
/// Checkpoints are bit-deterministic and results are thread-count
/// invariant, so a recovered run is digest-identical to one that never
/// failed — the invariant pinned by `crates/core/tests/fault_matrix.rs`.
///
/// Limitations (DESIGN.md §4.7): worlds carrying *user* global events
/// cannot be checkpointed (closures do not serialize) and are rejected
/// with [`SimError::Checkpoint`]; the sequential, barrier and null-message
/// kernels take no mid-run checkpoints (no global-event execution), so
/// recovery under them restarts from the initial image.
pub fn run_resilient<N>(
    world: World<N>,
    cfg: &RunConfig,
    policy: &RecoveryPolicy,
) -> Result<(World<N>, RunReport), SimError>
where
    N: SimNode + Snapshot,
    N::Payload: Snapshot,
{
    let partition = kernel::build_partition(&world, &cfg.partition)?;
    let assignment: Vec<u32> = partition.node_lp.iter().map(|lp| lp.0).collect();
    let mut run_cfg = cfg.clone();
    run_cfg.partition = PartitionMode::Manual(assignment);

    std::fs::create_dir_all(&policy.checkpoints.dir).map_err(SnapshotError::Io)?;
    let initial = policy.checkpoints.file_at(Time::ZERO);
    let mut world = checkpoint::write_initial(world, &partition, cfg.fel, &initial)?;

    // Only the kernels that execute global events (Unison, hybrid, and the
    // async-conservative kernel at its quiesced gates) can run the periodic
    // chain; the others roll back to t = 0.
    let with_chain = matches!(
        cfg.kernel,
        KernelKind::Unison { .. } | KernelKind::Hybrid { .. } | KernelKind::AsyncCons { .. }
    );
    if with_chain {
        checkpoint::schedule_checkpoints(&mut world, &policy.checkpoints);
    }

    let mut log = RecoveryLog::default();
    let mut attempt: u32 = 0;
    loop {
        let attempt_start = Instant::now();
        match kernel::try_run(world, &run_cfg) {
            Ok((w, mut report)) => {
                report.recovery = Some(log);
                return Ok((w, report));
            }
            Err(err @ (SimError::WorkerPanic { .. } | SimError::Stalled { .. })) => {
                if attempt >= policy.max_retries {
                    return Err(err);
                }
                let attempt_wall = attempt_start.elapsed();
                let rollback_start = Instant::now();

                let degraded_threads = if policy.degrade {
                    degrade_kernel(&mut run_cfg.kernel)
                } else {
                    None
                };
                let (restored, rolled_back_to, skipped_corrupt) =
                    select_rollback::<N>(policy, with_chain)?;
                world = restored;
                let wall_cost = attempt_wall + rollback_start.elapsed();

                let backoff = policy
                    .backoff_base
                    .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
                std::thread::sleep(backoff);

                let (round, phase, rounds_lost) = match &err {
                    SimError::WorkerPanic { diag, partial } => {
                        (diag.round, diag.phase, partial.rounds)
                    }
                    SimError::Stalled { diag, partial } => {
                        (diag.round, RunPhase::Control, partial.rounds)
                    }
                    // INVARIANT: the outer match arm only binds the two
                    // variants above into `err`.
                    _ => unreachable!("non-recoverable error in recovery arm"),
                };
                log.rollbacks.push(RollbackRecord {
                    fault: err.to_string(),
                    round,
                    phase,
                    rolled_back_to,
                    rounds_lost,
                    wall_cost,
                    skipped_corrupt,
                    degraded_threads,
                    backoff,
                });
                log.total_recovery_wall += wall_cost + backoff;
                attempt += 1;
            }
            Err(other) => return Err(other),
        }
    }
}

/// Halves the worker count of a degraded retry (never below 1). Returns
/// the new count, or `None` when the kernel has no pool to shrink (or is
/// already at 1 worker).
fn degrade_kernel(kernel: &mut KernelKind) -> Option<u32> {
    match kernel {
        KernelKind::Unison { threads } if *threads > 1 => {
            *threads = (*threads / 2).max(1);
            Some(*threads as u32)
        }
        KernelKind::Hybrid {
            threads_per_host, ..
        } if *threads_per_host > 1 => {
            *threads_per_host = (*threads_per_host / 2).max(1);
            Some(*threads_per_host as u32)
        }
        KernelKind::AsyncCons { threads } if *threads > 1 => {
            *threads = (*threads / 2).max(1);
            Some(*threads as u32)
        }
        _ => None,
    }
}

/// Restores the newest usable checkpoint: corrupt files are skipped (and
/// counted), older checkpoints tried, I/O errors propagated. Errors with
/// [`SimError::CorruptSnapshot`] when no file in the directory decodes.
fn select_rollback<N>(
    policy: &RecoveryPolicy,
    with_chain: bool,
) -> Result<(World<N>, Time, u32), SimError>
where
    N: SimNode + Snapshot,
    N::Payload: Snapshot,
{
    let mut skipped = 0u32;
    let mut files = checkpoint::list_checkpoints(&policy.checkpoints.dir)?;
    while let Some(path) = files.pop() {
        let chain = if with_chain {
            Some(&policy.checkpoints)
        } else {
            None
        };
        match checkpoint::resume::<N>(&path, chain) {
            Ok(resumed) => return Ok((resumed.world, resumed.time, skipped)),
            Err(SnapshotError::Corrupt(_)) => {
                skipped += 1;
                continue;
            }
            Err(e) => return Err(e.into()),
        }
    }
    Err(SimError::CorruptSnapshot {
        detail: format!(
            "no usable checkpoint in {} ({skipped} corrupt file(s) skipped)",
            policy.checkpoints.dir.display()
        ),
    })
}

/// The checkpoint files a resilient run would consider for rollback, in
/// ascending virtual-time order (a thin public re-export of the scan
/// [`select_rollback`] uses, handy for tests and operational tooling).
pub fn rollback_candidates(policy: &RecoveryPolicy) -> Result<Vec<PathBuf>, SimError> {
    Ok(checkpoint::list_checkpoints(&policy.checkpoints.dir)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_collects_specs_in_order() {
        let plan = FaultPlan::new()
            .worker_panic(3, RunPhase::Process, 0)
            .mailbox_stall(2, 1, 50)
            .barrier_delay(4, 0, 10)
            .checkpoint_fail(Time(1_000))
            .alloc_fail(5, 0);
        assert_eq!(plan.specs().len(), 5);
        assert!(!plan.is_empty());
        assert!(plan.specs().iter().all(|s| s.armed()));
        assert!(matches!(
            plan.specs()[0].kind,
            FaultKind::WorkerPanic { round: 3, .. }
        ));
        assert!(matches!(
            plan.specs()[3].kind,
            FaultKind::CheckpointFail { at: Time(1_000) }
        ));
    }

    #[test]
    fn clones_share_the_fire_once_latch() {
        let plan = FaultPlan::new().worker_panic(1, RunPhase::Process, 0);
        let clone = plan.clone();
        assert!(plan.specs()[0].armed());
        assert!(clone.specs()[0].armed());
        // Consuming through one clone disarms the other (shared Arc).
        plan.specs()[0].armed.store(false, Ordering::Relaxed);
        assert!(!clone.specs()[0].armed());
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn fire_phase_panics_once_at_exact_coordinates() {
        let plan = FaultPlan::new().worker_panic(2, RunPhase::Receive, 1);
        // Wrong round / phase / worker: no effect.
        plan.fire_phase(1, RunPhase::Receive, 1);
        plan.fire_phase(2, RunPhase::Process, 1);
        plan.fire_phase(2, RunPhase::Receive, 0);
        assert!(plan.specs()[0].armed());
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.fire_phase(2, RunPhase::Receive, 1);
        }));
        assert!(hit.is_err());
        // Fire-once: the same coordinates are inert afterwards.
        plan.fire_phase(2, RunPhase::Receive, 1);
        assert!(!plan.specs()[0].armed());
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn alloc_fail_arms_thread_local_and_fires_on_next_push() {
        let plan = FaultPlan::new().alloc_fail(1, 0);
        plan.fire_phase(1, RunPhase::Process, 0);
        assert!(!plan.specs()[0].armed(), "arming consumes the latch");
        // The arm persists across later phase entries until a push happens.
        plan.fire_phase(2, RunPhase::Process, 0);
        let hit = std::panic::catch_unwind(alloc_check);
        assert!(hit.is_err(), "armed alloc_check must panic");
        // The panic consumed the thread-local: the next check is clean.
        alloc_check();
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn ckpt_fail_fires_on_first_write_at_or_after_time() {
        let plan = FaultPlan::new().checkpoint_fail(Time(500));
        assert!(!plan.fire_ckpt_fail(Time(499)));
        assert!(plan.fire_ckpt_fail(Time(512)), "clamped write times match");
        assert!(!plan.fire_ckpt_fail(Time(512)), "fires only once");
    }

    #[test]
    fn degrade_halves_down_to_one_worker() {
        let mut k = KernelKind::Unison { threads: 4 };
        assert_eq!(degrade_kernel(&mut k), Some(2));
        assert_eq!(degrade_kernel(&mut k), Some(1));
        assert_eq!(degrade_kernel(&mut k), None, "floor at 1 worker");
        let mut k = KernelKind::Hybrid {
            hosts: 2,
            threads_per_host: 2,
        };
        assert_eq!(degrade_kernel(&mut k), Some(1));
        assert_eq!(degrade_kernel(&mut k), None);
        let mut k = KernelKind::Sequential { compat_keys: true };
        assert_eq!(degrade_kernel(&mut k), None, "no pool to shrink");
    }
}
