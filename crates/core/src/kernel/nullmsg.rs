//! The null-message (Chandy–Misra–Bryant) PDES baseline.
//!
//! One OS thread is pinned to each LP of a static partition. Instead of
//! global barriers, neighbor LPs exchange *channel clock* promises ("no
//! event earlier than t will ever arrive from this neighbor"): an LP may
//! safely process events up to the minimum of its input channel clocks.
//! After each processing step an LP eagerly refreshes its output promises —
//! the null messages — to `min(next local event, input safety) + channel
//! lookahead`, which is monotonically non-decreasing, so simulations with
//! positive lookahead on every channel never deadlock.
//!
//! Cross-LP events are delivered through a per-destination inbox and merged
//! into the destination FEL whenever the destination iterates; the channel
//! clocks alone bound what may be *processed*, so early delivery is safe
//! (every event's timestamp is at least the promise its sender had already
//! published).
//!
//! As with the barrier baseline, cross-LP arrival interleaving makes
//! repeated parallel runs nondeterministic, and global events are not
//! supported.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::event::Event;
use crate::lp::LpState;
use crate::metrics::{LpTotals, Psm, RunReport};
use crate::queue::MpscQueue;
use crate::time::Time;
use crate::world::{SimNode, World};

use super::barrier::PinnedCtx;
use super::{build_lps, build_partition, reassemble_world, KernelError, RunConfig};

/// Wake-up channel for one LP thread: version counter + condvar.
struct Waker {
    version: Mutex<u64>,
    cond: Condvar,
}

impl Waker {
    fn new() -> Self {
        Waker {
            version: Mutex::new(0),
            cond: Condvar::new(),
        }
    }

    /// Signals the owner that some input changed.
    fn bump(&self) {
        let mut v = self.version.lock().expect("waker lock poisoned");
        *v += 1;
        self.cond.notify_all();
    }
}

pub(super) fn run<N: SimNode>(
    world: World<N>,
    cfg: &RunConfig,
) -> Result<(World<N>, RunReport), KernelError> {
    if !world.init_globals.is_empty() {
        return Err(KernelError::GlobalEventsUnsupported("nullmsg"));
    }
    let partition = build_partition(&world, &cfg.partition)?;
    let channels = partition.lp_channels(&world.graph);
    let (lps, dir, graph, _globals, stop_at) = build_lps(world, &partition);
    let lp_count = lps.len();
    if lp_count == 0 {
        return Err(KernelError::InvalidPartition("world has no nodes".into()));
    }
    // Without a stop time, promise propagation on an empty FEL would creep
    // forward by one lookahead per exchange and never terminate; the CMB
    // kernel therefore requires an explicit horizon (as ns-3's does).
    let bound = match stop_at {
        Some(t) => t,
        None => {
            return Err(KernelError::InvalidConfig(
                "the null-message kernel requires a stop time".into(),
            ))
        }
    };

    // Directed channels: two per undirected LP pair. `chan_clock[c]` holds
    // the source's promise for that direction.
    let mut chan_src: Vec<u32> = Vec::new();
    let mut chan_dst: Vec<u32> = Vec::new();
    let mut chan_la: Vec<Time> = Vec::new();
    for (a, b, la) in &channels {
        chan_src.push(a.0);
        chan_dst.push(b.0);
        chan_la.push(*la);
        chan_src.push(b.0);
        chan_dst.push(a.0);
        chan_la.push(*la);
    }
    let chan_count = chan_src.len();
    let chan_clock: Vec<AtomicU64> = (0..chan_count).map(|_| AtomicU64::new(0)).collect();
    let mut in_chans: Vec<Vec<usize>> = vec![Vec::new(); lp_count];
    let mut out_chans: Vec<Vec<usize>> = vec![Vec::new(); lp_count];
    for c in 0..chan_count {
        out_chans[chan_src[c] as usize].push(c);
        in_chans[chan_dst[c] as usize].push(c);
    }

    let wakers: Vec<Waker> = (0..lp_count).map(|_| Waker::new()).collect();
    let stop_flag = AtomicBool::new(false);
    // Per-destination inboxes (arrival order is real-time interleaved).
    let inboxes: Vec<MpscQueue<Event<N::Payload>>> =
        (0..lp_count).map(|_| MpscQueue::new()).collect();

    let started = Instant::now();
    let mut results: Vec<(LpState<N>, Psm, Time, u64)> = Vec::with_capacity(lp_count);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (idx, mut lp) in lps.into_iter().enumerate() {
            let chan_clock = &chan_clock;
            let chan_la = &chan_la;
            let chan_dst = &chan_dst;
            let in_chans = &in_chans[idx];
            let out_chans = &out_chans[idx];
            let wakers = &wakers;
            let inboxes = &inboxes;
            let stop_flag = &stop_flag;
            let dir = &dir;
            handles.push(scope.spawn(move || {
                let mut psm = Psm::default();
                let mut insert_seq: u64 = lp.fel.len() as u64;
                let mut end_time = Time::ZERO;
                let mut iterations: u64 = 0;
                loop {
                    iterations += 1;
                    // Receive every delivered event (messaging time).
                    let t0 = Instant::now();
                    inboxes[idx].drain(|mut ev| {
                        ev.key.seq = insert_seq;
                        insert_seq += 1;
                        lp.fel.push(ev);
                    });
                    psm.m_ns += t0.elapsed().as_nanos() as u64;

                    // Safety bound: min over input channel clocks.
                    let mut safe = Time::MAX;
                    for &c in in_chans {
                        safe = safe.min(Time(chan_clock[c].load(Ordering::Acquire)));
                    }
                    let limit = safe.min(bound);

                    // Process events strictly below the limit.
                    let t0 = Instant::now();
                    let mut processed: u64 = 0;
                    while let Some(ev) = lp.fel.pop_below(limit) {
                        if ev.node.0 != lp.last_node {
                            lp.node_switches += 1;
                            lp.last_node = ev.node.0;
                        }
                        end_time = end_time.max(ev.key.ts);
                        let (owner, local) = dir.locate(ev.node);
                        debug_assert_eq!(owner, lp.id);
                        let node = &mut lp.nodes[local as usize];
                        let mut ctx = PinnedCtx::<N> {
                            now: ev.key.ts,
                            self_node: ev.node,
                            lp_id: lp.id,
                            fel: &mut lp.fel,
                            insert_seq: &mut insert_seq,
                            dir,
                            inboxes,
                            stop_flag,
                            kernel_name: "nullmsg",
                        };
                        node.handle(ev.payload, &mut ctx);
                        processed += 1;
                    }
                    lp.total_events += processed;
                    psm.p_ns += t0.elapsed().as_nanos() as u64;

                    // Null messages: refresh output promises. `lb` is a lower
                    // bound on the timestamp of anything this LP may still
                    // process, hence `lb + lookahead` bounds future sends.
                    let t0 = Instant::now();
                    let lb = lp.fel.next_ts().min(safe);
                    let finished = safe >= bound && lp.fel.next_ts() >= bound;
                    let mut wake: Vec<u32> = Vec::with_capacity(out_chans.len());
                    for &c in out_chans {
                        let promise = if finished {
                            Time::MAX
                        } else {
                            lb.saturating_add(chan_la[c])
                        };
                        let prev = chan_clock[c].fetch_max(promise.0, Ordering::AcqRel);
                        if prev < promise.0 || processed > 0 {
                            // A neighbor must re-check when our promise rose
                            // or when we may have sent it events.
                            let dst = chan_dst[c];
                            if !wake.contains(&dst) {
                                wake.push(dst);
                            }
                        }
                    }
                    for dst in wake {
                        wakers[dst as usize].bump();
                    }
                    psm.m_ns += t0.elapsed().as_nanos() as u64;

                    if finished || stop_flag.load(Ordering::Acquire) {
                        for &c in out_chans {
                            chan_clock[c].store(u64::MAX, Ordering::Release);
                            wakers[chan_dst[c] as usize].bump();
                        }
                        break;
                    }

                    if processed == 0 {
                        // No progress: sleep until an input changes. The
                        // version lock is held while re-checking, and every
                        // writer bumps under the same lock, so wake-ups are
                        // never lost.
                        let t0 = Instant::now();
                        let guard = wakers[idx].version.lock().expect("waker lock poisoned");
                        let mut cur = Time::MAX;
                        for &c in in_chans {
                            cur = cur.min(Time(chan_clock[c].load(Ordering::Acquire)));
                        }
                        if cur <= safe
                            && inboxes[idx].is_empty()
                            && !stop_flag.load(Ordering::Acquire)
                        {
                            let _guard = wakers[idx].cond.wait(guard).expect("waker lock poisoned");
                        }
                        psm.s_ns += t0.elapsed().as_nanos() as u64;
                    }
                }
                (lp, psm, end_time, iterations)
            }));
        }
        for h in handles {
            results.push(h.join().expect("LP thread panicked"));
        }
    });

    let wall = started.elapsed();
    results.sort_by_key(|(lp, ..)| lp.id);
    let rounds = results.iter().map(|r| r.3).max().unwrap_or(0);
    let end_time = results
        .iter()
        .map(|(_, _, t, _)| *t)
        .fold(Time::ZERO, Time::max);
    let psm: Vec<Psm> = results.iter().map(|(_, p, ..)| *p).collect();
    let lps: Vec<LpState<N>> = results.into_iter().map(|(lp, ..)| lp).collect();
    let lp_totals = LpTotals {
        events: lps.iter().map(|lp| lp.total_events).collect(),
        cost_ns: vec![0; lp_count],
        node_switches: lps.iter().map(|lp| lp.node_switches).collect(),
    };
    let events = lp_totals.events.iter().sum();
    let report = RunReport {
        kernel: "nullmsg".into(),
        wall,
        events,
        global_events: 0,
        rounds,
        lp_count: lp_count as u32,
        threads: lp_count as u32,
        lookahead: partition.lookahead,
        end_time,
        psm,
        lp_totals,
        rounds_profile: None,
    };
    let world = reassemble_world(lps, &partition, graph, stop_at);
    Ok((world, report))
}
