//! The null-message (Chandy–Misra–Bryant) PDES baseline.
//!
//! One OS thread is pinned to each LP of a static partition. Instead of
//! global barriers, neighbor LPs exchange *channel clock* promises ("no
//! event earlier than t will ever arrive from this neighbor"): an LP may
//! safely process events up to the minimum of its input channel clocks.
//! After each processing step an LP eagerly refreshes its output promises —
//! the null messages — to `min(next local event, input safety) + channel
//! lookahead`, which is monotonically non-decreasing, so simulations with
//! positive lookahead on every channel never deadlock.
//!
//! Cross-LP events are delivered through a per-destination inbox and merged
//! into the destination FEL whenever the destination iterates; the channel
//! clocks alone bound what may be *processed*, so early delivery is safe
//! (every event's timestamp is at least the promise its sender had already
//! published).
//!
//! As with the barrier baseline, cross-LP arrival interleaving makes
//! repeated parallel runs nondeterministic, and global events are not
//! supported.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::error::{
    panic_message, record_failure, FailureDiagnostics, RunPhase, SimError, StallDiagnostics,
};
use crate::event::{Event, LpId};
use crate::lp::LpState;
use crate::metrics::{EngineStats, LpTotals, Psm, RunReport, SchedStats};
use crate::queue::MpscQueue;
use crate::telemetry::{SpanKind, TelContext, WorkerTel};
use crate::time::Time;
use crate::world::{SimNode, World};

use super::barrier::PinnedCtx;
use super::watchdog::Watchdog;
use super::{build_lps, build_partition, reassemble_world, KernelError, RunConfig};

/// Wake-up channel for one LP thread: version counter + condvar.
struct Waker {
    version: Mutex<u64>,
    cond: Condvar,
}

impl Waker {
    fn new() -> Self {
        Waker {
            version: Mutex::new(0),
            cond: Condvar::new(),
        }
    }

    /// Signals the owner that some input changed.
    fn bump(&self) {
        // A poisoned waker lock (a bumper panicked mid-bump) must not take
        // the containment path down with it: the counter is a plain u64, so
        // the value is usable regardless.
        let mut v = self.version.lock().unwrap_or_else(|e| e.into_inner());
        *v += 1;
        self.cond.notify_all();
    }
}

/// Per-LP completion record: final state, P/S/M, local clock, iterations,
/// telemetry sink (thread = LP here, so spans carry the LP id).
type LpDone<N> = (LpState<N>, Psm, Time, u64, WorkerTel);

pub(super) fn run<N: SimNode>(
    world: World<N>,
    cfg: &RunConfig,
) -> Result<(World<N>, RunReport), SimError> {
    if !world.init_globals.is_empty() {
        return Err(KernelError::GlobalEventsUnsupported("nullmsg").into());
    }
    let partition = build_partition(&world, &cfg.partition)?;
    let channels = partition.lp_channels(&world.graph);
    let (lps, dir, graph, _globals, stop_at, _restored_ext_seq) =
        build_lps(world, &partition, cfg.fel);
    let lp_count = lps.len();
    if lp_count == 0 {
        return Err(KernelError::InvalidPartition("world has no nodes".into()).into());
    }
    // Without a stop time, promise propagation on an empty FEL would creep
    // forward by one lookahead per exchange and never terminate; the CMB
    // kernel therefore requires an explicit horizon (as ns-3's does).
    let bound = match stop_at {
        Some(t) => t,
        None => {
            return Err(KernelError::InvalidConfig(
                "the null-message kernel requires a stop time".into(),
            )
            .into())
        }
    };

    // Directed channels: two per undirected LP pair. `chan_clock[c]` holds
    // the source's promise for that direction.
    let mut chan_src: Vec<u32> = Vec::new();
    let mut chan_dst: Vec<u32> = Vec::new();
    let mut chan_la: Vec<Time> = Vec::new();
    for (a, b, la) in &channels {
        chan_src.push(a.0);
        chan_dst.push(b.0);
        chan_la.push(*la);
        chan_src.push(b.0);
        chan_dst.push(a.0);
        chan_la.push(*la);
    }
    let chan_count = chan_src.len();
    // PADDING: the null-message kernel is a comparison baseline; each
    // channel clock has a single writer (the source LP's current owner).
    let chan_clock: Vec<AtomicU64> = (0..chan_count).map(|_| AtomicU64::new(0)).collect();
    let mut in_chans: Vec<Vec<usize>> = vec![Vec::new(); lp_count];
    let mut out_chans: Vec<Vec<usize>> = vec![Vec::new(); lp_count];
    for c in 0..chan_count {
        out_chans[chan_src[c] as usize].push(c);
        in_chans[chan_dst[c] as usize].push(c);
    }

    let wakers: Vec<Waker> = (0..lp_count).map(|_| Waker::new()).collect();
    let stop_flag = AtomicBool::new(false);
    // Per-destination inboxes (arrival order is real-time interleaved).
    let inboxes: Vec<MpscQueue<Event<N::Payload>>> =
        (0..lp_count).map(|_| MpscQueue::new()).collect();

    let started = Instant::now();
    let mut results: Vec<Option<LpDone<N>>> = Vec::with_capacity(lp_count);

    // Telemetry: one sink per LP thread (DESIGN.md §4.3). No scheduler →
    // empty decision log; inbox events do not carry their sender (ns-3
    // semantics zero it), so no traffic matrix. The CMB iteration maps to
    // the span `round` field.
    let telctx = TelContext::new(&cfg.telemetry);
    let sched_log = telctx.sched_log();

    // Crash safety (DESIGN.md §4.2). Aborts (contained panic or watchdog)
    // raise the stop flag and bump every waker so sleeping LPs re-check it.
    let failure: Mutex<Option<FailureDiagnostics>> = Mutex::new(None);
    let wd = Watchdog::new();
    // Channel promises as they stood when the watchdog fired: the abort
    // drain overwrites the live clocks with `u64::MAX`, so the stall
    // diagnosis walks this snapshot instead.
    // PADDING: written only on the abort drain — a cold failure path.
    let stall_clocks: Vec<AtomicU64> = (0..chan_count).map(|_| AtomicU64::new(u64::MAX)).collect();

    std::thread::scope(|scope| {
        if let Some(deadline) = cfg.watchdog.round_deadline {
            let wd = &wd;
            let wakers = &wakers;
            let stop_flag = &stop_flag;
            let chan_clock = &chan_clock;
            let stall_clocks = &stall_clocks;
            scope.spawn(move || {
                wd.monitor(deadline, || {
                    for (snap, live) in stall_clocks.iter().zip(chan_clock.iter()) {
                        snap.store(live.load(Ordering::Acquire), Ordering::Release);
                    }
                    stop_flag.store(true, Ordering::Release);
                    for w in wakers.iter() {
                        w.bump();
                    }
                });
            });
        }

        let mut handles = Vec::new();
        for (idx, mut lp) in lps.into_iter().enumerate() {
            let chan_clock = &chan_clock;
            let chan_la = &chan_la;
            let chan_dst = &chan_dst;
            let in_chans = &in_chans[idx];
            let out_chans = &out_chans[idx];
            let wakers = &wakers;
            let inboxes = &inboxes;
            let stop_flag = &stop_flag;
            let dir = &dir;
            let failure = &failure;
            let wd = &wd;
            let telctx = &telctx;
            handles.push(scope.spawn(move || {
                // Failure site, readable after a contained panic.
                let iter_c: Cell<u64> = Cell::new(0);
                let vt_c: Cell<Time> = Cell::new(Time::ZERO);
                let body = catch_unwind(AssertUnwindSafe(|| {
                    let mut psm = Psm::default();
                    let mut tel = telctx.worker(idx as u32);
                    let mut insert_seq: u64 = lp.fel.len() as u64;
                    let mut end_time = Time::ZERO;
                    let mut iterations: u64 = 0;
                    loop {
                        iterations += 1;
                        iter_c.set(iterations);
                        // Receive every delivered event (messaging time).
                        let tel_start = tel.start();
                        let t0 = Instant::now();
                        let mut recv: u64 = 0;
                        inboxes[idx].drain(|mut ev| {
                            ev.key.seq = insert_seq;
                            insert_seq += 1;
                            lp.fel.push(ev);
                            recv += 1;
                        });
                        let m_cost = t0.elapsed().as_nanos() as u64;
                        psm.m_ns += m_cost;
                        if recv > 0 {
                            tel.span_dur(
                                SpanKind::MailboxFlush,
                                iterations,
                                idx as u32,
                                tel_start,
                                m_cost,
                                recv,
                                0,
                            );
                        }

                        // Abort drain: exit *before* processing anything further,
                        // so a watchdog/panic abort leaves every FEL (and hence
                        // the stall diagnosis) intact.
                        if stop_flag.load(Ordering::Acquire) {
                            for &c in out_chans {
                                chan_clock[c].store(u64::MAX, Ordering::Release);
                                wakers[chan_dst[c] as usize].bump();
                            }
                            break;
                        }

                        // Safety bound: min over input channel clocks.
                        let mut safe = Time::MAX;
                        for &c in in_chans {
                            safe = safe.min(Time(chan_clock[c].load(Ordering::Acquire)));
                        }
                        let limit = safe.min(bound);

                        // Process events strictly below the limit.
                        let tel_start = tel.start();
                        let t0 = Instant::now();
                        let mut processed: u64 = 0;
                        while let Some(ev) = lp.fel.pop_below(limit) {
                            if ev.node.0 != lp.last_node {
                                lp.node_switches += 1;
                                lp.last_node = ev.node.0;
                            }
                            end_time = end_time.max(ev.key.ts);
                            vt_c.set(ev.key.ts);
                            let (owner, local) = dir.locate(ev.node);
                            debug_assert_eq!(owner, lp.id);
                            let node = &mut lp.nodes[local as usize];
                            let mut ctx = PinnedCtx::<N> {
                                now: ev.key.ts,
                                self_node: ev.node,
                                lp_id: lp.id,
                                fel: &mut lp.fel,
                                insert_seq: &mut insert_seq,
                                dir,
                                inboxes,
                                stop_flag,
                                kernel_name: "nullmsg",
                            };
                            node.handle(ev.payload, &mut ctx);
                            processed += 1;
                        }
                        lp.total_events += processed;
                        let p_cost = t0.elapsed().as_nanos() as u64;
                        psm.p_ns += p_cost;
                        if processed > 0 {
                            tel.span_dur(
                                SpanKind::Process,
                                iterations,
                                idx as u32,
                                tel_start,
                                p_cost,
                                processed,
                                0,
                            );
                        }

                        // Null messages: refresh output promises. `lb` is a lower
                        // bound on the timestamp of anything this LP may still
                        // process, hence `lb + lookahead` bounds future sends.
                        let t0 = Instant::now();
                        let lb = lp.fel.next_ts().min(safe);
                        let finished = safe >= bound && lp.fel.next_ts() >= bound;
                        let mut wake: Vec<u32> = Vec::with_capacity(out_chans.len());
                        let mut progressed = processed > 0;
                        for &c in out_chans {
                            let promise = if finished {
                                Time::MAX
                            } else {
                                lb.saturating_add(chan_la[c])
                            };
                            let prev = chan_clock[c].fetch_max(promise.0, Ordering::AcqRel);
                            if prev < promise.0 || processed > 0 {
                                if prev < promise.0 {
                                    progressed = true;
                                }
                                // A neighbor must re-check when our promise rose
                                // or when we may have sent it events.
                                let dst = chan_dst[c];
                                if !wake.contains(&dst) {
                                    wake.push(dst);
                                }
                            }
                        }
                        for dst in wake {
                            wakers[dst as usize].bump();
                        }
                        // Watchdog: executed events or a rising promise is
                        // progress; a conservative deadlock (zero-lookahead
                        // cycle) produces neither and trips the deadline.
                        if progressed {
                            wd.tick();
                        }
                        psm.m_ns += t0.elapsed().as_nanos() as u64;

                        if finished || stop_flag.load(Ordering::Acquire) {
                            for &c in out_chans {
                                chan_clock[c].store(u64::MAX, Ordering::Release);
                                wakers[chan_dst[c] as usize].bump();
                            }
                            break;
                        }

                        if processed == 0 {
                            // No progress: sleep until an input changes. The
                            // version lock is held while re-checking, and every
                            // writer bumps under the same lock, so wake-ups are
                            // never lost.
                            let tel_start = tel.start();
                            let t0 = Instant::now();
                            let guard = wakers[idx]
                                .version
                                .lock()
                                .unwrap_or_else(|e| e.into_inner());
                            let mut cur = Time::MAX;
                            for &c in in_chans {
                                cur = cur.min(Time(chan_clock[c].load(Ordering::Acquire)));
                            }
                            if cur <= safe
                                && inboxes[idx].is_empty()
                                && !stop_flag.load(Ordering::Acquire)
                            {
                                let _guard = wakers[idx]
                                    .cond
                                    .wait(guard)
                                    .unwrap_or_else(|e| e.into_inner());
                            }
                            let s_cost = t0.elapsed().as_nanos() as u64;
                            psm.s_ns += s_cost;
                            // The CMB analogue of a barrier wait: blocked on
                            // neighbor promises.
                            tel.span_dur(
                                SpanKind::BarrierWait,
                                iterations,
                                idx as u32,
                                tel_start,
                                s_cost,
                                0,
                                0,
                            );
                        }
                    }
                    (lp, psm, end_time, iterations, tel)
                }));
                match body {
                    Ok(res) => Some(res),
                    Err(payload) => {
                        record_failure(
                            failure,
                            FailureDiagnostics {
                                kernel: "nullmsg",
                                round: iter_c.get(),
                                phase: RunPhase::Process,
                                lp: Some(LpId(idx as u32)),
                                virtual_time: vt_c.get(),
                                worker: idx,
                                panic_message: panic_message(payload.as_ref()),
                            },
                        );
                        stop_flag.store(true, Ordering::Release);
                        // This LP will never advance its promises again:
                        // release its output channels so neighbors' safety
                        // bounds are not pinned by a dead LP, then wake
                        // everyone to observe the stop flag.
                        for &c in out_chans {
                            chan_clock[c].store(u64::MAX, Ordering::Release);
                        }
                        for w in wakers.iter() {
                            w.bump();
                        }
                        None
                    }
                }
            }));
        }
        for (idx, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(res) => results.push(res),
                // Thread bodies are fully contained; a join error means the
                // containment itself died. Record it — `try_run` must not
                // panic.
                Err(payload) => {
                    stop_flag.store(true, Ordering::Release);
                    for w in wakers.iter() {
                        w.bump();
                    }
                    record_failure(
                        &failure,
                        FailureDiagnostics {
                            kernel: "nullmsg",
                            round: 0,
                            phase: RunPhase::Control,
                            lp: Some(LpId(idx as u32)),
                            virtual_time: Time::ZERO,
                            worker: idx,
                            panic_message: panic_message(payload.as_ref()),
                        },
                    );
                    results.push(None);
                }
            }
        }
        wd.finish();
    });

    let wall = started.elapsed();
    let stalled = wd.stalled();
    let mut results: Vec<LpDone<N>> = results.into_iter().flatten().collect();
    results.sort_by_key(|(lp, ..)| lp.id);
    let rounds = results.iter().map(|r| r.3).max().unwrap_or(0);
    let end_time = results
        .iter()
        .map(|(_, _, t, _, _)| *t)
        .fold(Time::ZERO, Time::max);
    let psm: Vec<Psm> = results.iter().map(|(_, p, ..)| *p).collect();
    let mut tels: Vec<WorkerTel> = Vec::with_capacity(results.len());
    let mut lps: Vec<LpState<N>> = Vec::with_capacity(results.len());
    for (lp, _, _, _, tel) in results {
        lps.push(lp);
        tels.push(tel);
    }
    let lp_totals = LpTotals {
        events: lps.iter().map(|lp| lp.total_events).collect(),
        cost_ns: vec![0; lps.len()],
        node_switches: lps.iter().map(|lp| lp.node_switches).collect(),
    };
    let events = lp_totals.events.iter().sum();
    let report = RunReport {
        kernel: "nullmsg".into(),
        wall,
        events,
        global_events: 0,
        rounds,
        fused_rounds: 0,
        lp_count: lp_count as u32,
        threads: lp_count as u32,
        lookahead: partition.lookahead,
        end_time,
        psm,
        psm_per_lp: true,
        lp_totals,
        engine: EngineStats {
            fel_impl: cfg.fel,
            // Shared inboxes (multiple concurrent producers): no pool.
            pool_hits: 0,
            pool_misses: 0,
        },
        sched: SchedStats::default(),
        rounds_profile: None,
        telemetry: telctx.collect(tels, sched_log),
        recovery: None,
        async_stats: None,
    };
    if let Some(diag) = failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(SimError::WorkerPanic {
            diag,
            partial: Box::new(report),
        });
    }
    if stalled {
        // The LPs that still had work below the horizon were conservatively
        // blocked. Walk each blocked LP's *binding* input channel (the one
        // with the minimal promise) back to its source to expose the
        // dependency cycle — with zero lookahead on a cycle, every LP on it
        // pins its successor's safety bound.
        let blocked: Vec<LpId> = lps
            .iter()
            .filter(|lp| lp.fel.next_ts() < bound)
            .map(|lp| lp.id)
            .collect();
        let mut cycle: Vec<LpId> = Vec::new();
        if let Some(start) = blocked.first() {
            let mut path: Vec<u32> = Vec::new();
            let mut cur = start.0;
            loop {
                if let Some(pos) = path.iter().position(|&l| l == cur) {
                    cycle = path[pos..].iter().map(|&l| LpId(l)).collect();
                    cycle.push(LpId(cur));
                    break;
                }
                path.push(cur);
                let mut best: Option<(u64, usize)> = None;
                for &c in &in_chans[cur as usize] {
                    let clk = stall_clocks[c].load(Ordering::Acquire);
                    if clk != u64::MAX && best.is_none_or(|(b, _)| clk < b) {
                        best = Some((clk, c));
                    }
                }
                match best {
                    Some((_, c)) => cur = chan_src[c],
                    None => break,
                }
            }
        }
        let virtual_time = lps
            .iter()
            .filter(|lp| lp.fel.next_ts() < bound)
            .map(|lp| lp.fel.next_ts())
            .fold(Time::MAX, Time::min);
        let diag = StallDiagnostics {
            kernel: "nullmsg",
            round: rounds,
            deadline: cfg.watchdog.round_deadline.unwrap_or_default(),
            virtual_time: if virtual_time == Time::MAX {
                end_time
            } else {
                virtual_time
            },
            blocked,
            cycle,
        };
        return Err(SimError::Stalled {
            diag,
            partial: Box::new(report),
        });
    }
    let world = reassemble_world(lps, &partition, graph, stop_at);
    Ok((world, report))
}
