//! The sequential DES kernel (the ns-3 default in the paper's comparisons).
//!
//! A single thread pops events from one global future event list. Two
//! tie-breaking modes are provided:
//!
//! - **insertion order** (`compat_keys = false`): simultaneous events run in
//!   the order they were scheduled, reproducing ns-3's default semantics;
//! - **compat keys** (`compat_keys = true`): events carry the same
//!   deterministic tie-break keys the Unison kernel assigns, which makes a
//!   sequential run *bit-identical* to a parallel Unison run of the same
//!   world — the strongest form of the paper's determinism claim.
//!
//! Global events (public LP) are fully supported: they run inline whenever
//! their timestamp precedes the next node event.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use crate::error::{panic_message, FailureDiagnostics, RunPhase, SimError};
use crate::event::{Event, EventKey, LpId, NodeId};
use crate::fel::Fel;
use crate::global::{GlobalFn, WorldAccess};
use crate::lp::{LpSlots, PendingGlobal};
use crate::metrics::{EngineStats, LpTotals, Psm, RunReport, SchedStats};
use crate::telemetry::{SpanKind, TelContext, NO_LP};
use crate::time::Time;
use crate::world::{NodeDirectory, SimCtx, SimNode, World};

use super::{build_lps, build_partition, reassemble_world, RunConfig};

/// Sequential [`SimCtx`]: one global FEL, insertion-order or compat keys.
struct SeqCtx<'a, N: SimNode> {
    now: Time,
    self_node: NodeId,
    lp_id: LpId,
    compat: bool,
    fel: &'a mut Fel<N::Payload>,
    /// Per-LP sequence counters (compat mode) — index 0 doubles as the
    /// global insertion counter in insertion mode.
    seqs: &'a mut [u64],
    #[allow(dead_code)]
    dir: &'a NodeDirectory,
    pending_globals: &'a mut Vec<PendingGlobal<N>>,
    stop_flag: &'a AtomicBool,
}

impl<N: SimNode> SimCtx<N> for SeqCtx<'_, N> {
    fn now(&self) -> Time {
        self.now
    }

    fn self_node(&self) -> NodeId {
        self.self_node
    }

    fn schedule(&mut self, delay: Time, target: NodeId, payload: N::Payload) {
        let ts = self.now.saturating_add(delay);
        let key = if self.compat {
            let lp = self.lp_id;
            let seq = &mut self.seqs[lp.index()];
            let k = EventKey {
                ts,
                sender_ts: self.now,
                sender_lp: lp,
                seq: *seq,
            };
            *seq += 1;
            k
        } else {
            // ns-3 semantics: FIFO among simultaneous events, global
            // insertion counter.
            let seq = &mut self.seqs[0];
            let k = EventKey {
                ts,
                sender_ts: Time::ZERO,
                sender_lp: LpId(0),
                seq: *seq,
            };
            *seq += 1;
            k
        };
        self.fel.push(Event {
            key,
            node: target,
            payload,
        });
    }

    fn schedule_global(&mut self, delay: Time, f: GlobalFn<N>) {
        self.pending_globals.push(PendingGlobal {
            ts: self.now.saturating_add(delay),
            sender_ts: self.now,
            f,
        });
    }

    fn request_stop(&mut self) {
        self.stop_flag.store(true, Ordering::Release);
    }
}

pub(super) fn run<N: SimNode>(
    world: World<N>,
    cfg: &RunConfig,
    compat_keys: bool,
) -> Result<(World<N>, RunReport), SimError> {
    let kernel_name: &'static str = if compat_keys {
        "sequential(compat)"
    } else {
        "sequential"
    };
    let mut partition = build_partition(&world, &cfg.partition)?;
    let (lps, dir, mut graph, init_globals, stop_at, restored_ext_seq) =
        build_lps(world, &partition, cfg.fel);
    let lp_count = lps.len();

    // Pull all initial events out of the per-LP FELs into the global FEL.
    let mut lps = lps;
    let mut fel: Fel<N::Payload> = Fel::with_impl(cfg.fel);
    for lp in &mut lps {
        while let Some(ev) = lp.fel.pop() {
            fel.push(ev);
        }
    }
    // Compat-key sequence counters continue from restored values (all zero
    // for a fresh world), so a checkpointed run resumed here assigns the
    // same tie-break keys it would have uninterrupted.
    let mut seqs = vec![0u64; lp_count.max(1)];
    for (i, lp) in lps.iter().enumerate() {
        seqs[i] = lp.seq;
    }
    let slots = LpSlots::new(lps, dir.clone());
    // Single-threaded kernel: the whole run is one claim-audit phase with
    // one owner, so one generation bump up front suffices.
    slots.begin_phase();

    // Public LP: global events, including the kernel-inserted stop event.
    let mut public: Fel<GlobalFn<N>> = Fel::with_impl(cfg.fel);
    let mut ext_seq: u64 = restored_ext_seq;
    for (ts, f) in init_globals {
        public.push(Event {
            key: EventKey::external(ts, ext_seq),
            node: NodeId(u32::MAX),
            payload: f,
        });
        ext_seq += 1;
    }
    if let Some(stop) = stop_at {
        public.push(Event {
            key: EventKey::external(stop, ext_seq),
            node: NodeId(u32::MAX),
            payload: Box::new(|wa: &mut WorldAccess<'_, N>| wa.stop()),
        });
        ext_seq += 1;
    }

    let stop_flag = AtomicBool::new(false);
    let mut pending_globals: Vec<PendingGlobal<N>> = Vec::new();
    let mut topology_dirty = false;

    let mut events: u64 = 0;
    let mut global_events: u64 = 0;
    let mut node_switches: u64 = 0;
    let mut last_node = u32::MAX;
    let mut now = Time::ZERO;
    let started = Instant::now();

    // Telemetry is coarse here: one sink on the only thread, one Global
    // span per global event, and a single whole-run Process span (the
    // sequential kernel has no rounds or phases to subdivide).
    let telctx = TelContext::new(&cfg.telemetry);
    let mut tel = telctx.worker(0);
    let sched_log = telctx.sched_log(); // no scheduler → stays empty
    let run_start = tel.start();

    // Failure site, updated just before each handler/global runs so a
    // contained panic can report where it happened.
    let site: Cell<(RunPhase, Option<LpId>, Time)> =
        Cell::new((RunPhase::Control, None, Time::ZERO));

    // The event loop runs inside `catch_unwind` so a panicking model handler
    // (or global event) is contained: the loop's borrows end with the
    // closure, letting the aftermath build a partial report from the slots.
    let outcome = catch_unwind(AssertUnwindSafe(|| loop {
        if stop_flag.load(Ordering::Acquire) {
            break;
        }
        let next_ev = fel.next_ts();
        let next_pub = public.next_ts();
        if next_ev == Time::MAX && next_pub == Time::MAX {
            break;
        }
        if next_pub <= next_ev {
            // Global events run before node events at the same instant,
            // matching the windowed kernels (a window never extends past
            // N_pub).
            // INVARIANT: `next_pub < Time::MAX` implies the public FEL is
            // non-empty (`next_ts` returns MAX only when empty).
            let g = public.pop().expect("public FEL non-empty");
            now = g.key.ts;
            site.set((RunPhase::Global, None, now));
            let g_start = tel.start();
            let mut stop = false;
            let mut new_globals: Vec<(Time, GlobalFn<N>)> = Vec::new();
            {
                // SAFETY: single-threaded kernel; nothing else accesses the
                // slots while the world view exists.
                let mut wa = unsafe {
                    WorldAccess::new(
                        now,
                        &slots,
                        &mut graph,
                        &mut partition,
                        &mut topology_dirty,
                        &mut stop,
                        &mut new_globals,
                        &mut ext_seq,
                        // Events pulled into the kernel-private global FEL
                        // are invisible to a checkpoint, so the sequential
                        // kernel does not offer one.
                        None,
                    )
                };
                (g.payload)(&mut wa);
            }
            global_events += 1;
            tel.span(SpanKind::Global, 0, NO_LP, g_start, 1);
            for (ts, f) in new_globals {
                public.push(Event {
                    key: EventKey::external(ts, ext_seq),
                    node: NodeId(u32::MAX),
                    payload: f,
                });
                ext_seq += 1;
            }
            if topology_dirty {
                partition.recompute_lookahead(&graph);
                topology_dirty = false;
            }
            // Sweep events a global handler injected into per-LP FELs.
            for i in 0..slots.len() {
                // SAFETY: single-threaded kernel.
                let lp = unsafe { slots.get_mut(i) };
                while let Some(ev) = lp.fel.pop() {
                    fel.push(ev);
                }
            }
            if stop {
                stop_flag.store(true, Ordering::Release);
            }
            continue;
        }

        // INVARIANT: `next_ev < Time::MAX` implies the FEL is non-empty.
        let ev = fel.pop().expect("FEL non-empty");
        now = ev.key.ts;
        if ev.node.0 != last_node {
            node_switches += 1;
            last_node = ev.node.0;
        }
        let (lp_id, local) = dir.locate(ev.node);
        site.set((RunPhase::Process, Some(lp_id), now));
        // Sequential runs have no sync rounds; the fault plan's "round" is
        // the 1-based node-event index, which is just as reproducible.
        #[cfg(feature = "fault-inject")]
        cfg.fault.fire_phase(events + 1, RunPhase::Process, 0);
        // SAFETY: single-threaded kernel; exclusive by construction.
        let lp = unsafe { slots.get_mut(lp_id.index()) };
        let node = &mut lp.nodes[local as usize];
        let mut ctx = SeqCtx::<N> {
            now,
            self_node: ev.node,
            lp_id,
            compat: compat_keys,
            fel: &mut fel,
            seqs: &mut seqs,
            dir: &dir,
            pending_globals: &mut pending_globals,
            stop_flag: &stop_flag,
        };
        node.handle(ev.payload, &mut ctx);
        lp.total_events += 1;
        events += 1;

        // Merge globals scheduled by the handler.
        for pg in pending_globals.drain(..) {
            public.push(Event {
                key: EventKey {
                    ts: pg.ts,
                    sender_ts: pg.sender_ts,
                    sender_lp: lp_id,
                    seq: ext_seq,
                },
                node: NodeId(u32::MAX),
                payload: pg.f,
            });
            ext_seq += 1;
        }
    }));

    let wall = started.elapsed();
    tel.span(SpanKind::Process, 0, NO_LP, run_start, events);
    let (lps, _) = slots.into_inner();
    let mut lp_totals = LpTotals {
        events: lps.iter().map(|lp| lp.total_events).collect(),
        cost_ns: vec![0; lp_count],
        node_switches: vec![0; lp_count],
    };
    if lp_count > 0 {
        lp_totals.node_switches[0] = node_switches;
    }
    let report = RunReport {
        kernel: kernel_name.into(),
        wall,
        events,
        global_events,
        rounds: 1,
        fused_rounds: 0,
        lp_count: lp_count as u32,
        threads: 1,
        lookahead: partition.lookahead,
        end_time: now,
        psm: vec![Psm {
            p_ns: wall.as_nanos() as u64,
            s_ns: 0,
            m_ns: 0,
        }],
        psm_per_lp: false,
        lp_totals,
        engine: EngineStats {
            fel_impl: cfg.fel,
            // Single-threaded: no cross-LP mailboxes, hence no pool.
            pool_hits: 0,
            pool_misses: 0,
        },
        sched: SchedStats::default(),
        rounds_profile: None,
        telemetry: telctx.collect(vec![tel], sched_log),
        recovery: None,
        async_stats: None,
    };
    match outcome {
        Ok(()) => {
            let world = reassemble_world(lps, &partition, graph, stop_at);
            Ok((world, report))
        }
        Err(payload) => {
            let (phase, lp, virtual_time) = site.get();
            Err(SimError::WorkerPanic {
                diag: FailureDiagnostics {
                    kernel: kernel_name,
                    round: 0,
                    phase,
                    lp,
                    virtual_time,
                    worker: 0,
                    panic_message: panic_message(payload.as_ref()),
                },
                partial: Box::new(report),
            })
        }
    }
}
