//! The round-progress watchdog (DESIGN.md §4.2).
//!
//! A kernel that enables the watchdog spawns one monitor thread inside its
//! worker scope. Kernel threads bump a shared progress counter whenever the
//! run advances (a round completes, an LP processes events, a null-message
//! promise rises). The monitor sleeps on a condvar in short slices; when the
//! counter stops changing for the configured wall-clock deadline it marks
//! the run stalled and invokes the kernel's abort hook (barrier poisoning /
//! waker bumping), which makes every kernel thread drain out so the run can
//! return [`crate::error::SimError::Stalled`] instead of hanging.
//!
//! Wall-clock readings here are `Instant`-based, which is legal in
//! `kernel/*` (xtask lint rule 4): they measure the simulator, never the
//! simulation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Shared state between a kernel's threads and its watchdog monitor.
pub(crate) struct Watchdog {
    /// Monotone progress counter; any bump resets the deadline.
    // PADDING: watchdog words are touched once per round / per poll slice
    // (milliseconds), never per event — contention is negligible.
    progress: AtomicU64,
    /// Set by the monitor when the deadline expired.
    stalled: AtomicBool, // PADDING: cold; see `progress`.
    /// Round-deadline suspension: while non-zero, the monitor treats every
    /// poll slice as progress. Raised around in-round work whose wall cost
    /// is legitimately unbounded (checkpoint serialization to disk), so a
    /// slow disk cannot masquerade as a stalled round (DESIGN.md §4.7).
    paused: AtomicBool, // PADDING: cold; see `progress`.
    /// Run-finished latch, so the monitor exits promptly at run end.
    done: Mutex<bool>,
    cond: Condvar,
}

impl Watchdog {
    pub fn new() -> Self {
        Watchdog {
            progress: AtomicU64::new(0),
            stalled: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            done: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    /// Suspends the round deadline (checkpoint writes, etc.). The monitor
    /// resets its deadline on every poll slice that observes the pause, so
    /// arbitrarily slow paused work never fires the watchdog. Only the
    /// kernel control thread pauses, so a plain flag (no nesting count)
    /// suffices.
    pub fn pause(&self) {
        self.paused.store(true, Ordering::Relaxed);
    }

    /// Re-arms the round deadline after [`Watchdog::pause`]; also counts as
    /// progress, so the deadline restarts from "now" rather than from the
    /// last pre-pause tick.
    pub fn unpause(&self) {
        self.paused.store(false, Ordering::Relaxed);
        self.tick();
    }

    /// Records progress (cheap: one relaxed RMW).
    #[inline]
    pub fn tick(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether the monitor aborted the run.
    pub fn stalled(&self) -> bool {
        self.stalled.load(Ordering::Acquire)
    }

    /// Tells the monitor the run is over; it returns without firing.
    pub fn finish(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        self.cond.notify_all();
    }

    /// The monitor loop. Returns `true` when it fired (stall detected and
    /// `on_stall` invoked), `false` when the run finished first.
    pub fn monitor(&self, deadline: Duration, on_stall: impl FnOnce()) -> bool {
        // Poll in slices of deadline/8 (≥ 1ms) so short test deadlines are
        // honored promptly without busy-waiting on long production ones.
        let slice = (deadline / 8).max(Duration::from_millis(1));
        let mut last = self.progress.load(Ordering::Relaxed);
        let mut last_change = Instant::now();
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if *done {
                return false;
            }
            let (guard, _) = self
                .cond
                .wait_timeout(done, slice)
                .unwrap_or_else(|e| e.into_inner());
            done = guard;
            if *done {
                return false;
            }
            let cur = self.progress.load(Ordering::Relaxed);
            if cur != last || self.paused.load(Ordering::Relaxed) {
                last = cur;
                last_change = Instant::now();
            } else if last_change.elapsed() >= deadline {
                // Release so kernel threads that observe `stalled` with
                // Acquire also observe everything before the abort.
                self.stalled.store(true, Ordering::Release);
                drop(done);
                on_stall();
                return true;
            }
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool as StdBool;

    #[test]
    fn finish_stops_monitor_without_firing() {
        let wd = Watchdog::new();
        let fired = StdBool::new(false);
        std::thread::scope(|s| {
            let fired = &fired;
            let h = s.spawn(|| {
                wd.monitor(Duration::from_secs(60), || {
                    fired.store(true, Ordering::Relaxed)
                })
            });
            wd.tick();
            wd.finish();
            assert!(!h.join().unwrap());
            assert!(!fired.load(Ordering::Relaxed));
            assert!(!wd.stalled());
        });
    }

    #[test]
    fn silence_past_deadline_fires() {
        let wd = Watchdog::new();
        let fired = StdBool::new(false);
        std::thread::scope(|s| {
            let fired = &fired;
            let h = s.spawn(|| {
                wd.monitor(Duration::from_millis(20), || {
                    fired.store(true, Ordering::Relaxed)
                })
            });
            assert!(h.join().unwrap(), "no ticks: the watchdog must fire");
            assert!(fired.load(Ordering::Relaxed));
            assert!(wd.stalled());
            wd.finish(); // idempotent after firing
        });
    }

    #[test]
    fn paused_silence_does_not_fire() {
        // Regression for the checkpoint false positive: a pause that
        // outlives the deadline several times over must not abort the run,
        // and the deadline restarts from the unpause, not the last tick.
        let wd = Watchdog::new();
        std::thread::scope(|s| {
            let h = s.spawn(|| wd.monitor(Duration::from_millis(30), || {}));
            wd.tick();
            wd.pause();
            std::thread::sleep(Duration::from_millis(150));
            wd.unpause();
            wd.finish();
            assert!(!h.join().unwrap(), "paused silence must not fire");
            assert!(!wd.stalled());
        });
    }

    #[test]
    fn steady_ticks_keep_it_alive() {
        let wd = Watchdog::new();
        std::thread::scope(|s| {
            let h = s.spawn(|| wd.monitor(Duration::from_millis(50), || {}));
            for _ in 0..10 {
                wd.tick();
                std::thread::sleep(Duration::from_millis(5));
            }
            wd.finish();
            assert!(!h.join().unwrap(), "ticking run must not be aborted");
        });
    }
}
