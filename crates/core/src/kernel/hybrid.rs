//! The hybrid distributed kernel (§5.2).
//!
//! For scalability across machines, the paper first divides the topology
//! into coarse per-host partitions synchronized with the conservative
//! barrier algorithm, and runs Unison *inside* each host over a further
//! fine-grained partition. The window of Eq. (2) is computed by an
//! all-reduce over the per-host minima.
//!
//! This in-process reproduction models each cluster host as a *group* of
//! worker threads that only ever claim LPs of their own host's partition
//! (no load balancing across hosts — the hybrid kernel's semantic
//! difference from plain Unison), while the round window remains global.
//! The MPI transport is replaced by the same shared-memory mailboxes; the
//! all-reduce is the main thread's reduction at the phase-4 barrier, which
//! is exactly what `MPI_Allreduce` computes on a cluster.
//!
//! Hosts are assigned by splitting the fine-grained LP sequence into
//! `hosts` contiguous, node-balanced ranges: LP ids follow node-creation
//! order, so contiguous ranges preserve spatial locality like the paper's
//! coarse pre-partition.
//!
//! Telemetry flows through [`run_grouped`] unchanged: per-worker span sinks
//! and the scheduler-decision log are created there, so a hybrid run's
//! decision log carries one entry per *host group* per re-sort (the
//! [`crate::telemetry::SchedDecision::group`] field is the host id).
//!
//! Scheduling policies are likewise per group: `run_grouped` builds one
//! [`crate::sched::SchedPolicy`] instance per host, sized to that host's
//! worker count, so work stealing under
//! [`SchedPolicyKind::StealDeque`](crate::sched::SchedPolicyKind) never
//! crosses host boundaries — exactly the paper's "balance within a host"
//! deployment constraint.

use crate::error::SimError;
use crate::metrics::RunReport;
use crate::world::{SimNode, World};

use super::unison::{run_grouped, Grouping};
use super::{build_partition, KernelError, RunConfig};

pub(super) fn run<N: SimNode>(
    world: World<N>,
    cfg: &RunConfig,
    hosts: usize,
    threads_per_host: usize,
) -> Result<(World<N>, RunReport), SimError> {
    if hosts == 0 || threads_per_host == 0 {
        return Err(KernelError::InvalidConfig(
            "hybrid kernel needs hosts >= 1 and threads_per_host >= 1".into(),
        )
        .into());
    }
    // Pre-compute the partition (the same one `run_grouped` will build) to
    // derive the host assignment from LP weights.
    let partition = build_partition(&world, &cfg.partition)?;
    let lp_count = partition.lp_count as usize;
    let hosts = hosts.min(lp_count.max(1));

    // Contiguous ranges balanced by node count.
    let total_nodes: usize = partition.lp_nodes.iter().map(|v| v.len()).sum();
    let target = (total_nodes as f64 / hosts as f64).max(1.0);
    let mut lp_group = vec![0u32; lp_count];
    let mut acc = 0.0f64;
    let mut host = 0u32;
    for (lp, nodes) in partition.lp_nodes.iter().enumerate() {
        if acc >= target && (host as usize) < hosts - 1 {
            host += 1;
            acc = 0.0;
        }
        lp_group[lp] = host;
        acc += nodes.len() as f64;
    }
    let groups = host as usize + 1;

    let threads = groups * threads_per_host;
    let mut worker_group = Vec::with_capacity(threads);
    for g in 0..groups {
        for _ in 0..threads_per_host {
            worker_group.push(g as u32);
        }
    }
    // Worker 0 (the main thread) must belong to group 0: it does, because
    // groups are filled in order.
    let grouping = Grouping {
        lp_group,
        worker_group,
        groups,
    };
    run_grouped(world, cfg, threads, Some(grouping), "hybrid")
}
