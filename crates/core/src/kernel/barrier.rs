//! The barrier-synchronization PDES baseline (ns-3's distributed simulator).
//!
//! One OS thread is pinned to each LP of a *static* partition. Execution
//! proceeds in rounds: all threads compute the LBTS (Eq. 1), process their
//! events inside the window, then meet at a global barrier before exchanging
//! cross-LP events and starting the next round.
//!
//! Faithful to the baseline it models:
//!
//! - simultaneous events run in *insertion order* (ns-3 semantics), and the
//!   insertion order of cross-LP events depends on real-time arrival
//!   interleaving — so repeated parallel runs are **not deterministic**
//!   (reproducing Fig. 11's observation);
//! - global events are not supported (only stopping at a fixed time);
//! - the partition is fixed: LP count = thread count, chosen by the user.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::error::{
    panic_message, record_failure, FailureDiagnostics, RunPhase, SimError, StallDiagnostics,
};
use crate::event::{Event, EventKey, LpId, NodeId};
use crate::fel::Fel;
use crate::global::GlobalFn;
use crate::lp::LpState;
use crate::metrics::{
    EngineStats, LpTotals, MetricsLevel, Psm, RoundRecord, RunReport, SchedStats,
};
use crate::queue::MpscQueue;
use crate::sync::SpinBarrier;
use crate::telemetry::{SpanKind, TelContext, WorkerTel};
use crate::time::Time;
use crate::world::{NodeDirectory, SimCtx, SimNode, World};

use super::watchdog::Watchdog;
use super::{build_lps, build_partition, reassemble_world, KernelError, RunConfig};

/// Per-LP thread result: final state, P/S/M, samples, end time, rounds,
/// telemetry sink (thread = LP here, so spans carry the LP id).
type LpResult<N> = (LpState<N>, Psm, Vec<RoundSample>, Time, u64, WorkerTel);

/// Per-thread, per-round sample kept for `MetricsLevel::PerRound`.
struct RoundSample {
    window_start: Time,
    window_end: Time,
    cost_ns: f32,
    events: u32,
    recv: u32,
}

/// [`SimCtx`] for the LP-pinned baselines: ns-3 insertion-order keys.
pub(crate) struct PinnedCtx<'a, N: SimNode> {
    pub now: Time,
    pub self_node: NodeId,
    pub lp_id: LpId,
    pub fel: &'a mut Fel<N::Payload>,
    /// Local insertion counter (FIFO among simultaneous events).
    pub insert_seq: &'a mut u64,
    pub dir: &'a NodeDirectory,
    /// One shared inbox per LP; arrival order is real-time interleaved.
    pub inboxes: &'a [MpscQueue<Event<N::Payload>>],
    pub stop_flag: &'a AtomicBool,
    pub kernel_name: &'static str,
}

impl<N: SimNode> SimCtx<N> for PinnedCtx<'_, N> {
    fn now(&self) -> Time {
        self.now
    }

    fn self_node(&self) -> NodeId {
        self.self_node
    }

    fn schedule(&mut self, delay: Time, target: NodeId, payload: N::Payload) {
        let ts = self.now.saturating_add(delay);
        let dst = self.dir.lp_of(target);
        if dst == self.lp_id {
            let key = EventKey {
                ts,
                sender_ts: Time::ZERO,
                sender_lp: LpId(0),
                seq: *self.insert_seq,
            };
            *self.insert_seq += 1;
            self.fel.push(Event {
                key,
                node: target,
                payload,
            });
        } else {
            // The receiver assigns the insertion sequence when it drains its
            // inbox; only the timestamp travels.
            self.inboxes[dst.index()].push(Event {
                key: EventKey {
                    ts,
                    sender_ts: Time::ZERO,
                    sender_lp: LpId(0),
                    seq: 0,
                },
                node: target,
                payload,
            });
        }
    }

    fn schedule_global(&mut self, _delay: Time, _f: GlobalFn<N>) {
        panic!(
            "kernel `{}` does not support global events scheduled from \
             node handlers; use the Unison kernel",
            self.kernel_name
        );
    }

    fn request_stop(&mut self) {
        self.stop_flag.store(true, Ordering::Release);
    }
}

pub(super) fn run<N: SimNode>(
    world: World<N>,
    cfg: &RunConfig,
) -> Result<(World<N>, RunReport), SimError> {
    if !world.init_globals.is_empty() {
        return Err(KernelError::GlobalEventsUnsupported("barrier").into());
    }
    let partition = build_partition(&world, &cfg.partition)?;
    let (lps, dir, graph, _globals, stop_at, _restored_ext_seq) =
        build_lps(world, &partition, cfg.fel);
    let lp_count = lps.len();
    if lp_count == 0 {
        return Err(KernelError::InvalidPartition("world has no nodes".into()).into());
    }
    let lookahead = partition.lookahead;
    let bound = stop_at.unwrap_or(Time::MAX);
    let per_round = cfg.metrics == MetricsLevel::PerRound;

    let inboxes: Vec<MpscQueue<Event<N::Payload>>> =
        (0..lp_count).map(|_| MpscQueue::new()).collect();
    // PADDING: the lock-step kernel is the deliberately naive baseline the
    // paper compares against; each word has a single writer per round.
    let next_ts: Vec<AtomicU64> = lps.iter().map(|lp| AtomicU64::new(lp.next_ts.0)).collect();
    let barrier = SpinBarrier::new(lp_count);
    let stop_flag = AtomicBool::new(false);

    let started = Instant::now();
    let mut results: Vec<Option<LpResult<N>>> = Vec::with_capacity(lp_count);

    // Telemetry: one sink per LP thread (DESIGN.md §4.3). This kernel has
    // no scheduler, so the decision log stays empty; inbox events do not
    // carry their sender (ns-3 semantics zero it), so no traffic matrix.
    let telctx = TelContext::new(&cfg.telemetry);
    let sched_log = telctx.sched_log();

    // Crash safety (DESIGN.md §4.2): first contained panic wins the slot;
    // the watchdog aborts rounds exceeding the wall-clock deadline. Both
    // poison the barrier and raise the stop flag so survivors drain.
    let failure: Mutex<Option<FailureDiagnostics>> = Mutex::new(None);
    let wd = Watchdog::new();

    std::thread::scope(|scope| {
        if let Some(deadline) = cfg.watchdog.round_deadline {
            let wd = &wd;
            let barrier = &barrier;
            let stop_flag = &stop_flag;
            scope.spawn(move || {
                wd.monitor(deadline, || {
                    stop_flag.store(true, Ordering::Release);
                    barrier.poison();
                });
            });
        }

        let mut handles = Vec::new();
        for (idx, mut lp) in lps.into_iter().enumerate() {
            let inboxes = &inboxes;
            let next_ts = &next_ts;
            let barrier = &barrier;
            let stop_flag = &stop_flag;
            let dir = &dir;
            let failure = &failure;
            let wd = &wd;
            let telctx = &telctx;
            handles.push(scope.spawn(move || {
                // Failure site, readable after a contained panic.
                let round_c: Cell<u64> = Cell::new(0);
                let vt_c: Cell<Time> = Cell::new(Time::ZERO);
                let body = catch_unwind(AssertUnwindSafe(|| {
                    let mut psm = Psm::default();
                    let mut tel = telctx.worker(idx as u32);
                    let mut samples: Vec<RoundSample> = Vec::new();
                    let mut insert_seq: u64 = lp.fel.len() as u64;
                    let mut end_time = Time::ZERO;
                    let mut rounds: u64 = 0;
                    let mut last_window = Time::ZERO;
                    loop {
                        // LBTS: min over all LPs' next timestamps + lookahead.
                        let mut min = Time::MAX;
                        for a in next_ts.iter() {
                            min = min.min(Time(a.load(Ordering::Acquire)));
                        }
                        if min >= bound || min == Time::MAX || stop_flag.load(Ordering::Acquire) {
                            break;
                        }
                        let window_end = min.saturating_add(lookahead).min(bound);
                        rounds += 1;
                        round_c.set(rounds);

                        // Process.
                        let tel_start = tel.start();
                        let t0 = Instant::now();
                        let mut round_events: u32 = 0;
                        while let Some(ev) = lp.fel.pop_below(window_end) {
                            if ev.node.0 != lp.last_node {
                                lp.node_switches += 1;
                                lp.last_node = ev.node.0;
                            }
                            end_time = end_time.max(ev.key.ts);
                            vt_c.set(ev.key.ts);
                            let (owner, local) = dir.locate(ev.node);
                            debug_assert_eq!(owner, lp.id);
                            let node = &mut lp.nodes[local as usize];
                            let mut ctx = PinnedCtx::<N> {
                                now: ev.key.ts,
                                self_node: ev.node,
                                lp_id: lp.id,
                                fel: &mut lp.fel,
                                insert_seq: &mut insert_seq,
                                dir,
                                inboxes,
                                stop_flag,
                                kernel_name: "barrier",
                            };
                            node.handle(ev.payload, &mut ctx);
                            round_events += 1;
                        }
                        lp.total_events += round_events as u64;
                        let cost = t0.elapsed().as_nanos() as u64;
                        psm.p_ns += cost;
                        tel.span_dur(
                            SpanKind::Process,
                            rounds,
                            idx as u32,
                            tel_start,
                            cost,
                            round_events as u64,
                            0,
                        );

                        // Watchdog: a round only counts as progress when it
                        // executed events or moved the window — an empty
                        // zero-lookahead round loop must trip the deadline,
                        // not feed it.
                        if round_events > 0 || window_end > last_window {
                            wd.tick();
                        }
                        last_window = window_end;

                        // Synchronize: everyone must finish sending first.
                        let tel_start = tel.start();
                        let s_before = psm.s_ns;
                        barrier.wait_timed(&mut psm.s_ns);
                        tel.span_dur(
                            SpanKind::BarrierWait,
                            rounds,
                            idx as u32,
                            tel_start,
                            psm.s_ns - s_before,
                            0,
                            0,
                        );

                        // Receive: drain the shared inbox in arrival order.
                        let tel_start = tel.start();
                        let t0 = Instant::now();
                        let mut recv: u32 = 0;
                        inboxes[idx].drain(|mut ev| {
                            ev.key.seq = insert_seq;
                            insert_seq += 1;
                            lp.fel.push(ev);
                            recv += 1;
                        });
                        next_ts[idx].store(lp.fel.next_ts().0, Ordering::Release);
                        let m_cost = t0.elapsed().as_nanos() as u64;
                        psm.m_ns += m_cost;
                        tel.span_dur(
                            SpanKind::MailboxFlush,
                            rounds,
                            idx as u32,
                            tel_start,
                            m_cost,
                            recv as u64,
                            0,
                        );

                        if per_round {
                            samples.push(RoundSample {
                                window_start: min,
                                window_end,
                                cost_ns: cost as f32,
                                events: round_events,
                                recv,
                            });
                        }

                        // Second barrier: next timestamps are published.
                        let tel_start = tel.start();
                        let s_before = psm.s_ns;
                        barrier.wait_timed(&mut psm.s_ns);
                        tel.span_dur(
                            SpanKind::BarrierWait,
                            rounds,
                            idx as u32,
                            tel_start,
                            psm.s_ns - s_before,
                            1,
                            0,
                        );
                    }
                    (lp, psm, samples, end_time, rounds, tel)
                }));
                match body {
                    Ok(res) => Some(res),
                    Err(payload) => {
                        record_failure(
                            failure,
                            FailureDiagnostics {
                                kernel: "barrier",
                                round: round_c.get(),
                                phase: RunPhase::Process,
                                lp: Some(LpId(idx as u32)),
                                virtual_time: vt_c.get(),
                                worker: idx,
                                panic_message: panic_message(payload.as_ref()),
                            },
                        );
                        // Release every thread blocked at the barrier and
                        // stop the round loop; the panicking LP's state is
                        // lost (mid-event), so the world is not reassembled.
                        stop_flag.store(true, Ordering::Release);
                        barrier.poison();
                        // Unblock peers' LBTS loop: without our next_ts this
                        // LP would still bound the window.
                        next_ts[idx].store(Time::MAX.0, Ordering::Release);
                        None
                    }
                }
            }));
        }
        for (idx, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(res) => results.push(res),
                // The thread body is fully contained; a join error means the
                // containment itself died. Record it — `try_run` must not
                // panic.
                Err(payload) => {
                    stop_flag.store(true, Ordering::Release);
                    barrier.poison();
                    record_failure(
                        &failure,
                        FailureDiagnostics {
                            kernel: "barrier",
                            round: 0,
                            phase: RunPhase::Control,
                            lp: Some(LpId(idx as u32)),
                            virtual_time: Time::ZERO,
                            worker: idx,
                            panic_message: panic_message(payload.as_ref()),
                        },
                    );
                    results.push(None);
                }
            }
        }
        wd.finish();
    });

    let wall = started.elapsed();
    let stalled = wd.stalled();
    let mut results: Vec<LpResult<N>> = results.into_iter().flatten().collect();
    let complete = results.len() == lp_count;
    // Threads finish in join order; restore LP order by id.
    results.sort_by_key(|(lp, ..)| lp.id);
    let rounds = results.first().map_or(0, |r| r.4);
    let rounds_profile = if per_round && complete {
        let n_rounds = results[0].2.len();
        let mut profile = Vec::with_capacity(n_rounds);
        for r in 0..n_rounds {
            profile.push(RoundRecord {
                window_start: results[0].2[r].window_start,
                window_end: results[0].2[r].window_end,
                fused: false,
                lp_cost_ns: results.iter().map(|(_, _, s, ..)| s[r].cost_ns).collect(),
                lp_events: results.iter().map(|(_, _, s, ..)| s[r].events).collect(),
                lp_recv: results.iter().map(|(_, _, s, ..)| s[r].recv).collect(),
            });
        }
        Some(profile)
    } else {
        None
    };

    let end_time = results
        .iter()
        .map(|(_, _, _, t, _, _)| *t)
        .fold(Time::ZERO, Time::max);
    let psm: Vec<Psm> = results.iter().map(|(_, p, ..)| *p).collect();
    let mut tels: Vec<WorkerTel> = Vec::with_capacity(results.len());
    let mut lps: Vec<LpState<N>> = Vec::with_capacity(results.len());
    for (lp, _, _, _, _, tel) in results {
        lps.push(lp);
        tels.push(tel);
    }
    let lp_totals = LpTotals {
        events: lps.iter().map(|lp| lp.total_events).collect(),
        cost_ns: vec![0; lps.len()],
        node_switches: lps.iter().map(|lp| lp.node_switches).collect(),
    };
    let events = lp_totals.events.iter().sum();
    let report = RunReport {
        kernel: "barrier".into(),
        wall,
        events,
        global_events: 0,
        rounds,
        fused_rounds: 0,
        lp_count: lp_count as u32,
        threads: lp_count as u32,
        lookahead,
        end_time,
        psm,
        psm_per_lp: true,
        lp_totals,
        engine: EngineStats {
            fel_impl: cfg.fel,
            // The shared inboxes have multiple concurrent producers, so
            // this kernel keeps the plain allocating push (no pool).
            pool_hits: 0,
            pool_misses: 0,
        },
        sched: SchedStats::default(),
        rounds_profile,
        telemetry: telctx.collect(tels, sched_log),
        recovery: None,
        async_stats: None,
    };
    if let Some(diag) = failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(SimError::WorkerPanic {
            diag,
            partial: Box::new(report),
        });
    }
    if stalled {
        let blocked: Vec<LpId> = lps
            .iter()
            .filter(|lp| lp.fel.next_ts() < bound)
            .map(|lp| lp.id)
            .collect();
        let diag = StallDiagnostics {
            kernel: "barrier",
            round: rounds,
            deadline: cfg.watchdog.round_deadline.unwrap_or_default(),
            virtual_time: end_time,
            blocked,
            cycle: Vec::new(),
        };
        return Err(SimError::Stalled {
            diag,
            partial: Box::new(report),
        });
    }
    let world = reassemble_world(lps, &partition, graph, stop_at);
    Ok((world, report))
}
