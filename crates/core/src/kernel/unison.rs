//! The Unison kernel (§4–§5 of the paper).
//!
//! Fine-grained LPs are scheduled onto a pool of worker threads each round.
//! A round has four phases separated by atomic barriers (Fig. 7):
//!
//! 1. **Process events** — workers claim LPs through the configured
//!    [`SchedPolicy`] (shared LJF cursor by default, work-stealing deques
//!    under [`SchedPolicyKind::StealDeque`](crate::sched::SchedPolicyKind))
//!    and execute each claimed LP's events inside the window. Cross-LP
//!    events go to lock-free mailboxes.
//! 2. **Handle global events** — the main thread routes overflow events,
//!    merges node-scheduled globals into the public LP, executes due global
//!    events (which may mutate the topology → lookahead recompute).
//! 3. **Receive events** — workers claim LPs again and drain their
//!    mailboxes into their FELs (deterministic source order).
//! 4. **Update window** — the main thread reduces the per-LP next-event
//!    timestamps into the next LBTS (Eq. 2), re-sorts the LP schedule every
//!    scheduling period, and records metrics.
//!
//! Determinism: event keys are assigned from per-LP monotone counters and
//! ordered by the §5.2 tie-breaking rule, so results are identical for any
//! worker count (including 1) and identical to the compat-keys sequential
//! kernel.
//!
//! The same machinery also powers the *hybrid* kernel (§5.2): LPs are
//! grouped into simulated hosts and each host's workers only claim LPs of
//! their own group, modeling the cluster deployment where load balancing
//! happens within a host and only the window all-reduce is global.

use std::cell::{Cell, UnsafeCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

use crate::error::{
    panic_message, record_failure, FailureDiagnostics, RunPhase, SimError, StallDiagnostics,
};
use crate::event::{Event, EventKey, LpId, NodeId};
use crate::fel::Fel;
use crate::global::{CkptEnv, GlobalFn, WorldAccess};
use crate::lp::LpSlots;
use crate::mailbox::Mailboxes;
use crate::metrics::{
    EngineStats, LpTotals, MetricsLevel, Psm, RoundRecord, RunReport, SchedStats,
};
use crate::sched::{order_by_estimate_into, SchedMetric, SchedPolicy};
use crate::sync::{TreeBarrier, TreeWaiter};
use crate::sync_shim::{AtomicBool, AtomicUsize, CachePadded, Ordering};
use crate::telemetry::{SpanKind, TelContext, WorkerTel, NO_LP};
use crate::time::Time;
use crate::world::{SimNode, World};

use super::watchdog::Watchdog;
use super::{build_lps, build_partition, reassemble_world, KernelError, RoundCtx, RunConfig};

/// Failure site updated by the processing phase just before each handler
/// runs, so a contained panic can be attributed to an LP and virtual time.
type Site = Cell<(Option<LpId>, Time)>;

/// How LPs and workers are grouped (single group = plain Unison; one group
/// per simulated host = hybrid kernel).
pub(super) struct Grouping {
    /// Group of each LP.
    pub lp_group: Vec<u32>,
    /// Group of each worker thread (worker 0 is the main thread).
    pub worker_group: Vec<u32>,
    /// Number of groups.
    pub groups: usize,
}

impl Grouping {
    /// Everything in one group with `threads` workers.
    pub fn single(lp_count: usize, threads: usize) -> Self {
        Grouping {
            lp_group: vec![0; lp_count],
            worker_group: vec![0; threads],
            groups: 1,
        }
    }
}

/// Round plan published by the main thread between rounds.
struct RoundPlan {
    /// Per-group LP visit order for the processing phase.
    order: Vec<Vec<u32>>,
    /// Per-group LP list for the receive phase (static).
    group_lps: Vec<Vec<u32>>,
    /// Start of the current window.
    window_start: Time,
    /// End of the current window (the LBTS).
    window_end: Time,
    /// The round number workers are released into. Published (instead of
    /// counted locally by each worker) because fused rounds advance the
    /// main thread's round counter while the workers stay parked at B0 —
    /// a local counter would drift from the authoritative one.
    round: u64,
    /// Set when the simulation is complete.
    done: bool,
    /// Per-LP cost estimates behind the current `order`, published only
    /// when telemetry records (empty otherwise) so `lp-task` spans can
    /// carry estimate-vs-actual data.
    est: Vec<u64>,
}

/// Shared cell for the round plan.
///
/// Mutated exclusively by the main thread between the round's last barrier
/// and the next round's first barrier (while all workers wait); read-only
/// during parallel phases. The barriers provide the happens-before edges.
struct PlanCell(UnsafeCell<RoundPlan>);

// SAFETY: see the access discipline above — main-thread writes and worker
// reads are separated by `TreeBarrier::wait`, which performs an acquire/
// release handshake.
unsafe impl Sync for PlanCell {}

pub(super) fn run<N: SimNode>(
    world: World<N>,
    cfg: &RunConfig,
    threads: usize,
) -> Result<(World<N>, RunReport), SimError> {
    if threads == 0 {
        return Err(KernelError::InvalidConfig("threads must be >= 1".into()).into());
    }
    run_grouped(world, cfg, threads, None, "unison")
}

/// Shared implementation for the Unison and hybrid kernels.
pub(super) fn run_grouped<N: SimNode>(
    world: World<N>,
    cfg: &RunConfig,
    threads: usize,
    grouping: Option<Grouping>,
    kernel_name: &'static str,
) -> Result<(World<N>, RunReport), SimError> {
    let mut partition = build_partition(&world, &cfg.partition)?;
    let (lps, dir, mut graph, init_globals, stop_at, restored_ext_seq) =
        build_lps(world, &partition, cfg.fel);
    let lp_count = lps.len();
    if lp_count == 0 {
        return Err(KernelError::InvalidPartition("world has no nodes".into()).into());
    }
    let grouping = grouping.unwrap_or_else(|| Grouping::single(lp_count, threads));
    if grouping.worker_group.len() != threads || grouping.lp_group.len() != lp_count {
        return Err(
            KernelError::InvalidConfig("grouping does not match thread/LP counts".into()).into(),
        );
    }
    let groups = grouping.groups;

    let channels: Vec<(u32, u32)> = partition
        .lp_channels(&graph)
        .into_iter()
        .map(|(a, b, _)| (a.0, b.0))
        .collect();
    let mailboxes: Mailboxes<N::Payload> = Mailboxes::new(lp_count, &channels);
    let slots = LpSlots::new(lps, dir);

    // Public LP. The external sequence counter continues from a restored
    // checkpoint's value (0 for a fresh world).
    let mut public: Fel<GlobalFn<N>> = Fel::with_impl(cfg.fel);
    let mut ext_seq: u64 = restored_ext_seq;
    for (ts, f) in init_globals {
        public.push(Event {
            key: EventKey::external(ts, ext_seq),
            node: NodeId(u32::MAX),
            payload: f,
        });
        ext_seq += 1;
    }
    if let Some(stop) = stop_at {
        public.push(Event {
            key: EventKey::external(stop, ext_seq),
            node: NodeId(u32::MAX),
            payload: Box::new(|wa: &mut WorldAccess<'_, N>| wa.stop()),
        });
        ext_seq += 1;
    }

    // Static per-group LP lists and initial (identity) orders.
    let mut group_lps: Vec<Vec<u32>> = vec![Vec::new(); groups];
    for (lp, &g) in grouping.lp_group.iter().enumerate() {
        group_lps[g as usize].push(lp as u32);
    }
    let initial_order = group_lps.clone();

    // Per-group worker counts and each worker's slot (index among its
    // group's workers, ascending by worker id; worker 0 is the main
    // thread). Slots identify a worker to its group's scheduling policy.
    let mut group_workers: Vec<usize> = vec![0; groups];
    let mut slot_of: Vec<usize> = vec![0; threads];
    for (w, &g) in grouping.worker_group.iter().enumerate() {
        slot_of[w] = group_workers[g as usize];
        group_workers[g as usize] += 1;
    }
    // Snapshot the placement hints: topology edits in phase 2 may mutate
    // `partition` (lookahead recompute), so the policies must not borrow it.
    let affinity: Vec<u32> = partition.affinity.clone();
    // One scheduling policy per group; seeded with the initial (identity)
    // orders before any worker threads exist.
    let policies: Vec<Box<dyn SchedPolicy>> = (0..groups)
        .map(|g| cfg.sched.policy.build(group_workers[g].max(1)))
        .collect();
    for (g, order_g) in initial_order.iter().enumerate() {
        policies[g].publish(order_g, &affinity);
    }

    // Initial window.
    let initial_min = {
        let mut m = Time::MAX;
        for i in 0..lp_count {
            // SAFETY: no worker threads exist yet.
            m = m.min(unsafe { slots.get_mut(i) }.next_ts);
        }
        m
    };
    let initial_window = public
        .next_ts()
        .min(initial_min.saturating_add(partition.lookahead));
    let plan = PlanCell(UnsafeCell::new(RoundPlan {
        order: initial_order,
        group_lps,
        window_start: Time::ZERO,
        window_end: initial_window,
        round: 1,
        done: initial_min == Time::MAX && public.next_ts() == Time::MAX,
        est: Vec::new(),
    }));

    // Round fusion (DESIGN.md §4.9): disabled while a fault plan is armed,
    // so execution-point faults land on the configured worker and phase
    // (fused rounds run every phase on the main thread).
    let fusion = cfg.sched.fusion;
    let fusion_on = fusion.enabled && cfg.fault.is_empty();
    // Oversubscription clause (DESIGN.md §4.9): when the run asks for more
    // workers than the machine has cores, parallel rounds only time-slice —
    // serializing them on the control thread is strictly cheaper, so lift
    // the load threshold entirely. Deterministic per machine and
    // digest-neutral: fusion never changes the event order, only who runs
    // the phases (pinned by the fusion on/off digest matrix).
    let fusion_threshold = if std::thread::available_parallelism().is_ok_and(|c| threads > c.get())
    {
        u64::MAX
    } else {
        fusion.threshold
    };
    // Entry-predicate seed for round 1: the pending event count below the
    // initial window stands in for "the previous round's load".
    let mut last_load: u64 = 0;
    for i in 0..lp_count {
        // SAFETY: no worker threads exist yet.
        last_load += unsafe { slots.get_mut(i) }.fel.count_below(initial_window) as u64;
    }
    let mut last_recv: u64 = 0;
    let mut last_fused = false;
    let mut fused_rounds: u64 = 0;

    let barrier = TreeBarrier::new(threads);
    let cursor_recv: Vec<CachePadded<AtomicUsize>> = (0..groups)
        .map(|_| CachePadded::new(AtomicUsize::new(0)))
        .collect();
    let stop_flag = AtomicBool::new(false);
    let sched_period = cfg.sched.effective_period(lp_count);

    let mut rounds_profile: Option<Vec<RoundRecord>> = match cfg.metrics {
        MetricsLevel::PerRound => Some(Vec::new()),
        MetricsLevel::Summary => None,
    };
    let mut rounds: u64 = 0;
    let mut global_events: u64 = 0;
    let mut end_time = Time::ZERO;
    let started = Instant::now();

    let mut worker_psm: Vec<Psm> = Vec::new();
    let mut main_psm = Psm::default();
    let main_group = grouping.worker_group[0] as usize;
    let main_slot = slot_of[0];

    // Telemetry sinks: one per worker (sole writer: that worker), plus the
    // scheduler-decision log written only by the main thread in phase 4.
    // All no-ops unless `cfg.telemetry.enabled` (see DESIGN.md §4.3).
    let telctx = TelContext::new(&cfg.telemetry);
    let mut main_tel = telctx.worker(0);
    let mut sched_log = telctx.sched_log();
    let mut worker_tels: Vec<WorkerTel> = Vec::new();

    // Crash-safety plumbing (DESIGN.md §4.2): the first contained panic
    // wins the diagnostics slot; the watchdog aborts rounds that exceed
    // their wall-clock deadline. Both abort paths poison the barrier so
    // every thread drains out at its next synchronization point.
    let failure: Mutex<Option<FailureDiagnostics>> = Mutex::new(None);
    let wd = Watchdog::new();

    std::thread::scope(|scope| {
        // Round-progress monitor (opt-in): fires when the main thread stops
        // ticking for longer than the deadline.
        if let Some(deadline) = cfg.watchdog.round_deadline {
            let wd = &wd;
            let barrier = &barrier;
            scope.spawn(move || {
                wd.monitor(deadline, || barrier.poison());
            });
        }

        // Spawn `threads - 1` workers; the main thread is worker 0 and also
        // runs the serial phases.
        let mut handles = Vec::new();
        for (w, &slot) in slot_of.iter().enumerate().skip(1) {
            let g = grouping.worker_group[w] as usize;
            let slots = &slots;
            let plan = &plan;
            let barrier = &barrier;
            let policies = &policies;
            let cursor_recv = &cursor_recv;
            let stop_flag = &stop_flag;
            let mailboxes = &mailboxes;
            let failure = &failure;
            let telctx = &telctx;
            handles.push(scope.spawn(move || {
                // Deterministic placement (default off): pin worker `w`
                // before the first barrier arrival. The main thread (worker
                // 0) is the caller's thread and is never pinned — the run
                // must not mutate the caller's affinity mask.
                cfg.sched.pin.apply(w);
                let mut psm = Psm::default();
                let mut tel = telctx.worker(w as u32);
                let mut waiter = barrier.waiter(w);
                // Reusable receive-phase batch buffer (DESIGN.md §4.4).
                let mut recv_buf: Vec<Event<N::Payload>> = Vec::new();
                let mut round: u64 = 0;
                loop {
                    // B0: plan published
                    wait_timed(barrier, &mut waiter, &mut psm.s_ns, &mut tel, round + 1, 0);
                    if barrier.is_poisoned() {
                        break;
                    }
                    // SAFETY: read-only access during parallel phases.
                    let p = unsafe { &*plan.0.get() };
                    if p.done {
                        break;
                    }
                    // Authoritative round number: fused rounds advance it
                    // while workers are parked, so it may jump.
                    round = p.round;
                    let site: Site = Cell::new((None, p.window_start));
                    let tel_start = tel.start();
                    let t0 = Instant::now();
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        #[cfg(feature = "fault-inject")]
                        cfg.fault.fire_phase(round, RunPhase::Process, w);
                        process_phase(
                            slots,
                            mailboxes,
                            &*policies[g],
                            slot,
                            &p.order[g],
                            p,
                            stop_flag,
                            &site,
                            &mut tel,
                            round,
                        )
                    }));
                    let p_dur = t0.elapsed().as_nanos() as u64;
                    psm.p_ns += p_dur;
                    match r {
                        Ok(events) => tel.span_dur(
                            SpanKind::Process,
                            round,
                            NO_LP,
                            tel_start,
                            p_dur,
                            events,
                            0,
                        ),
                        Err(payload) => {
                            contain(
                                failure,
                                barrier,
                                kernel_name,
                                round,
                                RunPhase::Process,
                                &site,
                                w,
                                payload,
                            );
                            break;
                        }
                    }
                    wait_timed(barrier, &mut waiter, &mut psm.s_ns, &mut tel, round, 1); // B1
                    if barrier.is_poisoned() {
                        break;
                    }
                    // B2 (main ran globals)
                    wait_timed(barrier, &mut waiter, &mut psm.s_ns, &mut tel, round, 2);
                    if barrier.is_poisoned() {
                        break;
                    }
                    let site: Site = Cell::new((None, p.window_end));
                    let tel_start = tel.start();
                    let t0 = Instant::now();
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        #[cfg(feature = "fault-inject")]
                        {
                            cfg.fault.fire_phase(round, RunPhase::Receive, w);
                            cfg.fault.fire_stall(round, w);
                        }
                        receive_phase(
                            slots,
                            mailboxes,
                            &cursor_recv[g],
                            &p.group_lps[g],
                            &site,
                            &mut tel,
                            round,
                            &mut recv_buf,
                        )
                    }));
                    let m_dur = t0.elapsed().as_nanos() as u64;
                    psm.m_ns += m_dur;
                    match r {
                        Ok(recv) => {
                            tel.span_dur(SpanKind::Receive, round, NO_LP, tel_start, m_dur, recv, 0)
                        }
                        Err(payload) => {
                            contain(
                                failure,
                                barrier,
                                kernel_name,
                                round,
                                RunPhase::Receive,
                                &site,
                                w,
                                payload,
                            );
                            break;
                        }
                    }
                    #[cfg(feature = "fault-inject")]
                    cfg.fault.fire_barrier_delay(round, w);
                    wait_timed(barrier, &mut waiter, &mut psm.s_ns, &mut tel, round, 3); // B3
                    if barrier.is_poisoned() {
                        break;
                    }
                }
                (psm, tel)
            }));
        }

        // Main thread control loop. Claim-audit generations are bumped by
        // the main thread inside its exclusive windows, always *before* the
        // barrier that releases workers into the phase the bump covers.
        //
        // Persistent scratch: the main thread's receive-phase batch buffer
        // and the phase-4 LJF re-sort buffers, reused every round/period so
        // the steady-state control loop stays off the allocator
        // (DESIGN.md §4.4).
        let mut main_recv_buf: Vec<Event<N::Payload>> = Vec::new();
        let mut estimates: Vec<u64> = Vec::new();
        let mut group_est: Vec<u64> = Vec::new();
        let mut group_order: Vec<u32> = Vec::new();
        let mut waiter0 = barrier.waiter(0);
        slots.begin_phase(); // covers phase 1 of round 1
        loop {
            // SAFETY: the main thread is exclusive until its B0 arrival —
            // workers are parked inside the B0 wait (it cannot complete
            // without main) and only read the plan after it does.
            let p = unsafe { &*plan.0.get() };
            // Round fusion (DESIGN.md §4.9): when the previous round's
            // load was below the threshold, the four barrier crossings
            // cost more than this round's events — run the round serially
            // right here while the workers stay parked at B0. A cross-LP
            // arrival during a fused round ends the span (the next round
            // steps through the barrier path).
            let fuse = fusion_on
                && !p.done
                && !barrier.is_poisoned()
                && last_load <= fusion_threshold
                && !(last_fused && last_recv > 0);
            let round = rounds + 1;
            let window_start = p.window_start;
            let window_end = p.window_end;
            let round_tel_start = main_tel.start();
            let round_t0 = Instant::now();
            if !fuse {
                // B0
                wait_timed(
                    &barrier,
                    &mut waiter0,
                    &mut main_psm.s_ns,
                    &mut main_tel,
                    round,
                    0,
                );
                if barrier.is_poisoned() {
                    break;
                }
                if p.done {
                    break;
                }
            }
            let site: Site = Cell::new((None, window_start));
            let tel_start = main_tel.start();
            let t0 = Instant::now();
            let r = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-inject")]
                cfg.fault.fire_phase(round, RunPhase::Process, 0);
                if fuse {
                    // Fused round: this thread claims every group's whole
                    // order (slot 0 of each policy); the parked workers
                    // never contend for claims.
                    let mut events = 0;
                    for (g, policy) in policies.iter().enumerate() {
                        events += process_phase(
                            &slots,
                            &mailboxes,
                            &**policy,
                            0,
                            &p.order[g],
                            p,
                            &stop_flag,
                            &site,
                            &mut main_tel,
                            round,
                        );
                    }
                    events
                } else {
                    process_phase(
                        &slots,
                        &mailboxes,
                        &*policies[main_group],
                        main_slot,
                        &p.order[main_group],
                        p,
                        &stop_flag,
                        &site,
                        &mut main_tel,
                        round,
                    )
                }
            }));
            let p_dur = t0.elapsed().as_nanos() as u64;
            main_psm.p_ns += p_dur;
            match r {
                Ok(events) => {
                    main_tel.span_dur(SpanKind::Process, round, NO_LP, tel_start, p_dur, events, 0)
                }
                Err(payload) => {
                    contain(
                        &failure,
                        &barrier,
                        kernel_name,
                        round,
                        RunPhase::Process,
                        &site,
                        0,
                        payload,
                    );
                    break;
                }
            }
            if !fuse {
                wait_timed(
                    &barrier,
                    &mut waiter0,
                    &mut main_psm.s_ns,
                    &mut main_tel,
                    round,
                    1,
                ); // B1
                if barrier.is_poisoned() {
                    break;
                }
            }

            // ---- Phase 2: global events (main thread only) ----
            slots.begin_phase(); // covers phase 2 (workers idle until B2)
            let tel_start = main_tel.start();
            let globals_before = global_events;
            let t0 = Instant::now();
            let mut stopped = stop_flag.load(Ordering::Acquire);
            let site: Site = Cell::new((None, window_end));
            let r = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-inject")]
                cfg.fault.fire_phase(round, RunPhase::Global, 0);
                let mut topology_dirty = false;
                for c in cursor_recv.iter() {
                    c.store(0, Ordering::Relaxed);
                }
                // Route overflow events and merge node-scheduled globals.
                for i in 0..lp_count {
                    let (outflow, pending) = {
                        // SAFETY: workers wait at B2; main is exclusive. The
                        // borrow ends inside this block, before any other slot
                        // is touched.
                        let lp = unsafe { slots.get_mut(i) };
                        if lp.outflow.is_empty() && lp.pending_globals.is_empty() {
                            continue;
                        }
                        (
                            std::mem::take(&mut lp.outflow),
                            std::mem::take(&mut lp.pending_globals),
                        )
                    };
                    for ev in outflow {
                        let dst = slots.directory().lp_of(ev.node);
                        // SAFETY: main-thread exclusivity; the source LP borrow
                        // above has already ended.
                        let dst_lp = unsafe { slots.get_mut(dst.index()) };
                        dst_lp.fel.push(ev);
                    }
                    for pg in pending {
                        public.push(Event {
                            key: EventKey {
                                // Clamp: globals cannot precede the end of the
                                // window that scheduled them.
                                ts: pg.ts.max(window_end),
                                sender_ts: pg.sender_ts,
                                sender_lp: LpId(i as u32),
                                seq: ext_seq,
                            },
                            node: NodeId(u32::MAX),
                            payload: pg.f,
                        });
                        ext_seq += 1;
                    }
                }
                // Execute due global events.
                // `Time::MAX` means "no global event" — it must not satisfy the
                // bound even when the window itself is unbounded (linkless
                // worlds have an infinite lookahead).
                while !stopped && public.next_ts() != Time::MAX && public.next_ts() <= window_end {
                    // INVARIANT: `next_ts != Time::MAX` implies non-empty.
                    let g = public.pop().expect("public FEL non-empty");
                    let now = g.key.ts;
                    end_time = end_time.max(now);
                    site.set((None, now));
                    let mut stop = false;
                    let mut new_globals: Vec<(Time, GlobalFn<N>)> = Vec::new();
                    {
                        // SAFETY: workers wait at B2; the main thread holds
                        // exclusive access to every LP slot.
                        let mut wa = unsafe {
                            WorldAccess::new(
                                now,
                                &slots,
                                &mut graph,
                                &mut partition,
                                &mut topology_dirty,
                                &mut stop,
                                &mut new_globals,
                                &mut ext_seq,
                                Some(CkptEnv {
                                    mailboxes: &mailboxes,
                                    stop_at,
                                    wd: &wd,
                                    fault: &cfg.fault,
                                }),
                            )
                        };
                        (g.payload)(&mut wa);
                    }
                    global_events += 1;
                    for (ts, f) in new_globals {
                        public.push(Event {
                            key: EventKey::external(ts, ext_seq),
                            node: NodeId(u32::MAX),
                            payload: f,
                        });
                        ext_seq += 1;
                    }
                    if stop {
                        stopped = true;
                    }
                }
                if topology_dirty {
                    partition.recompute_lookahead(&graph);
                }
            }));
            let g_dur = t0.elapsed().as_nanos() as u64;
            main_psm.p_ns += g_dur;
            if let Err(payload) = r {
                contain(
                    &failure,
                    &barrier,
                    kernel_name,
                    round,
                    RunPhase::Global,
                    &site,
                    0,
                    payload,
                );
                break;
            }
            main_tel.span_dur(
                SpanKind::Global,
                round,
                NO_LP,
                tel_start,
                g_dur,
                global_events - globals_before,
                0,
            );
            slots.begin_phase(); // covers phase 3 (released by B2)
            if !fuse {
                wait_timed(
                    &barrier,
                    &mut waiter0,
                    &mut main_psm.s_ns,
                    &mut main_tel,
                    round,
                    2,
                ); // B2
                if barrier.is_poisoned() {
                    break;
                }
            }

            // ---- Phase 3: receive (parallel; fused rounds drain every
            // group serially on the main thread) ----
            let site: Site = Cell::new((None, window_end));
            let tel_start = main_tel.start();
            let t0 = Instant::now();
            let r = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-inject")]
                {
                    cfg.fault.fire_phase(round, RunPhase::Receive, 0);
                    cfg.fault.fire_stall(round, 0);
                }
                if fuse {
                    let mut recv = 0u64;
                    for (g, cursor) in cursor_recv.iter().enumerate() {
                        recv += receive_phase(
                            &slots,
                            &mailboxes,
                            cursor,
                            &p.group_lps[g],
                            &site,
                            &mut main_tel,
                            round,
                            &mut main_recv_buf,
                        );
                    }
                    recv
                } else {
                    receive_phase(
                        &slots,
                        &mailboxes,
                        &cursor_recv[main_group],
                        &p.group_lps[main_group],
                        &site,
                        &mut main_tel,
                        round,
                        &mut main_recv_buf,
                    )
                }
            }));
            let m_dur = t0.elapsed().as_nanos() as u64;
            main_psm.m_ns += m_dur;
            match r {
                Ok(recv) => {
                    main_tel.span_dur(SpanKind::Receive, round, NO_LP, tel_start, m_dur, recv, 0)
                }
                Err(payload) => {
                    contain(
                        &failure,
                        &barrier,
                        kernel_name,
                        round,
                        RunPhase::Receive,
                        &site,
                        0,
                        payload,
                    );
                    break;
                }
            }
            if !fuse {
                #[cfg(feature = "fault-inject")]
                cfg.fault.fire_barrier_delay(round, 0);
                wait_timed(
                    &barrier,
                    &mut waiter0,
                    &mut main_psm.s_ns,
                    &mut main_tel,
                    round,
                    3,
                ); // B3
                if barrier.is_poisoned() {
                    break;
                }
            }

            // ---- Phase 4: update window + schedule (main thread only) ----
            slots.begin_phase(); // covers phase 4 (workers idle until B0)
            let tel_start = main_tel.start();
            let t0 = Instant::now();
            rounds += 1;
            if fuse {
                fused_rounds += 1;
            }
            let mut min_next = Time::MAX;
            let mut load: u64 = 0;
            let mut recv_total: u64 = 0;
            for i in 0..lp_count {
                // SAFETY: workers are between B3 and B0 (fused rounds: still
                // parked at B0); main is exclusive.
                let lp = unsafe { slots.get_mut(i) };
                min_next = min_next.min(lp.next_ts);
                load += lp.round_events + lp.round_recv;
                recv_total += lp.round_recv;
            }
            let n_pub = public.next_ts();
            let next_window = n_pub.min(min_next.saturating_add(partition.lookahead));
            let done = stopped || (min_next == Time::MAX && n_pub == Time::MAX);

            // Record this round's profile and reset per-round fields.
            if let Some(profile) = rounds_profile.as_mut() {
                let mut rec = RoundRecord {
                    window_start,
                    window_end,
                    fused: fuse,
                    lp_cost_ns: Vec::with_capacity(lp_count),
                    lp_events: Vec::with_capacity(lp_count),
                    lp_recv: Vec::with_capacity(lp_count),
                };
                for i in 0..lp_count {
                    // SAFETY: main-thread exclusivity between barriers.
                    let lp = unsafe { slots.get_mut(i) };
                    rec.lp_cost_ns.push(lp.last_cost_ns as f32);
                    rec.lp_events.push(lp.round_events as u32);
                    rec.lp_recv.push(lp.round_recv as u32);
                }
                profile.push(rec);
            }

            // Load-adaptive scheduling: re-sort the LP order every period.
            if !done
                && cfg.sched.metric != SchedMetric::None
                && rounds.is_multiple_of(sched_period as u64)
            {
                estimates.clear();
                estimates.resize(lp_count, 0);
                match cfg.sched.metric {
                    SchedMetric::ByLastRoundTime => {
                        for (i, e) in estimates.iter_mut().enumerate() {
                            // SAFETY: main-thread exclusivity.
                            *e = unsafe { slots.get_mut(i) }.last_cost_ns;
                        }
                    }
                    SchedMetric::ByPendingEvents => {
                        for (i, e) in estimates.iter_mut().enumerate() {
                            // SAFETY: main-thread exclusivity.
                            let lp = unsafe { slots.get_mut(i) };
                            *e = lp.fel.count_below(next_window) as u64;
                        }
                    }
                    SchedMetric::None => unreachable!(),
                }
                // SAFETY: main-thread exclusivity between B3 and B0.
                let plan_mut = unsafe { &mut *plan.0.get() };
                // Allocation-free LJF: gather each group's estimates and
                // sort into the group's published order slot, all through
                // reused scratch buffers.
                for (g, lps_of_g) in plan_mut.group_lps.iter().enumerate() {
                    group_est.clear();
                    group_est.extend(lps_of_g.iter().map(|&l| estimates[l as usize]));
                    order_by_estimate_into(&group_est, &mut group_order);
                    let out = &mut plan_mut.order[g];
                    out.clear();
                    out.extend(group_order.iter().map(|&i| lps_of_g[i as usize]));
                }
                // Re-seed each group's policy with its new order (the
                // unconditional `begin_round` below is then a no-op for
                // this round).
                for (g, order_g) in plan_mut.order.iter().enumerate() {
                    policies[g].publish(order_g, &affinity);
                }
                if sched_log.enabled() {
                    // Log the LJF decision per group: the order applies
                    // from the next round (`rounds + 1`) until the next
                    // re-sort. Estimates ride along for regret analysis,
                    // steal/affinity counters (cumulative at decision
                    // time) for work-stealing analysis.
                    for (g, order_g) in plan_mut.order.iter().enumerate() {
                        let st = policies[g].stats();
                        sched_log.record(
                            rounds + 1,
                            g as u32,
                            cfg.sched.metric.name(),
                            order_g.clone(),
                            order_g.iter().map(|&l| estimates[l as usize]).collect(),
                            st.steals,
                            st.affinity_hits,
                        );
                    }
                    // Publish the estimates so phase-1 `lp-task` spans can
                    // carry estimate-vs-actual arguments.
                    plan_mut.est.clear();
                    plan_mut.est.extend_from_slice(&estimates);
                }
            }

            if !done {
                end_time = end_time.max(window_end);
            }
            // Publish the next round's plan.
            {
                // SAFETY: main-thread exclusivity between B3 and B0.
                let plan_mut = unsafe { &mut *plan.0.get() };
                plan_mut.window_start = window_end;
                plan_mut.window_end = next_window;
                plan_mut.done = done;
                // Fused rounds advance `rounds` while the workers stay parked
                // at B0, so the plan carries the authoritative round number.
                plan_mut.round = rounds + 1;
            }
            for pol in policies.iter() {
                pol.begin_round();
            }
            slots.begin_phase(); // covers the next round's phase 1
            let w_dur = t0.elapsed().as_nanos() as u64;
            main_psm.m_ns += w_dur;
            main_tel.span_dur(
                SpanKind::WindowUpdate,
                rounds,
                NO_LP,
                tel_start,
                w_dur,
                window_end.0,
                next_window.0,
            );
            if fuse {
                // A whole-round span marking that every phase of this round
                // ran on the main thread with no barrier crossing. `a` is
                // the round's total load, `b` the cross-LP events it drained
                // (the round that forces the fallback).
                main_tel.span_dur(
                    SpanKind::FusedRound,
                    rounds,
                    NO_LP,
                    round_tel_start,
                    round_t0.elapsed().as_nanos() as u64,
                    load,
                    recv_total,
                );
            }
            // Feed the fusion predictor for the next round.
            last_load = load;
            last_recv = recv_total;
            last_fused = fuse;
            // One round completed: feed the watchdog.
            wd.tick();
        }

        // Unblock the monitor thread (if any) before joining workers, so a
        // clean shutdown never waits out the deadline.
        wd.finish();
        for (i, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok((psm, tel)) => {
                    worker_psm.push(psm);
                    worker_tels.push(tel);
                }
                // Workers contain their own panics, so a join error means
                // the containment machinery itself died (e.g. a panic in
                // barrier bookkeeping). Record it instead of propagating —
                // `try_run` must not panic.
                Err(payload) => {
                    barrier.poison();
                    record_failure(
                        &failure,
                        FailureDiagnostics {
                            kernel: kernel_name,
                            round: rounds,
                            phase: RunPhase::Control,
                            lp: None,
                            virtual_time: end_time,
                            worker: i + 1,
                            panic_message: panic_message(payload.as_ref()),
                        },
                    );
                }
            }
        }
    });

    let wall = started.elapsed();
    let stalled = wd.stalled();
    let (mut lps, _) = slots.into_inner();
    // An abort can leave cross-LP events sent in the aborted round's process
    // phase undelivered (the receive phase never ran). Deliver them now so
    // the stall diagnosis sees every LP that still has work; on a completed
    // run the mailboxes are already empty.
    for lp in lps.iter_mut() {
        let id = lp.id.0;
        mailboxes.drain(id, |ev| lp.fel.push(ev));
    }
    let lp_totals = LpTotals {
        events: lps.iter().map(|lp| lp.total_events).collect(),
        cost_ns: lps.iter().map(|lp| lp.last_cost_ns).collect(),
        node_switches: lps.iter().map(|lp| lp.node_switches).collect(),
    };
    let events: u64 = lp_totals.events.iter().sum();
    let mut psm = vec![main_psm];
    psm.extend(worker_psm);
    let mut tels = vec![main_tel];
    tels.extend(worker_tels);
    let (pool_hits, pool_misses) = mailboxes.pool_stats();
    let mut sched_stats = SchedStats {
        policy: cfg.sched.policy.name(),
        ..Default::default()
    };
    for pol in policies.iter() {
        let s = pol.stats();
        sched_stats.claims += s.claims;
        sched_stats.steals += s.steals;
        sched_stats.affinity_hits += s.affinity_hits;
    }
    let report = RunReport {
        kernel: format!("{kernel_name}({threads})"),
        wall,
        events,
        global_events,
        rounds,
        fused_rounds,
        lp_count: lp_count as u32,
        threads: threads as u32,
        lookahead: partition.lookahead,
        end_time,
        psm,
        psm_per_lp: false,
        lp_totals,
        engine: EngineStats {
            fel_impl: cfg.fel,
            pool_hits: pool_hits as u64,
            pool_misses: pool_misses as u64,
        },
        sched: sched_stats,
        rounds_profile,
        telemetry: telctx.collect(tels, sched_log),
        recovery: None,
        async_stats: None,
    };
    if let Some(diag) = failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(SimError::WorkerPanic {
            diag,
            partial: Box::new(report),
        });
    }
    if stalled {
        let blocked: Vec<LpId> = lps
            .iter()
            .filter(|lp| lp.fel.next_ts() != Time::MAX || !lp.outflow.is_empty())
            .map(|lp| lp.id)
            .collect();
        let diag = StallDiagnostics {
            kernel: kernel_name,
            round: rounds,
            deadline: cfg.watchdog.round_deadline.unwrap_or_default(),
            virtual_time: end_time,
            blocked,
            cycle: Vec::new(),
        };
        return Err(SimError::Stalled {
            diag,
            partial: Box::new(report),
        });
    }
    let world = reassemble_world(lps, &partition, graph, stop_at);
    Ok((world, report))
}

/// Records a contained panic's diagnostics (first failure wins) and poisons
/// the barrier so every other thread drains out of the round loop.
#[allow(clippy::too_many_arguments)]
fn contain(
    failure: &Mutex<Option<FailureDiagnostics>>,
    barrier: &TreeBarrier,
    kernel: &'static str,
    round: u64,
    phase: RunPhase,
    site: &Site,
    worker: usize,
    payload: Box<dyn std::any::Any + Send>,
) {
    let (lp, virtual_time) = site.get();
    record_failure(
        failure,
        FailureDiagnostics {
            kernel,
            round,
            phase,
            lp,
            virtual_time,
            worker,
            panic_message: panic_message(payload.as_ref()),
        },
    );
    barrier.poison();
}

/// Barrier wait with the blocked time charged to `s_ns` and recorded as a
/// `barrier-wait` span (`arg` = barrier index 0–3 within `round`). The
/// wall-clock measurement lives in [`TreeBarrier::wait_timed`].
#[inline]
#[allow(clippy::too_many_arguments)]
fn wait_timed(
    barrier: &TreeBarrier,
    waiter: &mut TreeWaiter,
    s_ns: &mut u64,
    tel: &mut WorkerTel,
    round: u64,
    which: u64,
) {
    let tel_start = tel.start();
    let before = *s_ns;
    barrier.wait_timed(waiter, s_ns);
    tel.span_dur(
        SpanKind::BarrierWait,
        round,
        NO_LP,
        tel_start,
        *s_ns - before,
        which,
        0,
    );
}

/// Phase 1: claim LPs through the scheduling policy and execute their
/// window events. Returns the number of events this worker executed.
#[allow(clippy::too_many_arguments)]
fn process_phase<N: SimNode>(
    slots: &LpSlots<N>,
    mailboxes: &Mailboxes<N::Payload>,
    policy: &dyn SchedPolicy,
    slot: usize,
    order: &[u32],
    plan: &RoundPlan,
    stop_flag: &AtomicBool,
    site: &Site,
    tel: &mut WorkerTel,
    round: u64,
) -> u64 {
    let dir = slots.directory();
    let mut total_events: u64 = 0;
    while let Some(i) = policy.claim(slot) {
        let lp_idx = order[i] as usize;
        // SAFETY: `SchedPolicy::claim` hands each position to exactly one
        // worker per round (the exactly-once contract on the trait); phases
        // are separated by barriers.
        let lp = unsafe { slots.get_mut(lp_idx) };
        // The cache is exact here: it was refreshed at the end of the last
        // receive phase (after outflow routing), and the window-planning
        // phase between never touches LP FELs. Probing the cache instead of
        // the FEL keeps the idle-LP skip O(1) under the ladder backend,
        // whose `next_ts` may scan a rung bucket.
        debug_assert_eq!(lp.next_ts, lp.fel.next_ts(), "stale next_ts cache");
        if lp.next_ts >= plan.window_end {
            // Idle this round: skip the clock calls entirely so idle LPs
            // record zero cost (and cost nothing).
            lp.round_events = 0;
            lp.last_cost_ns = 0;
            continue;
        }
        let tel_start = tel.start();
        let t0 = Instant::now();
        let mut round_events: u64 = 0;
        while let Some(ev) = lp.fel.pop_below(plan.window_end) {
            if ev.node.0 != lp.last_node {
                lp.node_switches += 1;
                lp.last_node = ev.node.0;
            }
            let (owner, local) = dir.locate(ev.node);
            debug_assert_eq!(owner, lp.id, "event routed to wrong LP");
            site.set((Some(lp.id), ev.key.ts));
            let node = &mut lp.nodes[local as usize];
            let mut ctx = RoundCtx::<N> {
                now: ev.key.ts,
                self_node: ev.node,
                lp_id: lp.id,
                window_end: plan.window_end,
                fel: &mut lp.fel,
                seq: &mut lp.seq,
                outflow: &mut lp.outflow,
                pending_globals: &mut lp.pending_globals,
                dir,
                mailboxes: Some(mailboxes),
                stop_flag,
            };
            node.handle(ev.payload, &mut ctx);
            round_events += 1;
        }
        lp.round_events = round_events;
        lp.total_events += round_events;
        lp.last_cost_ns = t0.elapsed().as_nanos() as u64;
        total_events += round_events;
        if tel.enabled() {
            // `plan.est` is only published when telemetry records; 0 means
            // "no estimate" (before the first re-sort, or metric None).
            let est = plan.est.get(lp_idx).copied().unwrap_or(0);
            tel.span_dur(
                SpanKind::LpTask,
                round,
                lp_idx as u32,
                tel_start,
                lp.last_cost_ns,
                round_events,
                est,
            );
        }
    }
    total_events
}

/// Phase 3: claim LPs and drain their mailboxes into their FELs. Returns
/// the number of events this worker received.
///
/// The hand-off is batched: `Mailboxes::drain_batch` appends each claimed
/// LP's pending events (recycling the queue nodes onto their pools) into
/// this worker's reusable `recv_buf`, and `Fel::extend` ingests the whole
/// batch at once — no per-event closure dispatch, no per-event heap sift,
/// and zero allocation once `recv_buf` has grown to the steady-state burst
/// size.
#[allow(clippy::too_many_arguments)]
fn receive_phase<N: SimNode>(
    slots: &LpSlots<N>,
    mailboxes: &Mailboxes<N::Payload>,
    cursor: &AtomicUsize,
    group_lps: &[u32],
    site: &Site,
    tel: &mut WorkerTel,
    round: u64,
    recv_buf: &mut Vec<Event<N::Payload>>,
) -> u64 {
    let mut total_recv: u64 = 0;
    loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= group_lps.len() {
            break;
        }
        let lp_idx = group_lps[i] as usize;
        site.set((Some(LpId(lp_idx as u32)), site.get().1));
        // SAFETY: unique claim via the cursor, as in `process_phase`.
        let lp = unsafe { slots.get_mut(lp_idx) };
        let tel_start = tel.start();
        debug_assert!(recv_buf.is_empty());
        let recv = mailboxes.drain_batch(lp_idx as u32, recv_buf) as u64;
        if tel.enabled() {
            for ev in recv_buf.iter() {
                tel.edge(ev.key.sender_lp.0, lp_idx as u32);
            }
        }
        lp.fel.extend(recv_buf.drain(..));
        lp.round_recv = recv;
        lp.refresh_next_ts();
        total_recv += recv;
        if recv > 0 {
            tel.span(
                SpanKind::MailboxFlush,
                round,
                lp_idx as u32,
                tel_start,
                recv,
            );
        }
    }
    total_recv
}
