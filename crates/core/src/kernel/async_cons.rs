//! The asynchronous conservative kernel (`KernelKind::AsyncCons`):
//! barrier-free PDES with channel clocks, time-advance grants and a
//! deterministic k-way merge (ROADMAP item 2).
//!
//! Unlike the Unison kernel there is **no round barrier**: a fixed pool of
//! `threads` workers each owns a static set of LPs and advances every owned
//! LP to the bound implied by its in-neighbors' *channel clocks* (the last
//! granted timestamp on each directed channel). A worker that can make no
//! progress parks on a per-worker condvar until a neighbor's grant or event
//! delivery wakes it — null-message-style grants are published lazily
//! (`fetch_max` no-ops unless the promise actually rose) and a wake-up is
//! only issued when a channel would otherwise keep its receiver stalled.
//!
//! Determinism (DESIGN.md §4.8): cross-LP events travel through the pooled
//! per-channel [`Mailboxes`] queues **with their original tie-break keys**
//! (assigned from the sender's per-LP monotone counter, exactly as the
//! Unison and compat-keys sequential kernels assign them). Each LP merges
//! its in-channel deliveries through a deterministic k-way [`Merger`] keyed
//! by the §5.2 `(timestamp, sender-time, sender-LP, seq)` order and pops
//! its FEL in full-key order, so every LP processes the *same event
//! sequence in the same order* at any thread count — digests are
//! bit-identical to the 1-thread sequential reference.
//!
//! Global events (including checkpoint writes) execute on the main thread
//! at *quiesced virtual-time fronts*: `gate_ts` holds the timestamp of the
//! next pending global; workers treat it as a hard processing bound, and
//! once every worker has advanced all of its LPs to the gate they
//! rendezvous on a condvar. The main thread then has exclusive world
//! access (every worker is parked), executes all due globals, republishes
//! the gate and releases the workers. Between gates there is no global
//! synchronization of any kind.
//!
//! A zero-lookahead cycle with pending events below the gate can neither
//! progress nor reach the gate; the round-progress watchdog converts that
//! silence into [`SimError::Stalled`] with a cycle walk over the channel
//! clocks captured at abort time (same diagnosis as the null-message
//! kernel). A worker panic is contained: the failing worker poisons its
//! out-channels to `u64::MAX`, raises the stop flag and wakes everyone, so
//! the run drains out with [`SimError::WorkerPanic`] diagnostics.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::error::{
    panic_message, record_failure, FailureDiagnostics, RunPhase, SimError, StallDiagnostics,
};
use crate::event::{Event, EventKey, LpId, NodeId};
use crate::fel::Fel;
use crate::global::{CkptEnv, GlobalFn, WorldAccess};
use crate::lp::LpSlots;
use crate::mailbox::Mailboxes;
use crate::metrics::{AsyncStats, EngineStats, LpTotals, Psm, RunReport, SchedStats};
use crate::sync_shim::CachePadded;
use crate::telemetry::{SpanKind, TelContext, WorkerTel, NO_LP};
use crate::time::Time;
use crate::world::{NodeDirectory, SimCtx, SimNode, World};

use super::watchdog::Watchdog;
use super::{build_lps, build_partition, reassemble_world, KernelError, RunConfig};

// ---------------------------------------------------------------------------
// Wake-up plumbing
// ---------------------------------------------------------------------------

/// Wake-up channel for one worker: version counter + condvar. The version
/// is bumped *after* the input change it publishes (under the same lock a
/// sleeper re-checks under), so wake-ups are never lost.
struct Waker {
    version: Mutex<u64>,
    cond: Condvar,
}

impl Waker {
    fn new() -> Self {
        Waker {
            version: Mutex::new(0),
            cond: Condvar::new(),
        }
    }

    /// Signals the owning worker that some input changed.
    fn bump(&self) {
        // A poisoned lock (a bumper panicked mid-bump) must not take the
        // containment path down with it: the counter is a plain u64.
        let mut v = self.version.lock().unwrap_or_else(|e| e.into_inner());
        *v += 1;
        self.cond.notify_all();
    }
}

/// Rendezvous state for the quiesced virtual-time front.
struct GateState {
    /// Incremented by the main thread each time it republishes the gate;
    /// workers wait for the epoch to move past their arrival.
    epoch: u64,
    /// Workers that have arrived at the current gate in this epoch.
    arrived: usize,
}

/// The gate condvar: workers arrive when every owned LP has quiesced at
/// `gate_ts`; the main thread waits for `arrived == threads`, then holds
/// the state lock through its entire exclusive global window (arrived
/// workers are parked in `cond` waits, so they cannot touch the world
/// until the lock is released).
struct Gate {
    state: Mutex<GateState>,
    cond: Condvar,
}

// ---------------------------------------------------------------------------
// Deterministic k-way merge
// ---------------------------------------------------------------------------

/// Deterministic k-way merger for in-channel event deliveries.
///
/// Each in-channel drains into its own run; `merge_into` produces the runs'
/// union in ascending full §5.2 event-key order. Keys are globally unique
/// (sender LP + per-sender monotone sequence), so the merged order is a
/// pure function of the event set — independent of arrival interleaving,
/// channel order and thread count.
pub(crate) struct Merger<P> {
    runs: Vec<Vec<Event<P>>>,
    k: usize,
}

impl<P> Merger<P> {
    pub(crate) fn new() -> Self {
        Merger {
            runs: Vec::new(),
            k: 0,
        }
    }

    /// Starts a merge over `k` runs (buffers are reused across calls).
    pub(crate) fn begin(&mut self, k: usize) {
        if self.runs.len() < k {
            self.runs.resize_with(k, Vec::new);
        }
        for r in &mut self.runs[..k] {
            r.clear();
        }
        self.k = k;
    }

    /// The input buffer for run `j` (one per in-channel).
    pub(crate) fn run_mut(&mut self, j: usize) -> &mut Vec<Event<P>> {
        &mut self.runs[j]
    }

    /// Total events across all runs.
    pub(crate) fn total(&self) -> usize {
        self.runs[..self.k].iter().map(|r| r.len()).sum()
    }

    /// Merges all runs into `out` in ascending full-key order, draining the
    /// run buffers (their capacity is retained for reuse).
    ///
    /// Keys are globally unique (sender LP + per-sender monotone sequence),
    /// so the sorted order of the runs' union *is* the k-way merged order —
    /// the merge is one concatenation plus one sort by the full key. On the
    /// hot path this beats k per-run sorts followed by a cursor min-scan:
    /// within one channel a sender's deliveries arrive FIFO in *send* order
    /// (each send's delay differs), so per-run pre-sorting buys nothing the
    /// final sort does not already do.
    pub(crate) fn merge_into(&mut self, out: &mut Vec<Event<P>>) {
        for r in &mut self.runs[..self.k] {
            out.append(r);
        }
        out.sort_unstable_by_key(|e| e.key);
    }
}

// ---------------------------------------------------------------------------
// Scheduling context
// ---------------------------------------------------------------------------

/// [`SimCtx`] for the asynchronous conservative kernel.
///
/// Keys are assigned exactly as the Unison kernel's `RoundCtx` assigns them
/// (per-LP monotone `seq`, §5.2 tie-break fields) and travel unmodified, so
/// the merged processing order matches the sequential reference. Cross-LP
/// sends must follow a topology channel and respect its lookahead; there is
/// no overflow path (no main-thread routing phase exists to forward one),
/// so an off-channel send is a model error and panics (contained).
struct AsyncCtx<'a, N: SimNode> {
    now: Time,
    self_node: NodeId,
    lp_id: LpId,
    fel: &'a mut Fel<N::Payload>,
    seq: &'a mut u64,
    dir: &'a NodeDirectory,
    mailboxes: &'a Mailboxes<N::Payload>,
    stop_flag: &'a AtomicBool,
    /// This LP's out-channels as `(dst LP, channel index)`, sorted by dst.
    out_pair: &'a [(u32, usize)],
    /// Per-channel lookahead (atomic: the main thread rewrites these inside
    /// its exclusive gate window after a topology mutation).
    chan_la: &'a [CachePadded<AtomicU64>],
    /// Destination LPs sent to while processing this LP (for wake-ups).
    touched: &'a mut Vec<u32>,
}

impl<N: SimNode> SimCtx<N> for AsyncCtx<'_, N> {
    fn now(&self) -> Time {
        self.now
    }

    fn self_node(&self) -> NodeId {
        self.self_node
    }

    fn schedule(&mut self, delay: Time, target: NodeId, payload: N::Payload) {
        let ts = self.now.saturating_add(delay);
        let key = EventKey {
            ts,
            sender_ts: self.now,
            sender_lp: self.lp_id,
            seq: *self.seq,
        };
        *self.seq += 1;
        let ev = Event {
            key,
            node: target,
            payload,
        };
        let dst = self.dir.lp_of(target);
        if dst == self.lp_id {
            self.fel.push(ev);
            return;
        }
        let i = match self.out_pair.binary_search_by_key(&dst.0, |&(d, _)| d) {
            Ok(i) => i,
            Err(_) => panic!(
                "async_cons: no channel between LP {} and LP {}; cross-LP \
                 events must follow topology links",
                self.lp_id.0, dst.0
            ),
        };
        // Causality: the send may not undercut this channel's published
        // promise — guaranteed when the delay covers the link lookahead.
        debug_assert!(
            ts >= self.now.saturating_add(Time(
                self.chan_la[self.out_pair[i].1].load(Ordering::Relaxed)
            )),
            "cross-LP event at {ts:?} undercuts the channel lookahead \
             (sent from {:?}); the scheduling delay must be >= the link delay",
            self.now
        );
        if self.mailboxes.try_push(self.lp_id.0, dst.0, ev).is_err() {
            // INVARIANT: mailboxes are built from the same channel list as
            // `out_pair`, so a present pair always has a queue.
            panic!(
                "async_cons: mailbox missing for channel {} -> {}",
                self.lp_id.0, dst.0
            );
        }
        if !self.touched.contains(&dst.0) {
            self.touched.push(dst.0);
        }
    }

    fn schedule_global(&mut self, _delay: Time, _f: GlobalFn<N>) {
        panic!(
            "async_cons does not support global events scheduled from node \
             handlers (no per-round routing phase exists to collect them); \
             schedule globals before the run or from other globals, or use \
             the Unison kernel"
        );
    }

    fn request_stop(&mut self) {
        self.stop_flag.store(true, Ordering::Release);
    }
}

/// Per-worker completion record.
struct WorkerDone {
    psm: Psm,
    end_time: Time,
    iterations: u64,
    grants: u64,
    stalls: u64,
    stall_wait_ns: u64,
    tel: WorkerTel,
}

// ---------------------------------------------------------------------------
// The kernel
// ---------------------------------------------------------------------------

pub(super) fn run<N: SimNode>(
    world: World<N>,
    cfg: &RunConfig,
    threads: usize,
) -> Result<(World<N>, RunReport), SimError> {
    if threads == 0 {
        return Err(KernelError::InvalidConfig("threads must be >= 1".into()).into());
    }
    let mut partition = build_partition(&world, &cfg.partition)?;
    let channels = partition.lp_channels(&world.graph);
    let (lps, dir, mut graph, init_globals, stop_at, restored_ext_seq) =
        build_lps(world, &partition, cfg.fel);
    let lp_count = lps.len();
    if lp_count == 0 {
        return Err(KernelError::InvalidPartition("world has no nodes".into()).into());
    }
    // Without a horizon, channel promises on drained FELs creep forward by
    // one lookahead per exchange and the run never terminates (same
    // constraint as the null-message kernel).
    let stop = match stop_at {
        Some(t) => t,
        None => {
            return Err(KernelError::InvalidConfig(
                "the async-conservative kernel requires a stop time".into(),
            )
            .into())
        }
    };

    // Directed channels: two per undirected LP pair. `chan_clock[c]` is the
    // source's granted promise for that direction; `chan_la[c]` the link
    // lookahead (atomic because topology globals rewrite it inside the main
    // thread's exclusive gate window).
    let mut chan_src: Vec<u32> = Vec::new();
    let mut chan_dst: Vec<u32> = Vec::new();
    let mut la_init: Vec<u64> = Vec::new();
    for (a, b, la) in &channels {
        chan_src.push(a.0);
        chan_dst.push(b.0);
        la_init.push(la.0);
        chan_src.push(b.0);
        chan_dst.push(a.0);
        la_init.push(la.0);
    }
    let chan_count = chan_src.len();
    // Padded: channel clocks are written by the sender and spun on by
    // the receiver — the hottest cross-worker words in this kernel.
    let chan_la: Vec<CachePadded<AtomicU64>> = la_init
        .into_iter()
        .map(|la| CachePadded::new(AtomicU64::new(la)))
        .collect();
    // Cache-padded: each clock is written by exactly one worker (the
    // channel source's owner) and read by its receiver's owner every
    // sweep; packing them 8-to-a-line would false-share every grant.
    let chan_clock: Vec<CachePadded<AtomicU64>> = (0..chan_count)
        .map(|_| CachePadded::new(AtomicU64::new(0)))
        .collect();
    let mut in_chans: Vec<Vec<usize>> = vec![Vec::new(); lp_count];
    let mut out_chans: Vec<Vec<usize>> = vec![Vec::new(); lp_count];
    let mut out_pair: Vec<Vec<(u32, usize)>> = vec![Vec::new(); lp_count];
    for c in 0..chan_count {
        out_chans[chan_src[c] as usize].push(c);
        in_chans[chan_dst[c] as usize].push(c);
        out_pair[chan_src[c] as usize].push((chan_dst[c], c));
    }
    for p in &mut out_pair {
        p.sort_unstable_by_key(|&(d, _)| d);
    }
    // (src, dst) -> channel index, for the post-topology-change lookahead
    // rewrite.
    let mut chan_index: Vec<((u32, u32), usize)> = (0..chan_count)
        .map(|c| ((chan_src[c], chan_dst[c]), c))
        .collect();
    chan_index.sort_unstable_by_key(|&(pair, _)| pair);

    let pairs: Vec<(u32, u32)> = channels.iter().map(|(a, b, _)| (a.0, b.0)).collect();
    let mailboxes: Mailboxes<N::Payload> = Mailboxes::new(lp_count, &pairs);
    // Inbox slot of each channel at its destination, resolved once so the
    // per-sweep drain probe is a direct index instead of a binary search.
    let chan_slot: Vec<usize> = (0..chan_count)
        .map(|c| {
            mailboxes
                .channel_slot(chan_src[c], chan_dst[c])
                // INVARIANT: `mailboxes` was built from `pairs`, the same
                // channel list `chan_src`/`chan_dst` were derived from, so
                // every directed channel has an inbox slot.
                .expect("mailboxes are built from the same channel list")
        })
        .collect();

    // Static LP ownership: the placement stage's affinity hints when the
    // partitioner produced them, contiguous blocks otherwise. Ownership is
    // config-deterministic; results do not depend on it either way.
    let owner: Vec<usize> = if partition.affinity.len() == lp_count {
        partition
            .affinity
            .iter()
            .map(|&a| a as usize % threads)
            .collect()
    } else {
        (0..lp_count).map(|lp| lp * threads / lp_count).collect()
    };
    let mut mine: Vec<Vec<usize>> = vec![Vec::new(); threads];
    for (lp, &w) in owner.iter().enumerate() {
        mine[w].push(lp);
    }
    let my_out: Vec<Vec<usize>> = (0..threads)
        .map(|w| {
            mine[w]
                .iter()
                .flat_map(|&lp| out_chans[lp].iter().copied())
                .collect()
        })
        .collect();

    let slots = LpSlots::new(lps, dir);

    // Public LP: init globals plus the stop global, keyed from the external
    // sequence (continuing a restored checkpoint's counter).
    let mut public: Fel<GlobalFn<N>> = Fel::with_impl(cfg.fel);
    let mut ext_seq: u64 = restored_ext_seq;
    for (ts, f) in init_globals {
        public.push(Event {
            key: EventKey::external(ts, ext_seq),
            node: NodeId(u32::MAX),
            payload: f,
        });
        ext_seq += 1;
    }
    public.push(Event {
        key: EventKey::external(stop, ext_seq),
        node: NodeId(u32::MAX),
        payload: Box::new(|wa: &mut WorldAccess<'_, N>| wa.stop()),
    });
    ext_seq += 1;

    // The gate: timestamp of the next pending global. The stop global is
    // always queued, so while the run is live the gate is finite and the
    // promise lower bound `min(next, safe, gate)` can never creep past a
    // global that later injects events (grant soundness).
    let gate_ts = AtomicU64::new(public.next_ts().0);
    let gate = Gate {
        state: Mutex::new(GateState {
            epoch: 0,
            arrived: 0,
        }),
        cond: Condvar::new(),
    };

    let wakers: Vec<Waker> = (0..threads).map(|_| Waker::new()).collect();
    let stop_flag = AtomicBool::new(false);

    let started = Instant::now();
    let mut results: Vec<Option<WorkerDone>> = Vec::with_capacity(threads);

    // Telemetry: the main (control) thread is sink 0, workers 1..=threads.
    let telctx = TelContext::new(&cfg.telemetry);
    let mut main_tel = telctx.worker(0);
    let sched_log = telctx.sched_log();

    // Crash safety (DESIGN.md §4.2): first contained panic wins the slot;
    // the watchdog aborts when neither events, grants nor gates progress
    // within the deadline.
    let failure: Mutex<Option<FailureDiagnostics>> = Mutex::new(None);
    let wd = Watchdog::new();
    // Channel promises as they stood when the watchdog fired (the abort
    // drain overwrites the live clocks with `u64::MAX`).
    // PADDING: written only on the abort drain — a cold failure path.
    let stall_clocks: Vec<AtomicU64> = (0..chan_count).map(|_| AtomicU64::new(u64::MAX)).collect();

    let mut gates_run: u64 = 0;
    let mut global_events: u64 = 0;
    let mut ctl_end = Time::ZERO;
    let mut main_psm = Psm::default();

    std::thread::scope(|scope| {
        if let Some(deadline) = cfg.watchdog.round_deadline {
            let wd = &wd;
            let wakers = &wakers;
            let stop_flag = &stop_flag;
            let gate = &gate;
            let chan_clock = &chan_clock;
            let stall_clocks = &stall_clocks;
            scope.spawn(move || {
                wd.monitor(deadline, || {
                    for (snap, live) in stall_clocks.iter().zip(chan_clock.iter()) {
                        snap.store(live.load(Ordering::Acquire), Ordering::Release);
                    }
                    stop_flag.store(true, Ordering::Release);
                    for w in wakers.iter() {
                        w.bump();
                    }
                    let _st = gate.state.lock().unwrap_or_else(|e| e.into_inner());
                    gate.cond.notify_all();
                });
            });
        }

        let mut handles = Vec::new();
        for w in 0..threads {
            let mine = &mine[w];
            let my_out = &my_out[w];
            let owner = &owner;
            let chan_dst = &chan_dst;
            let chan_la = &chan_la;
            let chan_clock = &chan_clock;
            let chan_slot = &chan_slot;
            let in_chans = &in_chans;
            let out_chans = &out_chans;
            let out_pair = &out_pair;
            let wakers = &wakers;
            let gate = &gate;
            let gate_ts = &gate_ts;
            let stop_flag = &stop_flag;
            let mailboxes = &mailboxes;
            let slots = &slots;
            let failure = &failure;
            let wd = &wd;
            let telctx = &telctx;
            handles.push(scope.spawn(move || {
                // Failure site, readable after a contained panic.
                let iter_c: Cell<u64> = Cell::new(0);
                let site_c: Cell<(Option<LpId>, Time)> = Cell::new((None, Time::ZERO));
                let poison = || {
                    for &c in my_out {
                        chan_clock[c].store(u64::MAX, Ordering::Release);
                    }
                    for wk in wakers.iter() {
                        wk.bump();
                    }
                    let _st = gate.state.lock().unwrap_or_else(|e| e.into_inner());
                    gate.cond.notify_all();
                };
                let body = catch_unwind(AssertUnwindSafe(|| {
                    let dir = slots.directory();
                    let mut psm = Psm::default();
                    let mut tel = telctx.worker((w + 1) as u32);
                    let mut merger: Merger<N::Payload> = Merger::new();
                    let mut batch: Vec<Event<N::Payload>> = Vec::new();
                    // Highest promise this worker has published per owned
                    // out-channel (clocks start at 0 and only rise).
                    let mut pub_cache: Vec<u64> = vec![0; chan_clock.len()];
                    let mut touched: Vec<u32> = Vec::new();
                    let mut wake_list: Vec<usize> = Vec::new();
                    let mut end_time = Time::ZERO;
                    let mut iterations: u64 = 0;
                    let mut grants: u64 = 0;
                    let mut stalls: u64 = 0;
                    let mut stall_wait_ns: u64 = 0;
                    let mut arrived_epoch: Option<u64> = None;
                    loop {
                        iterations += 1;
                        iter_c.set(iterations);
                        #[cfg(feature = "fault-inject")]
                        {
                            cfg.fault.fire_phase(iterations, RunPhase::Process, w);
                            cfg.fault.fire_stall(iterations, w);
                        }
                        // Waker version snapshot, taken *before* any input
                        // is read: a bump between this read and the sleep
                        // decision aborts the sleep, so an input change is
                        // either observed by this sweep or wakes us.
                        let v0 = *wakers[w].version.lock().unwrap_or_else(|e| e.into_inner());
                        // Abort drain: exit before touching any FEL so a
                        // watchdog/panic abort leaves the stall diagnosis
                        // intact.
                        if stop_flag.load(Ordering::Acquire) {
                            poison();
                            break;
                        }
                        let gate_now = Time(gate_ts.load(Ordering::Acquire));
                        let mut progressed = false;
                        let mut all_at_gate = true;
                        for &lp_idx in mine {
                            // SAFETY: ownership is a static disjoint
                            // partition of the LP set; the main thread only
                            // touches slots inside its exclusive gate window
                            // (all workers parked). Claim-audited.
                            let lp = unsafe { slots.get_mut(lp_idx) };
                            // (1) Safety bound FIRST: the Acquire loads
                            // happen before the drains, so every event below
                            // the observed promise is already visible in the
                            // channel queue (sender pushes, then fetch_max
                            // Release-publishes the promise).
                            let ins = &in_chans[lp_idx];
                            let mut safe = Time::MAX;
                            for &c in ins {
                                safe = safe.min(Time(chan_clock[c].load(Ordering::Acquire)));
                            }
                            // (2) Merge in-channel deliveries (k-way,
                            // deterministic) into the FEL, keys preserved.
                            // The drain probes are untimed: most sweeps find
                            // every channel empty, and two clock reads per
                            // idle LP would dominate the probe itself.
                            merger.begin(ins.len());
                            for (j, &c) in ins.iter().enumerate() {
                                mailboxes.drain_slot(
                                    lp_idx as u32,
                                    chan_slot[c],
                                    merger.run_mut(j),
                                );
                            }
                            let recv = merger.total() as u64;
                            if recv > 0 {
                                let tel_start = tel.start();
                                let t0 = Instant::now();
                                debug_assert!(batch.is_empty());
                                merger.merge_into(&mut batch);
                                if tel.enabled() {
                                    for ev in batch.iter() {
                                        tel.edge(ev.key.sender_lp.0, lp_idx as u32);
                                    }
                                }
                                lp.fel.extend(batch.drain(..));
                                progressed = true;
                                let m_cost = t0.elapsed().as_nanos() as u64;
                                psm.m_ns += m_cost;
                                tel.span_dur(
                                    SpanKind::Merge,
                                    iterations,
                                    lp_idx as u32,
                                    tel_start,
                                    m_cost,
                                    recv,
                                    0,
                                );
                            }
                            // (3) Advance: execute strictly below
                            // min(safe, gate). The gate cap keeps promises
                            // from outrunning globals that may still inject
                            // events at the gate timestamp. `next_ts` is a
                            // lower bound (exact for the heap, tier bound
                            // for the ladder), so the guard never skips a
                            // poppable event — it only skips the clock
                            // reads when the FEL has nothing below the
                            // limit.
                            let limit = safe.min(gate_now);
                            if lp.fel.next_ts() < limit {
                                let tel_start = tel.start();
                                let t0 = Instant::now();
                                let mut processed: u64 = 0;
                                while let Some(ev) = lp.fel.pop_below(limit) {
                                    if ev.node.0 != lp.last_node {
                                        lp.node_switches += 1;
                                        lp.last_node = ev.node.0;
                                    }
                                    end_time = end_time.max(ev.key.ts);
                                    site_c.set((Some(lp.id), ev.key.ts));
                                    let (owner_lp, local) = dir.locate(ev.node);
                                    debug_assert_eq!(owner_lp, lp.id);
                                    let node = &mut lp.nodes[local as usize];
                                    let mut ctx = AsyncCtx::<N> {
                                        now: ev.key.ts,
                                        self_node: ev.node,
                                        lp_id: lp.id,
                                        fel: &mut lp.fel,
                                        seq: &mut lp.seq,
                                        dir,
                                        mailboxes,
                                        stop_flag,
                                        out_pair: &out_pair[lp_idx],
                                        chan_la,
                                        touched: &mut touched,
                                    };
                                    node.handle(ev.payload, &mut ctx);
                                    processed += 1;
                                }
                                lp.total_events += processed;
                                let p_cost = t0.elapsed().as_nanos() as u64;
                                psm.p_ns += p_cost;
                                lp.last_cost_ns = p_cost;
                                if processed > 0 {
                                    progressed = true;
                                    tel.span_dur(
                                        SpanKind::Advance,
                                        iterations,
                                        lp_idx as u32,
                                        tel_start,
                                        p_cost,
                                        processed,
                                        0,
                                    );
                                }
                            }
                            // (4) Grants: refresh out-channel promises.
                            // `lb` bounds every event this LP can still
                            // process (FEL, future arrivals, gate), so
                            // `lb + lookahead` bounds its future sends.
                            // `fetch_max` publishes only a rise — the lazy
                            // null message — and is monotone under races.
                            // `pub_cache` floor-bounds the published clock
                            // (this worker is the channel's only writer, and
                            // the clock never decreases), so a promise at or
                            // below the cache would be a fetch_max no-op:
                            // skipping it drops the contended RMW — and the
                            // timing reads — from every idle sweep.
                            let lb = lp.fel.next_ts().min(safe).min(gate_now);
                            let mut rose: u64 = 0;
                            let mut tel_start = 0u64;
                            let mut t0: Option<Instant> = None;
                            for &c in &out_chans[lp_idx] {
                                let promise =
                                    lb.saturating_add(Time(chan_la[c].load(Ordering::Relaxed)));
                                if promise.0 <= pub_cache[c] {
                                    continue;
                                }
                                if t0.is_none() {
                                    tel_start = tel.start();
                                    t0 = Some(Instant::now());
                                }
                                let prev = chan_clock[c].fetch_max(promise.0, Ordering::AcqRel);
                                pub_cache[c] = promise.0;
                                if prev < promise.0 {
                                    rose += 1;
                                    // A neighbor must re-check when our
                                    // promise rose.
                                    let ow = owner[chan_dst[c] as usize];
                                    if ow != w && !wake_list.contains(&ow) {
                                        wake_list.push(ow);
                                    }
                                }
                            }
                            // ... and when we sent it events (sends land on
                            // out-channels, so every touched LP is a dst).
                            for &t in touched.iter() {
                                let ow = owner[t as usize];
                                if ow != w && !wake_list.contains(&ow) {
                                    wake_list.push(ow);
                                }
                            }
                            touched.clear();
                            if rose > 0 {
                                grants += rose;
                                progressed = true;
                                if let Some(t0) = t0 {
                                    let g_cost = t0.elapsed().as_nanos() as u64;
                                    psm.m_ns += g_cost;
                                    tel.span_dur(
                                        SpanKind::Grant,
                                        iterations,
                                        lp_idx as u32,
                                        tel_start,
                                        g_cost,
                                        rose,
                                        0,
                                    );
                                }
                            }
                            if safe < gate_now || lp.fel.next_ts() < gate_now {
                                all_at_gate = false;
                            }
                        }
                        // Wake-ups are batched per sweep, once per distinct
                        // owner, *after* every publish they cover (a bump
                        // issued before a later publish could be consumed
                        // early and the publish missed — the bump-after-
                        // publish order is what makes the version-snapshot
                        // sleep race-free).
                        for &ow in &wake_list {
                            wakers[ow].bump();
                        }
                        wake_list.clear();
                        if progressed {
                            // Events, deliveries or rising grants all count
                            // as progress; a zero-lookahead deadlock
                            // produces none and trips the deadline.
                            wd.tick();
                            continue;
                        }
                        if all_at_gate {
                            #[cfg(feature = "fault-inject")]
                            cfg.fault.fire_barrier_delay(iterations, w);
                            // Gate rendezvous: count this worker once per
                            // epoch, wake the main thread when the count
                            // completes, park until the gate moves.
                            let tel_start = tel.start();
                            let t0 = Instant::now();
                            let mut st = gate.state.lock().unwrap_or_else(|e| e.into_inner());
                            if Time(gate_ts.load(Ordering::Acquire)) == gate_now
                                && !stop_flag.load(Ordering::Acquire)
                            {
                                let epoch0 = st.epoch;
                                if arrived_epoch != Some(epoch0) {
                                    arrived_epoch = Some(epoch0);
                                    st.arrived += 1;
                                    if st.arrived == threads {
                                        gate.cond.notify_all();
                                    }
                                }
                                while st.epoch == epoch0 && !stop_flag.load(Ordering::Acquire) {
                                    st = gate.cond.wait(st).unwrap_or_else(|e| e.into_inner());
                                }
                            }
                            drop(st);
                            let s_cost = t0.elapsed().as_nanos() as u64;
                            psm.s_ns += s_cost;
                            tel.span_dur(
                                SpanKind::BarrierWait,
                                iterations,
                                NO_LP,
                                tel_start,
                                s_cost,
                                0,
                                0,
                            );
                            continue;
                        }
                        // (5) Stall: below the gate but blocked on neighbor
                        // promises. Sleep unless an input changed since the
                        // version snapshot (the bump-under-lock discipline
                        // makes this race-free).
                        stalls += 1;
                        let tel_start = tel.start();
                        let t0 = Instant::now();
                        {
                            let guard = wakers[w].version.lock().unwrap_or_else(|e| e.into_inner());
                            if *guard == v0 && !stop_flag.load(Ordering::Acquire) {
                                let _guard = wakers[w]
                                    .cond
                                    .wait(guard)
                                    .unwrap_or_else(|e| e.into_inner());
                            }
                        }
                        let s_cost = t0.elapsed().as_nanos() as u64;
                        psm.s_ns += s_cost;
                        stall_wait_ns += s_cost;
                        tel.span_dur(
                            SpanKind::StallWait,
                            iterations,
                            NO_LP,
                            tel_start,
                            s_cost,
                            0,
                            0,
                        );
                    }
                    WorkerDone {
                        psm,
                        end_time,
                        iterations,
                        grants,
                        stalls,
                        stall_wait_ns,
                        tel,
                    }
                }));
                match body {
                    Ok(done) => Some(done),
                    Err(payload) => {
                        let (lp, virtual_time) = site_c.get();
                        record_failure(
                            failure,
                            FailureDiagnostics {
                                kernel: "async_cons",
                                round: iter_c.get(),
                                phase: RunPhase::Process,
                                lp,
                                virtual_time,
                                worker: w,
                                panic_message: panic_message(payload.as_ref()),
                            },
                        );
                        stop_flag.store(true, Ordering::Release);
                        // This worker will never grant again: release its
                        // out-channels so neighbors are not pinned by a dead
                        // worker, then wake everyone to observe the flag.
                        poison();
                        None
                    }
                }
            }));
        }

        // Main thread: the gate loop. Exclusive world access holds for the
        // whole window because every worker is parked in a `gate.cond` wait
        // and the state lock is held until the gate is republished.
        loop {
            let tel_wait = main_tel.start();
            let t0 = Instant::now();
            let mut st = gate.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if stop_flag.load(Ordering::Acquire) || st.arrived == threads {
                    break;
                }
                st = gate.cond.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            let wait_ns = t0.elapsed().as_nanos() as u64;
            main_psm.s_ns += wait_ns;
            main_tel.span_dur(
                SpanKind::BarrierWait,
                gates_run + 1,
                NO_LP,
                tel_wait,
                wait_ns,
                0,
                0,
            );
            if stop_flag.load(Ordering::Acquire) {
                // Abort (panic or watchdog): release parked workers so they
                // drain out through the stop check.
                st.epoch += 1;
                st.arrived = 0;
                gate.cond.notify_all();
                break;
            }
            gates_run += 1;
            let gate_now = Time(gate_ts.load(Ordering::Acquire));
            let stopped;
            // Invalidate the workers' claim generation for the exclusive
            // window, and again after it for the workers' next sweeps.
            slots.begin_phase();
            let tel_start = main_tel.start();
            let t0 = Instant::now();
            let r = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-inject")]
                cfg.fault.fire_phase(gates_run, RunPhase::Global, 0);
                let mut topology_dirty = false;
                let mut ran: u64 = 0;
                let mut stop_req = false;
                // `Time::MAX` means "no global" and must not satisfy the
                // bound; while live, the stop global keeps the FEL
                // non-empty.
                while !stop_req && public.next_ts() != Time::MAX && public.next_ts() <= gate_now {
                    // INVARIANT: `next_ts != Time::MAX` implies non-empty.
                    let g = public.pop().expect("public FEL non-empty");
                    let now = g.key.ts;
                    ctl_end = ctl_end.max(now);
                    let mut stop_one = false;
                    let mut new_globals: Vec<(Time, GlobalFn<N>)> = Vec::new();
                    {
                        // SAFETY: every worker is parked on `gate.cond`
                        // under the held state lock — the main thread has
                        // exclusive access to all LP slots.
                        let mut wa = unsafe {
                            WorldAccess::new(
                                now,
                                &slots,
                                &mut graph,
                                &mut partition,
                                &mut topology_dirty,
                                &mut stop_one,
                                &mut new_globals,
                                &mut ext_seq,
                                Some(CkptEnv {
                                    mailboxes: &mailboxes,
                                    stop_at,
                                    wd: &wd,
                                    fault: &cfg.fault,
                                }),
                            )
                        };
                        (g.payload)(&mut wa);
                    }
                    ran += 1;
                    for (ts, f) in new_globals {
                        public.push(Event {
                            key: EventKey::external(ts, ext_seq),
                            node: NodeId(u32::MAX),
                            payload: f,
                        });
                        ext_seq += 1;
                    }
                    if stop_one {
                        stop_req = true;
                    }
                }
                if topology_dirty {
                    partition.recompute_lookahead(&graph);
                    // Rewrite the per-channel lookaheads from the fresh
                    // channel map; pairs no longer connected become MAX
                    // (their promises saturate — an unreachable channel
                    // never constrains its receiver). Relaxed suffices: the
                    // gate rendezvous orders these writes against every
                    // worker read.
                    let fresh = partition.lp_channels(&graph);
                    for la in chan_la.iter() {
                        la.store(u64::MAX, Ordering::Relaxed);
                    }
                    for (a, b, la) in &fresh {
                        for (s, d) in [(a.0, b.0), (b.0, a.0)] {
                            if let Ok(i) =
                                chan_index.binary_search_by_key(&(s, d), |&(pair, _)| pair)
                            {
                                chan_la[chan_index[i].1].store(la.0, Ordering::Relaxed);
                            }
                        }
                    }
                }
                (ran, stop_req)
            }));
            let g_dur = t0.elapsed().as_nanos() as u64;
            main_psm.p_ns += g_dur;
            match r {
                Ok((ran, stop_req)) => {
                    global_events += ran;
                    stopped = stop_req;
                    main_tel.span_dur(SpanKind::Global, gates_run, NO_LP, tel_start, g_dur, ran, 0);
                }
                Err(payload) => {
                    record_failure(
                        &failure,
                        FailureDiagnostics {
                            kernel: "async_cons",
                            round: gates_run,
                            phase: RunPhase::Global,
                            lp: None,
                            virtual_time: ctl_end,
                            worker: 0,
                            panic_message: panic_message(payload.as_ref()),
                        },
                    );
                    stopped = true;
                }
            }
            slots.begin_phase();
            if stopped {
                stop_flag.store(true, Ordering::Release);
            }
            // Republish the gate and release the workers.
            st.epoch += 1;
            st.arrived = 0;
            let next_gate = if stopped {
                u64::MAX
            } else {
                public.next_ts().0
            };
            gate_ts.store(next_gate, Ordering::Release);
            gate.cond.notify_all();
            drop(st);
            if stopped {
                break;
            }
            wd.tick();
        }

        wd.finish();
        for (w, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(res) => results.push(res),
                // Worker bodies are fully contained; a join error means the
                // containment itself died. Record it — `try_run` must not
                // panic.
                Err(payload) => {
                    stop_flag.store(true, Ordering::Release);
                    for wk in wakers.iter() {
                        wk.bump();
                    }
                    {
                        let _st = gate.state.lock().unwrap_or_else(|e| e.into_inner());
                        gate.cond.notify_all();
                    }
                    record_failure(
                        &failure,
                        FailureDiagnostics {
                            kernel: "async_cons",
                            round: 0,
                            phase: RunPhase::Control,
                            lp: None,
                            virtual_time: Time::ZERO,
                            worker: w,
                            panic_message: panic_message(payload.as_ref()),
                        },
                    );
                    results.push(None);
                }
            }
        }
    });

    let wall = started.elapsed();
    let stalled = wd.stalled();
    let (mut lps, _) = slots.into_inner();
    // An abort can leave cross-LP events undelivered in their channel
    // queues. Deliver them now so the stall diagnosis sees every LP that
    // still has work; on a completed run the mailboxes are already empty.
    for lp in lps.iter_mut() {
        let id = lp.id.0;
        mailboxes.drain(id, |ev| lp.fel.push(ev));
    }

    let mut psm = vec![main_psm];
    let mut tels = vec![main_tel];
    let mut grants: u64 = 0;
    let mut stalls: u64 = 0;
    let mut stall_wait_ns: Vec<u64> = Vec::with_capacity(threads);
    let mut iterations: u64 = 0;
    let mut end_time = ctl_end;
    for (w, res) in results.into_iter().enumerate() {
        match res {
            Some(done) => {
                grants += done.grants;
                stalls += done.stalls;
                stall_wait_ns.push(done.stall_wait_ns);
                iterations = iterations.max(done.iterations);
                end_time = end_time.max(done.end_time);
                psm.push(done.psm);
                tels.push(done.tel);
            }
            None => {
                // Panicked worker: keep the per-worker vectors rectangular.
                stall_wait_ns.push(0);
                psm.push(Psm::default());
                tels.push(telctx.worker((w + 1) as u32));
            }
        }
    }
    let lp_totals = LpTotals {
        events: lps.iter().map(|lp| lp.total_events).collect(),
        cost_ns: lps.iter().map(|lp| lp.last_cost_ns).collect(),
        node_switches: lps.iter().map(|lp| lp.node_switches).collect(),
    };
    let events: u64 = lp_totals.events.iter().sum();
    let (pool_hits, pool_misses) = mailboxes.pool_stats();
    let report = RunReport {
        kernel: format!("async_cons({threads})"),
        wall,
        events,
        global_events,
        // No synchronization rounds exist; see `async_stats` for the
        // kernel's own progress counters.
        rounds: 0,
        fused_rounds: 0,
        lp_count: lp_count as u32,
        threads: threads as u32,
        lookahead: partition.lookahead,
        end_time,
        psm,
        psm_per_lp: false,
        lp_totals,
        engine: EngineStats {
            fel_impl: cfg.fel,
            pool_hits: pool_hits as u64,
            pool_misses: pool_misses as u64,
        },
        sched: SchedStats::default(),
        rounds_profile: None,
        telemetry: telctx.collect(tels, sched_log),
        recovery: None,
        async_stats: Some(AsyncStats {
            grants,
            stalls,
            gates: gates_run,
            stall_wait_ns,
        }),
    };
    if let Some(diag) = failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(SimError::WorkerPanic {
            diag,
            partial: Box::new(report),
        });
    }
    if stalled {
        // LPs still holding work below the horizon were conservatively
        // blocked. Walk each blocked LP's binding input channel (minimal
        // promise in the abort-time snapshot) back to its source to expose
        // the dependency cycle.
        let blocked: Vec<LpId> = lps
            .iter()
            .filter(|lp| lp.fel.next_ts() < stop)
            .map(|lp| lp.id)
            .collect();
        let mut cycle: Vec<LpId> = Vec::new();
        if let Some(start) = blocked.first() {
            let mut path: Vec<u32> = Vec::new();
            let mut cur = start.0;
            loop {
                if let Some(pos) = path.iter().position(|&l| l == cur) {
                    cycle = path[pos..].iter().map(|&l| LpId(l)).collect();
                    cycle.push(LpId(cur));
                    break;
                }
                path.push(cur);
                let mut best: Option<(u64, usize)> = None;
                for &c in &in_chans[cur as usize] {
                    let clk = stall_clocks[c].load(Ordering::Acquire);
                    if clk != u64::MAX && best.is_none_or(|(b, _)| clk < b) {
                        best = Some((clk, c));
                    }
                }
                match best {
                    Some((_, c)) => cur = chan_src[c],
                    None => break,
                }
            }
        }
        let virtual_time = lps
            .iter()
            .filter(|lp| lp.fel.next_ts() < stop)
            .map(|lp| lp.fel.next_ts())
            .fold(Time::MAX, Time::min);
        let diag = StallDiagnostics {
            kernel: "async_cons",
            round: iterations,
            deadline: cfg.watchdog.round_deadline.unwrap_or_default(),
            virtual_time: if virtual_time == Time::MAX {
                end_time
            } else {
                virtual_time
            },
            blocked,
            cycle,
        };
        return Err(SimError::Stalled {
            diag,
            partial: Box::new(report),
        });
    }
    let world = reassemble_world(lps, &partition, graph, stop_at);
    Ok((world, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKey, LpId};
    use crate::time::Time;

    fn ev(ts: u64, lp: u32, seq: u64) -> Event<u32> {
        Event {
            key: EventKey {
                ts: Time(ts),
                sender_ts: Time(ts.saturating_sub(1)),
                sender_lp: LpId(lp),
                seq,
            },
            node: crate::event::NodeId(0),
            payload: 0,
        }
    }

    #[test]
    fn merger_orders_by_full_key_across_runs() {
        let mut m: Merger<u32> = Merger::new();
        m.begin(3);
        // Runs arrive unsorted (per-channel FIFO is send-order, not key
        // order) and interleaved in time.
        m.run_mut(0).push(ev(30, 0, 2));
        m.run_mut(0).push(ev(10, 0, 1));
        m.run_mut(1).push(ev(20, 1, 5));
        m.run_mut(1).push(ev(10, 1, 9));
        // Run 2 stays empty (a channel that delivered nothing).
        assert_eq!(m.total(), 4);
        let mut out = Vec::new();
        m.merge_into(&mut out);
        let keys: Vec<(u64, u32, u64)> = out
            .iter()
            .map(|e| (e.key.ts.0, e.key.sender_lp.0, e.key.seq))
            .collect();
        assert_eq!(keys, vec![(10, 0, 1), (10, 1, 9), (20, 1, 5), (30, 0, 2)]);
    }

    #[test]
    fn merger_is_permutation_invariant() {
        // The same event set split differently across runs merges to the
        // same sequence — the determinism argument of DESIGN.md §4.8.
        // (`Event` is intentionally not `Clone`, so both splits rebuild
        // the set from the same parameters.)
        let params = [(5, 2, 0), (5, 1, 0), (7, 1, 1), (3, 2, 1)];
        let mut a: Merger<u32> = Merger::new();
        a.begin(2);
        a.run_mut(0)
            .extend(params[..2].iter().map(|&(t, l, s)| ev(t, l, s)));
        a.run_mut(1)
            .extend(params[2..].iter().map(|&(t, l, s)| ev(t, l, s)));
        let mut out_a = Vec::new();
        a.merge_into(&mut out_a);

        let mut b: Merger<u32> = Merger::new();
        b.begin(4);
        for (i, &(t, l, s)) in params.iter().rev().enumerate() {
            b.run_mut(i).push(ev(t, l, s));
        }
        let mut out_b = Vec::new();
        b.merge_into(&mut out_b);

        let ka: Vec<EventKey> = out_a.iter().map(|e| e.key).collect();
        let kb: Vec<EventKey> = out_b.iter().map(|e| e.key).collect();
        assert_eq!(ka, kb);
        assert!(ka.windows(2).all(|w| w[0] < w[1]), "strictly key-sorted");
    }

    #[test]
    fn merger_buffers_are_reusable() {
        let mut m: Merger<u32> = Merger::new();
        m.begin(2);
        m.run_mut(0).push(ev(1, 0, 0));
        let mut out = Vec::new();
        m.merge_into(&mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        // Second cycle with fewer runs: stale buffers must not leak in.
        m.begin(1);
        m.run_mut(0).push(ev(2, 0, 1));
        m.merge_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key.ts, Time(2));
    }
}
