//! Simulation kernels.
//!
//! Four interchangeable kernels execute a [`World`]:
//!
//! - [`sequential`]: classic single-threaded DES (the ns-3 default kernel in
//!   the paper's comparisons);
//! - [`barrier`]: conservative PDES with a static partition, one thread per
//!   LP, and global barrier synchronization per window (ns-3's distributed
//!   simulator);
//! - [`nullmsg`]: conservative PDES with Chandy–Misra–Bryant null messages
//!   between neighbor LPs;
//! - [`unison`]: the paper's kernel — automatic fine-grained partition,
//!   load-adaptive LP scheduling on a thread pool, lock-free four-phase
//!   rounds, deterministic tie-breaking, and public-LP global events.
//!
//! The model code is identical for all kernels (*user transparency*): pick a
//! kernel by configuration only.

pub mod async_cons;
pub mod barrier;
pub mod hybrid;
pub mod nullmsg;
pub mod sequential;
pub mod unison;
pub(crate) mod watchdog;

use crate::error::SimError;

use crate::event::{Event, EventKey, LpId, NodeId};
use crate::fault::FaultPlan;
use crate::fel::{Fel, FelImpl};
use crate::global::GlobalFn;
use crate::lp::{LpState, PendingGlobal};
use crate::mailbox::Mailboxes;
use crate::metrics::{MetricsLevel, RunReport};
use crate::partition::{
    fine_grained_partition, manual_partition, partition_below_bound, single_lp_partition,
    Partition, PartitionPipeline, Partitioner,
};
use crate::sched::SchedConfig;
use crate::telemetry::TelemetryConfig;
// Shimmed so `RoundCtx` (shared with the Unison kernel) type-checks when the
// whole crate is compiled under `--cfg loom` for model checking.
use crate::sync_shim::{AtomicBool, Ordering};
use crate::time::Time;
use crate::world::{NodeDirectory, SimCtx, SimNode, World};

/// Which kernel executes the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// Single-threaded DES. `compat_keys = false` reproduces ns-3's
    /// insertion-order tie-breaking; `true` uses Unison's deterministic
    /// tie-break keys, making results bit-identical to the Unison kernel.
    Sequential {
        /// Use Unison-compatible tie-break keys.
        compat_keys: bool,
    },
    /// Barrier-synchronized PDES, one thread pinned per LP.
    Barrier,
    /// Null-message (CMB) PDES, one thread pinned per LP.
    NullMessage,
    /// The Unison kernel with a worker pool of `threads`.
    Unison {
        /// Worker thread count (≥ 1). LPs are scheduled onto these threads
        /// adaptively each round.
        threads: usize,
    },
    /// The hybrid distributed kernel (§5.2): the topology is first divided
    /// into `hosts` coarse partitions synchronized with the barrier
    /// algorithm; inside each host a Unison instance runs `threads_per_host`
    /// workers over a fine-grained sub-partition.
    Hybrid {
        /// Number of simulated cluster hosts.
        hosts: usize,
        /// Unison worker threads per host.
        threads_per_host: usize,
    },
    /// The barrier-free asynchronous conservative kernel (DESIGN.md §4.8):
    /// `threads` workers each own a static set of LPs and advance them
    /// independently to per-neighbor channel-clock bounds, with lazy
    /// null-message grants instead of round barriers. Deterministic
    /// (digest-identical to the compat-keys sequential kernel) at any
    /// thread count; requires a stop time.
    AsyncCons {
        /// Worker thread count (≥ 1). LPs are statically assigned to
        /// workers (affinity hints when the partitioner provides them).
        threads: usize,
    },
}

impl KernelKind {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::Sequential { compat_keys: false } => "sequential",
            KernelKind::Sequential { compat_keys: true } => "sequential(compat)",
            KernelKind::Barrier => "barrier",
            KernelKind::NullMessage => "nullmsg",
            KernelKind::Unison { .. } => "unison",
            KernelKind::Hybrid { .. } => "hybrid",
            KernelKind::AsyncCons { .. } => "async_cons",
        }
    }
}

/// How the topology is split into LPs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionMode {
    /// The paper's Algorithm 1 (median-delay fine-grained partition).
    Auto,
    /// Flood across links with delay strictly below the bound (granularity
    /// sweeps, Fig. 12a).
    Bound(Time),
    /// Explicit node → LP assignment (the baselines' manual schemes).
    Manual(Vec<u32>),
    /// Everything in one LP.
    SingleLp,
    /// A staged [`PartitionPipeline`] (cut → refine → place; DESIGN.md
    /// §4.5). `PartitionPipeline::median_cut()` reproduces [`PartitionMode::Auto`]
    /// exactly; `PartitionPipeline::refined()` adds balance refinement and
    /// worker-affinity placement.
    Pipeline(PartitionPipeline),
}

/// Round-progress watchdog configuration.
///
/// When `round_deadline` is set, the parallel kernels spawn a monitor
/// thread that aborts the run (via barrier poisoning / waker bumping) when
/// no synchronization round completes — and no null-message progress is
/// made — within the deadline, returning [`SimError::Stalled`] with a
/// diagnosis instead of hanging. Disabled by default: a deadline turns
/// wall-clock pauses (e.g. a suspended laptop) into run failures, so it is
/// opt-in. The sequential kernel ignores the watchdog (a single thread
/// cannot be preempted between events; see DESIGN.md §4.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Maximum wall-clock time a synchronization round may take before the
    /// run is aborted as stalled. `None` disables the watchdog.
    pub round_deadline: Option<std::time::Duration>,
}

impl WatchdogConfig {
    /// A watchdog with the given per-round deadline.
    pub fn deadline(d: std::time::Duration) -> Self {
        WatchdogConfig {
            round_deadline: Some(d),
        }
    }
}

/// Full run configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Kernel selection.
    pub kernel: KernelKind,
    /// Partitioning scheme.
    pub partition: PartitionMode,
    /// Scheduling heuristics (Unison kernel only).
    pub sched: SchedConfig,
    /// Instrumentation level.
    pub metrics: MetricsLevel,
    /// Round-progress watchdog (disabled by default).
    pub watchdog: WatchdogConfig,
    /// Span/decision telemetry recording (disabled by default; see
    /// DESIGN.md §4.3).
    pub telemetry: TelemetryConfig,
    /// FEL implementation (default: the ladder queue). Pop order — and
    /// therefore every digest — is identical for all implementations; the
    /// switch exists for A/B benchmarking (DESIGN.md §4.4).
    pub fel: FelImpl,
    /// Deterministic fault-injection plan (default: empty). Inert unless
    /// the `fault-inject` cargo feature compiled the kernel hooks in; see
    /// DESIGN.md §4.7.
    pub fault: FaultPlan,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::sequential()
    }
}

impl RunConfig {
    /// A sequential run with ns-3-style insertion-order tie-breaking.
    pub fn sequential() -> Self {
        RunConfig {
            kernel: KernelKind::Sequential { compat_keys: false },
            partition: PartitionMode::SingleLp,
            sched: SchedConfig::default(),
            metrics: MetricsLevel::Summary,
            watchdog: WatchdogConfig::default(),
            telemetry: TelemetryConfig::default(),
            fel: FelImpl::default(),
            fault: FaultPlan::default(),
        }
    }

    /// A Unison run with `threads` workers and automatic partitioning.
    pub fn unison(threads: usize) -> Self {
        RunConfig {
            kernel: KernelKind::Unison { threads },
            partition: PartitionMode::Auto,
            sched: SchedConfig::default(),
            metrics: MetricsLevel::Summary,
            watchdog: WatchdogConfig::default(),
            telemetry: TelemetryConfig::default(),
            fel: FelImpl::default(),
            fault: FaultPlan::default(),
        }
    }

    /// An asynchronous-conservative run with `threads` workers and
    /// automatic partitioning (DESIGN.md §4.8). The world must carry a
    /// stop time (`WorldBuilder::stop_at`).
    pub fn async_cons(threads: usize) -> Self {
        RunConfig {
            kernel: KernelKind::AsyncCons { threads },
            partition: PartitionMode::Auto,
            sched: SchedConfig::default(),
            metrics: MetricsLevel::Summary,
            watchdog: WatchdogConfig::default(),
            telemetry: TelemetryConfig::default(),
            fel: FelImpl::default(),
            fault: FaultPlan::default(),
        }
    }

    /// A barrier-PDES run over a manual partition.
    pub fn barrier(assignment: Vec<u32>) -> Self {
        RunConfig {
            kernel: KernelKind::Barrier,
            partition: PartitionMode::Manual(assignment),
            sched: SchedConfig::default(),
            metrics: MetricsLevel::Summary,
            watchdog: WatchdogConfig::default(),
            telemetry: TelemetryConfig::default(),
            fel: FelImpl::default(),
            fault: FaultPlan::default(),
        }
    }

    /// A null-message-PDES run over a manual partition.
    pub fn nullmsg(assignment: Vec<u32>) -> Self {
        RunConfig {
            kernel: KernelKind::NullMessage,
            partition: PartitionMode::Manual(assignment),
            sched: SchedConfig::default(),
            metrics: MetricsLevel::Summary,
            watchdog: WatchdogConfig::default(),
            telemetry: TelemetryConfig::default(),
            fel: FelImpl::default(),
            fault: FaultPlan::default(),
        }
    }

    /// Enables per-round profiling (input to the virtual-core model).
    pub fn with_per_round_metrics(mut self) -> Self {
        self.metrics = MetricsLevel::PerRound;
        self
    }

    /// Overrides the scheduling configuration.
    pub fn with_sched(mut self, sched: SchedConfig) -> Self {
        self.sched = sched;
        self
    }

    /// Overrides the round-fusion configuration (Unison/hybrid kernels;
    /// DESIGN.md §4.9). Results are bit-identical with fusion on or off —
    /// only barrier-crossing counts and wall-clock change.
    pub fn with_fusion(mut self, fusion: crate::sched::FusionConfig) -> Self {
        self.sched.fusion = fusion;
        self
    }

    /// Disables round fusion (every round crosses the phase barriers).
    pub fn without_fusion(mut self) -> Self {
        self.sched.fusion = crate::sched::FusionConfig::off();
        self
    }

    /// Sets the worker→core pinning policy (default off). Placement only:
    /// pinning never affects simulation results.
    pub fn with_pinning(mut self, pin: crate::pin::PinPolicy) -> Self {
        self.sched.pin = pin;
        self
    }

    /// Partitions the topology through a staged [`PartitionPipeline`]
    /// instead of the built-in modes (DESIGN.md §4.5).
    pub fn with_partitioner(mut self, pipeline: PartitionPipeline) -> Self {
        self.partition = PartitionMode::Pipeline(pipeline);
        self
    }

    /// Enables the round-progress watchdog with the given per-round
    /// wall-clock deadline.
    pub fn with_watchdog(mut self, round_deadline: std::time::Duration) -> Self {
        self.watchdog = WatchdogConfig::deadline(round_deadline);
        self
    }

    /// Enables span/decision telemetry recording with default capacities
    /// (provably non-perturbing; see DESIGN.md §4.3).
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = TelemetryConfig::enabled();
        self
    }

    /// Overrides the full telemetry configuration.
    pub fn with_telemetry_config(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Selects the FEL implementation (A/B switch; results are bit-identical
    /// either way).
    pub fn with_fel(mut self, fel: FelImpl) -> Self {
        self.fel = fel;
        self
    }

    /// Attaches a deterministic fault-injection plan (DESIGN.md §4.7).
    /// Without the `fault-inject` cargo feature the plan is carried but
    /// never consulted — the kernel hooks are compiled out.
    pub fn with_faults(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }
}

/// Errors surfaced before a run starts.
#[derive(Debug, PartialEq, Eq)]
pub enum KernelError {
    /// The chosen baseline kernel cannot execute global events (topology
    /// changes etc.); only Unison and the sequential kernel support them.
    GlobalEventsUnsupported(&'static str),
    /// A partition parameter is inconsistent with the world.
    InvalidPartition(String),
    /// A kernel parameter is out of range.
    InvalidConfig(String),
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::GlobalEventsUnsupported(k) => {
                write!(f, "kernel `{k}` does not support global events; use Unison")
            }
            KernelError::InvalidPartition(m) => write!(f, "invalid partition: {m}"),
            KernelError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for KernelError {}

/// Runs `world` under `cfg`, returning the final world (with all node state,
/// e.g. statistics) and a [`RunReport`].
///
/// This is the legacy infallible entry point: configuration errors are
/// reported as [`KernelError`], but a contained worker panic or a watchdog
/// abort (see [`try_run`]) re-panics on the calling thread, carrying the
/// full diagnostic string. Use [`try_run`] to receive those as values.
pub fn run<N: SimNode>(
    world: World<N>,
    cfg: &RunConfig,
) -> Result<(World<N>, RunReport), KernelError> {
    match try_run(world, cfg) {
        Ok(out) => Ok(out),
        Err(SimError::Config(e)) => Err(e),
        Err(e) => panic!("{e}"),
    }
}

/// Runs `world` under `cfg`, returning every failure — including contained
/// worker panics and watchdog aborts — as a structured [`SimError`].
///
/// On [`SimError::WorkerPanic`] and [`SimError::Stalled`] the surviving
/// workers have been drained via barrier poisoning and joined; the error
/// carries the diagnostics plus the partial [`RunReport`] accumulated up to
/// the abort. The world is consumed (its node state may be mid-event and is
/// not returned).
pub fn try_run<N: SimNode>(
    world: World<N>,
    cfg: &RunConfig,
) -> Result<(World<N>, RunReport), SimError> {
    match &cfg.kernel {
        KernelKind::Sequential { compat_keys } => sequential::run(world, cfg, *compat_keys),
        KernelKind::Barrier => barrier::run(world, cfg),
        KernelKind::NullMessage => nullmsg::run(world, cfg),
        KernelKind::Unison { threads } => unison::run(world, cfg, *threads),
        KernelKind::Hybrid {
            hosts,
            threads_per_host,
        } => hybrid::run(world, cfg, *hosts, *threads_per_host),
        KernelKind::AsyncCons { threads } => async_cons::run(world, cfg, *threads),
    }
}

/// Builds the configured partition for a world.
pub(crate) fn build_partition<N: SimNode>(
    world: &World<N>,
    mode: &PartitionMode,
) -> Result<Partition, KernelError> {
    let graph = &world.graph;
    let p = match mode {
        PartitionMode::Auto => fine_grained_partition(graph),
        PartitionMode::Bound(bound) => partition_below_bound(graph, *bound),
        PartitionMode::SingleLp => single_lp_partition(graph),
        PartitionMode::Pipeline(pipeline) => pipeline.partition(graph),
        PartitionMode::Manual(assign) => {
            if assign.len() != graph.node_count() {
                return Err(KernelError::InvalidPartition(format!(
                    "assignment covers {} nodes, world has {}",
                    assign.len(),
                    graph.node_count()
                )));
            }
            manual_partition(graph, assign)
        }
    };
    Ok(p)
}

/// Everything a kernel needs from a dismantled world: per-LP states, the
/// node directory, the link graph, pending global events, the stop time,
/// and the starting external sequence number (non-zero after a restore).
pub(crate) type BuiltLps<N> = (
    Vec<LpState<N>>,
    NodeDirectory,
    crate::graph::LinkGraph,
    Vec<(Time, GlobalFn<N>)>,
    Option<Time>,
    u64,
);

/// Distributes a world's nodes and initial events into per-LP states.
pub(crate) fn build_lps<N: SimNode>(
    world: World<N>,
    partition: &Partition,
    fel_impl: FelImpl,
) -> BuiltLps<N> {
    let World {
        nodes,
        graph,
        init_events,
        init_globals,
        stop_at,
        restored_lp_seqs,
        restored_ext_seq,
    } = world;
    let directory = NodeDirectory::from_lp_nodes(nodes.len(), &partition.lp_nodes);
    let mut lps: Vec<LpState<N>> = (0..partition.lp_count)
        .map(|i| LpState::with_fel(LpId(i), fel_impl))
        .collect();
    // Nodes move into their LPs in ascending node order (matching
    // `Partition::lp_nodes` and the directory's local indices).
    for (i, node) in nodes.into_iter().enumerate() {
        let (lp, local) = directory.locate(NodeId(i as u32));
        debug_assert_eq!(lps[lp.index()].nodes.len(), local as usize);
        lps[lp.index()].nodes.push(node);
    }
    for ev in init_events {
        let (lp, _) = directory.locate(ev.node);
        lps[lp.index()].fel.push(ev);
    }
    // Checkpoint restore: sequence counters continue where the saved run
    // stopped, so post-resume events get the same tie-break keys the
    // uninterrupted run would have assigned. The caller is responsible for
    // resuming under the saved partition (LP counts must line up).
    if let Some(seqs) = restored_lp_seqs {
        assert_eq!(
            seqs.len(),
            lps.len(),
            "restored world must run under its original partition \
             (checkpoint had {} LPs, this partition has {})",
            seqs.len(),
            lps.len()
        );
        for (lp, seq) in lps.iter_mut().zip(seqs) {
            lp.seq = seq;
        }
    }
    for lp in &mut lps {
        lp.refresh_next_ts();
    }
    let globals = init_globals.into_iter().map(|g| (g.ts, g.f)).collect();
    (lps, directory, graph, globals, stop_at, restored_ext_seq)
}

/// Reassembles a [`World`] from finished LP states (nodes return to their
/// original ascending-id order; event lists are dropped).
pub(crate) fn reassemble_world<N: SimNode>(
    lps: Vec<LpState<N>>,
    partition: &Partition,
    graph: crate::graph::LinkGraph,
    stop_at: Option<Time>,
) -> World<N> {
    let node_count: usize = partition.lp_nodes.iter().map(|v| v.len()).sum();
    let mut slots: Vec<Option<N>> = (0..node_count).map(|_| None).collect();
    for (lp_idx, lp) in lps.into_iter().enumerate() {
        for (local, node) in lp.nodes.into_iter().enumerate() {
            let id = partition.lp_nodes[lp_idx][local];
            slots[id.index()] = Some(node);
        }
    }
    World {
        nodes: slots
            .into_iter()
            // INVARIANT: `partition.lp_nodes` covers every node id exactly
            // once (checked when the partition is built), so the loop above
            // filled each slot.
            .map(|n| n.expect("every node slot filled"))
            .collect(),
        graph,
        init_events: Vec::new(),
        init_globals: Vec::new(),
        stop_at,
        restored_lp_seqs: None,
        restored_ext_seq: 0,
    }
}

/// The [`SimCtx`] implementation used by the round-based kernels (Unison and
/// the instrumented single-thread engine). Borrows disjoint fields of the
/// current [`LpState`] so the executing node and the scheduler can coexist.
pub(crate) struct RoundCtx<'a, N: SimNode> {
    pub now: Time,
    pub self_node: NodeId,
    pub lp_id: LpId,
    pub window_end: Time,
    pub fel: &'a mut Fel<N::Payload>,
    pub seq: &'a mut u64,
    pub outflow: &'a mut Vec<Event<N::Payload>>,
    pub pending_globals: &'a mut Vec<PendingGlobal<N>>,
    pub dir: &'a NodeDirectory,
    pub mailboxes: Option<&'a Mailboxes<N::Payload>>,
    pub stop_flag: &'a AtomicBool,
}

impl<N: SimNode> SimCtx<N> for RoundCtx<'_, N> {
    fn now(&self) -> Time {
        self.now
    }

    fn self_node(&self) -> NodeId {
        self.self_node
    }

    fn schedule(&mut self, delay: Time, target: NodeId, payload: N::Payload) {
        let ts = self.now.saturating_add(delay);
        let key = EventKey {
            ts,
            sender_ts: self.now,
            sender_lp: self.lp_id,
            seq: *self.seq,
        };
        *self.seq += 1;
        let ev = Event {
            key,
            node: target,
            payload,
        };
        let dst = self.dir.lp_of(target);
        if dst == self.lp_id {
            self.fel.push(ev);
            return;
        }
        // Causality: a cross-LP event may not land inside the current
        // window — guaranteed when the model routes packets across cut
        // links with at least the link's propagation delay (≥ lookahead).
        debug_assert!(
            ts >= self.window_end,
            "cross-LP event at {ts:?} lands inside the current window \
             (ends {:?}); the scheduling delay must be >= the lookahead",
            self.window_end
        );
        match self.mailboxes {
            Some(m) => {
                if let Err(ev) = m.try_push(self.lp_id.0, dst.0, ev) {
                    self.outflow.push(ev);
                }
            }
            None => self.outflow.push(ev),
        }
    }

    fn schedule_global(&mut self, delay: Time, f: GlobalFn<N>) {
        // Global events run on the public LP no earlier than the end of the
        // current window; the kernel clamps the timestamp accordingly (the
        // paper's model only creates globals before the run or from other
        // globals, where no clamping ever applies).
        let ts = self.now.saturating_add(delay);
        self.pending_globals.push(PendingGlobal {
            ts,
            sender_ts: self.now,
            f,
        });
    }

    fn request_stop(&mut self) {
        self.stop_flag.store(true, Ordering::Release);
    }
}
