//! Structured failure reporting for kernel runs.
//!
//! The crash-safety layer (DESIGN.md §4.2) turns the two historically fatal
//! failure modes of a parallel run — a panicking worker and a stalled round
//! — into values: [`SimError`] carries a diagnostic bundle plus the partial
//! [`RunReport`] accumulated up to the abort, so a multi-hour simulation
//! that dies at 99% still tells the operator *where* (kernel, round, phase,
//! LP, virtual time) and *why* (panic payload or stall diagnosis) instead
//! of hanging the process.
//!
//! [`kernel::try_run`](crate::kernel::try_run) is the fallible entry point;
//! the legacy [`kernel::run`](crate::kernel::run) remains a thin wrapper
//! that panics (with the same diagnostics) on contained failures.

use std::any::Any;
use std::fmt;
use std::time::Duration;

use crate::event::LpId;
use crate::kernel::KernelError;
use crate::metrics::RunReport;
use crate::time::Time;

/// Which part of a synchronization round a failure happened in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunPhase {
    /// Executing node events (Unison phase 1, or the per-LP event loop of
    /// the barrier/null-message/sequential kernels).
    Process,
    /// Executing a global event on the public LP.
    Global,
    /// Draining cross-LP mailboxes (Unison phase 3).
    Receive,
    /// Outside any event-processing phase (window computation, setup).
    Control,
}

impl fmt::Display for RunPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RunPhase::Process => "process",
            RunPhase::Global => "global",
            RunPhase::Receive => "receive",
            RunPhase::Control => "control",
        };
        f.write_str(s)
    }
}

/// Diagnostic bundle describing a contained worker panic.
#[derive(Debug)]
pub struct FailureDiagnostics {
    /// Kernel that produced the failure (e.g. `"unison"`).
    pub kernel: &'static str,
    /// Synchronization round at the time of the panic (0 for sequential).
    pub round: u64,
    /// Round phase the panic happened in.
    pub phase: RunPhase,
    /// LP whose event was executing, when known.
    pub lp: Option<LpId>,
    /// Virtual time of the event being executed (or the round's window
    /// start when no event was in flight).
    pub virtual_time: Time,
    /// Worker/thread index that panicked.
    pub worker: usize,
    /// Stringified panic payload (`&str`/`String` payloads verbatim).
    pub panic_message: String,
}

impl fmt::Display for FailureDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel {} worker {} panicked in round {} ({} phase",
            self.kernel, self.worker, self.round, self.phase
        )?;
        if let Some(lp) = self.lp {
            write!(f, ", LP {}", lp.0)?;
        }
        write!(f, ") at t={}: {}", self.virtual_time, self.panic_message)
    }
}

/// Diagnosis of a stalled run, produced by the round-progress watchdog.
#[derive(Debug)]
pub struct StallDiagnostics {
    /// Kernel that stalled.
    pub kernel: &'static str,
    /// Last round that made progress before the stall.
    pub round: u64,
    /// The configured per-round wall-clock deadline that expired.
    pub deadline: Duration,
    /// Virtual time the run had reached when it stalled.
    pub virtual_time: Time,
    /// LPs that still had pending work but could not advance.
    pub blocked: Vec<LpId>,
    /// A blocking dependency cycle among the stalled LPs, when one was
    /// identified (null-message kernel: a zero-lookahead channel cycle).
    pub cycle: Vec<LpId>,
}

impl fmt::Display for StallDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel {} made no progress for {:?} after round {} (t={})",
            self.kernel, self.deadline, self.round, self.virtual_time
        )?;
        if !self.blocked.is_empty() {
            let ids: Vec<String> = self.blocked.iter().map(|l| l.0.to_string()).collect();
            write!(f, "; blocked LPs: [{}]", ids.join(", "))?;
        }
        if !self.cycle.is_empty() {
            let ids: Vec<String> = self.cycle.iter().map(|l| l.0.to_string()).collect();
            write!(f, "; dependency cycle: {}", ids.join(" -> "))?;
        }
        Ok(())
    }
}

/// Error type of the fallible [`kernel::try_run`](crate::kernel::try_run)
/// entry point.
#[derive(Debug)]
pub enum SimError {
    /// The configuration or world was rejected before the run started
    /// (same cases as [`KernelError`]).
    Config(KernelError),
    /// A worker thread panicked. The run was aborted via barrier poisoning
    /// and every surviving worker drained out cleanly.
    WorkerPanic {
        /// Where and why the panic happened.
        diag: FailureDiagnostics,
        /// Totals accumulated up to the abort.
        partial: Box<RunReport>,
    },
    /// The round-progress watchdog saw no progress within its deadline and
    /// aborted the run.
    Stalled {
        /// Stall diagnosis (blocked LPs, dependency cycle when found).
        diag: StallDiagnostics,
        /// Totals accumulated up to the abort.
        partial: Box<RunReport>,
    },
    /// Reading or decoding a checkpoint failed.
    Checkpoint(crate::checkpoint::SnapshotError),
    /// A checkpoint file existed but its bytes failed validation (bad
    /// magic, truncation, out-of-range references). Distinguished from
    /// [`SimError::Checkpoint`] so callers — and
    /// [`fault::run_resilient`](crate::fault::run_resilient), which skips
    /// corrupt files and falls back to an older checkpoint — can tell
    /// "disk said no" from "bytes are lying".
    CorruptSnapshot {
        /// Human-readable description of the validation failure.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "{e}"),
            SimError::WorkerPanic { diag, .. } => write!(f, "{diag}"),
            SimError::Stalled { diag, .. } => write!(f, "watchdog: {diag}"),
            SimError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            SimError::CorruptSnapshot { detail } => {
                write!(f, "corrupt snapshot: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<KernelError> for SimError {
    fn from(e: KernelError) -> Self {
        SimError::Config(e)
    }
}

impl From<crate::checkpoint::SnapshotError> for SimError {
    fn from(e: crate::checkpoint::SnapshotError) -> Self {
        match e {
            crate::checkpoint::SnapshotError::Corrupt(detail) => {
                SimError::CorruptSnapshot { detail }
            }
            other => SimError::Checkpoint(other),
        }
    }
}

impl SimError {
    /// The partial run report, for the abort variants that carry one.
    pub fn partial_report(&self) -> Option<&RunReport> {
        match self {
            SimError::WorkerPanic { partial, .. } | SimError::Stalled { partial, .. } => {
                Some(partial)
            }
            _ => None,
        }
    }
}

/// Records the *first* failure into a shared slot (later panics during the
/// same abort are secondary — usually claim-audit fallout of the drain — and
/// would bury the root cause).
pub(crate) fn record_failure(
    slot: &std::sync::Mutex<Option<FailureDiagnostics>>,
    diag: FailureDiagnostics,
) {
    let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
    if guard.is_none() {
        *guard = Some(diag);
    }
}

/// Renders a `catch_unwind` payload: `&str`/`String` payloads verbatim,
/// anything else as a placeholder.
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_diagnostics_display_mentions_site() {
        let d = FailureDiagnostics {
            kernel: "unison",
            round: 7,
            phase: RunPhase::Process,
            lp: Some(LpId(3)),
            virtual_time: Time(1_000),
            worker: 2,
            panic_message: "boom".into(),
        };
        let s = d.to_string();
        assert!(s.contains("unison"), "{s}");
        assert!(s.contains("round 7"), "{s}");
        assert!(s.contains("LP 3"), "{s}");
        assert!(s.contains("boom"), "{s}");
    }

    #[test]
    fn stall_diagnostics_display_mentions_cycle() {
        let d = StallDiagnostics {
            kernel: "nullmsg",
            round: 0,
            deadline: Duration::from_millis(50),
            virtual_time: Time(5),
            blocked: vec![LpId(0), LpId(1)],
            cycle: vec![LpId(0), LpId(1), LpId(0)],
        };
        let s = d.to_string();
        assert!(s.contains("blocked LPs"), "{s}");
        assert!(s.contains("0 -> 1 -> 0"), "{s}");
    }

    #[test]
    fn panic_message_downcasts() {
        let b: Box<dyn Any + Send> = Box::new("static");
        assert_eq!(panic_message(b.as_ref()), "static");
        let b: Box<dyn Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(b.as_ref()), "owned");
        let b: Box<dyn Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(b.as_ref()), "<non-string panic payload>");
    }
}
