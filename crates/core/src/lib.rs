//! # unison-core
//!
//! Simulation kernels for the unison-rs workspace — a from-scratch Rust
//! reproduction of *Unison: A Parallel-Efficient and User-Transparent
//! Network Simulation Kernel* (EuroSys '24).
//!
//! The crate provides:
//!
//! - the discrete-event foundation: [`Time`], [`Event`], the deterministic
//!   tie-breaking [`EventKey`] (§5.2), and the future event list [`Fel`];
//! - the model interface: [`SimNode`], [`SimCtx`], [`WorldBuilder`] — model
//!   code is identical under every kernel (*user transparency*);
//! - the fine-grained partitioner (Algorithm 1, [`fine_grained_partition`])
//!   and manual/static partitions for the baselines;
//! - four kernels ([`kernel::run`]): sequential DES, barrier PDES,
//!   null-message PDES, and the Unison kernel (plus the hybrid distributed
//!   kernel of §5.2);
//! - load-adaptive scheduling ([`sched`]), P/S/M metrics ([`metrics`]), and
//!   the virtual-core performance replay ([`perfmodel`]).
//!
//! # Example: user transparency
//!
//! The same world runs on any kernel; only the configuration changes.
//!
//! ```
//! use unison_core::{
//!     kernel, NodeId, RunConfig, SimCtx, SimCtxExt, SimNode, Time, WorldBuilder,
//! };
//!
//! /// A node that bounces a token to its peer with 3 µs link delay.
//! struct Pinger {
//!     peer: NodeId,
//!     received: u64,
//! }
//!
//! impl SimNode for Pinger {
//!     type Payload = ();
//!     fn handle(&mut self, _p: (), ctx: &mut dyn SimCtx<Self>) {
//!         self.received += 1;
//!         ctx.schedule(Time::from_micros(3), self.peer, ());
//!     }
//! }
//!
//! let mut b = WorldBuilder::new();
//! let n0 = b.add_node(Pinger { peer: NodeId(1), received: 0 });
//! let n1 = b.add_node(Pinger { peer: NodeId(0), received: 0 });
//! b.add_link(n0, n1, Time::from_micros(3));
//! b.schedule(Time::ZERO, n0, ());
//! b.stop_at(Time::from_millis(1));
//! let world = b.build();
//!
//! let (world, report) = kernel::run(world, &RunConfig::unison(2)).unwrap();
//! assert!(report.events > 0);
//! assert_eq!(
//!     world.node(n0).received + world.node(n1).received,
//!     report.events
//! );
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod checkpoint;
pub mod error;
pub mod event;
pub mod fault;
pub mod fel;
pub mod global;
pub mod graph;
pub mod kernel;
pub mod lp;
pub mod mailbox;
pub mod metrics;
pub mod partition;
pub mod perfmodel;
pub mod pin;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod stealdeque;
pub mod sync;
pub mod sync_shim;
pub mod telemetry;
pub mod time;
pub mod world;

pub use checkpoint::{
    latest_checkpoint, list_checkpoints, resume, schedule_checkpoints, CheckpointConfig, Resumed,
    Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
};
pub use error::{FailureDiagnostics, RunPhase, SimError, StallDiagnostics};
pub use event::{Event, EventKey, LpId, NodeId};
pub use fault::{
    run_resilient, FaultKind, FaultPlan, FaultSpec, RecoveryLog, RecoveryPolicy, RollbackRecord,
};
pub use fel::{Fel, FelImpl};
pub use global::{GlobalFn, WorldAccess};
pub use graph::{LinkGraph, LinkSpec};
pub use kernel::{run, try_run, KernelError, KernelKind, PartitionMode, RunConfig, WatchdogConfig};
pub use metrics::{
    AsyncStats, EngineStats, LpTotals, MetricsLevel, Psm, RoundRecord, RunReport, SchedStats,
};
pub use partition::{
    fine_grained_partition, manual_partition, partition_below_bound, BalancedRefine, CutStage,
    MedianCut, Partition, PartitionPipeline, Partitioner, PlaceStage, RefineStage, TopoPlace,
};
pub use perfmodel::{CostParams, ModelResult, PerfModel};
pub use pin::PinPolicy;
pub use rng::Rng;
pub use sched::{
    scheduling_regret, FusionConfig, LjfCursor, SchedConfig, SchedMetric, SchedPolicy,
    SchedPolicyKind, SchedPolicyStats,
};
pub use stealdeque::StealDeque;
pub use telemetry::{RunTelemetry, SchedDecision, Span, SpanKind, TelemetryConfig, WorkerSpans};
pub use time::{DataRate, Time};
pub use world::{SimCtx, SimCtxExt, SimNode, World, WorldBuilder};
