//! Mailboxes: lock-free cross-LP event transfer (§5.1).
//!
//! Before the simulation starts, a queue is created for every *directed* LP
//! pair joined by at least one link. During the processing phase, inter-LP
//! events are appended to the mailbox of the (source, destination) pair;
//! during the receive phase the destination LP drains its mailboxes — in
//! ascending source-LP order, so the merged FEL contents are deterministic —
//! and inserts the events into its FEL. Each mailbox has a single producer
//! (the thread executing the source LP that round) and a single consumer
//! (the thread executing the destination LP in the receive phase), with the
//! phase barrier establishing the happens-before edge.
//!
//! That single-producer/single-consumer-per-phase discipline (enforced at
//! runtime by the claim auditor, DESIGN.md §4.1) is also what makes node
//! *pooling* free of coordination here: [`Mailboxes::try_push`] reuses nodes
//! that the destination's previous receive phase retired onto the queue's
//! freelist, so steady-state cross-LP sends allocate zero (DESIGN.md §4.4).

use crate::event::Event;
use crate::queue::MpscQueue;

/// All mailboxes of a run, indexed by destination LP.
pub struct Mailboxes<P> {
    /// `inboxes[dst]` = mailboxes feeding LP `dst`, sorted by source LP id.
    inboxes: Vec<Vec<(u32, MpscQueue<Event<P>>)>>,
}

impl<P> Mailboxes<P> {
    /// Builds mailboxes from the undirected LP channel list (both directions
    /// are created for every channel).
    pub fn new(lp_count: usize, channels: &[(u32, u32)]) -> Self {
        let mut inboxes: Vec<Vec<(u32, MpscQueue<Event<P>>)>> =
            (0..lp_count).map(|_| Vec::new()).collect();
        for &(a, b) in channels {
            inboxes[b as usize].push((a, MpscQueue::new()));
            inboxes[a as usize].push((b, MpscQueue::new()));
        }
        for inbox in &mut inboxes {
            inbox.sort_unstable_by_key(|(src, _)| *src);
            inbox.dedup_by_key(|(src, _)| *src);
        }
        Mailboxes { inboxes }
    }

    /// Attempts to deliver `ev` into the `(src, dst)` mailbox, reusing a
    /// pooled node when the destination's earlier drains retired one.
    /// Returns the event back when no mailbox exists for the pair (the
    /// caller then uses the main-thread overflow lane).
    #[inline]
    pub fn try_push(&self, src: u32, dst: u32, ev: Event<P>) -> Result<(), Event<P>> {
        let inbox = &self.inboxes[dst as usize];
        match inbox.binary_search_by_key(&src, |(s, _)| *s) {
            Ok(i) => {
                inbox[i].1.push_pooled(ev);
                Ok(())
            }
            Err(_) => Err(ev),
        }
    }

    /// Drains every mailbox of `dst` in ascending source order, invoking `f`
    /// for each event in FIFO (per source) order and recycling the nodes.
    ///
    /// Must only be called by the thread holding the exclusive claim on LP
    /// `dst` during the receive phase.
    pub fn drain(&self, dst: u32, mut f: impl FnMut(Event<P>)) {
        for (_, q) in &self.inboxes[dst as usize] {
            q.drain_recycle(&mut f);
        }
    }

    /// Batched drain: appends every pending event of `dst` to `out` —
    /// ascending source order, FIFO within each source, i.e. exactly the
    /// order [`Mailboxes::drain`] would visit — recycling the nodes, and
    /// returns how many events were appended.
    ///
    /// The receive phase pairs this with `Fel::extend`, turning per-event
    /// closure dispatch + heap sifts into one contiguous append that the FEL
    /// ingests in bulk. Same claim requirement as [`Mailboxes::drain`].
    pub fn drain_batch(&self, dst: u32, out: &mut Vec<Event<P>>) -> usize {
        let start = out.len();
        for (_, q) in &self.inboxes[dst as usize] {
            q.drain_into(out);
        }
        out.len() - start
    }

    /// Drains the single directed channel `src -> dst`, appending its
    /// pending events to `out` in FIFO (send) order and recycling the
    /// nodes. Returns how many events were appended; 0 when no such
    /// channel exists.
    ///
    /// The async-conservative kernel uses this to keep per-channel
    /// deliveries separate for the deterministic k-way merge. Same claim
    /// requirement as [`Mailboxes::drain`].
    pub fn drain_channel(&self, src: u32, dst: u32, out: &mut Vec<Event<P>>) -> usize {
        let inbox = &self.inboxes[dst as usize];
        match inbox.binary_search_by_key(&src, |(s, _)| *s) {
            Ok(i) => inbox[i].1.drain_into(out),
            Err(_) => 0,
        }
    }

    /// Inbox slot of the directed channel `src -> dst`, for use with
    /// [`Mailboxes::drain_slot`]. `None` when no such channel exists.
    pub fn channel_slot(&self, src: u32, dst: u32) -> Option<usize> {
        self.inboxes[dst as usize]
            .binary_search_by_key(&src, |(s, _)| *s)
            .ok()
    }

    /// [`Mailboxes::drain_channel`] with the binary search hoisted out:
    /// `slot` must come from [`Mailboxes::channel_slot`] for the same
    /// `dst`. The async-conservative kernel resolves every channel's slot
    /// once at set-up and probes it on every sweep, where a repeated
    /// search would dominate the cost of probing an empty queue.
    pub fn drain_slot(&self, dst: u32, slot: usize, out: &mut Vec<Event<P>>) -> usize {
        self.inboxes[dst as usize][slot].1.drain_into(out)
    }

    /// Aggregate `(pool_hits, pool_misses)` over every mailbox — the
    /// steady-state allocation profile of cross-LP traffic, reported as
    /// `RunReport::engine`.
    pub fn pool_stats(&self) -> (usize, usize) {
        let (mut hits, mut misses) = (0, 0);
        for inbox in &self.inboxes {
            for (_, q) in inbox {
                let (h, m) = q.pool_stats();
                hits += h;
                misses += m;
            }
        }
        (hits, misses)
    }

    /// Number of LPs covered.
    pub fn lp_count(&self) -> usize {
        self.inboxes.len()
    }

    /// Number of mailboxes feeding `dst`.
    pub fn fan_in(&self, dst: u32) -> usize {
        self.inboxes[dst as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKey, NodeId};
    use crate::time::Time;

    fn ev(ts: u64, seq: u64) -> Event<u32> {
        Event {
            key: EventKey::external(Time(ts), seq),
            node: NodeId(0),
            payload: seq as u32,
        }
    }

    #[test]
    fn push_and_drain_in_source_order() {
        let m: Mailboxes<u32> = Mailboxes::new(3, &[(0, 2), (1, 2)]);
        m.try_push(1, 2, ev(5, 10)).unwrap();
        m.try_push(0, 2, ev(9, 20)).unwrap();
        m.try_push(0, 2, ev(1, 21)).unwrap();
        let mut got = Vec::new();
        m.drain(2, |e| got.push(e.payload));
        // Source 0 first (FIFO within source), then source 1.
        assert_eq!(got, vec![20, 21, 10]);
    }

    #[test]
    fn missing_pair_returns_event() {
        let m: Mailboxes<u32> = Mailboxes::new(3, &[(0, 1)]);
        assert!(m.try_push(0, 2, ev(1, 0)).is_err());
        assert!(m.try_push(0, 1, ev(1, 0)).is_ok());
        // Channels are bidirectional.
        assert!(m.try_push(1, 0, ev(1, 1)).is_ok());
    }

    #[test]
    fn drain_batch_matches_drain_order() {
        let m: Mailboxes<u32> = Mailboxes::new(3, &[(0, 2), (1, 2)]);
        m.try_push(1, 2, ev(5, 10)).unwrap();
        m.try_push(0, 2, ev(9, 20)).unwrap();
        m.try_push(0, 2, ev(1, 21)).unwrap();
        let mut out = Vec::new();
        assert_eq!(m.drain_batch(2, &mut out), 3);
        let got: Vec<u32> = out.iter().map(|e| e.payload).collect();
        assert_eq!(got, vec![20, 21, 10]);
        assert_eq!(m.drain_batch(2, &mut out), 0);
    }

    #[test]
    fn steady_state_rounds_reuse_nodes() {
        let m: Mailboxes<u32> = Mailboxes::new(2, &[(0, 1)]);
        for round in 0..5 {
            for s in 0..8 {
                m.try_push(0, 1, ev(round * 10, s)).unwrap();
            }
            let mut out = Vec::new();
            assert_eq!(m.drain_batch(1, &mut out), 8);
        }
        let (hits, misses) = m.pool_stats();
        assert_eq!(misses, 8, "only the first round allocates");
        assert_eq!(hits, 32);
    }

    #[test]
    fn duplicate_channels_deduped() {
        let m: Mailboxes<u32> = Mailboxes::new(2, &[(0, 1), (0, 1), (1, 0)]);
        assert_eq!(m.fan_in(0), 1);
        assert_eq!(m.fan_in(1), 1);
    }
}
